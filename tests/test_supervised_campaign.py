"""Self-healing campaign integration tests: real pools, real deaths.

The acceptance property under test: a supervised process campaign in
which seeded :class:`~repro.robustness.chaos.ProcessChaos` faults kill
workers mid-cell completes anyway, and its journal is **byte-identical**
to the failure-free serial ``--deterministic`` run — crash recovery is
invisible in the campaign's output. A permanently poisonous iteration
is bisected out and quarantined instead of aborting the campaign.

These tests spawn and respawn process pools; the heavy ones are marked
``chaos`` (the CI fault-tolerance stage runs them explicitly; the fast
lane skips them).
"""

import json

import pytest

from repro.campaign.runner import deterministic_solvers, run_campaign
from repro.core.parallel import ShardTask, WorkerSpec, _init_worker, _run_shard
from repro.robustness import (
    CampaignJournal,
    ContainmentPolicy,
    ProcessChaos,
    SupervisorPolicy,
)
from repro.seeds import build_corpus

CAMPAIGN = dict(
    iterations_per_cell=6,
    seed=6,
    performance_threshold=None,
    solver_factory=deterministic_solvers,
)

NO_BACKOFF = dict(backoff_base=0.0, backoff_cap=0.0)


def one_deterministic_solver():
    """A single-solver factory: halves the campaign's cell count."""
    return deterministic_solvers()[:1]


class SatOnly:
    """A corpus view exposing only the ``sat`` seeds (fewer cells)."""

    def __init__(self, corpus):
        self._corpus = corpus

    def by_oracle(self, oracle):
        return self._corpus.by_oracle(oracle) if oracle == "sat" else []


@pytest.fixture(scope="module")
def corpora():
    return {"QF_S": SatOnly(build_corpus("QF_S", scale=0.0015, seed=5))}


@pytest.fixture(scope="module")
def baseline(corpora, tmp_path_factory):
    path = tmp_path_factory.mktemp("journal") / "baseline.jsonl"
    result = run_campaign(
        corpora, journal=path, **dict(CAMPAIGN, solver_factory=one_deterministic_solver)
    )
    return result, path.read_bytes()


@pytest.mark.chaos
class TestChaosKillDeterminism:
    def test_seeded_worker_kills_leave_journal_byte_identical(
        self, corpora, baseline, tmp_path
    ):
        # Iterations 2 and 3 land in different shards at workers=2, so
        # the campaign survives two separate worker deaths (each shard
        # lease is killed once, charged via its heartbeat, respawned,
        # and resumed from its progress checkpoints).
        path = tmp_path / "supervised.jsonl"
        result = run_campaign(
            corpora,
            journal=path,
            mode="process",
            workers=2,
            supervise=SupervisorPolicy(max_worker_restarts=20, **NO_BACKOFF),
            chaos_process=ProcessChaos(kill_at=(2, 3)),
            **dict(CAMPAIGN, solver_factory=one_deterministic_solver),
        )
        assert result.supervision["restarts"] >= 1
        assert result.supervision["retries"] >= 1
        assert result.poisoned == []
        assert path.read_bytes() == baseline[1]
        # Leases' progress checkpoints are cleaned up with the sidecars.
        assert list(tmp_path.glob("*.lease-*")) == []

    def test_unsupervised_campaign_dies_on_the_same_faults(self, corpora, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        with pytest.raises(BrokenProcessPool):
            run_campaign(
                corpora,
                mode="process",
                workers=2,
                chaos_process=None,  # bare pool, no supervision
                **dict(CAMPAIGN, solver_factory=_killing_solvers),
            )


class _KillOnFirstCheck:
    """A solver whose first check SIGKILLs its own process (picklable)."""

    name = "suicidal"

    def check_script(self, script):
        import os
        import signal as signal_mod

        os.kill(os.getpid(), signal_mod.SIGKILL)


def _killing_solvers():
    return [_KillOnFirstCheck()]


@pytest.mark.chaos
class TestPoisonQuarantine:
    def test_permanent_killer_iteration_is_quarantined(self, corpora, tmp_path):
        # Iteration 1 kills its worker on *every* attempt: the lease is
        # bisected down to the single killer index, which is quarantined
        # as a reproduction artifact while the rest of the cell (and the
        # campaign) completes normally.
        path = tmp_path / "poisoned.jsonl"
        result = run_campaign(
            corpora,
            journal=path,
            mode="process",
            workers=2,
            supervise=SupervisorPolicy(
                max_shard_retries=0, max_worker_restarts=50, **NO_BACKOFF
            ),
            chaos_process=ProcessChaos(kill_at=(1,), attempts=10**9),
            **dict(CAMPAIGN, solver_factory=one_deterministic_solver),
        )
        assert len(result.poisoned) == 1
        poison = result.poisoned[0]
        assert poison.iteration == 1
        assert poison.classification == "killed"
        assert poison.strategy == "fusion"
        assert poison.seed == CAMPAIGN["seed"]
        assert poison.script  # the killer formula, reconstructed
        assert "(check-sat)" in poison.script
        # The quarantine is durable: the journal carries a poison entry
        # alongside the completed cell.
        journal = CampaignJournal(path)
        [entry] = journal.poison_entries()
        assert entry["iteration"] == 1
        assert entry["classification"] == "killed"
        assert entry["script"] == poison.script
        # The cell completed minus exactly the poisoned iteration.
        [report] = list(result.reports.values())
        assert report.iterations == CAMPAIGN["iterations_per_cell"] - 1
        assert result.supervision["poisoned"] == 1
        assert result.supervision["bisections"] >= 1


class TestLeasedResume:
    """In-process coverage of the worker-side leased loop: no pools, so
    these run in the fast lane."""

    def _spec_and_task(self, tmp_path, **task_overrides):
        from repro.core.config import FusionConfig, YinYangConfig
        from repro.core.parallel import serialize_seeds

        corpus = build_corpus("QF_S", scale=0.0015, seed=5)
        texts, logics = serialize_seeds(corpus.by_oracle("sat"))
        spec = WorkerSpec(
            solver_factory=one_deterministic_solver,
            config=YinYangConfig(fusion=FusionConfig(), seed=6),
        )
        task = dict(
            oracle="sat",
            seed_texts=texts,
            logics=logics,
            iterations=5,
            shard=0,
            of=1,
            seed=6,
            cell=("z3-like", "QF_S", "sat"),
            strategy="fusion",
            lease_id=1,
            attempt=0,
            progress_path=str(tmp_path / "j.jsonl.lease-cell-0of1.jsonl"),
        )
        task.update(task_overrides)
        return spec, ShardTask(**task)

    def test_leased_run_matches_bare_run(self, tmp_path):
        spec, task = self._spec_and_task(tmp_path)
        _init_worker(spec)
        leased = _run_shard(task)
        from dataclasses import replace

        bare = _run_shard(replace(task, lease_id=None, progress_path=None))
        assert leased["report"] == bare["report"]

    def test_truncated_progress_line_reruns_iteration_same_bytes(self, tmp_path):
        spec, task = self._spec_and_task(tmp_path)
        _init_worker(spec)
        full = _run_shard(task)
        progress_path = tmp_path / "j.jsonl.lease-cell-0of1.jsonl"
        lines = progress_path.read_text(encoding="utf-8").splitlines(keepends=True)
        assert len(lines) == 1 + task.iterations  # meta + one line per iteration
        # A worker died mid-append: the final line is half-written.
        progress_path.write_text(
            "".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2], encoding="utf-8"
        )
        from dataclasses import replace

        resumed = _run_shard(replace(task, attempt=1))
        assert resumed["report"] == full["report"]
        # The torn iteration was re-executed and re-checkpointed.
        healed = progress_path.read_text(encoding="utf-8").splitlines()
        recorded = [json.loads(line)["i"] for line in healed[1:]]
        assert sorted(recorded) == list(range(task.iterations))

    def test_resume_replays_checkpoints_without_rerunning(self, tmp_path):
        spec, task = self._spec_and_task(tmp_path)
        _init_worker(spec)
        full = _run_shard(task)
        progress_path = tmp_path / "j.jsonl.lease-cell-0of1.jsonl"
        before = progress_path.read_text(encoding="utf-8")
        from dataclasses import replace

        resumed = _run_shard(replace(task, attempt=1))
        assert resumed["report"] == full["report"]
        # Nothing was re-executed: the log gained no new lines.
        assert progress_path.read_text(encoding="utf-8") == before

    def test_bisected_child_lease_runs_exact_indices(self, tmp_path):
        spec, task = self._spec_and_task(tmp_path, indices=(1, 3))
        _init_worker(spec)
        payload = _run_shard(task)
        from repro.robustness.journal import deserialize_report

        report = deserialize_report(payload["report"])
        assert report.iterations == 2


@pytest.mark.chaos
class TestContainment:
    def test_oom_alloc_is_contained_and_retried(self, corpora, tmp_path):
        # RLIMIT_AS turns the planned 2 GiB allocation into an in-worker
        # MemoryError; the supervisor classifies it "oom", retries the
        # lease (the fault is attempt-gated), and the campaign's output
        # is unaffected. The worker never dies, so no respawns.
        result = run_campaign(
            corpora,
            mode="process",
            workers=1,
            supervise=SupervisorPolicy(max_worker_restarts=10, **NO_BACKOFF),
            containment=ContainmentPolicy(mem_limit_mb=1024),
            chaos_process=ProcessChaos(oom_at=(0,), oom_bytes=1 << 31),
            **dict(CAMPAIGN, solver_factory=one_deterministic_solver),
        )
        assert result.supervision["retries"] == 1
        assert result.supervision["restarts"] == 0
        assert result.poisoned == []
        [report] = list(result.reports.values())
        assert report.iterations == CAMPAIGN["iterations_per_cell"]
