"""End-to-end tests of the reference solver across logics."""

import pytest

from repro.semantics.evaluator import evaluate_script
from repro.smtlib.parser import parse_script
from repro.solver.result import SolverResult
from repro.solver.solver import ReferenceSolver, SolverConfig


def verdict(solver, text):
    return str(solver.check_result(text))


class TestQFLIA:
    CASES = [
        ("(declare-fun x () Int)(assert (> x 0))(assert (> x 1))(check-sat)", "sat"),
        ("(declare-fun x () Int)(assert (> x 0))(assert (< x 0))(check-sat)", "unsat"),
        ("(declare-fun x () Int)(assert (= (* 2 x) 7))(check-sat)", "unsat"),
        ("(declare-fun x () Int)(declare-fun y () Int)(assert (= (+ x y) 3))(assert (= (- x y) 1))(check-sat)", "sat"),
        ("(declare-fun x () Int)(assert (and (< 0 x) (< x 1)))(check-sat)", "unsat"),
        ("(declare-fun x () Int)(assert (or (= x 1) (= x 2)))(assert (distinct x 1))(check-sat)", "sat"),
    ]

    @pytest.mark.parametrize("source,expected", CASES)
    def test_case(self, solver, source, expected):
        assert verdict(solver, source) == expected


class TestQFLRA:
    CASES = [
        ("(declare-fun r () Real)(assert (and (< 0.0 r) (< r 1.0)))(check-sat)", "sat"),
        ("(declare-fun r () Real)(assert (not (= (+ (+ 1.0 r) 6.0) (+ 7.0 r))))(check-sat)", "unsat"),
        ("(declare-fun a () Real)(declare-fun c () Real)(assert (<= (/ a 4.0) (* 5.0 a)))(assert (= a 1.0))(check-sat)", "sat"),
    ]

    @pytest.mark.parametrize("source,expected", CASES)
    def test_case(self, solver, source, expected):
        assert verdict(solver, source) == expected


class TestQFNRA:
    CASES = [
        ("(declare-fun x () Real)(assert (= (* x x) 4.0))(assert (< x 0.0))(check-sat)", "sat"),
        ("(declare-fun x () Real)(assert (< (* x x) 0.0))(check-sat)", "unsat"),
        ("(declare-fun x () Real)(assert (= (* x x) (- 1.0)))(check-sat)", "unsat"),
        ("(declare-fun x () Real)(declare-fun y () Real)(assert (= (* x y) 1.0))(assert (= x 2.0))(check-sat)", "sat"),
    ]

    @pytest.mark.parametrize("source,expected", CASES)
    def test_case(self, solver, source, expected):
        assert verdict(solver, source) == expected


class TestDivisionSemantics:
    def test_division_by_variable_guarded(self, solver):
        # Satisfiable: pick y != 0.
        text = "(declare-fun y () Real)(assert (= (/ 6.0 y) 3.0))(check-sat)"
        assert verdict(solver, text) == "sat"

    def test_division_at_zero_is_free(self, solver):
        # (/ 1 0) can take any value, so (= (/ 1.0 0.0) 5.0) is sat.
        text = "(assert (= (/ 1.0 0.0) 5.0))(check-sat)"
        assert verdict(solver, text) == "sat"

    def test_division_at_zero_is_consistent(self, solver):
        # But it is a function: same application, same value.
        text = "(assert (not (= (/ 1.0 0.0) (/ 1.0 0.0))))(check-sat)"
        assert verdict(solver, text) == "unsat"

    def test_functional_consistency_across_terms(self, solver):
        # x = y implies (/ 1 x) = (/ 1 y), even at zero (Ackermann).
        text = (
            "(declare-fun x () Real)(declare-fun y () Real)"
            "(assert (= x y))"
            "(assert (not (= (/ 1.0 x) (/ 1.0 y))))(check-sat)"
        )
        assert verdict(solver, text) == "unsat"

    def test_euclidean_div_mod(self, solver):
        text = (
            "(declare-fun x () Int)"
            "(assert (= (div x 2) (- 4)))(assert (= (mod x 2) 1))(check-sat)"
        )
        outcome = ReferenceSolver().check(text)
        assert str(outcome.result) == "sat"
        assert outcome.model["x"] == -7

    def test_mod_by_zero_free_but_consistent(self, solver):
        text = "(declare-fun x () Int)(assert (= (mod x 0) 17))(check-sat)"
        assert verdict(solver, text) == "sat"


class TestStringsEndToEnd:
    CASES = [
        ('(declare-fun s () String)(assert (= (str.++ s "b") "ab"))(check-sat)', "sat"),
        ('(declare-fun s () String)(assert (= (str.len s) 2))(assert (str.prefixof "abc" s))(check-sat)', "unsat"),
        ('(declare-fun s () String)(assert (str.in.re s (re.* (str.to.re "ab"))))(assert (= (str.len s) 3))(check-sat)', "unsat"),
        ('(declare-fun s () String)(assert (= (str.to.int s) (- 1)))(assert (= (str.len s) 1))(check-sat)', "sat"),
        ('(declare-fun s () String)(declare-fun t () String)(assert (= (str.++ s t) (str.++ t s)))(assert (= (str.len s) 1))(assert (= (str.len t) 1))(assert (not (= s t)))(check-sat)', "unsat"),
    ]

    @pytest.mark.parametrize("source,expected", CASES)
    def test_case(self, solver, source, expected):
        assert verdict(solver, source) == expected


class TestBooleanStructure:
    def test_pure_boolean(self, solver):
        text = (
            "(declare-fun a () Bool)(declare-fun b () Bool)"
            "(assert (or a b))(assert (not a))(check-sat)"
        )
        outcome = ReferenceSolver().check(text)
        assert str(outcome.result) == "sat"
        assert outcome.model["b"] is True

    def test_xor_contradiction(self, solver):
        text = "(declare-fun a () Bool)(assert (xor a a))(check-sat)"
        assert verdict(solver, text) == "unsat"

    def test_paper_phi1(self, solver):
        text = (
            "(declare-fun x () Int)(declare-fun w () Bool)"
            "(assert (= x (- 1)))(assert (= w (= x (- 1))))(assert w)(check-sat)"
        )
        assert verdict(solver, text) == "sat"

    def test_paper_phi2(self, solver):
        text = (
            "(declare-fun y () Int)(declare-fun v () Bool)"
            "(assert (= v (not (= y (- 1)))))"
            "(assert (ite v false (= y (- 1))))(check-sat)"
        )
        assert verdict(solver, text) == "sat"

    def test_assert_true_only(self, solver):
        assert verdict(solver, "(assert true)(check-sat)") == "sat"

    def test_assert_false(self, solver):
        assert verdict(solver, "(assert false)(check-sat)") == "unsat"


class TestQuantifiedLogics:
    def test_skolemizable_exists(self, solver):
        text = "(declare-fun x () Int)(assert (exists ((h Int)) (> h x)))(check-sat)"
        assert verdict(solver, text) == "sat"

    def test_bounded_forall_sat(self, solver):
        text = (
            "(declare-fun x () Int)"
            "(assert (forall ((h Int)) (=> (and (>= h 0) (<= h 3)) (>= (+ x h) x))))"
            "(check-sat)"
        )
        assert verdict(solver, text) == "sat"

    def test_bounded_forall_unsat(self, solver):
        text = (
            "(declare-fun x () Int)(assert (= x 1))"
            "(assert (forall ((h Int)) (=> (and (>= h 0) (<= h 2)) (> x h))))"
            "(check-sat)"
        )
        assert verdict(solver, text) == "unsat"

    def test_refutation_by_instantiation(self, solver):
        # forall h. h > 100 is refuted by instantiating h := 0.
        text = "(assert (forall ((h Int)) (> h 100)))(check-sat)"
        assert verdict(solver, text) == "unsat"

    def test_honest_unknown_for_hard_quantifier(self, solver):
        text = "(assert (forall ((h Int)) (>= (* h h) 0)))(check-sat)"
        assert verdict(solver, text) == "unknown"


class TestModels:
    @pytest.mark.parametrize(
        "source",
        [
            "(declare-fun x () Int)(assert (> x 3))(assert (< x 9))(check-sat)",
            '(declare-fun s () String)(assert (str.contains s "b"))(check-sat)',
            "(declare-fun r () Real)(declare-fun q () Real)(assert (= (* r q) 1.0))(check-sat)",
            "(declare-fun a () Bool)(declare-fun x () Int)(assert (= a (> x 0)))(assert a)(check-sat)",
        ],
    )
    def test_models_verify(self, source):
        solver = ReferenceSolver()
        outcome = solver.check(source)
        assert str(outcome.result) == "sat"
        assert evaluate_script(parse_script(source), outcome.model)

    def test_model_none_when_unsat(self):
        solver = ReferenceSolver()
        assert solver.model("(assert false)(check-sat)") is None


class TestConfigs:
    def test_fast_config_still_correct_on_easy(self):
        solver = ReferenceSolver(SolverConfig.fast())
        assert str(solver.check_result("(declare-fun x () Int)(assert (> x 0))(check-sat)")) == "sat"

    def test_check_rejects_non_script(self):
        with pytest.raises(TypeError):
            ReferenceSolver().check_script("(check-sat)")

    def test_unknown_carries_reason(self):
        solver = ReferenceSolver(SolverConfig(max_rounds=1))
        outcome = solver.check(
            "(declare-fun x () Real)(declare-fun y () Real)"
            "(assert (= (* x y) 1.0))(assert (= (* x x) y))(assert (< x 0.0))(check-sat)"
        )
        if str(outcome.result) == "unknown":
            assert outcome.reason
