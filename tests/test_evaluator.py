"""Unit tests for term evaluation (SMT-LIB semantics edge cases)."""

from fractions import Fraction

import pytest

from repro.errors import EvaluationError
from repro.semantics.evaluator import evaluate, evaluate_script
from repro.semantics.model import Model
from repro.smtlib import builder as b
from repro.smtlib.parser import parse_script, parse_term
from repro.smtlib.ast import Var
from repro.smtlib.sorts import INT, REAL, STRING


def ev(text, variables=(), **assignment):
    return evaluate(parse_term(text, variables), Model(assignment))


X = Var("x", INT)
R = Var("r", REAL)
S = Var("s", STRING)


class TestCore:
    def test_and_or(self):
        assert ev("(and true true)") is True
        assert ev("(or false true)") is True
        assert ev("(and true false)") is False

    def test_implies_chain(self):
        assert ev("(=> true true)") is True
        assert ev("(=> false false)") is True
        assert ev("(=> true false)") is False

    def test_xor(self):
        assert ev("(xor true false true)") is False
        assert ev("(xor true false)") is True

    def test_ite(self):
        assert ev("(ite true 1 2)") == 1
        assert ev("(ite false 1 2)") == 2

    def test_eq_distinct(self):
        assert ev("(= 1 1 1)") is True
        assert ev("(distinct 1 2 3)") is True
        assert ev("(distinct 1 2 1)") is False

    def test_short_circuit_and(self):
        # (and false <undefined>) must not raise.
        term = parse_term("(and false (= (div x 0) 1))", [X])
        model = Model({"x": 1})
        assert evaluate(term, model) is False


class TestArithmetic:
    def test_sum(self):
        assert ev("(+ 1 2 3)") == 6

    def test_minus_variants(self):
        assert ev("(- 5)") == -5
        assert ev("(- 10 3 2)") == 5

    def test_real_division(self):
        assert ev("(/ 1.0 4.0)") == Fraction(1, 4)

    def test_chained_division(self):
        assert ev("(/ 8.0 2.0 2.0)") == Fraction(2)

    @pytest.mark.parametrize(
        "a,b_,q,r",
        [
            (7, 2, 3, 1),
            (-7, 2, -4, 1),
            (7, -2, -3, 1),
            (-7, -2, 4, 1),
            (6, 3, 2, 0),
        ],
    )
    def test_euclidean_div_mod(self, a, b_, q, r):
        assert ev(f"(div {_lit(a)} {_lit(b_)})") == q
        assert ev(f"(mod {_lit(a)} {_lit(b_)})") == r

    def test_abs(self):
        assert ev("(abs (- 4))") == 4

    def test_comparisons_chained(self):
        assert ev("(< 1 2 3)") is True
        assert ev("(< 1 3 2)") is False
        assert ev("(<= 1 1 2)") is True

    def test_to_real_to_int(self):
        assert ev("(to_real 3)") == Fraction(3)
        assert ev("(to_int 2.5)") == 2
        assert ev("(to_int (- 2.5))") == -3  # floor

    def test_is_int(self):
        assert ev("(is_int 2.0)") is True
        assert ev("(is_int 2.5)") is False


class TestDivisionAtZero:
    def test_default_is_zero(self):
        assert ev("(/ 5.0 0.0)") == 0

    def test_consistent_within_model(self):
        term = parse_term("(= (/ r 0.0) (/ r 0.0))", [R])
        assert evaluate(term, Model({"r": Fraction(3)})) is True

    def test_model_choice_respected(self):
        model = Model({"r": Fraction(3)})
        model.set_div_at_zero("/", Fraction(3), Fraction(9))
        assert evaluate(parse_term("(/ r 0.0)", [R]), model) == Fraction(9)

    def test_div_and_mod_choices_independent(self):
        model = Model({"x": 5})
        model.set_div_at_zero("div", 5, 7)
        model.set_div_at_zero("mod", 5, 2)
        assert evaluate(parse_term("(div x 0)", [X]), model) == 7
        assert evaluate(parse_term("(mod x 0)", [X]), model) == 2


class TestStrings:
    def test_concat_len(self):
        assert ev('(str.++ "ab" "cd")') == "abcd"
        assert ev('(str.len "abc")') == 3

    def test_at_in_and_out_of_range(self):
        assert ev('(str.at "abc" 1)') == "b"
        assert ev('(str.at "abc" 5)') == ""
        assert ev('(str.at "abc" (- 1))') == ""

    def test_substr_cases(self):
        assert ev('(str.substr "hello" 1 3)') == "ell"
        assert ev('(str.substr "hello" 4 10)') == "o"
        assert ev('(str.substr "hello" 9 1)') == ""
        assert ev('(str.substr "hello" 0 0)') == ""

    def test_indexof(self):
        assert ev('(str.indexof "abcabc" "bc" 0)') == 1
        assert ev('(str.indexof "abcabc" "bc" 2)') == 4
        assert ev('(str.indexof "abc" "z" 0)') == -1
        assert ev('(str.indexof "abc" "a" 9)') == -1
        assert ev('(str.indexof "abc" "" 2)') == 2

    def test_replace_first_only(self):
        assert ev('(str.replace "aaa" "a" "b")') == "baa"

    def test_replace_missing(self):
        assert ev('(str.replace "abc" "z" "y")') == "abc"

    def test_replace_empty_pattern_prepends(self):
        assert ev('(str.replace "abc" "" "X")') == "Xabc"

    def test_prefixof_suffixof(self):
        assert ev('(str.prefixof "ab" "abc")') is True
        assert ev('(str.prefixof "bc" "abc")') is False
        assert ev('(str.suffixof "bc" "abc")') is True

    def test_contains_argument_order(self):
        # (str.contains s t): t occurs in s.
        assert ev('(str.contains "abc" "b")') is True
        assert ev('(str.contains "b" "abc")') is False

    def test_to_int_digits(self):
        assert ev('(str.to.int "042")') == 42

    def test_to_int_empty_is_minus_one(self):
        assert ev('(str.to.int "")') == -1

    def test_to_int_nondigits(self):
        assert ev('(str.to.int "a1")') == -1
        assert ev('(str.to.int "-5")') == -1

    def test_from_int(self):
        assert ev("(str.from.int 42)") == "42"
        assert ev("(str.from.int (- 3))") == ""

    def test_in_re(self):
        assert ev('(str.in.re "aaaa" (re.* (str.to.re "aa")))') is True
        assert ev('(str.in.re "aaa" (re.* (str.to.re "aa")))') is False


class TestQuantifiers:
    def test_exists_with_witness(self):
        assert ev("(exists ((h Int)) (= h 3))") is True

    def test_forall_with_counterexample(self):
        assert ev("(forall ((h Int)) (> h 0))") is False

    def test_undecidable_forall_raises(self):
        with pytest.raises(EvaluationError):
            ev("(forall ((h Int)) (= h h))")

    def test_large_witness_found_via_adaptive_domain(self):
        # Constants in the body extend the enumeration domain.
        assert ev("(exists ((h Int)) (> h 1000))") is True

    def test_undecidable_exists_raises(self):
        with pytest.raises(EvaluationError):
            ev("(exists ((h Int)) (< (* h h) 0))")

    def test_nested_quantifiers(self):
        assert ev("(exists ((a Int) (bq Int)) (and (= a 1) (= bq 2)))") is True


class TestScriptEvaluation:
    def test_missing_variable_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(parse_term("(> x 0)", [X]), Model())

    def test_evaluate_script_completes_model(self):
        script = parse_script("(declare-fun x () Int)(assert (>= x 0))(check-sat)")
        assert evaluate_script(script, Model()) is True  # default 0

    def test_evaluate_script_conjunction(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 0))(assert (< x 5))(check-sat)"
        )
        assert evaluate_script(script, Model({"x": 3})) is True
        assert evaluate_script(script, Model({"x": 7})) is False


def _lit(n):
    return str(n) if n >= 0 else f"(- {-n})"
