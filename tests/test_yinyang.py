"""Integration tests for the YinYang loop (Algorithm 1) and ConcatFuzz."""

import pytest

from repro.core.concatfuzz import concat_scripts
from repro.core.config import FusionConfig, YinYangConfig
from repro.core.yinyang import YinYang
from repro.smtlib.parser import parse_script
from repro.solver.result import CheckOutcome, SolverCrash, SolverResult

SAT_SEEDS = [
    parse_script("(declare-fun x () Int)(assert (> x 0))(check-sat)"),
    parse_script("(declare-fun y () Int)(assert (< y 9))(check-sat)"),
    parse_script("(declare-fun w () Int)(assert (= w 4))(check-sat)"),
]
UNSAT_SEEDS = [
    parse_script("(declare-fun x () Int)(assert (> x 0))(assert (< x 0))(check-sat)"),
    parse_script("(declare-fun y () Int)(assert (distinct y y))(check-sat)"),
]


class _StubSolver:
    """A scriptable solver for exercising Algorithm 1's branches."""

    name = "stub"

    def __init__(self, behavior):
        self.behavior = behavior
        self.calls = 0

    def check_script(self, script):
        self.calls += 1
        mode = self.behavior
        if mode == "crash":
            raise SolverCrash("boom", kind="segfault")
        if mode == "always-sat":
            return CheckOutcome(SolverResult.SAT)
        if mode == "always-unsat":
            return CheckOutcome(SolverResult.UNSAT)
        if mode == "error-unknown":
            return CheckOutcome(SolverResult.UNKNOWN, reason="error: internal")
        return CheckOutcome(SolverResult.UNKNOWN)


class TestAlgorithmOne:
    def test_consistent_solver_reports_nothing(self):
        tool = YinYang(_StubSolver("always-sat"), YinYangConfig(seed=1))
        report = tool.test("sat", SAT_SEEDS, iterations=10)
        assert report.bugs == []
        assert report.fused == 10

    def test_wrong_answer_recorded_as_soundness(self):
        tool = YinYang(_StubSolver("always-unsat"), YinYangConfig(seed=1))
        report = tool.test("sat", SAT_SEEDS, iterations=8)
        assert len(report.incorrects) == 8
        assert all(b.kind == "soundness" for b in report.bugs)
        assert all(b.oracle == "sat" and b.reported == "unsat" for b in report.bugs)

    def test_crash_recorded(self):
        tool = YinYang(_StubSolver("crash"), YinYangConfig(seed=1))
        report = tool.test("unsat", UNSAT_SEEDS, iterations=5)
        assert len(report.crashes) == 5

    def test_plain_unknown_ignored_by_default(self):
        tool = YinYang(_StubSolver("unknown"), YinYangConfig(seed=1))
        report = tool.test("sat", SAT_SEEDS, iterations=6)
        assert report.bugs == []
        assert report.unknowns == 6

    def test_unknown_as_crash_policy(self):
        config = YinYangConfig(seed=1, unknown_is_crash=True)
        tool = YinYang(_StubSolver("unknown"), config)
        report = tool.test("sat", SAT_SEEDS, iterations=4)
        assert len(report.bugs) == 4
        assert all(b.kind == "unknown" for b in report.bugs)

    def test_internal_error_unknown_always_recorded(self):
        tool = YinYang(_StubSolver("error-unknown"), YinYangConfig(seed=1))
        report = tool.test("sat", SAT_SEEDS, iterations=3)
        assert len(report.bugs) == 3
        assert all(b.note.startswith("error:") for b in report.bugs)

    def test_multiple_solvers_checked_per_formula(self):
        a, c = _StubSolver("always-sat"), _StubSolver("always-sat")
        tool = YinYang([a, c], YinYangConfig(seed=2))
        tool.test("sat", SAT_SEEDS, iterations=7)
        assert a.calls == c.calls == 7

    def test_reports_merge_across_threads(self):
        tool = YinYang(_StubSolver("always-unsat"), YinYangConfig(seed=3))
        report = tool.test("sat", SAT_SEEDS, iterations=12, threads=3)
        assert report.iterations == 12
        assert len(report.incorrects) == 12

    @pytest.mark.parametrize(
        "iterations,threads",
        [(100, 3), (7, 2), (5, 8), (1, 4), (13, 13)],
    )
    def test_thread_mode_never_drops_iterations(self, iterations, threads):
        # Regression: iterations // threads silently lost the remainder
        # (100 iterations on 3 threads used to run only 99).
        solver = _StubSolver("always-sat")
        tool = YinYang(solver, YinYangConfig(seed=3))
        report = tool.test("sat", SAT_SEEDS, iterations=iterations, threads=threads)
        assert report.iterations == iterations
        assert report.fused == iterations

    def test_throughput_positive(self):
        tool = YinYang(_StubSolver("always-sat"), YinYangConfig(seed=1))
        report = tool.test("sat", SAT_SEEDS, iterations=5)
        assert report.throughput > 0

    def test_requires_seeds(self):
        tool = YinYang(_StubSolver("always-sat"))
        with pytest.raises(ValueError):
            tool.test("sat", [], iterations=1)

    def test_labeled_seeds_accepted(self):
        from repro.core.oracle import LabeledSeed

        seeds = [LabeledSeed(s, "sat", "QF_LIA") for s in SAT_SEEDS]
        tool = YinYang(_StubSolver("always-unsat"), YinYangConfig(seed=1))
        report = tool.test("sat", seeds, iterations=3)
        assert all(b.logic == "QF_LIA" for b in report.bugs)

    def test_fuse_once_helper(self):
        tool = YinYang(_StubSolver("always-sat"))
        result = tool.fuse_once("sat", SAT_SEEDS[0], SAT_SEEDS[1], seed=4)
        assert result.oracle == "sat"
        assert result.triplets


class TestConcatFuzz:
    def test_sat_concat_is_conjunction(self, solver):
        script = concat_scripts("sat", SAT_SEEDS[0], SAT_SEEDS[1])
        assert len(script.asserts) == 2
        assert str(solver.check_script(script).result) == "sat"

    def test_unsat_concat_is_disjunction(self, solver):
        script = concat_scripts("unsat", UNSAT_SEEDS[0], UNSAT_SEEDS[1])
        assert len(script.asserts) == 1
        assert str(solver.check_script(script).result) == "unsat"

    def test_concat_renames_collisions(self, solver):
        clone = parse_script("(declare-fun x () Int)(assert (< x 5))(check-sat)")
        script = concat_scripts("sat", SAT_SEEDS[0], clone)
        names = [v.name for v in script.free_variables()]
        assert len(names) == len(set(names)) == 2

    def test_concat_introduces_no_fresh_variables(self):
        script = concat_scripts("sat", SAT_SEEDS[0], SAT_SEEDS[1])
        assert {v.name for v in script.free_variables()} == {"x", "y"}

    def test_bad_oracle(self):
        from repro.errors import FusionError

        with pytest.raises(FusionError):
            concat_scripts("nope", SAT_SEEDS[0], SAT_SEEDS[1])


class TestReportObject:
    def test_summary_format(self):
        tool = YinYang(_StubSolver("always-unsat"), YinYangConfig(seed=1))
        report = tool.test("sat", SAT_SEEDS, iterations=2)
        text = report.summary()
        assert "2 iterations" in text and "soundness" in text

    def test_bug_record_str(self):
        tool = YinYang(_StubSolver("always-unsat"), YinYangConfig(seed=1))
        report = tool.test("sat", SAT_SEEDS, iterations=1)
        assert "expected sat, got unsat" in str(report.bugs[0])


class TestMixedFusionMode:
    def test_mixed_sat_mode(self, solver):
        tool = YinYang(solver, YinYangConfig(seed=5))
        report = tool.test_mixed("sat", SAT_SEEDS, UNSAT_SEEDS, iterations=5)
        assert report.fused == 5
        assert report.incorrects == []  # the reference solver is sound

    def test_mixed_unsat_mode(self, solver):
        tool = YinYang(solver, YinYangConfig(seed=5))
        report = tool.test_mixed("unsat", SAT_SEEDS, UNSAT_SEEDS, iterations=5)
        assert report.fused == 5
        assert report.incorrects == []

    def test_mixed_detects_wrong_answers(self):
        tool = YinYang(_StubSolver("always-unsat"), YinYangConfig(seed=5))
        report = tool.test_mixed("sat", SAT_SEEDS, UNSAT_SEEDS, iterations=4)
        assert len(report.incorrects) == 4

    def test_mixed_requires_both_labels(self):
        tool = YinYang(_StubSolver("always-sat"))
        import pytest as _pytest

        with _pytest.raises(ValueError):
            tool.test_mixed("sat", SAT_SEEDS, [], iterations=1)
