"""Tests for the RQ3/RQ4 coverage-study harness."""

import pytest

from repro.campaign.coverage_study import (
    _fused_scripts,
    coverage_cell,
    coverage_table,
    figure12_averages,
)
from repro.core.oracle import SeedCorpus
from repro.seeds import build_corpus
from repro.solver.solver import ReferenceSolver, SolverConfig


@pytest.fixture(scope="module")
def fast_solver():
    return ReferenceSolver(SolverConfig.fast())


@pytest.fixture(scope="module")
def corpus():
    return build_corpus("QF_LIA", scale=0.002, seed=19)


class TestFusedScripts:
    def test_yinyang_mode_produces_fusions(self, corpus):
        scripts = [s.script for s in corpus.sat_seeds]
        fused = _fused_scripts("sat", scripts, budget=5, seed=1, mode="yinyang")
        assert len(fused) == 5
        # Fusion introduces fresh z variables.
        assert any(
            v.name.startswith("z!") for f in fused for v in f.free_variables()
        )

    def test_concat_mode_adds_no_variables(self, corpus):
        scripts = [s.script for s in corpus.sat_seeds]
        concatenated = _fused_scripts("sat", scripts, budget=5, seed=1, mode="concat")
        for script in concatenated:
            assert not any(
                v.name.startswith("z!") for v in script.free_variables()
            )


class TestCoverageCell:
    def test_yinyang_dominates(self, fast_solver, corpus):
        cell = coverage_cell(fast_solver, corpus, "sat", fuzz_budget=6, seed=3)
        assert cell.yinyang.dominates(cell.benchmark)

    def test_empty_oracle_side(self, fast_solver):
        empty = SeedCorpus("empty")
        cell = coverage_cell(fast_solver, empty, "sat", fuzz_budget=3)
        assert cell.benchmark.line == 0.0

    def test_with_concatfuzz(self, fast_solver, corpus):
        cell = coverage_cell(
            fast_solver, corpus, "sat", fuzz_budget=6, seed=3, with_concatfuzz=True
        )
        assert cell.concatfuzz is not None
        assert cell.yinyang.dominates(cell.concatfuzz)

    def test_improvement_keys(self, fast_solver, corpus):
        cell = coverage_cell(fast_solver, corpus, "sat", fuzz_budget=4, seed=3)
        assert set(cell.improvement()) == {"line", "function", "branch"}


class TestTableAndAverages:
    def test_table_covers_present_oracles(self, fast_solver, corpus):
        cells = coverage_table(
            fast_solver, {"QF_LIA": corpus}, ["QF_LIA"], fuzz_budget=4, seed=2
        )
        assert {c.oracle for c in cells} == {"sat", "unsat"}

    def test_figure12_averages_without_concat(self, fast_solver, corpus):
        cells = coverage_table(
            fast_solver, {"QF_LIA": corpus}, ["QF_LIA"], fuzz_budget=4, seed=2
        )
        bench, concat, yinyang = figure12_averages(cells)
        assert concat.line == 0.0  # no concat cells measured
        assert yinyang.dominates(bench)
