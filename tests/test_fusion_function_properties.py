"""Property tests for the Figure 6 fusion/inversion functions.

Two families of seeded properties:

- **Semantic**: for every registered scheme, under any model where
  ``z = f(x, y)`` the inversion terms evaluate back to ``x`` and ``y``
  and all three fusion constraints hold (Definitions 1/2 — this is
  what makes fusion satisfiability-preserving, the tool's oracle).
- **Syntactic**: scripts built from fusion constraints, like fully
  fused scripts, survive print -> parse (which sort-checks every term)
  -> re-print as a fixpoint, over Int, Real and String fusion.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import FusionConfig
from repro.core.fusion_functions import (
    all_scheme_names,
    pick_instance,
    schemes_for_sort,
)
from repro.semantics.evaluator import evaluate
from repro.semantics.model import Model
from repro.smtlib.ast import Assert, CheckSat, DeclareFun, Script, Var
from repro.smtlib.parser import parse_script
from repro.smtlib.printer import print_script
from repro.smtlib.bitvec import GENERATOR_WIDTHS
from repro.smtlib.sorts import INT, REAL, STRING, bitvec_sort, bitvec_width, is_bitvec

_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_SORTS = {"Int": INT, "Real": REAL, "String": STRING}
_SORTS.update({f"BV{w}": bitvec_sort(w) for w in GENERATOR_WIDTHS})


def _scheme(name):
    for sort in _SORTS.values():
        for scheme in schemes_for_sort(sort):
            if scheme.name == name:
                return scheme
    raise AssertionError(f"unregistered scheme {name!r}")


def _draw_value(sort, rng):
    """A random value of ``sort``.

    Int/Real draws are nonzero: the multiplication schemes invert by
    dividing through the other variable, which the paper's Figure 6
    table (and our oracle) only guarantees away from zero.
    """
    if sort == INT:
        value = 0
        while value == 0:
            value = rng.randint(-50, 50)
        return value
    if sort == REAL:
        numerator = 0
        while numerator == 0:
            numerator = rng.randint(-50, 50)
        return Fraction(numerator, rng.randint(1, 9))
    if is_bitvec(sort):
        # BV schemes invert exactly everywhere (addition is a group
        # operation mod 2^w, xor is self-inverse): zero included.
        return rng.randint(0, (1 << bitvec_width(sort)) - 1)
    return "".join(rng.choice("abcdef") for _ in range(rng.randint(0, 5)))


def test_figure6_table_is_fully_registered():
    names = set(all_scheme_names())
    for prefix in ("int", "real"):
        for family in ("addition", "addition-constant", "multiplication", "affine"):
            assert f"{prefix}-{family}" in names
    assert {
        "string-concat-substr",
        "string-concat-replace",
        "string-concat-infix",
    } <= names


@pytest.mark.parametrize("scheme_name", all_scheme_names())
@_SETTINGS
@given(seed=st.integers(0, 10**6))
def test_inversion_identities_hold_under_fusion(scheme_name, seed):
    rng = random.Random(seed)
    scheme = _scheme(scheme_name)
    instance = scheme.instantiate(rng, FusionConfig())
    x = Var("x", scheme.sort)
    y = Var("y", scheme.sort)
    z = Var("z", scheme.sort)
    vx = _draw_value(scheme.sort, rng)
    vy = _draw_value(scheme.sort, rng)
    vz = evaluate(instance.fusion(x, y), Model({"x": vx, "y": vy}))
    model = Model({"x": vx, "y": vy, "z": vz})
    assert evaluate(instance.invert_x(x, y, z), model) == vx
    assert evaluate(instance.invert_y(x, y, z), model) == vy
    for constraint in instance.constraints(x, y, z):
        assert evaluate(constraint, model) is True


@pytest.mark.parametrize("sort_name", sorted(_SORTS))
@_SETTINGS
@given(seed=st.integers(0, 10**6))
def test_constraint_scripts_roundtrip(sort_name, seed):
    sort = _SORTS[sort_name]
    rng = random.Random(seed)
    instance = pick_instance(sort, rng, FusionConfig())
    x, y, z = (Var(name, sort) for name in "xyz")
    script = Script(
        [DeclareFun(v.name, (), sort) for v in (x, y, z)]
        + [Assert(term) for term in instance.constraints(x, y, z)]
        + [CheckSat()]
    )
    text = print_script(script)
    reparsed = parse_script(text)  # the parser sort-checks as it builds
    assert reparsed.asserts == script.asserts
    assert print_script(reparsed) == text
