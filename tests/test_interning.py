"""Hash-consed term layer: interning, cached metadata, deep-formula safety.

Covers the interning invariants the rest of the stack now leans on:

- structurally equal terms built inside one scope are the *same* object,
- ``parse(print(t))`` returns the identical interned object,
- interning is invisible to ``==``, printing, and round-trips,
- ``fresh_scope()`` swaps the intern table (bounded memory, no leaks),
- the recursion-prone hot paths (count/substitute/print/evaluate)
  handle ~10k-deep formulas without touching the recursion limit, and
- interned campaigns stay byte-for-byte deterministic across worker
  counts.
"""

import sys

import pytest

from repro.campaign.runner import deterministic_solvers, run_campaign
from repro.core.substitution import (
    count_free_occurrences,
    random_occurrence_substitution,
    substitute_occurrences,
)
from repro.seeds import build_corpus
from repro.semantics.evaluator import evaluate
from repro.semantics.model import Model
from repro.smtlib import builder as b
from repro.smtlib.ast import (
    TRUE,
    fresh_scope,
    free_names,
    free_vars,
    intern_stats,
    mk_app,
    mk_const,
    mk_var,
    substitute,
    term_depth,
    term_size,
)
from repro.smtlib.parser import parse_script, parse_term
from repro.smtlib.printer import print_script, print_term
from repro.smtlib.sorts import BOOL, INT, REAL, STRING

X = b.int_var("x")


def _sample_terms():
    x, y = b.int_var("x"), b.int_var("y")
    s = b.string_var("s")
    return [
        b.and_(b.gt(x, 0), b.lt(x, 10)),
        b.or_(b.eq(b.add(x, y, 1), b.mul(2, y)), b.not_(b.eq(x, y))),
        b.eq(b.concat(s, "a"), b.replace(s, "b", "c")),
        b.forall([x], b.implies(b.and_(b.le(0, x), b.le(x, 3)), b.ge(b.add(x, 1), 1))),
        b.eq(b.lift(True), b.gt(b.sub(x), b.neg(y))),
    ]


class TestInterning:
    def test_structural_equality_is_identity(self):
        for t in _sample_terms():
            again = parse_term(print_term(t), free_vars(t))
            assert again == t
            assert again is t, print_term(t)

    def test_parse_print_identity_in_one_scope(self):
        with fresh_scope():
            script = parse_script(
                "(declare-const x Int)\n"
                "(declare-const y Int)\n"
                "(assert (> (+ x y 1) 0))\n"
                "(assert (> (+ x y 1) 0))\n"
                "(check-sat)\n"
            )
            assert script.asserts[0] is script.asserts[1]
            reparsed = parse_script(print_script(script))
            assert reparsed.asserts[0] is script.asserts[0]

    def test_real_print_roundtrip_reaches_fixpoint_identity(self):
        # Fraction(3, 7) prints as a division term, which parses to an
        # App — identity cannot hold on the first round trip, but the
        # second parse must return the identical interned object.
        t = b.eq(b.real_var("r"), b.lift(__import__("fractions").Fraction(3, 7)))
        t2 = parse_term(print_term(t), free_vars(t))
        t3 = parse_term(print_term(t2), free_vars(t2))
        assert t3 is t2

    def test_interning_keeps_distinct_value_types_apart(self):
        assert mk_const(True, BOOL) is not mk_const(1, BOOL)
        assert mk_const(True, BOOL) == mk_const(1, BOOL)  # Python True == 1
        assert print_term(mk_const(True, BOOL)) == "true"

    def test_true_singleton_survives_scopes(self):
        with fresh_scope():
            assert mk_const(True, BOOL) is TRUE

    def test_scope_swaps_intern_table(self):
        outer = b.add(b.int_var("scoped"), 41)
        with fresh_scope():
            inner = b.add(b.int_var("scoped"), 41)
            assert inner is not outer  # fresh table inside the scope
            assert inner == outer  # ...but interning never changes meaning
            assert print_term(inner) == print_term(outer)
        assert b.add(b.int_var("scoped"), 41) is outer  # outer table restored

    def test_intern_stats_count_hits(self):
        with fresh_scope():
            before = intern_stats()
            t1 = b.add(b.int_var("st"), 1)
            t2 = b.add(b.int_var("st"), 1)
            assert t1 is t2
            after = intern_stats()
        assert after["hits"] > before["hits"]
        assert after["size"] > 0


class TestCachedMetadata:
    def test_hash_is_cached_and_stable(self):
        t = b.and_(b.gt(X, 0), b.lt(X, 10))
        assert hash(t) == t._hash
        with fresh_scope():
            rebuilt = b.and_(b.gt(b.int_var("x"), 0), b.lt(b.int_var("x"), 10))
            assert hash(rebuilt) == hash(t)

    def test_node_count_and_depth_precomputed(self):
        t = b.add(X, b.mul(X, 2))
        assert term_size(t) == 5
        assert term_depth(t) == 3
        assert t.node_count == 5 and t.depth == 3

    def test_free_sets_are_cached(self):
        t = b.and_(b.gt(X, 0), b.forall([b.int_var("q")], b.eq(b.int_var("q"), X)))
        assert free_names(t) == frozenset({"x"})
        assert {v.name for v in free_vars(t)} == {"x"}
        assert t._free_names == frozenset({"x"})  # cached on the node


def _deep_chain(n):
    """x + x + ... nested n levels deep (n+1 occurrences of x)."""
    t = X
    for _ in range(n):
        t = b.add(t, X)
    return t


class TestDeepFormulas:
    DEPTH = 10_000

    def test_count_and_substitute_beyond_recursion_limit(self):
        t = _deep_chain(self.DEPTH)
        assert term_depth(t) == self.DEPTH + 1
        # The point of the regression: the formula is deeper than the
        # recursion limit, so any recursive traversal would blow up.
        assert self.DEPTH > sys.getrecursionlimit()
        assert count_free_occurrences(t, X) == self.DEPTH + 1
        replaced = substitute_occurrences(t, X, b.lift(7), range(self.DEPTH + 1))
        assert count_free_occurrences(replaced, X) == 0
        partial = substitute_occurrences(t, X, b.lift(7), [0, self.DEPTH])
        assert count_free_occurrences(partial, X) == self.DEPTH - 1

    def test_random_substitution_and_print_deep(self):
        import random

        t = _deep_chain(self.DEPTH)
        new, replaced, total = random_occurrence_substitution(
            t, X, b.lift(3), random.Random(1), 0.5
        )
        assert total == self.DEPTH + 1
        assert 0 < replaced < total
        text = print_term(new)  # iterative printer survives the depth
        assert text.startswith("(+ ")

    def test_substitute_and_evaluate_deep(self):
        t = _deep_chain(self.DEPTH)
        closed = substitute(t, {X: b.lift(1)})
        assert free_vars(closed) == set()
        model = Model()
        assert evaluate(closed, model) == self.DEPTH + 1
        model["x"] = 2
        assert evaluate(t, model) == 2 * (self.DEPTH + 1)


class TestSemanticsPreserved:
    def test_substitute_noop_returns_same_object(self):
        t = b.and_(b.gt(X, 0), b.lt(X, 10))
        assert substitute(t, {b.int_var("unrelated"): b.lift(1)}) is t

    def test_evaluator_memo_respects_binders(self):
        # The same interned subterm (+ x 1) occurs both ground and under
        # a binder for x; a memo entry cached from the ground occurrence
        # must not leak into the quantified one (or vice versa).
        x = X
        ground = b.gt(b.add(x, 1), 0)
        quantified = b.forall(
            [x],
            b.implies(b.and_(b.le(0, x), b.le(x, 2)), b.gt(b.add(x, 1), 0)),
        )
        model = Model()
        model["x"] = -5
        assert evaluate(ground, model) is False
        assert evaluate(b.or_(ground, quantified), model) is True
        assert evaluate(b.or_(quantified, ground), model) is True

    def test_occurrence_indexing_matches_tree_order(self):
        t = b.add(b.mul(X, X), X)  # occurrences 0, 1 inside *, 2 at top
        out = substitute_occurrences(t, X, b.lift(9), [1])
        assert print_term(out) == "(+ (* x 9) x)"
        out = substitute_occurrences(t, X, b.lift(9), [2])
        assert print_term(out) == "(+ (* x x) 9)"

    def test_shared_subterm_occurrences_counted_per_position(self):
        shared = b.add(X, 1)
        t = b.eq(shared, shared)  # interning makes both sides one object
        assert t.args[0] is t.args[1]
        assert count_free_occurrences(t, X) == 2
        out = substitute_occurrences(t, X, b.lift(5), [1])
        assert print_term(out) == "(= (+ x 1) (+ 5 1))"


@pytest.mark.slow
class TestInternedCampaignDeterminism:
    def test_journals_identical_at_workers_1_2_4(self, tmp_path):
        corpora = {"QF_LIA": build_corpus("QF_LIA", scale=0.002, seed=11)}
        campaign = dict(
            iterations_per_cell=6,
            seed=4,
            performance_threshold=None,
            solver_factory=deterministic_solvers,
        )
        journals = []
        for workers in (1, 2, 4):
            path = tmp_path / f"w{workers}.jsonl"
            run_campaign(
                corpora, journal=path, mode="thread", workers=workers, **campaign
            )
            journals.append(path.read_bytes())
        assert journals[0] == journals[1] == journals[2]
