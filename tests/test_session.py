"""Incremental-session test harness: verdict equivalence, bug-finding
power, determinism, and the session machinery's unit contracts.

Mirrors ``tests/test_triage.py``: the same three guarantees make
per-cell solver sessions safe to leave on:

1. **Verdict equivalence** — on the deterministic campaign corpus,
   every definite verdict (``sat``/``unsat``) the cold loop produces is
   reproduced with a session attached. Only ``unknown`` results may
   move, and only toward definite answers (a warm attempt deciding what
   the cold search could not). A single lost definite verdict is a lost
   oracle check, so this suite fails on the first one.

2. **Bug-finding power** — a fault-injected campaign finds exactly the
   same faults, in the same iterations, with incremental solving on
   and off.

3. **Determinism** — incremental journals are byte-identical across
   worker counts: the prototype is a pure function of the cell, the
   theory memo is a pure-function memo, and the outcome cache is
   iteration-scoped (see the soundness argument in
   ``src/repro/solver/session.py``).
"""

import json
import pickle

import pytest

from repro.campaign.runner import deterministic_solvers, run_campaign
from repro.core.yinyang import iteration_rng
from repro.observability.telemetry import Telemetry
from repro.seeds import build_corpus
from repro.smtlib.ast import fresh_scope
from repro.smtlib.parser import parse_script
from repro.solver.result import CheckOutcome, SolverResult
from repro.solver.sat import SatSolver
from repro.solver.session import SessionConfig, SolverSession
from repro.solver.tseitin import Abstraction
from repro.strategies import make_strategy

# The deterministic-campaign cell parameters shared with
# tests/test_triage.py and tests/test_parallel_determinism.py: no
# wall-clock deadlines, so a loaded CI machine cannot flip a verdict in
# one configuration only.
CAMPAIGN = dict(
    iterations_per_cell=8,
    seed=6,
    performance_threshold=None,
    solver_factory=deterministic_solvers,
)


@pytest.fixture(scope="module")
def corpora():
    return {
        "QF_S": build_corpus("QF_S", scale=0.0015, seed=5),
        "QF_LIA": build_corpus("QF_LIA", scale=0.003, seed=5),
    }


# ---------------------------------------------------------------------------
# 1. SAT-core assumptions and cloning
# ---------------------------------------------------------------------------


class TestSatAssumptions:
    def test_assumption_drives_propagation(self):
        sat = SatSolver()
        sat.ensure_vars(2)
        sat.add_clause([1, 2])
        assert sat.solve(assumptions=(-1,)) is True
        assert sat.value(-1) is True  # the assumption held...
        assert sat.value(2) is True  # ...and forced the other literal

    def test_conflicting_assumption_returns_unsat(self):
        sat = SatSolver()
        sat.ensure_vars(1)
        sat.add_clause([1])  # unit-propagates var 1 at the root level
        assert sat.solve(assumptions=(-1,)) is False

    def test_assumptions_are_decisions_not_clauses(self):
        # An assumption constrains one solve only: the next call without
        # it is free to pick the opposite value.
        sat = SatSolver()
        sat.ensure_vars(2)
        sat.add_clause([1, 2])
        assert sat.solve(assumptions=(-1, -2)) is False
        assert sat.solve() is True

    def test_assumption_order_fixes_both_vars(self):
        sat = SatSolver()
        sat.ensure_vars(3)
        sat.add_clause([1, 2, 3])
        assert sat.solve(assumptions=(-1, -2)) is True
        assert sat.value(3) is True

    def test_clone_is_independent(self):
        sat = SatSolver()
        sat.ensure_vars(2)
        sat.add_clause([1, 2])
        clone = sat.clone()
        clone.add_clause([-1])
        clone.add_clause([-2])
        assert clone.solve() is False
        assert sat.solve() is True
        assert len(sat.clauses) == 1

    def test_clone_starts_with_clean_trail(self):
        sat = SatSolver()
        sat.ensure_vars(2)
        sat.add_clause([1, 2])
        assert sat.solve() is True
        clone = sat.clone()
        assert clone.trail == []
        assert clone.solve(assumptions=(-1,)) is True
        assert clone.value(2) is True


class TestSelectorGuard:
    def _atom_session(self):
        script = parse_script(
            "(set-logic QF_LIA)(declare-fun x () Int)"
            "(assert (> x 0))(check-sat)"
        )
        return script.asserts[0]

    def test_term_enforced_only_under_selector(self):
        with fresh_scope():
            term = self._atom_session()
            sat = SatSolver()
            abstraction = Abstraction(sat)
            selector = sat.new_var()
            abstraction.assert_term_under(term, selector)
            lit = abstraction.literal(term)
            # Under the selector the atom literal is forced true...
            assert sat.solve(assumptions=(selector, -lit)) is False
            # ...without it the encoding leaves the atom free.
            assert sat.solve(assumptions=(-lit,)) is True

    def test_clone_onto_shares_atom_maps(self):
        with fresh_scope():
            term = self._atom_session()
            sat = SatSolver()
            abstraction = Abstraction(sat)
            selector = sat.new_var()
            abstraction.assert_term_under(term, selector)
            clone_sat = sat.clone()
            clone = abstraction.clone_onto(clone_sat)
            assert clone.atom_to_var == abstraction.atom_to_var
            # The clone writes to its own solver, not the prototype's.
            clone.block([abstraction.literal(term)])
            assert len(clone_sat.clauses) == len(sat.clauses) + 1


# ---------------------------------------------------------------------------
# 2. Session cache contracts
# ---------------------------------------------------------------------------


def _empty_session(**config):
    return SolverSession([], config=SessionConfig(**config))


class TestOutcomeCache:
    def test_hit_returns_an_independent_copy(self):
        session = _empty_session()
        stored = CheckOutcome(SolverResult.SAT)
        stored.stats["solver"] = "ref"
        session.store_outcome("k", stored)
        # Callers (the fault layer) stamp the outcomes they receive;
        # neither the original nor a previous hit may bleed through.
        stored.stats["triggered"] = True
        first = session.lookup_outcome("k")
        assert "triggered" not in first.stats
        first.stats["triggered"] = True
        second = session.lookup_outcome("k")
        assert "triggered" not in second.stats
        assert second is not first

    def test_begin_iteration_clears_outcomes_only(self):
        session = _empty_session()
        session.store_outcome("k", CheckOutcome(SolverResult.SAT))
        session.theory_store(["a"], 1, 0, None, ("sat", None, None), True)
        session.begin_iteration()
        assert session.lookup_outcome("k") is None
        assert session.theory_lookup(["a"], 1, 0, None) is not None

    def test_close_drops_everything(self):
        session = _empty_session()
        session.store_outcome("k", CheckOutcome(SolverResult.SAT))
        session.theory_store(["a"], 1, 0, None, ("sat", None, None), True)
        session.close()
        assert all(size == 0 for size in session.cache_sizes().values())


class TestTheoryCache:
    def test_keyed_on_ordered_tuple(self):
        # Theory search is order-sensitive; only the exact call is a
        # pure replay, so a permuted literal list must miss.
        session = _empty_session()
        session.theory_store(["a", "b"], 1, 0, None, ("unsat", None, None), True)
        assert session.theory_lookup(["a", "b"], 1, 0, None) is not None
        assert session.theory_lookup(["b", "a"], 1, 0, None) is None

    def test_budget_and_seed_partition_the_key(self):
        session = _empty_session()
        session.theory_store(["a"], 1, 0, None, ("unsat", None, None), True)
        assert session.theory_lookup(["a"], 2, 0, None) is None
        assert session.theory_lookup(["a"], 1, 9, None) is None

    def test_uncacheable_results_are_not_stored(self):
        session = _empty_session()
        session.theory_store(["a"], 1, 0, None, ("unknown", None, None), False)
        assert session.theory_lookup(["a"], 1, 0, None) is None


class TestEviction:
    def test_insertion_order_eviction(self):
        session = _empty_session(outcome_cache=2)
        for key in ("a", "b", "c"):
            session.store_outcome(key, CheckOutcome(SolverResult.SAT))
        assert session.lookup_outcome("a") is None  # oldest went first
        assert session.lookup_outcome("b") is not None
        assert session.lookup_outcome("c") is not None

    def test_evictions_counted(self):
        tel = Telemetry()
        session = SolverSession(
            [], config=SessionConfig(outcome_cache=1), telemetry=tel
        )
        for key in ("a", "b", "c"):
            session.store_outcome(key, CheckOutcome(SolverResult.SAT))
        counters = tel.snapshot()["counters"]
        assert counters["session.evictions"] == 2

    def test_restore_does_not_evict(self):
        session = _empty_session(outcome_cache=2)
        session.store_outcome("a", CheckOutcome(SolverResult.SAT))
        session.store_outcome("b", CheckOutcome(SolverResult.SAT))
        session.store_outcome("a", CheckOutcome(SolverResult.UNSAT))
        assert session.lookup_outcome("b") is not None


class TestSessionConfig:
    def test_picklable(self):
        config = SessionConfig(warm_rounds=5)
        assert pickle.loads(pickle.dumps(config)) == config

    def test_describe_mentions_every_cap(self):
        spec = SessionConfig().describe()
        for key in ("outcome=", "theory=", "clauses=", "presolve=", "warm="):
            assert key in spec

    def test_should_warm_gates_on_round_budget(self):
        session = _empty_session(warm_rounds=8)
        # At or below the warm cap a warm attempt costs as much as the
        # search it would prefilter; only larger budgets warrant one.
        assert not session.should_warm(8)
        assert not session.should_warm(3)
        assert session.should_warm(9)

    def test_empty_cell_never_warms(self):
        session = _empty_session()
        assert session.warm_start([]) is None


# ---------------------------------------------------------------------------
# 3. Verdict equivalence: cold loop vs. session-attached solves
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def equivalence_sweep(corpora):
    """Every fusion mutant of the campaign corpus solved twice: once
    cold, once with the cell's session attached (full budget both ways,
    so the only delta is the session machinery itself)."""
    from dataclasses import replace

    from repro.solver.solver import ReferenceSolver, SolverConfig
    from repro.solver.strings import StringConfig

    config = replace(
        SolverConfig.fast(),
        timeout_seconds=0.0,
        max_rounds=30,
        nonlinear_budget=120,
        strings=StringConfig(max_assignments=600, max_len_per_var=3, max_total_len=6),
    )
    solver = ReferenceSolver(config)
    tel = Telemetry()
    rows = []
    for logic in ("QF_S", "QF_LIA"):
        corpus = corpora[logic]
        strategy = make_strategy("fusion")
        for oracle in ("sat", "unsat"):
            seeds = corpus.by_oracle(oracle)
            if not seeds:
                continue
            work = strategy.prepare(
                oracle,
                [s.script for s in seeds],
                [s.logic for s in seeds],
            )
            session = SolverSession(
                [s.script for s in seeds], telemetry=tel
            )
            for index in range(CAMPAIGN["iterations_per_cell"]):
                with fresh_scope():
                    mutant = strategy.mutate(
                        iteration_rng(CAMPAIGN["seed"], index), work
                    )
                    cold = str(solver.check_script(mutant.script).result)
                    session.begin_iteration()
                    warm = str(
                        solver.check_script(
                            mutant.script, session=session
                        ).result
                    )
                rows.append((logic, oracle, index, cold, warm))
            session.close()
    return rows, tel.snapshot()["counters"]


class TestVerdictEquivalence:
    def test_no_definite_verdict_lost(self, equivalence_sweep):
        rows, _ = equivalence_sweep
        losses = [
            row
            for row in rows
            if row[3] in ("sat", "unsat") and row[4] == "unknown"
        ]
        assert losses == [], f"sessions lost definite verdicts: {losses}"

    def test_no_definite_verdict_flipped(self, equivalence_sweep):
        rows, _ = equivalence_sweep
        flips = [
            row
            for row in rows
            if row[3] in ("sat", "unsat")
            and row[4] in ("sat", "unsat")
            and row[3] != row[4]
        ]
        assert flips == [], f"sessions flipped definite verdicts: {flips}"

    def test_only_unknowns_may_improve(self, equivalence_sweep):
        rows, _ = equivalence_sweep
        for _, _, _, cold, warm in rows:
            if cold != warm:
                assert cold == "unknown" and warm in ("sat", "unsat")

    def test_sweep_exercises_the_warm_path(self, equivalence_sweep):
        # Without warm attempts the equivalence above proves nothing
        # about the session machinery.
        _, counters = equivalence_sweep
        assert counters.get("session.warm.attempt", 0) > 0

    def test_definite_verdicts_exist(self, equivalence_sweep):
        rows, _ = equivalence_sweep
        assert any(row[3] in ("sat", "unsat") for row in rows)


# ---------------------------------------------------------------------------
# 4. Bug-finding power: fault campaigns with and without sessions
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def campaign_pair(corpora, tmp_path_factory):
    root = tmp_path_factory.mktemp("session_campaigns")
    base = run_campaign(corpora, journal=root / "base.jsonl", **CAMPAIGN)
    incremental = run_campaign(
        corpora,
        journal=root / "incremental.jsonl",
        incremental=True,
        **CAMPAIGN,
    )
    return base, incremental, root


def _fault_ids(result):
    return {
        solver: sorted(faults) for solver, faults in result.found_faults().items()
    }


class TestBugFindingPower:
    def test_same_faults_found(self, campaign_pair):
        base, incremental, _ = campaign_pair
        assert _fault_ids(base) == _fault_ids(incremental)

    def test_same_bug_records(self, campaign_pair):
        base, incremental, _ = campaign_pair
        key = lambda r: (r.solver, r.kind, r.oracle, r.iteration, r.reported)
        assert [key(r) for r in base.records] == [
            key(r) for r in incremental.records
        ]
        assert base.records, "fault-injected campaign found no bugs at all"

    def test_incremental_meta_stamped(self, campaign_pair):
        _, _, root = campaign_pair
        meta = json.loads(
            (root / "incremental.jsonl").read_text().splitlines()[0]
        )
        assert meta["type"] == "meta"
        assert meta["incremental"] == SessionConfig().describe()
        base_meta = json.loads(
            (root / "base.jsonl").read_text().splitlines()[0]
        )
        assert "incremental" not in base_meta


# ---------------------------------------------------------------------------
# 5. Determinism: incremental journals across worker counts
# ---------------------------------------------------------------------------


class TestSessionDeterminism:
    """Incremental journals across the fleet-shape matrix: warm solver
    sessions live *inside* each worker, so any shape — thread pool,
    process pool, tcp fleet, any steal order — partitions the cells
    into different session lifetimes. The journal bytes must not
    notice."""

    @pytest.fixture(scope="class")
    def incremental_baseline(self, corpora, tmp_path_factory):
        path = tmp_path_factory.mktemp("session_journals") / "serial.jsonl"
        run_campaign(corpora, journal=path, incremental=True, **CAMPAIGN)
        return path.read_bytes()

    def test_journal_bytes_shape_blind(
        self, corpora, incremental_baseline, tmp_path, fleet, run_fleet_campaign
    ):
        path = tmp_path / "fleet.jsonl"
        run_fleet_campaign(
            corpora, fleet, journal=path, incremental=True, **CAMPAIGN
        )
        assert path.read_bytes() == incremental_baseline

