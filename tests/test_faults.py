"""Tests for the fault model, catalogs, and the faulty solver wrapper."""

from collections import Counter

import pytest

from repro.cli import make_solver
from repro.faults.catalog import (
    cvc4_like_catalog,
    demo_rewrite_faults,
    z3_like_catalog,
)
from repro.faults.fault import Fault, analyze_script
from repro.faults.faulty_solver import FaultySolver
from repro.faults.releases import PAPER_RELEASE_IMPACT, release_impact
from repro.faults.tracker import (
    CVC4_SOUNDNESS_PER_YEAR,
    Z3_SOUNDNESS_PER_YEAR,
    found_share,
)
from repro.smtlib.parser import parse_script
from repro.solver.result import SolverCrash
from repro.solver.solver import ReferenceSolver


class TestAnalyze:
    def test_logic_inference_arith(self):
        script = parse_script("(declare-fun x () Int)(assert (> x 0))(check-sat)")
        assert analyze_script(script).logic_family == "QF_LIA"

    def test_logic_inference_nonlinear_via_fusion_artifacts(self):
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (> (div z y) 0))(check-sat)"
        )
        assert analyze_script(script).logic_family == "QF_NIA"

    def test_logic_inference_quantified(self):
        script = parse_script(
            "(declare-fun r () Real)(assert (exists ((h Real)) (> (* h r) 0.0)))(check-sat)"
        )
        assert analyze_script(script).logic_family == "NRA"

    def test_logic_strings(self):
        script = parse_script(
            '(declare-fun s () String)(assert (= (str.len s) 1))(check-sat)'
        )
        assert analyze_script(script).logic_family == "QF_S"

    def test_logic_slia_needs_int_variable(self):
        script = parse_script(
            "(declare-fun s () String)(declare-fun i () Int)"
            "(assert (= i (str.len s)))(check-sat)"
        )
        assert analyze_script(script).logic_family == "QF_SLIA"

    def test_patterns_detected(self):
        script = parse_script(
            "(declare-fun z () String)(declare-fun x () String)"
            '(assert (= x (str.substr z 0 (str.len x))))(check-sat)'
        )
        info = analyze_script(script)
        assert info.has("substr-by-len")
        assert info.has("concat-definition") is False

    def test_nested_replace_pattern(self):
        script = parse_script(
            '(declare-fun a () String)'
            '(assert (= "" (str.replace (str.replace a "b" "") "c" "")))(check-sat)'
        )
        info = analyze_script(script)
        assert info.has("nested-replace")
        assert info.has("replace-with-empty")


class TestCatalogShape:
    def test_counts_match_figure8a(self):
        z3 = z3_like_catalog()
        cvc4 = cvc4_like_catalog()
        assert len(z3) == 44 and len(cvc4) == 13
        z3_status = Counter(f.status for f in z3)
        assert z3_status["fixed"] == 35
        assert z3_status["fixed"] + z3_status["confirmed"] == 37
        assert z3_status["duplicate"] == 4
        assert z3_status["wontfix"] == 2
        cvc4_status = Counter(f.status for f in cvc4)
        assert cvc4_status["fixed"] == 6
        assert cvc4_status["fixed"] + cvc4_status["confirmed"] == 8
        assert cvc4_status["duplicate"] == 1

    def test_kinds_match_figure8b(self):
        confirmed = [
            f for f in z3_like_catalog() if f.status in ("fixed", "confirmed")
        ]
        kinds = Counter(f.kind for f in confirmed)
        assert kinds == {"soundness": 24, "crash": 11, "performance": 1, "unknown": 1}

    def test_logics_match_figure8c(self):
        confirmed = [
            f for f in z3_like_catalog() if f.status in ("fixed", "confirmed")
        ]
        logics = Counter(f.logic for f in confirmed)
        assert logics["NRA"] == 15 and logics["QF_S"] == 15
        assert logics["QF_SLIA"] == 3 and logics["NIA"] == 2 and logics["QF_NRA"] == 2

    def test_release_windows_match_figure10(self):
        confirmed = [
            f
            for f in z3_like_catalog() + cvc4_like_catalog()
            if f.kind == "soundness" and f.status in ("fixed", "confirmed")
        ]
        assert release_impact(confirmed, "z3-like") == PAPER_RELEASE_IMPACT["z3-like"]
        assert release_impact(confirmed, "cvc4-like") == PAPER_RELEASE_IMPACT["cvc4-like"]

    def test_unique_fault_ids(self):
        ids = [f.fault_id for f in z3_like_catalog() + cvc4_like_catalog()]
        assert len(ids) == len(set(ids))

    def test_duplicates_reference_existing_roots(self):
        z3 = {f.fault_id: f for f in z3_like_catalog()}
        for fault in z3.values():
            if fault.status == "duplicate":
                assert fault.duplicate_of in z3

    def test_tracker_totals(self):
        assert sum(Z3_SOUNDNESS_PER_YEAR.values()) == 146
        assert sum(CVC4_SOUNDNESS_PER_YEAR.values()) == 42

    def test_found_share_rq2(self):
        confirmed = [
            f
            for f in z3_like_catalog() + cvc4_like_catalog()
            if f.kind == "soundness" and f.status in ("fixed", "confirmed")
        ]
        assert found_share(confirmed, "z3-like") == (24, 146)
        assert found_share(confirmed, "cvc4-like") == (5, 42)


class TestFaultySolver:
    def test_transparent_without_trigger(self, solver):
        buggy = make_solver("z3-like")
        text = "(declare-fun x () Int)(assert (> x 0))(check-sat)"
        assert str(buggy.check_result(text)) == "sat"

    def test_answer_fault_gives_wrong_result(self):
        buggy = make_solver("z3-like")
        # QF_S to-int-of-term (figure-13a fault): unsat formula, buggy says sat.
        text = (
            '(declare-fun a () String)'
            '(assert (>= (str.to.int (str.++ a "x")) 0))'
            '(assert (= a ""))'
            '(assert (< (str.len a) 0))(check-sat)'
        )
        assert str(buggy.check_result(text)) == "sat"

    def test_crash_fault_raises_with_signature(self):
        buggy = make_solver("z3-like")
        from repro.faults.paper_samples import sample_by_figure

        script = parse_script(sample_by_figure("13f").smt2)
        with pytest.raises(SolverCrash) as excinfo:
            buggy.check_script(script)
        assert "segmentation fault" in str(excinfo.value)
        assert excinfo.value.fault_id.startswith("z3-crash")

    def test_release_filter(self):
        trunk = make_solver("z3-like", release="trunk")
        old = make_solver("z3-like", release="4.6.0")
        assert len(old.active_faults()) < len(trunk.active_faults())
        for fault in old.active_faults():
            assert "4.6.0" in fault.affected_releases

    def test_triggered_faults_listing(self):
        buggy = make_solver("cvc4-like")
        from repro.faults.paper_samples import sample_by_figure

        script = parse_script(sample_by_figure("13b").smt2)
        ids = [f.fault_id for f in buggy.triggered_faults(script)]
        assert "cvc4-soundness-003" in ids

    def test_bogus_model_attached_to_wrong_sat(self):
        buggy = make_solver("z3-like")
        from repro.faults.paper_samples import sample_by_figure

        script = parse_script(sample_by_figure("13a").smt2)
        outcome = buggy.check_script(script)
        assert str(outcome.result) == "sat"
        assert outcome.model is not None  # the paper shows bogus models too


class TestDemoRewriteFaults:
    def test_toint_empty_rewrite_changes_verdict(self):
        faults = demo_rewrite_faults()
        buggy = FaultySolver(ReferenceSolver(), faults, "demo")
        # unsat via str.to.int("") = -1; the rewrite treats it as 0.
        text = (
            "(declare-fun s () String)"
            "(assert (= s \"\"))"
            "(assert (= 0 (str.to.int (str.replace s s s))))(check-sat)"
        )
        reference = ReferenceSolver()
        assert str(reference.check_result(text)) == "unsat"
        assert str(buggy.check_result(text)) == "sat"

    def test_rewrite_notes_fault_id(self):
        faults = demo_rewrite_faults()
        buggy = FaultySolver(ReferenceSolver(), faults, "demo")
        text = (
            "(declare-fun s () String)"
            "(assert (= s \"\"))"
            "(assert (= 0 (str.to.int (str.replace s s s))))(check-sat)"
        )
        outcome = buggy.check(text)
        assert outcome.reason.startswith("fault:demo-")
        assert "demo-toint-empty" in outcome.stats["rewrite_faults"]

class TestThreadSafety:
    def test_last_triggered_is_per_thread(self):
        """Workers sharing one FaultySolver must each see their own
        trigger list (regression: a shared mutable attribute was raced
        under YinYang.test(threads=N))."""
        import threading

        from repro.faults.paper_samples import sample_by_figure

        buggy = make_solver("cvc4-like")
        triggering = parse_script(sample_by_figure("13b").smt2)
        benign = parse_script(
            "(declare-fun q () Int)(assert (> q 0))(check-sat)"
        )
        mismatches = []
        barrier = threading.Barrier(2)

        def worker(script, expect_triggered):
            barrier.wait()
            for _ in range(50):
                try:
                    buggy.check_script(script)
                except SolverCrash:
                    pass
                triggered = bool(buggy.last_triggered)
                if triggered != expect_triggered:
                    mismatches.append((script, triggered))

        threads = [
            threading.Thread(target=worker, args=(triggering, True)),
            threading.Thread(target=worker, args=(benign, False)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert mismatches == []

    def test_last_triggered_empty_before_any_check(self):
        assert make_solver("z3-like").last_triggered == []
