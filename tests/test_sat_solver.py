"""Unit and randomized tests for the CDCL SAT core."""

import random
from itertools import product

import pytest

from repro.solver.sat import SatSolver


def brute_force(num_vars, clauses):
    for bits in product([False, True], repeat=num_vars):
        def lit_true(lit):
            value = bits[abs(lit) - 1]
            return value if lit > 0 else not value

        if all(any(lit_true(l) for l in clause) for clause in clauses):
            return True
    return False


def model_satisfies(model, clauses):
    def lit_true(lit):
        value = model.get(abs(lit), False)
        return value if lit > 0 else not value

    return all(any(lit_true(l) for l in clause) for clause in clauses)


class TestBasics:
    def test_empty_problem_is_sat(self):
        assert SatSolver().solve() is True

    def test_unit_clause(self):
        s = SatSolver()
        s.add_clause([1])
        assert s.solve() is True
        assert s.model()[1] is True

    def test_contradicting_units(self):
        s = SatSolver()
        s.add_clause([1])
        s.add_clause([-1])
        assert s.solve() is False

    def test_empty_clause(self):
        s = SatSolver()
        assert s.add_clause([]) is False
        assert s.solve() is False

    def test_tautology_dropped(self):
        s = SatSolver()
        assert s.add_clause([1, -1]) is True
        assert s.solve() is True

    def test_duplicate_literals_collapse(self):
        s = SatSolver()
        s.add_clause([2, 2, 2])
        assert s.solve() is True
        assert s.model()[2] is True

    def test_simple_implication_chain(self):
        s = SatSolver()
        s.add_clause([1])
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        assert s.solve() is True
        assert s.model()[3] is True

    def test_pigeonhole_2_into_1(self):
        # Two pigeons, one hole: p1h1, p2h1, not both.
        s = SatSolver()
        s.add_clause([1])
        s.add_clause([2])
        s.add_clause([-1, -2])
        assert s.solve() is False

    def test_xor_chain(self):
        # x1 xor x2 = true; both assignments reachable.
        s = SatSolver()
        s.add_clause([1, 2])
        s.add_clause([-1, -2])
        assert s.solve() is True
        model = s.model()
        assert model[1] != model[2]


class TestIncremental:
    def test_add_after_solve(self):
        s = SatSolver()
        s.add_clause([1, 2])
        assert s.solve() is True
        s.add_clause([-1])
        s.add_clause([-2])
        assert s.solve() is False

    def test_blocking_loop_enumerates_models(self):
        s = SatSolver()
        s.ensure_vars(3)
        s.add_clause([1, 2, 3])
        count = 0
        while s.solve():
            model = s.model()
            count += 1
            assert count <= 7
            s.add_clause([-v if model[v] else v for v in (1, 2, 3)])
        assert count == 7  # all assignments except all-false


class TestRandomized:
    @pytest.mark.parametrize("trial", range(30))
    def test_agrees_with_brute_force(self, trial):
        rng = random.Random(trial * 7919)
        n = rng.randint(1, 8)
        m = rng.randint(1, 30)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, n) for _ in range(rng.randint(1, 3))]
            for _ in range(m)
        ]
        s = SatSolver()
        s.ensure_vars(n)
        consistent = all(s.add_clause(c) for c in clauses)
        result = s.solve() if consistent else False
        assert result == brute_force(n, clauses)
        if result:
            assert model_satisfies(s.model(), clauses)

    @pytest.mark.parametrize("trial", range(10))
    def test_incremental_agrees_with_brute_force(self, trial):
        rng = random.Random(trial * 104729)
        n = rng.randint(2, 7)
        s = SatSolver()
        s.ensure_vars(n)
        clauses = []
        consistent = True
        for _ in range(4):
            for _ in range(rng.randint(1, 6)):
                clause = [
                    rng.choice([1, -1]) * rng.randint(1, n)
                    for _ in range(rng.randint(1, 3))
                ]
                clauses.append(clause)
                consistent = s.add_clause(clause) and consistent
            result = s.solve() if consistent else False
            assert result == brute_force(n, clauses)

    def test_larger_structured_instance(self):
        # Chain of equivalences with one forced polarity, unsat with a flip.
        s = SatSolver()
        n = 30
        s.ensure_vars(n)
        for i in range(1, n):
            s.add_clause([-i, i + 1])
            s.add_clause([i, -(i + 1)])
        s.add_clause([1])
        s.add_clause([-n])
        assert s.solve() is False
