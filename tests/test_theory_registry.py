"""The theory registry: one place that knows what a theory is.

Sorts, operator signatures, literal syntax, evaluator semantics, fusion
schemes, seed families, triage difficulty features and the solver
backend all hang off :mod:`repro.smtlib.theory`. These tests pin the
registry's merged-table invariants — the contracts every ported
consumer (typecheck, fusion, seeds, triage, faults, strategies) relies
on — and that registering a conflicting theory fails loudly instead of
silently shadowing an operator.
"""

import pytest

from repro.errors import ReproError
from repro.smtlib import theory
from repro.smtlib.bitvec import GENERATOR_WIDTHS
from repro.smtlib.sorts import INT, REAL, STRING, bitvec_sort
from repro.smtlib.typecheck import mutation_alternatives, operator_equivalence_classes


class TestRegistrationOrder:
    def test_value_theories_prefix_is_frozen(self):
        # Fusion's FUSIBLE_SORTS and the seed-family iteration order
        # derive from registration order; the (arithmetic, strings)
        # prefix must never move or every pre-BV RNG stream shifts.
        names = [t.name for t in theory.value_theories()]
        assert names[:2] == ["arithmetic", "strings"]
        assert names[2] == "bitvectors"

    def test_fusible_sorts_prefix(self):
        sorts = theory.fusible_sorts()
        assert sorts[:3] == (INT, REAL, STRING)
        assert sorts[3:] == tuple(bitvec_sort(w) for w in GENERATOR_WIDTHS)


class TestMergedTables:
    def test_op_theory_ownership(self):
        assert theory.op_theory("+") == "arithmetic"
        assert theory.op_theory("str.++") == "strings"
        assert theory.op_theory("bvadd") == "bitvectors"
        assert theory.op_theory("and") == "core"
        assert theory.op_theory("no-such-op") == ""

    def test_supported_logics_union(self):
        logics = theory.supported_logics()
        assert "QF_LIA" in logics
        assert "QF_SLIA" in logics
        assert "QF_BV" in logics

    def test_hard_op_tables(self):
        # Triage's difficulty features read these instead of literals.
        assert "*" in theory.hard_mul_ops()
        assert "bvmul" in theory.hard_mul_ops()
        assert "div" in theory.hard_div_ops()
        assert "bvshl" in theory.hard_div_ops()

    def test_solver_backend_hook(self):
        assert theory.theory("bitvectors").solver_backend == "bitblast"
        assert theory.theory("strings").solver_backend == "strings"
        assert theory.theory("core").solver_backend == ""


class TestFusionSchemes:
    def test_bv_schemes_registered_per_width(self):
        schemes = set(theory.theory("bitvectors").fusion_schemes)
        for width in GENERATOR_WIDTHS:
            assert f"bv{width}-addition" in schemes
            assert f"bv{width}-addition-constant" in schemes
            assert f"bv{width}-xor" in schemes

    def test_schemes_resolve_to_fusion_functions(self):
        from repro.core.fusion_functions import all_scheme_names

        registered = set(all_scheme_names())
        for t in theory.value_theories():
            for scheme in t.fusion_schemes:
                assert scheme in registered, scheme


class TestEquivalenceClasses:
    def test_bv_ops_are_mutation_partners(self):
        classes = operator_equivalence_classes()
        by_op = {op: ops for ops in classes for op in ops}
        assert "bvsub" in by_op.get("bvadd", ())
        assert "bvule" in by_op.get("bvult", ())

    def test_alternatives_stay_in_theory(self):
        for alt in mutation_alternatives("bvadd", 2):
            assert theory.op_theory(alt) == "bitvectors"


class TestCollisions:
    def test_duplicate_theory_rejected(self):
        with pytest.raises(ReproError, match="already registered"):
            theory.register_theory(theory.Theory(name="arithmetic"))

    def test_operator_collision_rejected(self):
        probe = theory.Theory(
            name="probe-collision",
            handlers={"bvadd": lambda op, args: None},
        )
        with pytest.raises(ReproError, match="bvadd"):
            theory.register_theory(probe)
        # The failed registration must not have leaked into the tables.
        assert "probe-collision" not in [t.name for t in theory.theories()]

    def test_registry_version_monotonic(self):
        before = theory.registry_version()
        with pytest.raises(ReproError):
            theory.register_theory(theory.Theory(name="arithmetic"))
        assert theory.registry_version() == before
