"""Tests for the external-binary adapter (ProcessSolver).

The "solver binary" under test is this repository's own CLI
(`python -m repro.cli check <file>`), which reads an .smt2 file and
prints the verdict — the same observation interface the paper uses
with Z3 and CVC4.
"""

import sys

import pytest

from repro.core.config import YinYangConfig
from repro.core.yinyang import YinYang
from repro.smtlib.parser import parse_script
from repro.solver.process import ProcessSolver
from repro.solver.result import SolverCrash, SolverResult


@pytest.fixture(scope="module")
def reference_binary():
    # `repro.cli check` takes the file as its positional argument.
    return ProcessSolver(
        "cli-reference", [sys.executable, "-m", "repro.cli", "check"], timeout=120
    )


SAT_TEXT = "(declare-fun x () Int)(assert (> x 0))(check-sat)"
UNSAT_TEXT = "(declare-fun x () Int)(assert (> x 0))(assert (< x 0))(check-sat)"


class TestVerdictParsing:
    def test_parse_sat(self):
        assert ProcessSolver._parse_verdict("sat\n") is SolverResult.SAT

    def test_parse_unsat_with_noise(self):
        assert (
            ProcessSolver._parse_verdict("; solving\nunsat\n")
            is SolverResult.UNSAT
        )

    def test_parse_unknown(self):
        assert ProcessSolver._parse_verdict("unknown") is SolverResult.UNKNOWN

    def test_parse_nothing(self):
        assert ProcessSolver._parse_verdict("hello world") is None


class TestAgainstOwnCli:
    def test_sat(self, reference_binary):
        outcome = reference_binary.check(SAT_TEXT)
        assert outcome.result is SolverResult.SAT

    def test_unsat(self, reference_binary):
        outcome = reference_binary.check(UNSAT_TEXT)
        assert outcome.result is SolverResult.UNSAT

    def test_yinyang_drives_external_binary(self, reference_binary):
        seeds = [parse_script(SAT_TEXT), parse_script(SAT_TEXT)]
        tool = YinYang(reference_binary, YinYangConfig(seed=1))
        report = tool.test("sat", seeds, iterations=2)
        assert report.fused == 2
        assert report.incorrects == []  # a sound binary reports nothing

    def test_buggy_external_binary_caught(self):
        buggy = ProcessSolver(
            "cli-z3-like",
            [sys.executable, "-m", "repro.cli", "check", "--solver", "z3-like"],
            timeout=240,
        )
        # 13a: unsat, but the buggy binary prints sat.
        from repro.faults.paper_samples import sample_by_figure

        outcome = buggy.check(sample_by_figure("13a").smt2)
        assert outcome.result is SolverResult.SAT


class TestFailureModes:
    def test_missing_binary(self):
        solver = ProcessSolver("ghost", ["/nonexistent/solver-binary"])
        with pytest.raises(SolverCrash) as excinfo:
            solver.check(SAT_TEXT)
        assert excinfo.value.kind == "spawn"

    def test_no_verdict_with_clean_exit_is_unknown(self):
        solver = ProcessSolver("echo", [sys.executable, "-c", "print('hello')"])
        # The command ignores the file argument and prints no verdict.
        outcome = solver.check(SAT_TEXT)
        assert outcome.result is SolverResult.UNKNOWN

    def test_nonzero_exit_without_verdict_is_crash(self):
        solver = ProcessSolver(
            "dying", [sys.executable, "-c", "import sys; sys.exit(3)"]
        )
        with pytest.raises(SolverCrash) as excinfo:
            solver.check(SAT_TEXT)
        assert excinfo.value.kind == "abnormal-exit"

    def test_signal_death_is_crash(self):
        solver = ProcessSolver(
            "segv",
            [
                sys.executable,
                "-c",
                "import os, signal; os.kill(os.getpid(), signal.SIGSEGV)",
            ],
        )
        with pytest.raises(SolverCrash) as excinfo:
            solver.check(SAT_TEXT)
        assert excinfo.value.kind == "signal"

    def test_timeout_is_unknown_by_default(self):
        solver = ProcessSolver(
            "sleepy",
            [sys.executable, "-c", "import time; time.sleep(30)"],
            timeout=0.5,
        )
        outcome = solver.check(SAT_TEXT)
        assert outcome.result is SolverResult.UNKNOWN
        assert outcome.reason == "timeout"

    def test_stderr_error_marker_is_crash_on_abnormal_run(self):
        # Marker + nonzero exit: a genuine assertion failure.
        solver = ProcessSolver(
            "asserting",
            [
                sys.executable,
                "-c",
                "import sys; print('ASSERTION VIOLATION', file=sys.stderr); sys.exit(1)",
            ],
        )
        with pytest.raises(SolverCrash) as excinfo:
            solver.check(SAT_TEXT)
        assert excinfo.value.kind == "internal-error"

    def test_stderr_marker_with_clean_verdict_is_benign(self):
        # A zero-exit run with a verdict may still echo chatter that
        # contains an error marker (e.g. `(assert ...)` diagnostics);
        # that is not a crash.
        solver = ProcessSolver(
            "chatty",
            [
                sys.executable,
                "-c",
                "import sys; print('sat'); "
                "print('note: assertion failed term rewritten', file=sys.stderr)",
            ],
        )
        outcome = solver.check(SAT_TEXT)
        assert outcome.result is SolverResult.SAT

    def test_bare_assert_echo_never_matches(self):
        # The old bare "assertion" marker matched benign `(assert ...)`
        # echoes even on abnormal runs; the tightened markers don't.
        solver = ProcessSolver(
            "echoing",
            [
                sys.executable,
                "-c",
                "import sys; print('echoed assertion: (assert (> x 0))', "
                "file=sys.stderr); sys.exit(1)",
            ],
        )
        with pytest.raises(SolverCrash) as excinfo:
            solver.check(SAT_TEXT)
        assert excinfo.value.kind == "abnormal-exit"  # not internal-error
