"""Unit tests for preprocessing: quantifiers, ites, divisions."""

from repro.smtlib.ast import App, Quantifier, Var
from repro.smtlib.parser import parse_script, parse_term
from repro.smtlib.printer import print_term
from repro.smtlib.sorts import INT, REAL
from repro.solver.preprocess import (
    instantiate_for_refutation,
    preprocess,
)

X = Var("x", INT)
R = Var("r", REAL)


def pre(text):
    return preprocess(parse_script(text).asserts)


class TestQuantifierHandling:
    def test_toplevel_exists_skolemized(self):
        result = pre(
            "(declare-fun x () Int)(assert (exists ((h Int)) (> h x)))(check-sat)"
        )
        assert not result.quantified
        assert all(
            not isinstance(node, Quantifier)
            for t in result.assertions
            for node in t.walk()
        )

    def test_negated_forall_skolemized(self):
        result = pre(
            "(declare-fun x () Int)"
            "(assert (not (forall ((h Int)) (> h x))))(check-sat)"
        )
        assert not result.quantified

    def test_bounded_forall_expanded(self):
        result = pre(
            "(declare-fun x () Int)"
            "(assert (forall ((h Int)) (=> (and (>= h 0) (<= h 2)) (>= (+ x h) x))))"
            "(check-sat)"
        )
        assert not result.quantified

    def test_unbounded_forall_is_residue(self):
        result = pre(
            "(declare-fun x () Int)"
            "(assert (forall ((h Int)) (> (+ h h) h)))(check-sat)"
        )
        assert result.quantified

    def test_exists_under_forall_is_residue(self):
        result = pre(
            "(assert (forall ((a Int)) (exists ((c Int)) (> c a))))(check-sat)"
        )
        assert result.quantified

    def test_empty_bounded_range(self):
        result = pre(
            "(assert (forall ((h Int)) (=> (and (>= h 5) (<= h 2)) false)))(check-sat)"
        )
        assert not result.quantified


class TestInstantiation:
    def test_instantiation_weakens_forall(self):
        from repro.smtlib.ast import Const

        term = parse_term("(forall ((h Int)) (> h 100))")
        weak = instantiate_for_refutation(
            term, {"Int": [Const(0, INT), Const(1, INT)]}
        )
        assert "forall" not in print_term(weak)
        assert "100" in print_term(weak)

    def test_instantiation_keeps_qf(self):
        term = parse_term("(> x 0)", [X])
        assert instantiate_for_refutation(term, {"Int": []}) == term


class TestNormalization:
    def test_abs_rewritten(self):
        result = pre("(declare-fun x () Int)(assert (= (abs x) 3))(check-sat)")
        ops = {n.op for t in result.assertions for n in t.walk() if isinstance(n, App)}
        assert "abs" not in ops

    def test_is_int_rewritten(self):
        result = pre("(declare-fun r () Real)(assert (is_int r))(check-sat)")
        ops = {n.op for t in result.assertions for n in t.walk() if isinstance(n, App)}
        assert "is_int" not in ops

    def test_chained_comparison_binarized(self):
        result = pre("(declare-fun x () Int)(assert (< 0 x 5))(check-sat)")
        for t in result.assertions:
            for n in t.walk():
                if isinstance(n, App) and n.op == "<":
                    assert len(n.args) == 2

    def test_distinct_pairwise(self):
        result = pre(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun z () Int)"
            "(assert (distinct x y z))(check-sat)"
        )
        text = " ".join(str(t) for t in result.assertions)
        assert "distinct" not in text
        assert text.count("(not (= ") == 3


class TestIteLifting:
    def test_int_ite_lifted(self):
        result = pre(
            "(declare-fun x () Int)(declare-fun c () Bool)"
            "(assert (= (ite c 1 2) x))(check-sat)"
        )
        text = " ".join(str(t) for t in result.assertions)
        assert ".ite" in text
        # Guarded definitions appended.
        assert text.count("=>") >= 2

    def test_bool_ite_not_lifted(self):
        result = pre(
            "(declare-fun c () Bool)(assert (ite c true false))(check-sat)"
        )
        assert ".ite" not in " ".join(str(t) for t in result.assertions)


class TestPurification:
    def test_real_division_purified(self):
        result = pre("(declare-fun r () Real)(assert (> (/ r 2.0) 1.0))(check-sat)")
        ops = {n.op for t in result.assertions for n in t.walk() if isinstance(n, App)}
        assert "/" not in ops
        assert len(result.divisions) == 1
        op, numer, denom, name = result.divisions[0]
        assert op == "/"

    def test_div_mod_share_variables(self):
        result = pre(
            "(declare-fun x () Int)"
            "(assert (= (div x 3) 1))(assert (= (mod x 3) 2))(check-sat)"
        )
        ids = {name for _, _, _, name in result.divisions}
        ops = [op for op, _, _, _ in result.divisions]
        assert sorted(ops) == ["div", "mod"]
        assert len(ids) == 2

    def test_identical_divisions_shared(self):
        result = pre(
            "(declare-fun r () Real)(declare-fun q () Real)"
            "(assert (> (/ r q) 0.0))(assert (< (/ r q) 5.0))(check-sat)"
        )
        real_divs = [d for d in result.divisions if d[0] == "/"]
        assert len(real_divs) == 1

    def test_ackermann_constraints_added(self):
        result = pre(
            "(declare-fun a () Real)(declare-fun c () Real)"
            "(assert (> (/ a c) 0.0))(assert (< (/ c a) 0.0))(check-sat)"
        )
        text = " ".join(str(t) for t in result.assertions)
        # Two distinct divisions -> one functional-consistency implication.
        assert text.count("=>") >= 1

    def test_to_int_purified(self):
        result = pre("(declare-fun r () Real)(assert (= (to_int r) 2))(check-sat)")
        ops = {n.op for t in result.assertions for n in t.walk() if isinstance(n, App)}
        assert "to_int" not in ops
        assert any(op == "to_int" for op, _, _, _ in result.divisions)


def pre_eliminating(text):
    return preprocess(parse_script(text).asserts, eliminate_definitions=True)


class TestDefinitionElimination:
    def test_simple_definition_eliminated(self):
        result = pre_eliminating(
            "(declare-fun z () Int)(declare-fun x () Int)"
            "(assert (= z (+ x 1)))(assert (> z 0))(check-sat)"
        )
        assert [name for name, _, _ in result.eliminated] == ["z"]
        text = " ".join(str(t) for t in result.assertions)
        assert "z" not in text.split()

    def test_self_referential_definition_kept(self):
        # (= z (+ z 1)) has z free on both sides: not a definition in
        # either orientation, so nothing may be substituted away (the
        # naive rewrite would loop or change satisfiability).
        result = pre_eliminating(
            "(declare-fun z () Int)"
            "(assert (= z (+ z 1)))(check-sat)"
        )
        assert result.eliminated == []
        assert len(result.assertions) == 1

    def test_quantifier_shadowed_candidate_untouched(self):
        # A binder shadowing the candidate name leaves a quantified
        # residue, which stops the pipeline before elimination ever
        # runs: the top-level (= z 5) must survive untouched rather
        # than be substituted under the binder's unrelated z.
        result = pre_eliminating(
            "(declare-fun z () Int)"
            "(assert (= z 5))"
            "(assert (forall ((z Int)) (> (* z z) (- 0 1))))(check-sat)"
        )
        assert result.quantified
        assert result.eliminated == []
        texts = [str(t) for t in result.assertions]
        assert any("(= z 5)" in t for t in texts)

    def test_bounded_shadowing_forall_then_elimination(self):
        # A *bounded* shadowing forall is expanded away (its bound z
        # never aliases the free z), after which the top-level
        # definition is eliminated normally.
        result = pre_eliminating(
            "(declare-fun z () Int)(declare-fun y () Int)"
            "(assert (= z (+ y 1)))"
            "(assert (forall ((z Int)) (=> (and (>= z 0) (<= z 1)) (>= (+ y z) y))))"
            "(check-sat)"
        )
        assert not result.quantified
        assert [name for name, _, _ in result.eliminated] == ["z"]

    def test_multiple_candidates_back_substituted(self):
        # Two chained definitions: both are eliminated, and the later
        # recorded defining term is rewritten so every recorded term
        # refers only to surviving variables (model reconstruction
        # evaluates them without ordering constraints).
        result = pre_eliminating(
            "(declare-fun z () Int)(declare-fun w () Int)(declare-fun x () Int)"
            "(assert (= z (+ x 1)))(assert (= w (* z 2)))"
            "(assert (> (+ z w) 0))(check-sat)"
        )
        names = [name for name, _, _ in result.eliminated]
        assert sorted(names) == ["w", "z"]
        from repro.smtlib.ast import free_names

        for _, _, term in result.eliminated:
            assert not (free_names(term) & set(names))
        survivors = " ".join(str(t) for t in result.assertions)
        assert "z" not in survivors.split() and "w" not in survivors.split()

    def test_equal_vars_eliminates_one_side(self):
        # (= a b) is a definition in either orientation; exactly one of
        # the two names survives.
        result = pre_eliminating(
            "(declare-fun a () Int)(declare-fun b () Int)"
            "(assert (= a b))(assert (> a 0))(assert (< b 9))(check-sat)"
        )
        assert len(result.eliminated) == 1
