"""Tests for the fix-validate-retest round protocol."""

import pytest

from repro.campaign.rounds import run_fix_rounds
from repro.faults.catalog import z3_like_catalog
from repro.seeds import build_corpus
from repro.solver.solver import ReferenceSolver, SolverConfig


@pytest.fixture(scope="module")
def rounds_result():
    corpus = build_corpus("QF_S", scale=0.0015, seed=31)
    return run_fix_rounds(
        ReferenceSolver(SolverConfig.fast()),
        z3_like_catalog(),
        "z3-like",
        "unsat",
        corpus.unsat_seeds,
        iterations_per_round=15,
        max_rounds=6,
        seed=2,
    )


class TestFixRounds:
    def test_terminates(self, rounds_result):
        assert 1 <= rounds_result.total_rounds <= 6

    def test_finds_then_dries_up(self, rounds_result):
        assert rounds_result.rounds[0].new_fault_ids, "round 1 must find bugs"

    def test_no_fault_found_twice(self, rounds_result):
        seen = set()
        for round_ in rounds_result.rounds:
            for fault_id in round_.new_fault_ids:
                assert fault_id not in seen, "a fixed fault must stay fixed"
                seen.add(fault_id)

    def test_fixes_accumulate(self, rounds_result):
        total_new = sum(len(r.new_fault_ids) for r in rounds_result.rounds)
        assert len(rounds_result.fixed_fault_ids) == total_new

    def test_revalidation_passes_after_fixes(self, rounds_result):
        # The mechanical 'fix' (fault removal) must fully cure the
        # previous round's triggering formulas.
        for round_ in rounds_result.rounds[1:]:
            assert round_.revalidation_failures == 0

    def test_summary_mentions_rounds(self, rounds_result):
        assert "round 1" in rounds_result.summary()
