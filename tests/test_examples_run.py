"""Smoke tests: every example script runs to completion.

Run as subprocesses so each example is exercised exactly as a user
would run it. These are the slowest tests in the suite; they guard the
documentation's promises.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = [
    "quickstart.py",
    "custom_fusion_function.py",
    "find_bugs_campaign.py",
    "coverage_study.py",
    "testing_rounds.py",
    "robust_campaign.py",
]

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example):
    path = os.path.join(EXAMPLES_DIR, example)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they do"


def test_quickstart_shows_both_propositions():
    path = os.path.join(EXAMPLES_DIR, "quickstart.py")
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=600
    )
    assert "SAT fusion" in result.stdout
    assert "UNSAT fusion" in result.stdout
    assert "solver says: sat" in result.stdout
    assert "solver says: unsat" in result.stdout
