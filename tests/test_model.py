"""Unit tests for models and values."""

from fractions import Fraction

import pytest

from repro.semantics.model import Model
from repro.semantics.values import (
    check_value,
    default_value,
    euclidean_div,
    euclidean_mod,
    value_sort,
    value_to_const,
)
from repro.smtlib.ast import Var
from repro.smtlib.sorts import BOOL, INT, REAL, STRING


class TestValues:
    def test_defaults(self):
        assert default_value(BOOL) is False
        assert default_value(INT) == 0
        assert default_value(REAL) == Fraction(0)
        assert default_value(STRING) == ""

    def test_value_sort(self):
        assert value_sort(True) == BOOL
        assert value_sort(3) == INT
        assert value_sort(Fraction(1, 2)) == REAL
        assert value_sort("x") == STRING

    def test_bool_is_not_int(self):
        assert value_sort(True) == BOOL  # despite bool being an int subtype

    def test_check_value_coerces(self):
        assert check_value(Fraction(3), INT) == 3
        assert check_value(2, REAL) == Fraction(2)

    def test_check_value_rejects(self):
        with pytest.raises(TypeError):
            check_value("s", INT)
        with pytest.raises(TypeError):
            check_value(True, INT)
        with pytest.raises(TypeError):
            check_value(Fraction(1, 2), INT)

    def test_value_to_const(self):
        const = value_to_const(Fraction(1, 2))
        assert const.sort == REAL

    def test_euclidean_properties(self):
        for a in range(-9, 10):
            for b in list(range(-4, 0)) + list(range(1, 5)):
                q = euclidean_div(a, b)
                r = euclidean_mod(a, b)
                assert a == b * q + r
                assert 0 <= r < abs(b)

    def test_euclidean_zero_divisor(self):
        with pytest.raises(ZeroDivisionError):
            euclidean_div(1, 0)
        with pytest.raises(ZeroDivisionError):
            euclidean_mod(1, 0)


class TestModel:
    def test_item_access(self):
        m = Model({"x": 1})
        assert m["x"] == 1
        m["y"] = 2
        assert "y" in m and m["y"] == 2

    def test_get_default(self):
        assert Model().get("missing", 9) == 9

    def test_copy_is_independent(self):
        m = Model({"x": 1})
        c = m.copy()
        c["x"] = 5
        assert m["x"] == 1

    def test_complete_fills_defaults(self):
        m = Model().complete([Var("x", INT), Var("s", STRING)])
        assert m["x"] == 0 and m["s"] == ""

    def test_complete_preserves_existing(self):
        m = Model({"x": 7}).complete([Var("x", INT)])
        assert m["x"] == 7

    def test_div_at_zero_default_and_memo(self):
        m = Model()
        first = m.div_at_zero("div", 5)
        assert first == 0
        m.set_div_at_zero("div", 6, 42)
        assert m.div_at_zero("div", 6) == 42
        assert m.div_at_zero("div", 5) == 0  # unchanged

    def test_set_div_at_zero_checks_sort(self):
        m = Model()
        with pytest.raises(TypeError):
            m.set_div_at_zero("div", 1, "string")

    def test_merged_with_disjoint(self):
        merged = Model({"x": 1}).merged_with(Model({"y": 2}))
        assert merged["x"] == 1 and merged["y"] == 2

    def test_merged_with_conflict(self):
        with pytest.raises(ValueError):
            Model({"x": 1}).merged_with(Model({"x": 2}))

    def test_merged_with_agreeing_overlap(self):
        merged = Model({"x": 1}).merged_with(Model({"x": 1}))
        assert merged["x"] == 1

    def test_equality(self):
        assert Model({"x": 1}) == Model({"x": 1})
        assert Model({"x": 1}) != Model({"x": 2})

    def test_to_smtlib(self):
        text = Model({"x": -1, "b": True}).to_smtlib()
        assert "(define-fun x () Int (- 1))" in text
        assert "(define-fun b () Bool true)" in text

    def test_repr_sorted(self):
        assert repr(Model({"b": 2, "a": 1})) == "Model(a=1, b=2)"
