"""Triage test harness: verdict equivalence, bug-finding power, and
the difficulty predictor's contract.

Three guarantees make tiered solve budgets safe to leave on:

1. **Verdict equivalence** — on the deterministic campaign corpus,
   every definite verdict (``sat``/``unsat``) the full budget produces
   is reproduced under the default tier policy. Only ``unknown``
   results may move, and only toward definite answers (a cheap fast
   path answering what the full crawl also answers). A single lost
   definite verdict is a lost oracle check, so this suite fails on the
   first one.

2. **Bug-finding power** (the paper's Fig. 8 / RQ4 concern: efficiency
   must not cost detections) — a fault-injected campaign finds exactly
   the same faults, in the same iterations, with triage on and off.

3. **Predictor purity** — the structural difficulty score is a pure,
   total function of the formula, unchanged by fresh-name scopes,
   pickling (the process-pool spawn boundary), interning state, or
   print/parse round trips. This is what makes triaged journals
   byte-identical across worker counts.
"""

import json
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign.runner import deterministic_solvers, run_campaign
from repro.campaign.triage import (
    EASY_TIER,
    HARD_TIER,
    HOPELESS_TIER,
    TriagePolicy,
    difficulty_score,
    parse_budget_tiers,
    script_features,
    term_features,
)
from repro.core.checker import (
    UNKNOWN_BUDGET,
    UNKNOWN_GENUINE,
    unknown_kind,
)
from repro.core.yinyang import iteration_rng
from repro.seeds import build_corpus
from repro.smtlib import builder as b
from repro.smtlib.ast import Assert, DeclareFun, Script, SetLogic, fresh_scope
from repro.smtlib.parser import parse_script
from repro.smtlib.printer import print_script
from repro.strategies import make_strategy

# The deterministic-campaign cell parameters shared with
# tests/test_parallel_determinism.py: no wall-clock deadlines, so a
# loaded CI machine cannot flip a verdict in one configuration only.
CAMPAIGN = dict(
    iterations_per_cell=8,
    seed=6,
    performance_threshold=None,
    solver_factory=deterministic_solvers,
)


@pytest.fixture(scope="module")
def corpora():
    return {
        "QF_S": build_corpus("QF_S", scale=0.0015, seed=5),
        "QF_LIA": build_corpus("QF_LIA", scale=0.003, seed=5),
    }


# ---------------------------------------------------------------------------
# 1. Verdict equivalence: full budget vs. the default tier policy
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def equivalence_sweep(corpora):
    """Every fusion mutant of the campaign corpus solved twice: once at
    full budget, once through the default policy's tier directive."""
    from dataclasses import replace

    from repro.solver.solver import ReferenceSolver, SolverConfig
    from repro.solver.strings import StringConfig

    # The deterministic campaign config, without fault injection: the
    # sweep compares the *reference* verdicts, not faulty ones.
    config = replace(
        SolverConfig.fast(),
        timeout_seconds=0.0,
        max_rounds=30,
        nonlinear_budget=120,
        strings=StringConfig(max_assignments=600, max_len_per_var=3, max_total_len=6),
    )
    solver = ReferenceSolver(config)
    policy = TriagePolicy()
    rows = []
    for logic in ("QF_S", "QF_LIA"):
        corpus = corpora[logic]
        strategy = make_strategy("fusion")
        for oracle in ("sat", "unsat"):
            seeds = corpus.by_oracle(oracle)
            if not seeds:
                continue
            work = strategy.prepare(
                oracle,
                [s.script for s in seeds],
                [s.logic for s in seeds],
            )
            for index in range(CAMPAIGN["iterations_per_cell"]):
                with fresh_scope():
                    mutant = strategy.mutate(
                        iteration_rng(CAMPAIGN["seed"], index), work
                    )
                    tier, directive = policy.route(mutant.script)
                    full = str(solver.check_script(mutant.script).result)
                    tiered = str(
                        solver.check_script(
                            mutant.script, directive=directive
                        ).result
                    )
                rows.append((logic, oracle, index, tier, full, tiered))
    return rows


class TestVerdictEquivalence:
    def test_no_definite_verdict_lost(self, equivalence_sweep):
        losses = [
            row
            for row in equivalence_sweep
            if row[4] in ("sat", "unsat") and row[5] == "unknown"
        ]
        assert losses == [], f"tiering lost definite verdicts: {losses}"

    def test_no_definite_verdict_flipped(self, equivalence_sweep):
        flips = [
            row
            for row in equivalence_sweep
            if row[4] in ("sat", "unsat")
            and row[5] in ("sat", "unsat")
            and row[4] != row[5]
        ]
        assert flips == [], f"tiering flipped definite verdicts: {flips}"

    def test_only_unknowns_may_improve(self, equivalence_sweep):
        # Any remaining difference is unknown -> definite: a fast path
        # answering something the full budget could not. That is a
        # strict improvement, never a lost check.
        for _, _, _, _, full, tiered in equivalence_sweep:
            if full != tiered:
                assert full == "unknown" and tiered in ("sat", "unsat")

    def test_sweep_is_not_vacuous(self, equivalence_sweep):
        # The corpus must actually exercise a reduced tier, otherwise
        # the equivalence above proves nothing about tiering.
        tiers = {row[3] for row in equivalence_sweep}
        assert "easy" in tiers
        assert tiers & {"hard", "hopeless"}, (
            "no mutant was routed to a reduced tier; "
            "the equivalence sweep is vacuous"
        )

    def test_definite_verdicts_exist_on_both_sides(self, equivalence_sweep):
        definite = [r for r in equivalence_sweep if r[4] in ("sat", "unsat")]
        assert definite, "sweep produced no definite full-budget verdicts"


# ---------------------------------------------------------------------------
# 2. Bug-finding power: fault-injected campaigns with and without triage
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def campaign_pair(corpora, tmp_path_factory):
    root = tmp_path_factory.mktemp("triage_campaigns")
    base = run_campaign(
        corpora, journal=root / "base.jsonl", **CAMPAIGN
    )
    triaged = run_campaign(
        corpora,
        journal=root / "triaged.jsonl",
        triage=TriagePolicy(),
        **CAMPAIGN,
    )
    return base, triaged, root


def _fault_ids(result):
    return {
        solver: sorted(faults) for solver, faults in result.found_faults().items()
    }


class TestBugFindingPower:
    def test_same_faults_found(self, campaign_pair):
        base, triaged, _ = campaign_pair
        assert _fault_ids(base) == _fault_ids(triaged)

    def test_same_bug_records(self, campaign_pair):
        base, triaged, _ = campaign_pair
        key = lambda r: (r.solver, r.kind, r.oracle, r.iteration, r.reported)
        assert [key(r) for r in base.records] == [key(r) for r in triaged.records]
        assert base.records, "fault-injected campaign found no bugs at all"

    def test_triage_meta_and_counters_stamped(self, campaign_pair):
        _, _, root = campaign_pair
        lines = [
            json.loads(line)
            for line in (root / "triaged.jsonl").read_text().splitlines()
        ]
        meta = lines[0]
        assert meta["type"] == "meta"
        assert meta["triage"] == TriagePolicy().describe()
        base_meta = json.loads(
            (root / "base.jsonl").read_text().splitlines()[0]
        )
        assert "triage" not in base_meta

    def test_unknown_split_counters_consistent(self, campaign_pair):
        base, triaged, _ = campaign_pair
        for result in (base, triaged):
            for report in result.reports.values():
                assert report.unknowns_budget >= 0
                assert report.unknowns_genuine >= 0
                assert (
                    report.unknowns_budget + report.unknowns_genuine
                    <= report.unknowns
                )


# ---------------------------------------------------------------------------
# 3. Triage determinism: journals byte-identical across worker counts
# ---------------------------------------------------------------------------


class TestTriageDeterminism:
    @pytest.fixture(scope="class")
    def journals(self, corpora, tmp_path_factory):
        root = tmp_path_factory.mktemp("triage_journals")
        paths = {}
        for workers in (1, 2, 4):
            path = root / f"w{workers}.jsonl"
            run_campaign(
                corpora,
                journal=path,
                triage=TriagePolicy(),
                mode="thread" if workers > 1 else "serial",
                workers=workers,
                **CAMPAIGN,
            )
            paths[workers] = path
        return paths

    @pytest.mark.parametrize("workers", [2, 4])
    def test_journal_bytes_identical(self, journals, workers):
        assert (
            journals[workers].read_bytes() == journals[1].read_bytes()
        ), f"triage journal diverged at {workers} thread workers"

    def test_policy_survives_pickling(self, corpora):
        # The spawn boundary: a policy pickled to a process worker must
        # route every mutant exactly as the parent would.
        policy = TriagePolicy()
        clone = pickle.loads(pickle.dumps(policy))
        strategy = make_strategy("fusion")
        seeds = corpora["QF_LIA"].by_oracle("sat")
        work = strategy.prepare(
            "sat", [s.script for s in seeds], [s.logic for s in seeds]
        )
        for index in range(6):
            with fresh_scope():
                mutant = strategy.mutate(iteration_rng(6, index), work)
                assert policy.route(mutant.script) == clone.route(mutant.script)

    def test_spec_string_round_trips(self):
        policy = TriagePolicy()
        assert parse_budget_tiers(policy.describe()) == policy

    def test_tier_rounds_never_floor_below_refutation(self):
        # Regression guard for the one verdict the harness ever lost:
        # the hopeless tier must leave an eliminated unsat-fusion
        # mutant enough DPLL rounds to propagate its contradiction.
        # At the deterministic config's 30 rounds, 1/16 floors to a
        # single round and loses unsat verdicts; 1/8 keeps 3.
        assert HOPELESS_TIER.scaled_rounds(30) >= 3
        assert HARD_TIER.scaled_rounds(30) >= 15
        assert EASY_TIER.scaled_rounds(30) == 30


# ---------------------------------------------------------------------------
# 4. The difficulty predictor: pure, total, monotone
# ---------------------------------------------------------------------------

_SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_INT_LEAVES = st.one_of(
    st.sampled_from(["x", "y", "z"]).map(b.int_var),
    st.integers(min_value=-9, max_value=9).map(b.lift),
)
_STR_VARS = st.sampled_from(["s", "t"]).map(b.string_var)

_int_terms = st.recursive(
    _INT_LEAVES,
    lambda child: st.one_of(
        st.tuples(child, child).map(lambda p: b.add(*p)),
        st.tuples(child, child).map(lambda p: b.mul(*p)),
        st.tuples(child, child).map(lambda p: b.sub(*p)),
        st.tuples(child, child).map(lambda p: b.idiv(*p)),
        st.tuples(child, child).map(lambda p: b.mod(*p)),
        _STR_VARS.map(b.length),
    ),
    max_leaves=12,
)

_bool_terms = st.recursive(
    st.one_of(
        st.tuples(_int_terms, _int_terms).map(lambda p: b.le(*p)),
        st.tuples(_int_terms, _int_terms).map(lambda p: b.eq(*p)),
        st.tuples(_STR_VARS, _STR_VARS).map(lambda p: b.contains(*p)),
    ),
    lambda child: st.one_of(
        st.tuples(child, child).map(lambda p: b.and_(*p)),
        st.tuples(child, child).map(lambda p: b.or_(*p)),
        child.map(b.not_),
        child.map(lambda body: b.forall([b.int_var("q")], body)),
    ),
    max_leaves=8,
)


def _script_of(term):
    decls = [
        DeclareFun(var.name, (), var.sort)
        for var in sorted(
            {v for v in _free_vars(term)}, key=lambda v: v.name
        )
    ]
    return Script([SetLogic("ALL"), *decls, Assert(term)])


def _free_vars(term):
    from repro.smtlib.ast import Var

    seen = []
    stack = [term]
    bound = set()
    while stack:
        node = stack.pop()
        if isinstance(node, Var):
            if node.name not in bound:
                seen.append(node)
        elif hasattr(node, "args"):
            stack.extend(node.args)
        if hasattr(node, "body"):
            bound.update(name for name, _ in node.bindings)
            stack.append(node.body)
    return seen


class TestPredictorProperties:
    @_SETTINGS
    @given(term=_bool_terms)
    def test_total_and_nonnegative(self, term):
        features = term_features(term)
        assert features.nonlinear >= 0
        assert features.quant_depth >= 0
        assert features.string_ops >= 0
        assert features.node_count >= 1
        assert difficulty_score(features) >= 0

    @_SETTINGS
    @given(term=_bool_terms)
    def test_pure_across_print_parse(self, term):
        script = _script_of(term)
        reparsed = parse_script(print_script(script))
        assert script_features(reparsed) == script_features(script)

    @_SETTINGS
    @given(term=_bool_terms)
    def test_pure_across_pickle_and_fresh_scope(self, term):
        before = term_features(term)
        clone = pickle.loads(pickle.dumps(term))
        assert term_features(clone) == before
        with fresh_scope():
            # A fresh interning scope must not perturb the features of
            # a term built outside it (nor of its pickled clone).
            assert term_features(term) == before
            assert term_features(pickle.loads(pickle.dumps(term))) == before

    @_SETTINGS
    @given(term=_bool_terms)
    def test_monotone_in_nonlinear_count(self, term):
        # Conjoining one more nonlinear constraint strictly increases
        # the score: the predictor can never rank a formula easier
        # because it got *more* nonlinear.
        base_features = term_features(term)
        harder = b.and_(
            term, b.eq(b.mul(b.int_var("x"), b.int_var("y")), b.lift(1))
        )
        harder_features = term_features(harder)
        assert harder_features.nonlinear == base_features.nonlinear + 1
        assert difficulty_score(harder_features) > difficulty_score(
            base_features
        )

    @_SETTINGS
    @given(term=_bool_terms)
    def test_cached_and_fresh_scores_agree(self, term):
        # term_features caches per interned node; a structurally equal
        # term rebuilt from text must score identically to the cached
        # original.
        script = _script_of(term)
        first = script_features(script)
        assert script_features(script) == first  # cached path
        assert script_features(parse_script(print_script(script))) == first

    def test_score_thresholds_order_tiers(self):
        policy = TriagePolicy()
        assert policy.hard_at <= policy.hopeless_at
        with pytest.raises(ValueError):
            TriagePolicy(hard_at=9, hopeless_at=4)


# ---------------------------------------------------------------------------
# 5. The unknown-kind split: budget exhaustion vs. genuine unknowns
# ---------------------------------------------------------------------------


class TestUnknownKindSplit:
    @pytest.mark.parametrize(
        "reason",
        ["round budget exhausted", "sat budget exhausted", "timeout"],
    )
    def test_budget_reasons(self, reason):
        assert unknown_kind(reason) == UNKNOWN_BUDGET

    def test_guard_deadline_is_budget(self):
        assert unknown_kind("guard: check exceeded 1.5s") == UNKNOWN_BUDGET

    @pytest.mark.parametrize(
        "reason", ["", "unsupported theory", "quantifier residue"]
    )
    def test_other_reasons_are_genuine(self, reason):
        assert unknown_kind(reason) == UNKNOWN_GENUINE

    def test_stamped_kind_wins_over_reason(self):
        # The reference solver's own stamp takes precedence over the
        # reason-string fallback in both directions.
        assert (
            unknown_kind("timeout", {"unknown_kind": "genuine"})
            == UNKNOWN_GENUINE
        )
        assert (
            unknown_kind("unsupported", {"unknown_kind": "budget"})
            == UNKNOWN_BUDGET
        )

    def test_missing_stamp_falls_back_to_reason(self):
        assert unknown_kind("timeout", {"other": 1}) == UNKNOWN_BUDGET

    def test_reference_solver_stamps_budget_unknown(self):
        # A nonlinear mutant squeezed to one DPLL round answers unknown
        # for budget reasons, and says so.
        from repro.solver.budget import SolveDirective
        from repro.solver.solver import ReferenceSolver, SolverConfig

        solver = ReferenceSolver(SolverConfig.fast())
        script = parse_script(
            """
            (set-logic QF_NIA)
            (declare-fun x () Int)
            (declare-fun y () Int)
            (declare-fun z () Int)
            (assert (= (* x y) (+ z 17)))
            (assert (= (* y z) (+ x 23)))
            (assert (> x 3))
            """
        )
        outcome = solver.check_script(
            script,
            directive=SolveDirective(
                tier="hopeless",
                rounds=(1, 1000),
                nonlinear=(1, 1000),
            ),
        )
        if str(outcome.result) == "unknown":
            assert (
                unknown_kind(outcome.reason, outcome.stats) == UNKNOWN_BUDGET
            )
