"""Tests for GuardedSolver: watchdog, retries, containment, quarantine."""

import threading
import time

import pytest

from repro.core.config import YinYangConfig
from repro.core.yinyang import HARNESS, YinYang
from repro.robustness import (
    GuardedSolver,
    HarnessError,
    ResiliencePolicy,
    SolverQuarantined,
)
from repro.smtlib.parser import parse_script
from repro.solver.result import CheckOutcome, SolverCrash, SolverResult

SCRIPT = parse_script("(declare-fun x () Int)(assert (> x 0))(check-sat)")
SAT_SEEDS = [
    SCRIPT,
    parse_script("(declare-fun y () Int)(assert (< y 9))(check-sat)"),
]

NO_SLEEP = {"sleep": lambda seconds: None}


class ScriptableSolver:
    """Runs a scripted list of behaviors, then answers sat forever."""

    name = "scripted"

    def __init__(self, *behaviors):
        self.behaviors = list(behaviors)
        self.calls = 0

    def check_script(self, script):
        self.calls += 1
        action = self.behaviors.pop(0) if self.behaviors else "sat"
        if action == "sat":
            return CheckOutcome(SolverResult.SAT)
        if action == "hang":
            time.sleep(10)
            return CheckOutcome(SolverResult.SAT)
        if isinstance(action, BaseException):
            raise action
        raise AssertionError(f"unknown scripted action {action!r}")

    def active_faults(self):
        return ["delegated"]


class TestPolicyValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(check_timeout=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(quarantine_after=0)

    def test_backoff_is_capped_exponential(self):
        policy = ResiliencePolicy(backoff_base=0.1, backoff_cap=0.5)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(10) == pytest.approx(0.5)  # capped


class TestDelegation:
    def test_name_and_unknown_attrs_delegate(self):
        guard = GuardedSolver(ScriptableSolver())
        assert guard.name == "scripted"
        assert guard.active_faults() == ["delegated"]

    def test_clean_outcome_passes_through(self):
        guard = GuardedSolver(ScriptableSolver())
        outcome = guard.check_script(SCRIPT)
        assert outcome.result is SolverResult.SAT
        assert "guard_retries" not in outcome.stats


class TestWatchdog:
    def test_hung_check_times_out_as_unknown(self):
        guard = GuardedSolver(
            ScriptableSolver("hang"), ResiliencePolicy(check_timeout=0.2)
        )
        began = time.perf_counter()
        outcome = guard.check_script(SCRIPT)
        assert time.perf_counter() - began < 5  # did not wait out the hang
        assert outcome.result is SolverResult.UNKNOWN
        assert "deadline" in outcome.reason
        assert outcome.stats["guard_timeout"] is True
        assert guard.stats["timeouts"] == 1

    def test_solver_recovers_after_timeout(self):
        guard = GuardedSolver(
            ScriptableSolver("hang"), ResiliencePolicy(check_timeout=0.2)
        )
        assert guard.check_script(SCRIPT).result is SolverResult.UNKNOWN
        # The watchdog abandoned the hung helper; the next check gets a
        # fresh one and succeeds.
        assert guard.check_script(SCRIPT).result is SolverResult.SAT

    def test_no_timeout_means_no_watchdog_thread(self):
        before = threading.active_count()
        guard = GuardedSolver(ScriptableSolver())
        for _ in range(3):
            guard.check_script(SCRIPT)
        assert threading.active_count() == before

    def test_crash_inside_watchdog_propagates(self):
        guard = GuardedSolver(
            ScriptableSolver(SolverCrash("boom", kind="segfault")),
            ResiliencePolicy(check_timeout=5.0),
        )
        with pytest.raises(SolverCrash) as excinfo:
            guard.check_script(SCRIPT)
        assert excinfo.value.kind == "segfault"


class TestRetries:
    def test_transient_spawn_failures_retried(self):
        solver = ScriptableSolver(
            SolverCrash("no exec", kind="spawn"),
            SolverCrash("no exec", kind="spawn"),
            "sat",
        )
        guard = GuardedSolver(solver, ResiliencePolicy(retries=3, **NO_SLEEP))
        outcome = guard.check_script(SCRIPT)
        assert outcome.result is SolverResult.SAT
        assert outcome.stats["guard_retries"] == 2
        assert guard.stats["retries"] == 2

    def test_oserror_is_transient(self):
        solver = ScriptableSolver(OSError("fork failed"), "sat")
        guard = GuardedSolver(solver, ResiliencePolicy(retries=1, **NO_SLEEP))
        assert guard.check_script(SCRIPT).result is SolverResult.SAT

    def test_retries_exhausted_raises_with_count(self):
        solver = ScriptableSolver(*[SolverCrash("x", kind="spawn")] * 5)
        guard = GuardedSolver(solver, ResiliencePolicy(retries=2, **NO_SLEEP))
        with pytest.raises(SolverCrash) as excinfo:
            guard.check_script(SCRIPT)
        assert excinfo.value.retries == 2
        assert solver.calls == 3  # initial try + 2 retries

    def test_nontransient_crash_not_retried(self):
        solver = ScriptableSolver(SolverCrash("boom", kind="segfault"), "sat")
        guard = GuardedSolver(solver, ResiliencePolicy(retries=3, **NO_SLEEP))
        with pytest.raises(SolverCrash):
            guard.check_script(SCRIPT)
        assert solver.calls == 1

    def test_backoff_sleeps_between_retries(self):
        naps = []
        solver = ScriptableSolver(
            SolverCrash("x", kind="spawn"), SolverCrash("x", kind="spawn"), "sat"
        )
        policy = ResiliencePolicy(
            retries=2, backoff_base=0.1, backoff_cap=1.0, sleep=naps.append
        )
        GuardedSolver(solver, policy).check_script(SCRIPT)
        assert naps == [pytest.approx(0.1), pytest.approx(0.2)]


class TestContainment:
    def test_unexpected_exception_contained(self):
        guard = GuardedSolver(
            ScriptableSolver(ValueError("glue code blew up"))
        )
        with pytest.raises(HarnessError) as excinfo:
            guard.check_script(SCRIPT)
        assert excinfo.value.kind == "harness-error"
        assert isinstance(excinfo.value.original, ValueError)
        assert guard.stats["contained"] == 1

    def test_containment_can_be_disabled(self):
        guard = GuardedSolver(
            ScriptableSolver(ValueError("boom")),
            ResiliencePolicy(contain_errors=False),
        )
        with pytest.raises(ValueError):
            guard.check_script(SCRIPT)

    def test_keyboard_interrupt_never_contained(self):
        guard = GuardedSolver(ScriptableSolver(KeyboardInterrupt()))
        with pytest.raises(KeyboardInterrupt):
            guard.check_script(SCRIPT)


class TestQuarantine:
    def test_consecutive_crashes_trip_the_breaker(self):
        crashes = [SolverCrash("boom", kind="segfault")] * 3
        guard = GuardedSolver(
            ScriptableSolver(*crashes), ResiliencePolicy(quarantine_after=3)
        )
        for _ in range(3):
            with pytest.raises(SolverCrash):
                guard.check_script(SCRIPT)
        assert guard.quarantined
        with pytest.raises(SolverQuarantined):
            guard.check_script(SCRIPT)

    def test_success_resets_the_streak(self):
        behaviors = [
            SolverCrash("a", kind="segfault"),
            SolverCrash("b", kind="segfault"),
            "sat",
            SolverCrash("c", kind="segfault"),
            SolverCrash("d", kind="segfault"),
            "sat",
        ]
        guard = GuardedSolver(
            ScriptableSolver(*behaviors), ResiliencePolicy(quarantine_after=3)
        )
        for _ in behaviors:
            try:
                guard.check_script(SCRIPT)
            except SolverCrash:
                pass
        assert not guard.quarantined

    def test_timeouts_count_toward_quarantine(self):
        guard = GuardedSolver(
            ScriptableSolver("hang", "hang"),
            ResiliencePolicy(check_timeout=0.1, quarantine_after=2),
        )
        guard.check_script(SCRIPT)
        guard.check_script(SCRIPT)
        assert guard.quarantined


class TestYinYangIntegration:
    def test_policy_wraps_solvers(self):
        tool = YinYang(ScriptableSolver(), policy=ResiliencePolicy())
        assert isinstance(tool.solvers[0], GuardedSolver)

    def test_no_policy_means_no_wrapping(self):
        solver = ScriptableSolver()
        tool = YinYang(solver)
        assert tool.solvers[0] is solver

    def test_contained_error_becomes_harness_bug_record(self):
        solver = ScriptableSolver(*[ValueError("boom")] * 6)
        tool = YinYang(solver, YinYangConfig(seed=1), policy=ResiliencePolicy())
        report = tool.test("sat", SAT_SEEDS, iterations=6)
        assert report.contained_errors == 6
        assert all(b.kind == HARNESS for b in report.bugs)
        assert report.harness_errors == report.bugs
        assert "contained errors" in report.summary()

    def test_quarantined_solver_skipped_and_surfaced(self):
        crashes = [SolverCrash("boom", kind="segfault")] * 2
        solver = ScriptableSolver(*crashes)
        policy = ResiliencePolicy(quarantine_after=2)
        tool = YinYang(solver, YinYangConfig(seed=1), policy=policy)
        report = tool.test("sat", SAT_SEEDS, iterations=10)
        assert len(report.crashes) == 2
        assert report.quarantine_skips == 8
        assert report.quarantined == {"scripted"}
        assert solver.calls == 2  # never called after the breaker trips
        assert "quarantined: scripted" in report.summary()

    def test_campaign_degrades_to_remaining_solvers(self):
        dying = ScriptableSolver(*[SolverCrash("boom", kind="segfault")] * 2)
        healthy = ScriptableSolver()
        healthy.name = "healthy"
        policy = ResiliencePolicy(quarantine_after=2)
        tool = YinYang([dying, healthy], YinYangConfig(seed=1), policy=policy)
        report = tool.test("sat", SAT_SEEDS, iterations=8)
        assert report.quarantined == {"scripted"}
        assert healthy.calls == 8

    def test_retry_counter_reaches_report(self):
        behaviors = [SolverCrash("x", kind="spawn"), "sat"] * 4
        solver = ScriptableSolver(*behaviors)
        policy = ResiliencePolicy(retries=1, **NO_SLEEP)
        tool = YinYang(solver, YinYangConfig(seed=1), policy=policy)
        report = tool.test("sat", SAT_SEEDS, iterations=4)
        assert report.retries == 4
        assert report.bugs == []
        assert "4 retries" in report.summary()

    def test_report_merge_carries_counters(self):
        from repro.core.yinyang import YinYangReport

        a = YinYangReport(retries=1, timeouts=2, contained_errors=3)
        a.quarantined = {"s1"}
        b = YinYangReport(retries=10, quarantine_skips=4)
        b.quarantined = {"s2"}
        a.merge(b)
        assert a.retries == 11
        assert a.timeouts == 2
        assert a.contained_errors == 3
        assert a.quarantine_skips == 4
        assert a.quarantined == {"s1", "s2"}
