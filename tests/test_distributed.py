"""Distributed fleet test matrix: the coordinator + worker-fleet layer.

The headline invariant under test: a deterministic campaign's journal
is **byte-identical for every fleet shape** — serial, thread pool,
process pool, or a TCP worker fleet, at any worker count, under any
work-stealing order. The fleet-shape matrix (``fleet`` fixture in
``conftest.py``) runs one cheap campaign per shape and diffs the bytes
against the serial baseline.

Around that center sit the layers the invariant rests on:

- the wire protocol (length-prefixed frames) survives arbitrary
  segmentation, duplication of whole frames, truncation, and garbage —
  property-tested with Hypothesis;
- the lease merge is blind to completion order, empty sidecars, and
  workers that die before finishing a single iteration;
- seeded :class:`~repro.distributed.NetChaos` faults (mid-lease
  disconnects, dropped status frames, duplicated results, delays)
  leave the journal byte-identical — crash recovery is invisible;
- teardown of every backend (``ShardedPool``,
  ``SupervisedPoolBackend``, ``TcpFleet``) is idempotent and
  exception-safe.

Socket-spawning tests are cheap (one cell, six iterations, a single
deterministic solver); the disconnect soaks are marked ``chaos`` and
the four-worker shapes ``slow``, matching the CI lanes.
"""

import json
import os
import socket
import struct
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign.runner import deterministic_solvers, run_campaign
from repro.core.config import FusionConfig, YinYangConfig
from repro.core.parallel import (
    ShardTask,
    ShardedPool,
    SupervisedPoolBackend,
    WorkerSpec,
)
from repro.distributed import (
    FleetBroken,
    NetChaos,
    TcpFleet,
    parse_net_chaos,
)
from repro.distributed.netchaos import DELAY, DISCONNECT, DROP, DUP
from repro.distributed.protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    available_codecs,
    encode_frame,
    pack_blob,
    parse_address,
    task_from_wire,
    task_to_wire,
    unpack_blob,
)
from repro.observability.telemetry import Telemetry
from repro.robustness import SupervisorPolicy
from repro.robustness.journal import CampaignJournal, sidecar_path, sidecar_paths
from repro.seeds import build_corpus

CAMPAIGN = dict(
    iterations_per_cell=6,
    seed=6,
    performance_threshold=None,
)

NO_BACKOFF = dict(backoff_base=0.0, backoff_cap=0.0)

#: The sidecar meta stamped by every supervised run of CAMPAIGN at
#: workers=2 (see ``_run_cells_process``) — fabricated-sidecar tests
#: must match it exactly to exercise the "matching but empty" path.
SIDECAR_META = dict(
    seed=6, iterations_per_cell=6, workers=2, strategy="fusion"
)


def one_deterministic_solver():
    """A single-solver factory: one campaign cell with SatOnly below."""
    return deterministic_solvers()[:1]


class SatOnly:
    """A corpus view exposing only the ``sat`` seeds (fewer cells)."""

    def __init__(self, corpus):
        self._corpus = corpus

    def by_oracle(self, oracle):
        return self._corpus.by_oracle(oracle) if oracle == "sat" else []


@pytest.fixture(scope="module")
def corpora():
    return {"QF_S": SatOnly(build_corpus("QF_S", scale=0.0015, seed=5))}


@pytest.fixture(scope="module")
def baseline(corpora, tmp_path_factory):
    path = tmp_path_factory.mktemp("journal") / "serial.jsonl"
    result = run_campaign(
        corpora,
        journal=path,
        solver_factory=one_deterministic_solver,
        **CAMPAIGN,
    )
    return result, path.read_bytes()


# ---------------------------------------------------------------------------
# 1. The fleet-shape determinism matrix (the headline invariant)
# ---------------------------------------------------------------------------


class TestFleetShapeDeterminism:
    """One deterministic campaign, every fleet shape, identical bytes."""

    def test_journal_bytes_are_shape_blind(
        self, corpora, baseline, tmp_path, fleet, run_fleet_campaign
    ):
        path = tmp_path / "fleet.jsonl"
        result = run_fleet_campaign(
            corpora,
            fleet,
            journal=path,
            solver_factory=one_deterministic_solver,
            **CAMPAIGN,
        )
        assert path.read_bytes() == baseline[1]
        assert result.summary_counters() == baseline[0].summary_counters()
        # Transient state (worker sidecars, the coordinator's fleet
        # sidecar, lease progress logs) is gone once the journal holds
        # every cell.
        assert sidecar_paths(path) == []
        assert list(tmp_path.glob("*.lease-*")) == []

    def test_tcp_campaign_reports_clean_supervision(
        self, corpora, baseline, tmp_path
    ):
        result = run_campaign(
            {"QF_S": corpora["QF_S"]},
            journal=tmp_path / "tcp.jsonl",
            mode="tcp",
            workers=2,
            solver_factory=one_deterministic_solver,
            **CAMPAIGN,
        )
        # A failure-free fleet run crosses the supervisor without
        # tripping any of its recovery machinery.
        assert result.supervision == {
            "restarts": 0,
            "retries": 0,
            "requeues": 0,
            "heartbeat_kills": 0,
            "bisections": 0,
            "poisoned": 0,
        }
        assert result.poisoned == []

    def test_fleet_telemetry_counts_the_wire(self, corpora, tmp_path):
        telemetry = Telemetry()
        try:
            run_campaign(
                corpora,
                journal=tmp_path / "tel.jsonl",
                mode="tcp",
                workers=2,
                telemetry=telemetry,
                solver_factory=one_deterministic_solver,
                **CAMPAIGN,
            )
            counters = telemetry.snapshot()["counters"]
        finally:
            telemetry.close()
        # One worker may steal both leases before the second finishes
        # connecting, so connects is 1 or 2 — never more.
        assert 1 <= counters["fleet.connects"] <= 2
        assert counters["fleet.leases"] == 2  # one per shard of the cell
        assert counters["fleet.results"] == 2
        assert counters["fleet.steals"] == 2
        assert counters.get("fleet.disconnects", 0) == 0

    def test_external_workers_serve_a_spawnless_fleet(
        self, corpora, baseline, tmp_path
    ):
        """The two-terminal setup: ``--spawn-workers 0`` plus two
        separately started ``yinyang worker --connect`` processes."""
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "worker",
                    "--connect",
                    f"127.0.0.1:{port}",
                ],
                env=env,
            )
            for _ in range(2)
        ]
        try:
            path = tmp_path / "external.jsonl"
            run_campaign(
                corpora,
                journal=path,
                mode="tcp",
                workers=2,
                listen=("127.0.0.1", port),
                spawn_workers=0,
                solver_factory=one_deterministic_solver,
                **CAMPAIGN,
            )
            assert path.read_bytes() == baseline[1]
            # The coordinator's teardown shuts both workers down cleanly.
            assert [proc.wait(timeout=10) for proc in procs] == [0, 0]
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()


# ---------------------------------------------------------------------------
# 2. The frame protocol (property-tested)
# ---------------------------------------------------------------------------

_MESSAGES = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(
        st.integers(min_value=-(2**31), max_value=2**31),
        st.text(max_size=32),
        st.none(),
        st.booleans(),
        st.lists(st.integers(min_value=0, max_value=9), max_size=4),
    ),
    max_size=5,
)


class TestFrameProtocol:
    @given(messages=st.lists(_MESSAGES, min_size=1, max_size=6), data=st.data())
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_round_trip_survives_any_segmentation(self, messages, data):
        wire = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        decoded = []
        cursor = 0
        while cursor < len(wire):
            step = data.draw(
                st.integers(min_value=1, max_value=len(wire) - cursor),
                label="chunk",
            )
            decoded.extend(decoder.feed(wire[cursor : cursor + step]))
            cursor += step
        assert decoded == messages
        assert not decoder.pending

    @given(message=_MESSAGES, cut=st.integers(min_value=1, max_value=3))
    @settings(max_examples=40)
    def test_truncated_tail_is_pending_never_decoded(self, message, cut):
        wire = encode_frame(message)
        decoder = FrameDecoder()
        assert decoder.feed(wire[:-cut]) == []
        assert decoder.pending
        assert decoder.feed(wire[-cut:]) == [message]
        assert not decoder.pending

    @given(message=_MESSAGES)
    @settings(max_examples=25)
    def test_duplicated_frames_decode_twice(self, message):
        wire = encode_frame(message)
        assert FrameDecoder().feed(wire + wire) == [message, message]

    def test_oversize_length_prefix_is_rejected(self):
        wire = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="ceiling"):
            FrameDecoder().feed(wire)

    @given(garbage=st.binary(min_size=1, max_size=64))
    @settings(max_examples=40)
    def test_garbage_payload_raises_or_stays_pending(self, garbage):
        """Arbitrary bytes after a valid length prefix either decode as
        JSON, raise ProtocolError, or await more input — never crash
        with anything else, never silently yield a non-object."""
        wire = struct.pack(">I", len(garbage)) + garbage
        decoder = FrameDecoder()
        try:
            for message in decoder.feed(wire):
                assert isinstance(message, dict)
        except ProtocolError:
            pass

    def test_non_object_payload_is_a_protocol_error(self):
        payload = b"[1,2,3]"
        wire = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ProtocolError, match="object"):
            FrameDecoder().feed(wire)

    def test_json_codec_is_always_available(self):
        assert "json" in available_codecs()

    def test_missing_msgpack_is_a_clean_error(self):
        if "msgpack" in available_codecs():
            pytest.skip("msgpack installed in this environment")
        with pytest.raises(ProtocolError, match="msgpack"):
            encode_frame({}, codec="msgpack")

    def test_unknown_codec_is_rejected(self):
        with pytest.raises(ProtocolError, match="unknown"):
            encode_frame({}, codec="pigeon")

    def test_blob_round_trip(self):
        blob = pack_blob({"nested": (1, 2), "config": YinYangConfig(seed=3)})
        restored = unpack_blob(blob)
        assert restored["nested"] == (1, 2)
        assert restored["config"].seed == 3

    def test_undecodable_blob_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="blob"):
            unpack_blob("not base64 pickle!")

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7777") == ("127.0.0.1", 7777)
        assert parse_address("localhost:0") == ("localhost", 0)
        with pytest.raises(ValueError):
            parse_address("7777")
        with pytest.raises(ValueError):
            parse_address(":7777")


class TestTaskWireCodec:
    def _task(self, **overrides):
        task = dict(
            oracle="sat",
            seed_texts=("(assert true)", "(assert false)"),
            logics=("QF_S", "QF_S"),
            iterations=6,
            shard=1,
            of=2,
            seed=6,
            cell=("z3-like", "QF_S", "sat"),
            solver_names=("z3-like",),
            quarantined=("cvc4-like",),
            strategy="fusion",
            indices=(1, 3, 5),
            attempt=2,
            lease_id=17,
            heartbeat_dir="/tmp/hb",
            progress_path="/tmp/j.jsonl.lease-x-1of2.jsonl",
        )
        task.update(overrides)
        return ShardTask(**task)

    def test_round_trip_is_identity(self):
        task = self._task()
        assert task_from_wire(task_to_wire(task)) == task

    def test_round_trip_preserves_optional_nones(self):
        task = self._task(
            cell=None,
            solver_names=None,
            indices=None,
            heartbeat_dir=None,
            progress_path=None,
            quarantined=(),
        )
        restored = task_from_wire(task_to_wire(task))
        assert restored == task
        assert restored.indices is None  # bisection relies on the None

    def test_wire_form_is_json_clean(self):
        wire = task_to_wire(self._task())
        assert json.loads(json.dumps(wire)) == wire

    def test_json_round_trip_restores_tuples(self):
        wire = json.loads(json.dumps(task_to_wire(self._task())))
        restored = task_from_wire(wire)
        assert restored.cell == ("z3-like", "QF_S", "sat")
        assert restored.indices == (1, 3, 5)

    def test_malformed_lease_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="malformed"):
            task_from_wire({"oracle": "sat"})


# ---------------------------------------------------------------------------
# 3. NetChaos: plan parsing, gating, and seeded reproducibility
# ---------------------------------------------------------------------------


class TestNetChaosPlan:
    def test_parse_full_spec(self):
        plan = parse_net_chaos(
            "disconnect=3,11;attempts=2;drop=0.2;dup=0.25;"
            "delay=0.05;delay_seconds=0.001;seed=9"
        )
        assert plan == NetChaos(
            disconnect_at=(3, 11),
            attempts=2,
            p_drop_status=0.2,
            p_dup_result=0.25,
            p_delay=0.05,
            delay_seconds=0.001,
            seed=9,
        )

    def test_parse_rejects_unknown_and_malformed_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            parse_net_chaos("teleport=1")
        with pytest.raises(ValueError, match="key=value"):
            parse_net_chaos("disconnect")

    def test_probabilities_are_validated(self):
        with pytest.raises(ValueError, match="p_drop_status"):
            NetChaos(p_drop_status=1.5)
        with pytest.raises(ValueError, match="attempts"):
            NetChaos(attempts=-1)

    def test_disconnects_are_attempt_gated(self):
        plan = NetChaos(disconnect_at=(4,), attempts=1)
        assert plan.fault_for(4, 0) == DISCONNECT
        assert plan.fault_for(4, 1) is None  # the retry sails through
        assert plan.fault_for(5, 0) is None

    def test_bound_faults_replay_per_worker(self):
        """Same seed, same frame sequence → the same injected faults;
        distinct worker ids → independent streams."""
        plan = NetChaos(p_drop_status=0.5, p_dup_result=0.5, seed=7)
        frames = [{"type": "status"}, {"type": "result"}] * 20

        class _Sink:
            def _send_raw(self, message):
                pass

        def decisions(worker_id):
            bound = plan.bind(worker_id)
            return (
                [bound.on_send(_Sink(), dict(f)) for f in frames],
                dict(bound.injected),
            )

        assert decisions(0) == decisions(0)
        assert decisions(0) != decisions(1)
        drops, injected = decisions(0)
        assert injected[DROP] == sum(drops)
        assert injected[DUP] > 0
        assert injected[DELAY] == 0  # p_delay=0: no sleeps injected


# ---------------------------------------------------------------------------
# 4. Merge edge cases: order, emptiness, and zero-progress deaths
# ---------------------------------------------------------------------------


class TestMergeEdgeCases:
    def test_empty_sidecar_with_matching_meta_is_harmless(
        self, corpora, baseline, tmp_path
    ):
        """A fleet sidecar holding meta but zero shards — a coordinator
        that died before merging anything — neither breaks the resume
        nor shadows any cell."""
        path = tmp_path / "resume.jsonl"
        side = CampaignJournal(sidecar_path(path, "fleet"))
        side.ensure_meta(**SIDECAR_META)
        assert side.completed_shards() == {}
        run_campaign(
            corpora,
            journal=path,
            mode="tcp",
            workers=2,
            resume=True,
            solver_factory=one_deterministic_solver,
            **CAMPAIGN,
        )
        assert path.read_bytes() == baseline[1]
        assert sidecar_paths(path) == []

    def test_mismatched_sidecar_meta_is_ignored_wholesale(
        self, corpora, baseline, tmp_path
    ):
        path = tmp_path / "resume.jsonl"
        side = CampaignJournal(sidecar_path(path, "fleet"))
        side.ensure_meta(**dict(SIDECAR_META, workers=3))  # stale partition
        run_campaign(
            corpora,
            journal=path,
            mode="tcp",
            workers=2,
            resume=True,
            solver_factory=one_deterministic_solver,
            **CAMPAIGN,
        )
        assert path.read_bytes() == baseline[1]

    @pytest.mark.parametrize("steal_seed", [0, 1, 2, 5])
    def test_out_of_order_lease_completion_merges_identically(
        self, corpora, baseline, tmp_path, steal_seed
    ):
        """One worker serving a two-shard cell completes the shards in
        whatever order the steal RNG picks — including shard 1 before
        shard 0 — and the merged journal cannot tell."""
        path = tmp_path / f"steal{steal_seed}.jsonl"
        run_campaign(
            corpora,
            journal=path,
            mode="tcp",
            workers=2,
            spawn_workers=1,
            steal_seed=steal_seed,
            solver_factory=one_deterministic_solver,
            **CAMPAIGN,
        )
        assert path.read_bytes() == baseline[1]

    def test_steal_seeds_cover_both_completion_orders(self):
        """The parametrization above is only meaningful if the seeds
        actually produce different first picks from a two-lease queue."""
        from random import Random

        picks = {
            Random(f"fleet-steal:{seed}").randrange(2) for seed in (0, 1, 2, 5)
        }
        assert picks == {0, 1}

    @pytest.mark.chaos
    def test_zero_iteration_disconnect_leaves_no_trace(
        self, corpora, baseline, tmp_path
    ):
        """A worker that dies before finishing a *single* iteration of
        its lease (disconnect planned at each shard's first index)
        contributes nothing — no partial shard entry, no stale
        checkpoint shadowing — and the retried lease restores the exact
        bytes."""
        path = tmp_path / "zero.jsonl"
        result = run_campaign(
            corpora,
            journal=path,
            mode="tcp",
            workers=2,
            net_chaos=NetChaos(disconnect_at=(0, 1), attempts=1),
            supervise=SupervisorPolicy(max_worker_restarts=20, **NO_BACKOFF),
            solver_factory=one_deterministic_solver,
            **CAMPAIGN,
        )
        # Indices 0 and 1 open shards 0 and 1 at workers=2: both leases
        # die with zero iterations done, both retries succeed.
        assert result.supervision["retries"] == 2
        assert result.supervision["restarts"] == 0
        assert result.poisoned == []
        assert path.read_bytes() == baseline[1]
        assert sidecar_paths(path) == []
        assert list(tmp_path.glob("*.lease-*")) == []


# ---------------------------------------------------------------------------
# 5. The chaos soak: disconnects plus frame noise, byte-identical output
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestNetChaosSoak:
    def test_disconnects_and_frame_noise_are_invisible(
        self, corpora, baseline, tmp_path
    ):
        """Mid-lease partitions at two iterations plus heavy seeded
        frame faults (half of status frames dropped, half of results
        duplicated, a fifth of frames delayed): the supervisor retries
        every dropped lease and the journal is byte-identical."""
        path = tmp_path / "soak.jsonl"
        telemetry = Telemetry()
        try:
            result = run_campaign(
                corpora,
                journal=path,
                mode="tcp",
                workers=2,
                net_chaos=NetChaos(
                    disconnect_at=(1, 4),
                    attempts=1,
                    p_drop_status=0.5,
                    p_dup_result=0.5,
                    p_delay=0.2,
                    delay_seconds=0.005,
                    seed=9,
                ),
                supervise=SupervisorPolicy(max_worker_restarts=20, **NO_BACKOFF),
                telemetry=telemetry,
                solver_factory=one_deterministic_solver,
                **CAMPAIGN,
            )
            counters = telemetry.snapshot()["counters"]
        finally:
            telemetry.close()
        assert path.read_bytes() == baseline[1]
        assert result.supervision["retries"] >= 2
        assert result.supervision["poisoned"] == 0
        assert result.poisoned == []
        # The wire actually saw the injected trouble: each planned
        # disconnect dropped a connection, and the fleet quietly
        # replaced the lost workers without a supervisor restart or a
        # whole-fleet respawn.
        assert counters["fleet.disconnects"] >= 2
        assert counters["fleet.worker_respawns"] >= 2
        assert counters.get("fleet.respawns", 0) == 0
        assert result.supervision["restarts"] == 0

    def test_steal_orders_agree_under_chaos(self, corpora, baseline, tmp_path):
        """Determinism × chaos × steal-order: a different steal seed
        shifts which worker dies holding which lease, and the journal
        still cannot tell."""
        path = tmp_path / "soak-steal.jsonl"
        run_campaign(
            corpora,
            journal=path,
            mode="tcp",
            workers=2,
            steal_seed=11,
            net_chaos=NetChaos(disconnect_at=(2,), attempts=1),
            supervise=SupervisorPolicy(max_worker_restarts=20, **NO_BACKOFF),
            solver_factory=one_deterministic_solver,
            **CAMPAIGN,
        )
        assert path.read_bytes() == baseline[1]


# ---------------------------------------------------------------------------
# 6. Teardown idempotence (the hardening satellite)
# ---------------------------------------------------------------------------


def _spec():
    return WorkerSpec(
        solver_factory=one_deterministic_solver,
        config=YinYangConfig(fusion=FusionConfig(), seed=6),
    )


class TestTeardownIdempotence:
    def test_sharded_pool_shutdown_twice(self):
        pool = ShardedPool(1, _spec())
        pool.shutdown()
        pool.shutdown()  # must not raise

    def test_sharded_pool_rejects_submit_after_shutdown(self):
        pool = ShardedPool(1, _spec())
        pool.shutdown()
        task = ShardTask(
            oracle="sat",
            seed_texts=("(assert true)",),
            logics=("QF_S",),
            iterations=1,
            shard=0,
            of=1,
            seed=6,
        )
        with pytest.raises(RuntimeError, match="shut-down"):
            pool.submit(task)

    def test_supervised_backend_close_twice(self, tmp_path):
        backend = SupervisedPoolBackend(1, _spec())
        heartbeat_dir = backend.heartbeat_dir
        backend.close()
        backend.close()  # idempotent: no double-rmtree, no executor error
        assert not os.path.exists(heartbeat_dir)

    def test_supervised_backend_rejects_respawn_after_close(self):
        backend = SupervisedPoolBackend(1, _spec())
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            backend.respawn()

    def test_tcp_fleet_close_twice(self):
        fleet = TcpFleet(2, _spec(), spawn_workers=0)
        heartbeat_dir = fleet.heartbeat_dir
        fleet.close()
        fleet.close()
        assert not os.path.exists(heartbeat_dir)

    def test_tcp_fleet_rejects_submit_after_close(self):
        fleet = TcpFleet(1, _spec(), spawn_workers=0)
        fleet.close()
        task = ShardTask(
            oracle="sat",
            seed_texts=("(assert true)",),
            logics=("QF_S",),
            iterations=1,
            shard=0,
            of=1,
            seed=6,
            lease_id=1,
        )
        with pytest.raises(FleetBroken):
            fleet.submit(task)

    def test_tcp_fleet_requires_leases(self):
        with TcpFleet(1, _spec(), spawn_workers=0) as fleet:
            task = ShardTask(
                oracle="sat",
                seed_texts=("(assert true)",),
                logics=("QF_S",),
                iterations=1,
                shard=0,
                of=1,
                seed=6,
            )
            with pytest.raises(ValueError, match="lease"):
                fleet.submit(task)

    def test_tcp_fleet_close_fails_inflight_leases(self):
        """A fleet closed with a lease in flight fails that lease's
        future instead of leaving a waiter hanging forever."""
        fleet = TcpFleet(1, _spec(), spawn_workers=0)
        try:
            task = ShardTask(
                oracle="sat",
                seed_texts=("(assert true)",),
                logics=("QF_S",),
                iterations=1,
                shard=0,
                of=1,
                seed=6,
                lease_id=1,
            )
            future = fleet.submit(task)  # queued: no worker will connect
        finally:
            fleet.close()
        assert future.cancelled() or isinstance(
            future.exception(timeout=1), FleetBroken
        )

    def test_handshake_rejects_wrong_protocol_version(self):
        """A peer speaking another protocol version is turned away at
        the door — its connection closes without ever joining the
        fleet."""
        with TcpFleet(1, _spec(), spawn_workers=0) as fleet:
            host, port = fleet.address
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.sendall(
                    encode_frame({"type": "hello", "pid": 1, "protocol": 999})
                )
                assert sock.recv(1) == b""  # coordinator hung up
            assert fleet._remotes == {}
