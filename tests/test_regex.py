"""Unit tests for the derivative-based regex engine."""

import re as python_re

import pytest

from repro.semantics import regex as rx
from repro.semantics.model import Model
from repro.smtlib.parser import parse_term
from repro.smtlib.ast import Var
from repro.smtlib.sorts import STRING


class TestConstruction:
    def test_literal_empty_is_epsilon(self):
        assert rx.literal("") == rx.EPSILON

    def test_concat_identity(self):
        r = rx.literal("a")
        assert rx.concat(r, rx.EPSILON) == r

    def test_concat_annihilator(self):
        assert rx.concat(rx.literal("a"), rx.NONE) == rx.NONE

    def test_union_dedupes(self):
        r = rx.literal("a")
        assert rx.union(r, r) == r

    def test_union_drops_none(self):
        r = rx.literal("a")
        assert rx.union(r, rx.NONE) == r

    def test_star_idempotent(self):
        r = rx.star(rx.literal("a"))
        assert rx.star(r) == r

    def test_star_of_epsilon(self):
        assert rx.star(rx.EPSILON) == rx.EPSILON

    def test_double_complement(self):
        r = rx.literal("a")
        assert rx.complement(rx.complement(r)) == r

    def test_empty_range(self):
        assert rx.char_range("b", "a") == rx.NONE

    def test_multichar_range_bound(self):
        assert rx.char_range("ab", "c") == rx.NONE


class TestMatching:
    def test_literal(self):
        r = rx.literal("abc")
        assert rx.matches(r, "abc")
        assert not rx.matches(r, "ab")
        assert not rx.matches(r, "abcd")

    def test_star(self):
        r = rx.star(rx.literal("aa"))
        assert rx.matches(r, "")
        assert rx.matches(r, "aaaa")
        assert not rx.matches(r, "aaa")

    def test_union(self):
        r = rx.union(rx.literal("cat"), rx.literal("dog"))
        assert rx.matches(r, "cat") and rx.matches(r, "dog")
        assert not rx.matches(r, "cow")

    def test_inter(self):
        # (a|b)* and strings of length 2.
        two = rx.concat(rx.ALLCHAR, rx.ALLCHAR)
        r = rx.inter(rx.star(rx.char_range("a", "b")), two)
        assert rx.matches(r, "ab")
        assert not rx.matches(r, "a")
        assert not rx.matches(r, "zz"[:2]) is False or True  # zz rejected below
        assert not rx.matches(r, "zz")

    def test_complement(self):
        r = rx.complement(rx.literal("x"))
        assert rx.matches(r, "")
        assert rx.matches(r, "y")
        assert not rx.matches(r, "x")

    def test_plus(self):
        r = rx.plus(rx.literal("ab"))
        assert not rx.matches(r, "")
        assert rx.matches(r, "abab")

    def test_opt(self):
        r = rx.opt(rx.literal("a"))
        assert rx.matches(r, "") and rx.matches(r, "a")
        assert not rx.matches(r, "aa")

    def test_range(self):
        r = rx.char_range("a", "f")
        assert rx.matches(r, "c")
        assert not rx.matches(r, "g")
        assert not rx.matches(r, "ab")

    @pytest.mark.parametrize(
        "pattern,smt",
        [
            ("(ab)*", rx.star(rx.literal("ab"))),
            ("a|b*", rx.union(rx.literal("a"), rx.star(rx.literal("b")))),
            ("a(b|c)d", rx.concat(rx.literal("a"), rx.union(rx.literal("b"), rx.literal("c")), rx.literal("d"))),
        ],
    )
    def test_against_python_re(self, pattern, smt):
        compiled = python_re.compile(pattern)
        for text in ("", "a", "b", "ab", "abd", "acd", "abab", "bbb", "ad"):
            assert bool(compiled.fullmatch(text)) == rx.matches(smt, text)


class TestLanguageAnalysis:
    def test_empty_language(self):
        assert rx.is_empty(rx.NONE)
        assert rx.is_empty(rx.inter(rx.literal("a"), rx.literal("b")))

    def test_nonempty_language(self):
        assert not rx.is_empty(rx.star(rx.literal("aa")))

    def test_empty_intersection_of_star_and_length(self):
        # (aaa)* ∩ strings of length 1 is empty.
        one = rx.ALLCHAR
        assert rx.is_empty(rx.inter(rx.star(rx.literal("aaa")), one))

    def test_shortest_member_epsilon(self):
        assert rx.shortest_member(rx.star(rx.literal("ab"))) == ""

    def test_shortest_member_literal(self):
        assert rx.shortest_member(rx.literal("xyz")) == "xyz"

    def test_shortest_member_none(self):
        assert rx.shortest_member(rx.NONE) is None

    def test_shortest_member_plus(self):
        assert rx.shortest_member(rx.plus(rx.literal("ab"))) == "ab"

    def test_enumerate_members(self):
        members = rx.enumerate_members(rx.star(rx.literal("a")), limit=4)
        assert members == ["", "a", "aa", "aaa"]

    def test_enumerate_respects_limit(self):
        members = rx.enumerate_members(rx.ALL, limit=3)
        assert len(members) == 3


class TestFromTerm:
    def _eval(self, term):
        from repro.semantics.evaluator import evaluate

        return evaluate(term, Model())

    def test_str_to_re(self):
        term = parse_term('(str.to.re "ab")')
        assert rx.regex_from_term(term, self._eval) == rx.literal("ab")

    def test_star_of_to_re(self):
        term = parse_term('(re.* (str.to.re "aa"))')
        r = rx.regex_from_term(term, self._eval)
        assert rx.matches(r, "aaaa")
        assert not rx.matches(r, "a")

    def test_range_term(self):
        term = parse_term('(re.range "a" "c")')
        r = rx.regex_from_term(term, self._eval)
        assert rx.matches(r, "b")

    def test_union_inter_opt(self):
        term = parse_term('(re.union (re.opt (str.to.re "x")) re.none)')
        r = rx.regex_from_term(term, self._eval)
        assert rx.matches(r, "") and rx.matches(r, "x")

    def test_nonregex_term_rejected(self):
        with pytest.raises(TypeError):
            rx.regex_from_term(Var("s", STRING), self._eval)
