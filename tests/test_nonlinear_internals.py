"""Unit tests for nonlinear internals: intervals, substitution, elimination."""

from fractions import Fraction as F

import pytest

from repro.smtlib.ast import Var
from repro.smtlib.parser import parse_term
from repro.smtlib.sorts import REAL
from repro.solver.nonlinear import (
    FULL,
    Interval,
    PolyAtom,
    _iv_add,
    _iv_div,
    _iv_mul,
    _iv_neg,
    _iv_pow,
    _iv_scale,
    _poly_pow,
    _poly_substitute,
    _propagate_equalities,
    poly_from_term,
)

X, Y, Z = (Var(n, REAL) for n in "xyz")


def poly(text):
    return poly_from_term(parse_term(text, [X, Y, Z]))


def iv(lo, hi, lo_open=False, hi_open=False):
    return Interval(
        None if lo is None else F(lo),
        None if hi is None else F(hi),
        lo_open,
        hi_open,
    )


class TestIntervalOps:
    def test_add(self):
        assert _iv_add(iv(1, 2), iv(3, 4)) == iv(4, 6)

    def test_add_unbounded(self):
        result = _iv_add(iv(1, None), iv(0, 5))
        assert result.lo == 1 and result.hi is None

    def test_add_openness_propagates(self):
        result = _iv_add(iv(0, 1, lo_open=True), iv(0, 1))
        assert result.lo_open is True and result.hi_open is False

    def test_neg_swaps(self):
        result = _iv_neg(iv(1, 2, lo_open=True))
        assert result == iv(-2, -1, hi_open=True)

    def test_scale_negative(self):
        assert _iv_scale(iv(1, 3), F(-2)) == iv(-6, -2)

    def test_scale_zero(self):
        assert _iv_scale(iv(1, 3), F(0)) == iv(0, 0)

    def test_mul_signs(self):
        assert _iv_mul(iv(1, 2), iv(-3, -1)) == iv(-6, -1)
        assert _iv_mul(iv(-2, 3), iv(-1, 4)) == iv(-8, 12)

    def test_mul_semibounded(self):
        result = _iv_mul(iv(1, 1), iv(0, None))
        assert result.lo == 0 and result.hi is None

    def test_mul_zero_times_unbounded(self):
        result = _iv_mul(iv(0, 0), FULL)
        assert result == iv(0, 0)

    def test_mul_open_zero_stays_open(self):
        a = iv(0, None, lo_open=True)
        b = iv(0, None, lo_open=True)
        result = _iv_mul(a, b)
        assert result.lo == 0 and result.lo_open is True

    def test_mul_attained_zero_closes(self):
        a = iv(0, 2)  # attains zero
        b = iv(0, None, lo_open=True)
        result = _iv_mul(a, b)
        assert result.lo == 0 and result.lo_open is False

    def test_pow_even_is_nonnegative(self):
        result = _iv_pow(iv(-3, 2), 2)
        assert result.lo == 0 and result.hi == 9

    def test_pow_even_open_when_zero_not_attained(self):
        result = _iv_pow(iv(0, None, lo_open=True), 2)
        assert result.lo == 0 and result.lo_open is True

    def test_div_positive(self):
        assert _iv_div(iv(1, 4), iv(2, 4)) == iv(F(1, 4), 2)

    def test_div_by_interval_containing_zero(self):
        assert _iv_div(iv(1, 2), iv(-1, 1)) == FULL

    def test_div_by_open_positive(self):
        result = _iv_div(iv(1, 1), iv(0, None, lo_open=True))
        assert result.lo == 0 and result.hi is None

    def test_empty_detection(self):
        assert iv(2, 1).is_empty()
        assert iv(1, 1, lo_open=True).is_empty()
        assert not iv(1, 1).is_empty()

    def test_intersect_equal_bounds_open_wins(self):
        result = iv(0, 5).intersect(iv(0, 5, lo_open=True))
        assert result.lo_open is True


class TestPolySubstitution:
    def test_poly_pow(self):
        squared = _poly_pow(poly("(+ x 1.0)"), 2)
        assert squared == poly("(+ (* x x) (* 2.0 x) 1.0)")

    def test_substitute_linear(self):
        # x := y + 1 in x*x  ->  y^2 + 2y + 1
        result = _poly_substitute(poly("(* x x)"), "x", poly("(+ y 1.0)"))
        assert result == poly("(+ (* y y) (* 2.0 y) 1.0)")

    def test_substitute_absent_var(self):
        target = poly("(+ y 2.0)")
        assert _poly_substitute(target, "x", poly("y")) == target


class TestPropagation:
    def test_univariate_pin(self):
        atoms = [
            PolyAtom.make(poly("(- x 3.0)"), "="),
            PolyAtom.make(poly("(- (* x y) 6.0)"), "="),
        ]
        status, fixed, eliminations, reduced = _propagate_equalities(atoms, frozenset())
        assert status == "sat"
        assert fixed["x"] == 3
        # The residual equation is now linear in y: 3y - 6 = 0 -> pinned too.
        assert fixed.get("y") == 2
        assert reduced == []

    def test_constant_conflict(self):
        atoms = [PolyAtom.make({(): F(1)}, "=")]
        status, *_ = _propagate_equalities(atoms, frozenset())
        assert status == "unsat"

    def test_integer_pin_must_be_integral(self):
        atoms = [PolyAtom.make(poly("(- (* 2.0 x) 1.0)"), "=")]
        status, *_ = _propagate_equalities(atoms, {"x"})
        assert status == "unsat"

    def test_multivariate_elimination_records_expression(self):
        atoms = [
            PolyAtom.make(poly("(- x y)"), "="),  # x = y
            PolyAtom.make(poly("(- (* x y) 4.0)"), "="),
        ]
        status, fixed, eliminations, reduced = _propagate_equalities(atoms, frozenset())
        assert status == "sat"
        assert eliminations, "one variable must have been eliminated"
        # Residual: y^2 = 4 (or x^2 = 4) — still nonlinear, not decided.
        assert len(reduced) == 1
