"""Cross-shard determinism suite: sharding must be invisible to the oracle.

The headline guarantee of the parallel campaign architecture: for a
fixed seed, every execution mode (serial / thread / process / tcp
fleet) and every worker count produces

- identical bug records (byte-for-byte on their serialized form),
- identical ``found_faults`` triage,
- identical deterministic summary counters, and
- byte-identical campaign journals.

If any of these ever diverges, parallelism has silently altered what
the campaign reports — the one failure mode a metamorphic testing tool
cannot tolerate.
"""

import json

import pytest

from repro.campaign.runner import deterministic_solvers, run_campaign
from repro.core.config import YinYangConfig
from repro.core.yinyang import YinYang, merge_shard_reports, shard_indices
from repro.observability.telemetry import Telemetry
from repro.robustness.journal import serialize_bug_record, sidecar_paths
from repro.seeds import build_corpus

# deterministic_solvers: no wall-clock solver deadline, so a loaded CI
# machine cannot flip a borderline check to `unknown` in one mode only.
CAMPAIGN = dict(
    iterations_per_cell=8,
    seed=6,
    performance_threshold=None,
    solver_factory=deterministic_solvers,
)


@pytest.fixture(scope="module")
def corpora():
    return {
        "QF_S": build_corpus("QF_S", scale=0.0015, seed=5),
        "QF_LIA": build_corpus("QF_LIA", scale=0.003, seed=5),
    }


@pytest.fixture(scope="module")
def baseline(corpora, tmp_path_factory):
    path = tmp_path_factory.mktemp("journal") / "serial.jsonl"
    result = run_campaign(corpora, journal=path, **CAMPAIGN)
    return result, path.read_bytes()


@pytest.fixture(scope="module")
def process2(corpora, tmp_path_factory):
    path = tmp_path_factory.mktemp("journal") / "process2.jsonl"
    result = run_campaign(
        corpora, journal=path, mode="process", workers=2, **CAMPAIGN
    )
    return result, path.read_bytes(), path


def records_of(result):
    return [json.dumps(serialize_bug_record(r), sort_keys=True) for r in result.records]


def fault_counts(result):
    return {
        solver: {fault: len(records) for fault, records in faults.items()}
        for solver, faults in result.found_faults().items()
    }


class TestFleetShapeDeterminism:
    """The cross-shape matrix (``fleet`` fixture): serial, thread and
    process pools and tcp worker fleets — including distinct
    work-stealing orders — produce the same records and the same
    journal bytes. This is the invariant every other suite leans on."""

    def test_records_and_journal_bytes_match_serial(
        self, corpora, baseline, tmp_path, fleet, run_fleet_campaign
    ):
        path = tmp_path / "fleet.jsonl"
        result = run_fleet_campaign(corpora, fleet, journal=path, **CAMPAIGN)
        assert records_of(result) == records_of(baseline[0])
        assert path.read_bytes() == baseline[1]


class TestThreadDeterminism:
    def test_counters_and_faults_match_serial(self, corpora, baseline):
        result = run_campaign(corpora, mode="thread", workers=4, **CAMPAIGN)
        assert result.summary_counters() == baseline[0].summary_counters()
        assert fault_counts(result) == fault_counts(baseline[0])


class TestProcessDeterminism:
    def test_bug_records_match_serial(self, baseline, process2):
        assert records_of(process2[0]) == records_of(baseline[0])

    def test_counters_and_faults_match_serial(self, baseline, process2):
        assert process2[0].summary_counters() == baseline[0].summary_counters()
        assert fault_counts(process2[0]) == fault_counts(baseline[0])

    def test_journal_bytes_match_serial(self, baseline, process2):
        assert process2[1] == baseline[1]

    def test_sidecars_removed_after_completion(self, process2):
        assert sidecar_paths(process2[2]) == []

    def test_per_shard_counters_cover_every_cell(self, baseline, process2):
        result = process2[0]
        assert set(result.shard_counters) == set(baseline[0].reports)
        for key, shards in result.shard_counters.items():
            assert sum(c["iterations"] for c in shards) == CAMPAIGN[
                "iterations_per_cell"
            ]
            assert [c["shard"] for c in shards] == sorted(c["shard"] for c in shards)

class TestTelemetryInvisibility:
    """Telemetry is an observer: attaching it — metrics only or fully
    traced — must leave journal bytes, bug records and summaries
    untouched, in every mode and at every worker count. Anything else
    would mean observation perturbed the campaign's RNG streams or its
    durable output."""

    def _run(self, corpora, path, trace, mode="serial", workers=1):
        telemetry = Telemetry(trace=trace, profile=True)
        try:
            result = run_campaign(
                corpora,
                journal=path,
                mode=mode,
                workers=workers,
                telemetry=telemetry,
                **CAMPAIGN,
            )
            snapshot = telemetry.snapshot()
        finally:
            telemetry.close()
        return result, snapshot

    @pytest.mark.parametrize("trace", [False, True], ids=["metrics", "traced"])
    def test_serial_journal_bytes_unchanged(self, corpora, baseline, tmp_path, trace):
        path = tmp_path / "tel-serial.jsonl"
        result, _ = self._run(corpora, path, trace)
        assert path.read_bytes() == baseline[1]
        assert result.summary() == baseline[0].summary()
        assert records_of(result) == records_of(baseline[0])

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_thread_journal_bytes_unchanged(self, corpora, baseline, tmp_path, workers):
        path = tmp_path / f"tel-thread{workers}.jsonl"
        result, _ = self._run(corpora, path, trace=True, mode="thread", workers=workers)
        assert path.read_bytes() == baseline[1]
        # summary() embeds the mode tag, so compare its mode-independent
        # ingredients instead.
        assert result.summary_counters() == baseline[0].summary_counters()
        assert fault_counts(result) == fault_counts(baseline[0])

    def test_process_journal_bytes_unchanged(self, corpora, baseline, tmp_path):
        path = tmp_path / "tel-process2.jsonl"
        result, _ = self._run(corpora, path, trace=False, mode="process", workers=2)
        assert path.read_bytes() == baseline[1]
        assert result.summary_counters() == baseline[0].summary_counters()
        assert records_of(result) == records_of(baseline[0])

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [1, 4])
    def test_process_traced_journal_bytes_unchanged(
        self, corpora, baseline, tmp_path, workers
    ):
        path = tmp_path / f"tel-process{workers}.jsonl"
        result, _ = self._run(
            corpora, path, trace=True, mode="process", workers=workers
        )
        assert path.read_bytes() == baseline[1]
        assert result.summary_counters() == baseline[0].summary_counters()
        assert fault_counts(result) == fault_counts(baseline[0])

    def test_counters_agree_across_modes(self, corpora, tmp_path):
        """The merged process-mode counters equal the serial counters:
        shard snapshots merged by the parent lose and invent nothing."""
        _, serial = self._run(corpora, tmp_path / "a.jsonl", trace=False)
        _, merged = self._run(
            corpora, tmp_path / "b.jsonl", trace=False, mode="process", workers=2
        )
        assert serial["counters"] == merged["counters"]

    def test_counters_match_campaign_summary(self, corpora, baseline, tmp_path):
        """The registry's counters and the journal-derived summary agree
        on the shared quantities — two views of one campaign."""
        result, snapshot = self._run(corpora, tmp_path / "c.jsonl", trace=False)
        totals = result.summary_counters()
        counters = snapshot["counters"]
        assert counters["iterations"] == totals["iterations"]
        assert counters["fused"] == totals["fused"]
        assert counters.get("fusion_failures", 0) == totals["fusion_failures"]
        bug_kinds = ("soundness", "crash", "performance", "unknown", "harness")
        assert (
            sum(counters.get(f"bugs.{kind}", 0) for kind in bug_kinds)
            == totals["bugs"]
        )


class _AlwaysUnsat:
    """Every fused sat formula becomes a soundness record (with script)."""

    name = "always-unsat"

    def check_script(self, script):
        from repro.solver.result import CheckOutcome, SolverResult

        return CheckOutcome(SolverResult.UNSAT)


class TestShardingPrimitive:
    """run_iterations is the unit the modes are built from: any
    partition of the index space merges back to the full run."""

    def _tool_and_seeds(self, corpora):
        seeds = corpora["QF_LIA"].by_oracle("sat")
        tool = YinYang(_AlwaysUnsat(), YinYangConfig(seed=9))
        scripts = [s.script for s in seeds]
        logics = [s.logic for s in seeds]
        return tool, scripts, logics

    def test_any_partition_merges_to_full_run(self, corpora):
        tool, scripts, logics = self._tool_and_seeds(corpora)
        full = tool.run_iterations("sat", scripts, logics, range(10))
        for workers in (2, 3, 7):
            shards = [
                tool.run_iterations(
                    "sat", scripts, logics, shard_indices(10, t, workers)
                )
                for t in range(workers)
            ]
            merged = merge_shard_reports(shards)
            assert [serialize_bug_record(b) for b in merged.bugs] == [
                serialize_bug_record(b) for b in full.bugs
            ]
            assert merged.counters() == full.counters()

    def test_single_iteration_rebuilds_identically(self, corpora):
        # The gensym-collision regression: iteration k run in isolation
        # (as a process shard would) must produce the very script the
        # full run produced — fresh names must not shift with history.
        tool, scripts, logics = self._tool_and_seeds(corpora)
        full = tool.run_iterations("sat", scripts, logics, range(8))
        by_iteration = {b.iteration: b for b in full.bugs}
        for k in (0, 3, 7):
            alone = tool.run_iterations("sat", scripts, logics, [k])
            assert len(alone.bugs) <= 1
            if alone.bugs:
                assert serialize_bug_record(alone.bugs[0]) == serialize_bug_record(
                    by_iteration[k]
                )

    def test_bug_records_carry_iteration_ids(self, corpora):
        tool, scripts, logics = self._tool_and_seeds(corpora)
        report = tool.run_iterations("sat", scripts, logics, range(6))
        ids = [b.iteration for b in report.bugs]
        assert ids == sorted(ids)
        assert all(0 <= i < 6 for i in ids)
