"""Unit tests for the nonlinear core: polynomials, intervals, ICP, search."""

from fractions import Fraction as F

import pytest

from repro.errors import ReproError
from repro.smtlib import builder as b
from repro.smtlib.ast import Var
from repro.smtlib.parser import parse_term
from repro.smtlib.sorts import INT, REAL
from repro.solver.nonlinear import (
    FULL,
    Interval,
    PolyAtom,
    atom_to_poly,
    check_nonlinear,
    eval_poly,
    eval_poly_interval,
    icp_unsat,
    poly_degree,
    poly_from_term,
    poly_is_linear,
    poly_vars,
)

X = Var("x", REAL)
Y = Var("y", REAL)
I = Var("i", INT)


def poly(text, variables=(X, Y, I)):
    return poly_from_term(parse_term(text, variables))


class TestPolynomials:
    def test_constant(self):
        assert poly("3.0") == {(): F(3)}

    def test_variable(self):
        assert poly("x") == {(("x", 1),): F(1)}

    def test_sum_collects(self):
        p = poly("(+ x x 1.0)")
        assert p[(("x", 1),)] == F(2)
        assert p[()] == F(1)

    def test_product_degrees(self):
        p = poly("(* x x y)")
        assert p == {(("x", 2), ("y", 1)): F(1)}

    def test_subtraction_cancels(self):
        assert poly("(- x x)") == {}

    def test_to_real_transparent(self):
        assert poly("(to_real i)") == {(("i", 1),): F(1)}

    def test_division_rejected(self):
        with pytest.raises(ReproError):
            poly("(/ x y)")

    def test_degree_and_vars(self):
        p = poly("(+ (* x x y) y 1.0)")
        assert poly_degree(p) == 3
        assert poly_degree(p, "y") == 1
        assert poly_vars(p) == {"x", "y"}
        assert not poly_is_linear(p)

    def test_eval_poly(self):
        p = poly("(+ (* x y) 1.0)")
        assert eval_poly(p, {"x": F(2), "y": F(3)}) == F(7)


class TestAtomConversion:
    def test_less_than(self):
        kind, atom = atom_to_poly(parse_term("(< x 1.0)", [X]), True)
        assert kind == "poly" and atom.op == "<"

    def test_negated_flips(self):
        kind, atom = atom_to_poly(parse_term("(< x 1.0)", [X]), False)
        assert atom.op == "<="

    def test_greater_normalized(self):
        kind, atom = atom_to_poly(parse_term("(> x 1.0)", [X]), True)
        assert atom.op == "<"

    def test_equality_polarity(self):
        kind, atom = atom_to_poly(parse_term("(= x y)", [X, Y]), False)
        assert atom.op == "!="

    def test_constant_decided(self):
        from repro.smtlib.ast import Const
        from repro.smtlib.sorts import BOOL

        kind, value = atom_to_poly(Const(True, BOOL), True)
        assert kind == "decided" and value is True
        kind, value = atom_to_poly(Const(True, BOOL), False)
        assert value is False

    def test_string_atom_stuck(self):
        from repro.smtlib.sorts import STRING

        s = Var("s", STRING)
        kind, _ = atom_to_poly(parse_term("(str.prefixof s s)", [s]), True)
        assert kind == "stuck"


class TestIntervals:
    def test_empty(self):
        assert Interval(F(1), F(0)).is_empty()
        assert Interval(F(1), F(1), lo_open=True).is_empty()
        assert not Interval(F(1), F(1)).is_empty()

    def test_attains_zero(self):
        assert Interval(F(0), F(1)).attains_zero()
        assert not Interval(F(0), F(1), lo_open=True).attains_zero()
        assert FULL.attains_zero()

    def test_intersect_openness(self):
        a = Interval(F(0), F(2), lo_open=True)
        c = a.intersect(Interval(F(0), F(1)))
        assert c.lo_open is True and c.hi == F(1)

    def test_interval_evaluation_square(self):
        p = poly("(* x x)")
        box = {"x": FULL}
        iv = eval_poly_interval(p, box)
        assert iv.lo == 0 and iv.hi is None

    def test_square_of_open_positive(self):
        p = poly("(* x x)")
        box = {"x": Interval(F(0), None, lo_open=True)}
        iv = eval_poly_interval(p, box)
        assert iv.lo == 0 and iv.lo_open is True

    def test_product_sign(self):
        p = poly("(* x y)")
        box = {
            "x": Interval(F(1), F(2)),
            "y": Interval(F(-3), F(-1)),
        }
        iv = eval_poly_interval(p, box)
        assert iv.lo == -6 and iv.hi == -1


class TestICP:
    def test_square_equals_negative(self):
        atoms = [PolyAtom.make(poly("(+ (* x x) 1.0)"), "=")]
        assert icp_unsat(atoms, ["x"], frozenset())

    def test_square_strictly_negative(self):
        atoms = [PolyAtom.make(poly("(* x x)"), "<")]
        assert icp_unsat(atoms, ["x"], frozenset())

    def test_strict_sign_chain(self):
        # y > 0, v > y, w >= v, q < 0, w = q*v: needs open-interval logic.
        q, v, w, y = (Var(n, REAL) for n in "qvwy")
        terms = [
            ("(- 0.0 y)", "<"),
            ("(- y v)", "<"),
            ("(- v w)", "<="),
            ("q", "<"),
            ("(- w (* q v))", "="),
        ]
        atoms = [
            PolyAtom.make(poly_from_term(parse_term(t, [q, v, w, y])), op)
            for t, op in terms
        ]
        assert icp_unsat(atoms, ["q", "v", "w", "y"], frozenset())

    def test_satisfiable_not_refuted(self):
        atoms = [PolyAtom.make(poly("(- (* x y) 1.0)"), "=")]
        assert not icp_unsat(atoms, ["x", "y"], frozenset())


class TestCheckNonlinear:
    def test_product_equation_sat(self):
        atoms = [
            PolyAtom.make(poly("(- (* x y) 6.0)"), "="),
            PolyAtom.make(poly("(- x 2.0)"), "="),
        ]
        status, model = check_nonlinear(atoms)
        assert status == "sat"
        assert model["y"] == 3

    def test_linear_fallthrough(self):
        atoms = [PolyAtom.make(poly("(- x 1.0)"), "<")]
        status, model = check_nonlinear(atoms)
        assert status == "sat"
        assert model["x"] < 1

    def test_diseq_handled(self):
        atoms = [
            PolyAtom.make(poly("x"), "!="),
            PolyAtom.make(poly("(* x x)"), "<="),
        ]
        # x != 0 and x^2 <= 0 is unsat; ICP proves the closure x^2 < 0...
        status, _ = check_nonlinear(atoms)
        assert status in ("unsat", "unknown")

    def test_gaussian_elimination_reaches_contradiction(self):
        # x = q, x - q != 0, with a nonlinear side constraint present.
        q = Var("q", REAL)
        atoms = [
            PolyAtom.make(poly_from_term(parse_term("(- x q)", [X, q])), "="),
            PolyAtom.make(poly_from_term(parse_term("(- x q)", [X, q])), "!="),
            PolyAtom.make(poly("(- (* x y) y)"), "<="),
        ]
        assert check_nonlinear(atoms)[0] == "unsat"

    def test_integer_constraint_respected(self):
        atoms = [
            PolyAtom.make(poly("(- (* (to_real i) (to_real i)) 2.0)"), "="),
        ]
        status, _ = check_nonlinear(atoms, int_vars={"i"})
        # i*i = 2 has no integer (or rational) solution.
        assert status in ("unsat", "unknown")

    def test_models_are_exact(self):
        atoms = [
            PolyAtom.make(poly("(- (* x x) 0.25)"), "="),
        ]
        status, model = check_nonlinear(atoms)
        assert status == "sat"
        assert model["x"] * model["x"] == F(1, 4)
