"""Supervisor unit tests against a scripted fake backend.

The supervisor's contract — capped retries, heartbeat attribution,
innocent-bystander requeue, poison bisection, restart budget — is pure
coordination logic; a fake backend that resolves futures according to
a per-lease script exercises every path without spawning a single
process. Real-pool behavior is covered by
``tests/test_supervised_campaign.py``.
"""

import json
import signal
from concurrent.futures import Future
from dataclasses import dataclass

import pytest

from repro.core.parallel import ShardTask
from repro.robustness.chaos import ProcessChaos
from repro.robustness.containment import (
    CPU_KILL,
    HANG_KILL,
    OOM,
    OOM_KILL,
    WORKER_DEATH,
    ContainmentPolicy,
    classify_exception,
    classify_exit,
    is_teardown_exit,
)
from repro.robustness.journal import ShardProgress
from repro.robustness.supervisor import (
    SupervisionExhausted,
    Supervisor,
    SupervisorPolicy,
    read_heartbeat,
    write_heartbeat,
)


class FakeBroken(RuntimeError):
    pass


NO_SLEEP = SupervisorPolicy(sleep=lambda _s: None)


def make_task(**overrides):
    base = dict(
        oracle="sat",
        seed_texts=("(check-sat)",),
        logics=("",),
        iterations=8,
        shard=0,
        of=2,
        seed=6,
        cell=("z3-like", "QF_S", "sat"),
        strategy="fusion",
    )
    base.update(overrides)
    return ShardTask(**base)


class FakeBackend:
    """Resolves each submitted task per a ``plan(task)`` script.

    Plan outcomes: ``("ok", payload)``, ``("broken", pid, exitcode)``
    (the pool breaks; the dead pid is reported by the next respawn and
    a heartbeat is left behind naming it), or ``("raise", exc)``.
    """

    broken_exceptions = (FakeBroken,)

    def __init__(self, plan, heartbeat_dir=None):
        self.plan = plan
        self.heartbeat_dir = heartbeat_dir
        self.respawns = 0
        self.killed = []
        self._dead = {}

    def submit(self, task):
        future = Future()
        outcome = self.plan(task)
        kind = outcome[0]
        if kind == "ok":
            future.set_result(outcome[1])
        elif kind == "broken":
            _, pid, exitcode = outcome
            if self.heartbeat_dir is not None:
                index = task.indices[0] if task.indices else task.shard
                write_heartbeat(
                    self.heartbeat_dir, task.lease_id, pid, task.attempt, index
                )
            self._dead[pid] = exitcode
            future.set_exception(FakeBroken("pool died"))
        elif kind == "raise":
            future.set_exception(outcome[1])
        else:  # pragma: no cover - bad test script
            raise AssertionError(kind)
        return future

    def respawn(self):
        self.respawns += 1
        dead, self._dead = self._dead, {}
        return dead

    def kill_worker(self, pid):
        self.killed.append(pid)


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(max_worker_restarts=-1)
        with pytest.raises(ValueError):
            SupervisorPolicy(max_shard_retries=-1)
        with pytest.raises(ValueError):
            SupervisorPolicy(heartbeat_timeout=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(poll_interval=0)

    def test_backoff_is_capped_exponential(self):
        policy = SupervisorPolicy(backoff_base=0.1, backoff_cap=0.5)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(10) == pytest.approx(0.5)


class TestClassification:
    def test_teardown_exits(self):
        assert is_teardown_exit(None)
        assert is_teardown_exit(0)
        assert is_teardown_exit(-signal.SIGTERM)
        assert not is_teardown_exit(-signal.SIGKILL)
        assert not is_teardown_exit(1)

    def test_classify_exit(self):
        mem = ContainmentPolicy(mem_limit_mb=64)
        assert classify_exit(None) == WORKER_DEATH
        assert classify_exit(3) == "exit:3"
        assert classify_exit(-signal.SIGXCPU) == CPU_KILL
        assert classify_exit(-signal.SIGKILL, mem) == OOM_KILL
        assert classify_exit(-signal.SIGKILL) == "killed"
        assert classify_exit(-signal.SIGSEGV) == "signal:SIGSEGV"

    def test_classify_exception(self):
        assert classify_exception(MemoryError()) == OOM
        assert classify_exception(RuntimeError()) == "worker-error:RuntimeError"


class TestHeartbeat:
    def test_roundtrip(self, tmp_path):
        write_heartbeat(tmp_path, 7, pid=123, attempt=2, index=41)
        record = read_heartbeat(tmp_path, 7)
        assert record["pid"] == 123
        assert record["attempt"] == 2
        assert record["i"] == 41
        assert record["ts"] > 0

    def test_missing_is_none(self, tmp_path):
        assert read_heartbeat(tmp_path, 99) is None


class TestSupervisorRun:
    def test_all_leases_succeed(self):
        backend = FakeBackend(lambda task: ("ok", {"shard": task.shard}))
        sup = Supervisor(backend, policy=NO_SLEEP)
        leases = [
            sup.lease(("cell", shard), make_task(shard=shard), (shard, shard + 2))
            for shard in range(2)
        ]
        results = sup.run(leases)
        assert set(results) == {("cell", 0), ("cell", 1)}
        assert sup.counters["restarts"] == 0
        assert sup.counters["retries"] == 0
        assert sup.poisoned == []

    def test_attributed_death_retries_then_succeeds(self, tmp_path):
        state = {"deaths": 0}

        def plan(task):
            if task.shard == 0 and task.attempt == 0:
                state["deaths"] += 1
                return ("broken", 111, -signal.SIGKILL)
            return ("ok", {"attempt": task.attempt})

        backend = FakeBackend(plan, heartbeat_dir=str(tmp_path))
        sup = Supervisor(backend, policy=NO_SLEEP)
        leases = [
            sup.lease(("cell", shard), make_task(shard=shard), (shard,))
            for shard in range(2)
        ]
        results = sup.run(leases)
        assert state["deaths"] == 1
        assert backend.respawns == 1
        assert sup.counters["restarts"] == 1
        assert sup.counters["retries"] == 1
        # The retried lease's payload came from attempt 1.
        [(lease, payload)] = results[("cell", 0)]
        assert payload["attempt"] == 1
        assert lease.last_classification == "killed"

    def test_innocent_teardown_requeues_for_free(self, tmp_path):
        state = {"broke": False}

        def plan(task):
            if not state["broke"]:
                state["broke"] = True
                return ("broken", 222, -signal.SIGTERM)  # teardown collateral
            return ("ok", {})

        backend = FakeBackend(plan, heartbeat_dir=str(tmp_path))
        sup = Supervisor(backend, policy=NO_SLEEP)
        results = sup.run([sup.lease("k", make_task(), (0, 2))])
        assert results["k"]
        assert sup.counters["requeues"] == 1
        assert sup.counters["retries"] == 0  # nobody was charged

    def test_worker_exception_is_retried_and_classified(self):
        state = {"raised": False}

        def plan(task):
            if not state["raised"]:
                state["raised"] = True
                return ("raise", MemoryError("rlimit"))
            return ("ok", {})

        backend = FakeBackend(plan)
        sup = Supervisor(
            backend, policy=NO_SLEEP, containment=ContainmentPolicy(mem_limit_mb=64)
        )
        results = sup.run([sup.lease("k", make_task(), (0,))])
        [(lease, _payload)] = results["k"]
        assert lease.last_classification == OOM
        assert sup.counters["retries"] == 1

    def test_bisection_isolates_poison_iteration(self, tmp_path):
        def plan(task):
            indices = (
                task.indices
                if task.indices is not None
                else tuple(range(task.shard, task.iterations, task.of))
            )
            if 5 in indices:
                return ("broken", 333, -signal.SIGKILL)
            return ("ok", {"indices": indices})

        backend = FakeBackend(plan, heartbeat_dir=str(tmp_path))
        artifacts = []
        sup = Supervisor(
            backend,
            policy=SupervisorPolicy(
                max_shard_retries=0, max_worker_restarts=20, sleep=lambda _s: None
            ),
            poison_artifact=lambda task, index: f"script-{index}",
            on_poison=artifacts.append,
        )
        results = sup.run([sup.lease("k", make_task(shard=1), (1, 3, 5, 7))])
        assert len(sup.poisoned) == 1
        poison = sup.poisoned[0]
        assert poison.iteration == 5
        assert poison.classification == "killed"
        assert poison.script == "script-5"
        assert artifacts == [poison]
        assert sup.counters["bisections"] >= 1
        assert sup.counters["poisoned"] == 1
        # Every other iteration still produced a payload.
        covered = sorted(
            i for _lease, p in results["k"] for i in p["indices"]
        )
        assert covered == [1, 3, 7]

    def test_restart_budget_exhausted(self, tmp_path):
        backend = FakeBackend(
            lambda task: ("broken", 444, -signal.SIGKILL),
            heartbeat_dir=str(tmp_path),
        )
        sup = Supervisor(
            backend,
            policy=SupervisorPolicy(max_worker_restarts=2, sleep=lambda _s: None),
        )
        with pytest.raises(SupervisionExhausted):
            sup.run([sup.lease("k", make_task(), (0,))])

    def test_poison_record_carries_reproduction_context(self, tmp_path):
        backend = FakeBackend(
            lambda task: ("broken", 555, -signal.SIGSEGV),
            heartbeat_dir=str(tmp_path),
        )
        sup = Supervisor(
            backend,
            policy=SupervisorPolicy(
                max_shard_retries=0, max_worker_restarts=20, sleep=lambda _s: None
            ),
            containment=ContainmentPolicy(mem_limit_mb=128, cpu_limit_seconds=30),
        )
        sup.run([sup.lease("k", make_task(), (4,))])
        [poison] = sup.poisoned
        data = poison.as_dict()
        assert data["iteration"] == 4
        assert data["classification"] == "signal:SIGSEGV"
        assert data["strategy"] == "fusion"
        assert data["seed"] == 6
        assert data["rlimits"] == {"mem_limit_mb": 128, "cpu_limit_seconds": 30}
        assert json.dumps(data)  # JSON-ready for the journal


class TestHangSweep:
    def test_stale_heartbeat_gets_worker_killed(self, tmp_path, monkeypatch):
        # A lease whose future never resolves and whose heartbeat is
        # old: the sweep must SIGKILL the recorded pid exactly once.
        class HangingBackend(FakeBackend):
            def submit(self, task):
                write_heartbeat(self.heartbeat_dir, task.lease_id, 666, task.attempt, 0)
                future = Future()  # never resolves
                self.pending = future
                return future

        backend = HangingBackend(None, heartbeat_dir=str(tmp_path))
        sup = Supervisor(
            backend,
            policy=SupervisorPolicy(
                heartbeat_timeout=0.01, poll_interval=0.01, sleep=lambda _s: None
            ),
        )

        def kill_and_finish(pid):
            backend.killed.append(pid)
            backend.pending.set_result({"killed": pid})

        backend.kill_worker = kill_and_finish
        import time as time_mod

        time_mod.sleep(0.05)  # let the single heartbeat go stale
        results = sup.run([sup.lease("k", make_task(), (0,))])
        assert backend.killed == [666]
        assert sup.counters["heartbeat_kills"] == 1
        assert results["k"][0][1] == {"killed": 666}


class TestShardProgress:
    META = {"seed": 6, "iterations": 8, "shard": 0, "of": 2, "strategy": "fusion"}

    def test_records_survive_reload(self, tmp_path):
        path = tmp_path / "j.jsonl.lease-0.jsonl"
        progress = ShardProgress(path, meta=self.META)
        progress.record(0, {"iterations": 1})
        progress.record(2, {"iterations": 1, "fused": 1})
        again = ShardProgress(path, meta=self.META)
        assert again.completed == {
            0: {"iterations": 1},
            2: {"iterations": 1, "fused": 1},
        }

    def test_torn_final_line_is_discarded(self, tmp_path):
        path = tmp_path / "j.jsonl.lease-0.jsonl"
        progress = ShardProgress(path, meta=self.META)
        progress.record(0, {"iterations": 1})
        progress.record(2, {"iterations": 1})
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) - 9], encoding="utf-8")  # tear the tail
        again = ShardProgress(path, meta=self.META)
        assert again.completed == {0: {"iterations": 1}}  # 2 re-runs

    def test_mismatched_meta_resets_the_log(self, tmp_path):
        path = tmp_path / "j.jsonl.lease-0.jsonl"
        progress = ShardProgress(path, meta=self.META)
        progress.record(0, {"iterations": 1})
        fresh = ShardProgress(path, meta=dict(self.META, seed=7))
        assert fresh.completed == {}
        # And the stale records are durably gone, not just ignored.
        assert ShardProgress(path, meta=dict(self.META, seed=7)).completed == {}


class TestProcessChaos:
    def test_faults_gate_on_attempt(self):
        chaos = ProcessChaos(kill_at=(2,), hang_at=(3,), attempts=1)
        assert chaos.fault_for(2, 0) == "kill"
        assert chaos.fault_for(3, 0) == "proc-hang"
        assert chaos.fault_for(2, 1) is None  # retry sails through
        assert chaos.fault_for(4, 0) is None

    def test_permanent_poison_plan(self):
        chaos = ProcessChaos(kill_at=(5,), attempts=10**9)
        assert chaos.fault_for(5, 12345) == "kill"

    def test_picklable_in_worker_spec(self):
        import pickle

        from repro.core.parallel import WorkerSpec

        spec = WorkerSpec(
            solver_factory=None,
            config=None,
            containment=ContainmentPolicy(mem_limit_mb=64, cpu_limit_seconds=10),
            chaos_process=ProcessChaos(kill_at=(1, 2)),
        )
        assert pickle.loads(pickle.dumps(spec)).chaos_process.kill_at == (1, 2)
