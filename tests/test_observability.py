"""The observability layer's own test suite.

Three pillars, matching the design constraints in DESIGN.md §10:

1. **Merge laws** — snapshot merging is associative and commutative
   with the empty registry as identity, and folding any shard
   partition of an event stream equals accumulating it serially.
   Proven by Hypothesis property tests (integer-valued observations,
   so float addition cannot smuggle in order dependence).
2. **Hot-path hygiene** — no observability module imports ``random``
   (telemetry must never perturb the campaign's RNG streams), only the
   tracer reads the clock, and the steady-state instrumented path
   allocates nothing.
3. **Rendering** — the ``yinyang stats`` dashboard is pure: a
   fabricated journal plus a fabricated snapshot render byte-for-byte
   against a golden file (regenerate with ``REPRO_UPDATE_GOLDEN=1``).
"""

import ast
import gc
import os
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.yinyang import BugRecord, YinYangReport
from repro.coverage.report import CoverageReport, coverage_counts
from repro.observability.metrics import (
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.observability.stats import coverage_rows, render_stats
from repro.observability.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    TelemetryConfig,
    attach_telemetry,
    load_snapshot,
    publish_coverage_session,
)
from repro.observability.trace import NULL_SPAN, PhaseTracer, phase_rows
from repro.robustness.journal import CampaignJournal

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
OBSERVABILITY = SRC / "observability"
GOLDEN = Path(__file__).resolve().parent / "golden"


# ---------------------------------------------------------------------------
# Metric primitives
# ---------------------------------------------------------------------------


class TestMetricPrimitives:
    def test_counter_accumulates(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_set_and_high_water(self):
        g = Gauge("g")
        g.set(3)
        g.track_max(1)
        assert g.value == 3
        g.track_max(9)
        assert g.value == 9

    def test_histogram_buckets_mean_quantile(self):
        h = Histogram("h", bounds=(1, 10, 100))
        for value in (0.5, 5, 5, 50, 5000):
            h.observe(value)
        assert h.counts == [1, 2, 1, 1]  # <=1, <=10, <=100, overflow
        assert h.count == 5
        assert h.mean == pytest.approx(5060.5 / 5)
        assert h.quantile(0.5) == 10
        assert h.quantile(1.0) == 100  # overflow clamps to the last bound

    def test_empty_histogram_is_safe(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.quantile(0.9) == 0.0

    def test_registry_hands_out_stable_handles(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert reg.value_set("d") is reg.value_set("d")

    def test_snapshot_is_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a", 2)
        reg.value_set("s").update({"q", "p"})
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["sets"]["s"] == ["p", "q"]
        json.dumps(snap)  # must not raise

    def test_snapshot_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("n", 7)
        reg.gauge("g").track_max(3)
        reg.histogram("h").observe(0.002)
        reg.value_set("s").add("x")
        assert MetricsRegistry.from_snapshot(reg.snapshot()).snapshot() == (
            reg.snapshot()
        )

    def test_histogram_bounds_mismatch_refused(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1, 2))
        snap = {"histograms": {"h": {"bounds": [1, 2, 3], "counts": [0] * 4,
                                     "sum": 0.0, "count": 0}}}
        with pytest.raises(ValueError):
            reg.merge_snapshot(snap)


# ---------------------------------------------------------------------------
# Merge laws (the shard-merge correctness argument)
# ---------------------------------------------------------------------------

_NAMES = st.sampled_from(["a", "b", "c"])

_HIST_SNAP = st.fixed_dictionaries(
    {
        "bounds": st.just(list(TIME_BUCKETS)),
        "counts": st.lists(
            st.integers(0, 20),
            min_size=len(TIME_BUCKETS) + 1,
            max_size=len(TIME_BUCKETS) + 1,
        ),
        # Integer-valued sums: float addition is exactly associative on
        # small integers, so the laws hold as dict equality.
        "sum": st.integers(0, 10**6).map(float),
        "count": st.integers(0, 100),
    }
)

_SNAPSHOTS = st.fixed_dictionaries(
    {
        "counters": st.dictionaries(_NAMES, st.integers(0, 1000)),
        "gauges": st.dictionaries(_NAMES, st.integers(0, 1000)),
        "histograms": st.dictionaries(
            st.sampled_from(["phase.x", "phase.y"]), _HIST_SNAP
        ),
        "sets": st.dictionaries(
            _NAMES,
            st.lists(st.sampled_from(["p", "q", "r"])).map(
                lambda vs: sorted(set(vs))
            ),
        ),
    }
)

# Events as a shardable stream: (kind, name, value).
_EVENTS = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), _NAMES, st.integers(1, 5)),
        st.tuples(st.just("max"), _NAMES, st.integers(0, 100)),
        st.tuples(st.just("observe"), _NAMES, st.integers(0, 20)),
        st.tuples(st.just("add"), _NAMES, st.sampled_from(["p", "q", "r"])),
    ),
    max_size=60,
)


def _apply(registry, event):
    kind, name, value = event
    if kind == "inc":
        registry.inc(name, value)
    elif kind == "max":
        registry.gauge(name).track_max(value)
    elif kind == "observe":
        registry.histogram(name).observe(value)
    else:
        registry.value_set(name).add(value)


class TestMergeLaws:
    @given(a=_SNAPSHOTS, b=_SNAPSHOTS)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_commutative(self, a, b):
        assert merge_snapshots([a, b]) == merge_snapshots([b, a])

    @given(a=_SNAPSHOTS, b=_SNAPSHOTS, c=_SNAPSHOTS)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        assert left == right

    @given(a=_SNAPSHOTS)
    @settings(max_examples=60, deadline=None)
    def test_empty_registry_is_identity(self, a):
        empty = MetricsRegistry().snapshot()
        canonical = merge_snapshots([a])
        assert merge_snapshots([a, empty]) == canonical
        assert merge_snapshots([empty, a]) == canonical

    @given(events=_EVENTS, workers=st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_shard_merge_equals_serial_accumulation(self, events, workers):
        """The invariant the process-mode parent relies on: round-robin
        sharding an event stream over k registries and merging their
        snapshots equals one registry seeing every event."""
        serial = MetricsRegistry()
        for event in events:
            _apply(serial, event)
        shards = [MetricsRegistry() for _ in range(workers)]
        for i, event in enumerate(events):
            _apply(shards[i % workers], event)
        merged = merge_snapshots([s.snapshot() for s in shards])
        assert merged == serial.snapshot()


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestTracing:
    def test_null_span_is_shared_and_inert(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN

    def test_span_records_into_phase_histogram(self):
        reg = MetricsRegistry()
        tracer = PhaseTracer(reg)
        with tracer.span("fuse"):
            pass
        hist = reg.histogram("phase.fuse")
        assert hist.count == 1
        assert hist.sum >= 0.0

    def test_phase_rows_sorted_by_total_time(self):
        reg = MetricsRegistry()
        reg.histogram("phase.slow").observe(2.0)
        reg.histogram("phase.fast").observe(0.001)
        reg.histogram("unrelated").observe(9.0)
        rows = phase_rows(reg.snapshot())
        assert [r[0] for r in rows] == ["slow", "fast"]
        name, calls, total, mean, p90 = rows[0]
        assert calls == 1 and total == 2.0 and mean == 2.0 and p90 == 10.0


# ---------------------------------------------------------------------------
# Telemetry object
# ---------------------------------------------------------------------------


class TestTelemetry:
    def test_config_round_trip(self):
        tel = Telemetry(trace=True, profile=True)
        assert tel.config() == TelemetryConfig(trace=True, profile=True)
        clone = Telemetry.from_config(tel.config())
        assert clone.config() == tel.config()
        assert Telemetry.from_config(None) is None

    def test_phase_is_null_span_without_tracer(self):
        tel = Telemetry()
        assert tel.phase("anything") is NULL_SPAN

    def test_phase_records_with_tracer(self):
        tel = Telemetry(trace=True)
        with tel.phase("solve"):
            pass
        assert tel.snapshot()["histograms"]["phase.solve"]["count"] == 1

    def test_count_and_merge_strip_version(self):
        a, b = Telemetry(), Telemetry()
        a.count("iterations", 3)
        b.count("iterations", 4)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["iterations"] == 7
        assert "version" not in snap["counters"]

    def test_write_and_load_snapshot(self, tmp_path):
        tel = Telemetry()
        tel.count("fused", 5)
        path = tmp_path / "metrics.json"
        tel.write(path)
        snap = load_snapshot(path)
        assert snap["counters"]["fused"] == 5
        assert snap["version"] == 1

    def test_null_telemetry_is_inert(self):
        NULL_TELEMETRY.count("x", 5)
        NULL_TELEMETRY.sample_term_tables()
        NULL_TELEMETRY.sample_guards([])
        assert NULL_TELEMETRY.phase("x") is NULL_SPAN

    def test_close_is_idempotent(self):
        tel = Telemetry(coverage=True)
        tel.close()
        tel.close()

    def test_context_manager_closes(self):
        from repro.coverage import probes

        with Telemetry(coverage=True) as tel:
            assert tel._coverage_session in probes._ACTIVE
        assert tel._coverage_session is None


class _Plain:
    pass


class _Wrapper:
    def __init__(self, base):
        self.base = base


class _Slotted:
    __slots__ = ("base",)

    def __init__(self, base):
        self.base = base


class TestAttachTelemetry:
    def test_walks_wrapper_chains(self):
        inner = _Plain()
        outer = _Wrapper(_Wrapper(inner))
        tel = Telemetry()
        attach_telemetry([outer], tel)
        assert outer.telemetry is tel
        assert outer.base.telemetry is tel
        assert inner.telemetry is tel

    def test_slotted_layers_are_skipped_not_fatal(self):
        inner = _Plain()
        chain = _Wrapper(_Slotted(inner))
        tel = Telemetry()
        attach_telemetry([chain], tel)
        assert chain.telemetry is tel
        assert inner.telemetry is tel  # the walk continued past __slots__

    def test_cyclic_chains_terminate(self):
        a, b = _Plain(), _Plain()
        a.base, b.base = b, a
        tel = Telemetry()
        attach_telemetry([a], tel)
        assert a.telemetry is tel and b.telemetry is tel


# ---------------------------------------------------------------------------
# Hot-path hygiene: no RNG, clock only in the tracer, zero allocations
# ---------------------------------------------------------------------------


def _imports_of(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    names = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names += [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            names.append(node.module or "")
    return names


class TestHotPathHygiene:
    @pytest.mark.parametrize(
        "path",
        sorted(OBSERVABILITY.glob("*.py")),
        ids=lambda p: p.name,
    )
    def test_never_imports_random(self, path):
        """Telemetry must draw zero RNG values: if any observability
        module could reach ``random``, a future edit could silently
        perturb the campaign's per-iteration streams."""
        for name in _imports_of(path):
            assert name != "random" and not name.startswith("random."), (
                f"{path.name} imports random — telemetry must never touch RNG"
            )

    def test_only_the_tracer_reads_the_clock(self):
        for path in sorted(OBSERVABILITY.glob("*.py")):
            if path.name == "trace.py":
                continue
            for name in _imports_of(path):
                assert name != "time", (
                    f"{path.name} imports time — wall clock belongs to "
                    "trace.py alone, so metrics snapshots stay deterministic"
                )

    def test_steady_state_allocates_nothing(self):
        """The allocation smoke bound: after warm-up, the instrumented
        hot path (count + untraced phase) must not grow the allocated
        block count. Measured with gc off so a collection can't mask or
        fake a leak; the small slack absorbs allocator bookkeeping."""
        tel = Telemetry()
        null = NULL_TELEMETRY
        for _ in range(200):  # warm up: intern strings, build handles
            tel.count("iterations")
            with tel.phase("fuse"):
                pass
            null.count("iterations")
        gc.collect()
        gc.disable()
        try:
            before = sys.getallocatedblocks()
            for _ in range(5000):
                tel.count("iterations")
                with tel.phase("fuse"):
                    pass
                null.count("iterations")
                with null.phase("fuse"):
                    pass
            after = sys.getallocatedblocks()
        finally:
            gc.enable()
        assert after - before <= 8, (
            f"steady-state telemetry leaked {after - before} blocks "
            "over 5000 iterations"
        )


# ---------------------------------------------------------------------------
# Cumulative coverage through the registry
# ---------------------------------------------------------------------------


class TestCumulativeCoverage:
    def test_session_spans_multiple_checks(self, solver):
        with Telemetry(coverage=True) as tel:
            solver.check_result(
                "(set-logic QF_LIA)(declare-const x Int)"
                "(assert (> x 0))(check-sat)"
            )
            first = set(tel.snapshot()["sets"]["coverage.line.fired"])
            assert first
            solver.check_result(
                "(set-logic QF_S)(declare-const s String)"
                '(assert (= (str.len s) 2))(check-sat)'
            )
            second = set(tel.snapshot()["sets"]["coverage.line.fired"])
        assert second > first  # strings fired probes arithmetic never touches

    def test_fired_sets_merge_by_union(self):
        a, b = Telemetry(), Telemetry()
        a.registry.value_set("coverage.line.fired").update({"p1", "p2"})
        b.registry.value_set("coverage.line.fired").update({"p2", "p3"})
        a.registry.gauge("coverage.line.registered").track_max(10)
        b.registry.gauge("coverage.line.registered").track_max(10)
        a.merge_snapshot(b.snapshot())
        assert coverage_counts(a.snapshot())["line"] == (3, 10)

    def test_figure11_and_stats_share_the_decode(self):
        """The one-source-of-truth fix: CoverageReport.from_metrics and
        coverage_rows read the same snapshot through coverage_counts."""
        from repro.coverage.probes import CoverageSession

        session = CoverageSession("t")
        session.fired["line"].update({"a", "b", "c"})
        registry = MetricsRegistry()
        publish_coverage_session(
            registry, session, registered={"line": 6, "function": 0, "branch": 0}
        )
        snap = registry.snapshot()
        report = CoverageReport.from_metrics(snap, "cell")
        assert report.line == pytest.approx(50.0)
        assert coverage_rows(snap) == [("line", 3, 6, "50.0")]


# ---------------------------------------------------------------------------
# The stats dashboard (golden files)
# ---------------------------------------------------------------------------


def _fabricated_journal(path):
    journal = CampaignJournal(path)
    journal.ensure_meta(seed=7, iterations_per_cell=6)
    sound = YinYangReport(iterations=6, fused=5, fusion_failures=1, unknowns=2)
    sound.bugs = [
        BugRecord(
            kind="soundness",
            solver="z3-like",
            oracle="sat",
            reported="unsat",
            script="(check-sat)",
            logic="QF_LIA",
            iteration=2,
        )
    ]
    journal.record_cell(("z3-like", "QF_LIA", "sat"), sound)
    crashy = YinYangReport(iterations=6, fused=6, retries=1, timeouts=1)
    crashy.bugs = [
        BugRecord(
            kind="crash",
            solver="cvc4-like",
            oracle="unsat",
            reported="crash",
            script="(check-sat)",
            logic="QF_S",
            iteration=1,
        ),
        BugRecord(
            kind="unknown",
            solver="cvc4-like",
            oracle="unsat",
            reported="unknown",
            script="(check-sat)",
            logic="QF_S",
            iteration=4,
        ),
    ]
    journal.record_cell(("cvc4-like", "QF_S", "unsat"), crashy)
    return journal


def _fabricated_snapshot():
    registry = MetricsRegistry()
    registry.inc("iterations", 12)
    registry.inc("fused", 11)
    registry.inc("solver.checks", 20)
    registry.inc("bugs.soundness", 1)
    registry.gauge("terms.table_size").track_max(512)
    fuse = registry.histogram("phase.fuse")
    for value in (0.001, 0.002, 0.004):
        fuse.observe(value)
    solve = registry.histogram("phase.solve")
    for value in (0.05, 0.25):
        solve.observe(value)
    registry.value_set("coverage.line.fired").update({"p1", "p2", "p3"})
    registry.gauge("coverage.line.registered").track_max(4)
    return registry.snapshot()


def _check_golden(name, text):
    golden = GOLDEN / name
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        golden.parent.mkdir(parents=True, exist_ok=True)
        golden.write_text(text)
    assert golden.exists(), (
        f"golden file {golden} missing — run with REPRO_UPDATE_GOLDEN=1 "
        "to (re)generate, then review the diff"
    )
    assert text == golden.read_text()


class TestStatsDashboard:
    def test_dashboard_matches_golden(self, tmp_path):
        journal = _fabricated_journal(tmp_path / "campaign.jsonl")
        text = render_stats(journal, _fabricated_snapshot())
        # The journal lives in a tmp dir; normalize the one
        # machine-dependent token so the golden file is stable.
        text = text.replace(str(journal.path), "<journal>")
        _check_golden("stats_dashboard.txt", text)

    def test_journal_only_dashboard_matches_golden(self, tmp_path):
        journal = _fabricated_journal(tmp_path / "campaign.jsonl")
        text = render_stats(journal)
        text = text.replace(str(journal.path), "<journal>")
        assert "Metrics" not in text
        _check_golden("stats_journal_only.txt", text)

    def test_empty_journal_renders_placeholder(self, tmp_path):
        journal = CampaignJournal(tmp_path / "empty.jsonl")
        journal.ensure_meta(seed=1, iterations_per_cell=2)
        text = render_stats(journal)
        assert "no completed cells in the journal" in text

    def test_rendering_is_deterministic(self, tmp_path):
        journal = _fabricated_journal(tmp_path / "campaign.jsonl")
        snap = _fabricated_snapshot()
        assert render_stats(journal, snap) == render_stats(journal, snap)

    def test_accepts_a_path(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        _fabricated_journal(path)
        assert "Per-cell results" in render_stats(path)

    def test_incremental_dashboard_matches_golden(self, tmp_path):
        # An incremental campaign: the meta line carries the session
        # spec and the snapshot carries session.* counters, so the
        # header names the config and the reuse-rate section renders.
        journal = CampaignJournal(tmp_path / "campaign.jsonl")
        journal.ensure_meta(
            seed=7,
            iterations_per_cell=6,
            incremental="outcome=256,theory=4096,clauses=256,presolve=64,warm=8",
        )
        report = YinYangReport(iterations=6, fused=6, unknowns=3)
        journal.record_cell(("z3-like", "QF_LIA", "sat"), report)
        registry = MetricsRegistry()
        registry.inc("iterations", 6)
        registry.inc("session.outcome.hit", 6)
        registry.inc("session.outcome.miss", 6)
        registry.inc("session.theory.hit", 40)
        registry.inc("session.theory.miss", 160)
        registry.inc("session.warm.attempt", 5)
        registry.inc("session.warm.decided", 3)
        registry.inc("session.warm.fallback", 2)
        registry.inc("session.warm.skipped", 1)
        registry.inc("session.clauses.replayed", 12)
        registry.inc("session.clauses.exported", 4)
        registry.inc("session.evictions", 2)
        registry.gauge("session.theory_cache").track_max(96)
        text = render_stats(journal, registry.snapshot())
        text = text.replace(str(journal.path), "<journal>")
        assert "Incremental sessions" in text
        assert "incremental outcome=256" in text
        _check_golden("stats_incremental.txt", text)

    def test_cold_snapshot_renders_no_session_section(self, tmp_path):
        journal = _fabricated_journal(tmp_path / "campaign.jsonl")
        text = render_stats(journal, _fabricated_snapshot())
        assert "Incremental sessions" not in text
        assert "incremental" not in text.splitlines()[1]
