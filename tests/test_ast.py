"""Unit tests for AST utilities: free vars, substitution, traversal."""

from repro.smtlib import builder as b
from repro.smtlib.ast import (
    App,
    Const,
    Quantifier,
    Var,
    collect_ops,
    count_occurrences,
    free_vars,
    fresh_name,
    substitute,
    term_depth,
    term_size,
)
from repro.smtlib.parser import parse_term
from repro.smtlib.sorts import BOOL, INT


X = Var("x", INT)
Y = Var("y", INT)


class TestFreeVars:
    def test_var(self):
        assert free_vars(X) == {X}

    def test_const(self):
        assert free_vars(Const(1, INT)) == set()

    def test_application(self):
        assert free_vars(b.add(X, Y)) == {X, Y}

    def test_duplicates_collapse(self):
        assert free_vars(b.add(X, X)) == {X}

    def test_quantifier_binds(self):
        term = parse_term("(exists ((x Int)) (> x 0))")
        assert free_vars(term) == set()

    def test_quantifier_partial_binding(self):
        body = b.gt(Var("h", INT), X)
        term = Quantifier("exists", (("h", INT),), body)
        assert free_vars(term) == {X}


class TestCountOccurrences:
    def test_zero(self):
        assert count_occurrences(Const(1, INT), X) == 0

    def test_multiple(self):
        term = b.add(X, b.mul(X, Y), X)
        assert count_occurrences(term, X) == 3

    def test_bound_not_counted(self):
        term = Quantifier("forall", (("x", INT),), b.gt(Var("x", INT), 0))
        assert count_occurrences(term, X) == 0


class TestSubstitute:
    def test_simple(self):
        term = substitute(b.add(X, Y), {X: Const(1, INT)})
        assert str(term) == "(+ 1 y)"

    def test_simultaneous(self):
        term = substitute(b.add(X, Y), {X: Y, Y: X})
        assert str(term) == "(+ y x)"

    def test_no_op_returns_same_object(self):
        term = b.add(X, Y)
        assert substitute(term, {Var("z", INT): X}) is term

    def test_capture_avoidance(self):
        # exists h. h > x, substituting x := h+1 must rename the binder.
        h = Var("h", INT)
        term = Quantifier("exists", (("h", INT),), b.gt(h, X))
        result = substitute(term, {X: b.add(h, 1)})
        assert result.bindings[0][0] != "h"
        assert count_occurrences(result.body, h) == 1  # the free h survived

    def test_bound_name_not_substituted(self):
        h = Var("h", INT)
        term = Quantifier("exists", (("h", INT),), b.gt(h, 0))
        assert substitute(term, {h: Const(5, INT)}) is term


class TestMetrics:
    def test_term_size(self):
        assert term_size(b.add(X, Const(1, INT))) == 3

    def test_term_depth(self):
        assert term_depth(X) == 1
        assert term_depth(b.add(X, b.mul(X, Y))) == 3

    def test_collect_ops(self):
        assert collect_ops(b.add(X, b.mul(X, Y))) == {"+", "*"}

    def test_walk_covers_everything(self):
        term = b.and_(b.gt(X, 0), b.lt(Y, 0))
        nodes = list(term.walk())
        assert term in nodes
        assert X in nodes and Y in nodes


class TestFreshName:
    def test_unique(self):
        names = {fresh_name("q") for _ in range(100)}
        assert len(names) == 100

    def test_prefix(self):
        assert fresh_name("abc").startswith("abc!")


class TestEqualityAndHash:
    def test_structural_equality(self):
        assert b.add(X, Y) == b.add(X, Y)

    def test_hashable(self):
        seen = {b.add(X, Y), b.add(X, Y), b.add(Y, X)}
        assert len(seen) == 2

    def test_sort_distinguishes(self):
        assert Var("x", INT) != Var("x", BOOL)
