"""Shared fixtures for the test suite."""

import random
from collections import namedtuple

import pytest

from repro.smtlib.parser import parse_script, parse_term
from repro.solver.solver import ReferenceSolver, SolverConfig

# ---------------------------------------------------------------------------
# Fleet shapes: the execution-mode matrix shared by the determinism suites
# ---------------------------------------------------------------------------

#: One way of running a campaign: an execution mode, a worker count and
#: (for tcp fleets) the seed of the coordinator's work-stealing RNG.
#: The headline invariant of the parallel architecture is that a
#: deterministic campaign's journal bytes are a pure function of the
#: campaign parameters — *never* of the FleetShape it ran under.
FleetShape = namedtuple("FleetShape", "mode workers steal_seed")


def _shape(mode, workers, steal_seed=0, slow=False):
    suffix = f"-steal{steal_seed}" if mode == "tcp" else ""
    return pytest.param(
        FleetShape(mode, workers, steal_seed),
        id=f"{mode}-w{workers}{suffix}",
        marks=[pytest.mark.slow] if slow else [],
    )


#: The fleet-shape matrix. The fast lane covers every mode and a
#: steal-order permutation; the four-worker shapes ride in the ``slow``
#: lane (extra pools/processes, no new code paths).
FLEET_MATRIX = [
    _shape("serial", 1),
    _shape("thread", 2),
    _shape("process", 2),
    _shape("tcp", 1),
    _shape("tcp", 2, steal_seed=0),
    _shape("tcp", 2, steal_seed=3),
    _shape("thread", 4, slow=True),
    _shape("process", 4, slow=True),
    _shape("tcp", 4, steal_seed=1, slow=True),
]


@pytest.fixture(params=FLEET_MATRIX)
def fleet(request):
    """Parametrize a test over every fleet shape in the matrix."""
    return request.param


def fleet_campaign_kwargs(shape):
    """The ``run_campaign`` keyword arguments selecting ``shape``."""
    kwargs = {"mode": shape.mode, "workers": shape.workers}
    if shape.mode == "tcp":
        kwargs["steal_seed"] = shape.steal_seed
    return kwargs


@pytest.fixture()
def run_fleet_campaign():
    """A runner partially applied to a fleet shape:
    ``run_fleet_campaign(corpora, shape, **campaign_kwargs)``."""
    from repro.campaign.runner import run_campaign

    def run(corpora, shape, **kwargs):
        return run_campaign(corpora, **fleet_campaign_kwargs(shape), **kwargs)

    return run


@pytest.fixture(scope="session")
def solver():
    """One reference solver shared across tests (stateless checks)."""
    return ReferenceSolver()


@pytest.fixture(scope="session")
def thorough_solver():
    return ReferenceSolver(SolverConfig.thorough())


@pytest.fixture()
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture()
def parse():
    return parse_script


@pytest.fixture()
def term():
    return parse_term


def check(solver, text):
    """Convenience: solve SMT-LIB text, return the verdict string."""
    return str(solver.check_result(text))
