"""Shared fixtures for the test suite."""

import random

import pytest

from repro.smtlib.parser import parse_script, parse_term
from repro.solver.solver import ReferenceSolver, SolverConfig


@pytest.fixture(scope="session")
def solver():
    """One reference solver shared across tests (stateless checks)."""
    return ReferenceSolver()


@pytest.fixture(scope="session")
def thorough_solver():
    return ReferenceSolver(SolverConfig.thorough())


@pytest.fixture()
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture()
def parse():
    return parse_script


@pytest.fixture()
def term():
    return parse_term


def check(solver, text):
    """Convenience: solve SMT-LIB text, return the verdict string."""
    return str(solver.check_result(text))
