"""Process-mode campaign tests: resume across worker counts, sidecar
shard journals, and cross-worker quarantine aggregation.

The resume contract under test (satellite of the sharded-execution
work): a journal written at one worker count must resume correctly at
*any* other worker count — no cell duplicated, none skipped — because
the main journal is keyed by cell (worker-count independent) while
partial-shard sidecars carry their own meta and are discarded whenever
the partition would not line up.
"""

import json

import pytest

from repro.campaign.runner import deterministic_solvers, run_campaign
from repro.core.yinyang import YinYangReport
from repro.robustness import CampaignJournal, ResiliencePolicy
from repro.robustness.journal import (
    load_sidecar_shards,
    serialize_bug_record,
    sidecar_path,
    sidecar_paths,
)
from repro.seeds import build_corpus
from repro.solver.result import SolverCrash

# deterministic_solvers: no wall-clock solver deadline, so resume
# equality cannot be broken by a borderline check timing out in only
# one of the compared runs.
CAMPAIGN = dict(
    iterations_per_cell=8,
    seed=6,
    performance_threshold=None,
    solver_factory=deterministic_solvers,
)


@pytest.fixture(scope="module")
def corpora():
    return {
        "QF_S": build_corpus("QF_S", scale=0.0015, seed=5),
        "QF_LIA": build_corpus("QF_LIA", scale=0.003, seed=5),
    }


@pytest.fixture(scope="module")
def baseline(corpora, tmp_path_factory):
    path = tmp_path_factory.mktemp("journal") / "baseline.jsonl"
    result = run_campaign(corpora, journal=path, **CAMPAIGN)
    return result, path.read_bytes()


def serialized(records):
    return [json.dumps(serialize_bug_record(r), sort_keys=True) for r in records]


def _interrupt_after_cells(corpora, path, after_cells, **kwargs):
    """Run a journaled campaign that dies after ``after_cells`` cells.

    The interrupt fires in the parent as the (after_cells+1)-th cell is
    being folded in — by then its workers have already journaled their
    shards to sidecars, exactly the crash window sidecar resume exists
    for.
    """
    import repro.campaign.runner as runner_mod

    original = runner_mod._absorb_cell
    state = {"cells": 0}

    def interrupting(result, key, report, journal, telemetry=None):
        if state["cells"] >= after_cells:
            raise KeyboardInterrupt
        state["cells"] += 1
        return original(result, key, report, journal, telemetry)

    runner_mod._absorb_cell = interrupting
    try:
        with pytest.raises(KeyboardInterrupt):
            run_campaign(corpora, journal=path, **CAMPAIGN, **kwargs)
    finally:
        runner_mod._absorb_cell = original


def _cell_keys_in_journal(path):
    keys = []
    for line in path.read_text(encoding="utf-8").splitlines():
        entry = json.loads(line)
        if entry.get("type") == "cell":
            keys.append((entry["solver"], entry["family"], entry["oracle"]))
    return keys


class TestResumeAcrossWorkerCounts:
    def test_serial_interrupt_resumes_in_process_mode(
        self, corpora, baseline, tmp_path
    ):
        path = tmp_path / "campaign.jsonl"
        _interrupt_after_cells(corpora, path, after_cells=3)
        resumed = run_campaign(
            corpora, journal=path, resume=True, mode="process", workers=3, **CAMPAIGN
        )
        assert serialized(resumed.records) == serialized(baseline[0].records)
        assert path.read_bytes() == baseline[1]

    def test_process_interrupt_resumes_at_different_worker_count(
        self, corpora, baseline, tmp_path
    ):
        path = tmp_path / "campaign.jsonl"
        _interrupt_after_cells(
            corpora, path, after_cells=2, mode="process", workers=2
        )
        resumed = run_campaign(
            corpora, journal=path, resume=True, mode="process", workers=3, **CAMPAIGN
        )
        assert serialized(resumed.records) == serialized(baseline[0].records)
        assert path.read_bytes() == baseline[1]
        # No duplicated and no skipped cells, despite the mismatched
        # sidecar partition from the workers=2 run.
        keys = _cell_keys_in_journal(path)
        assert len(keys) == len(set(keys)) == len(baseline[0].reports)

    def test_process_interrupt_resumes_serially(self, corpora, baseline, tmp_path):
        path = tmp_path / "campaign.jsonl"
        _interrupt_after_cells(
            corpora, path, after_cells=3, mode="process", workers=2
        )
        resumed = run_campaign(corpora, journal=path, resume=True, **CAMPAIGN)
        assert serialized(resumed.records) == serialized(baseline[0].records)
        assert path.read_bytes() == baseline[1]


class TestSidecarResume:
    def test_completed_shards_reused_at_same_worker_count(
        self, corpora, baseline, tmp_path
    ):
        path = tmp_path / "campaign.jsonl"
        _interrupt_after_cells(
            corpora, path, after_cells=2, mode="process", workers=2
        )
        # The interrupted cell's shards reached the sidecars even
        # though the cell never reached the main journal.
        assert sidecar_paths(path)
        meta = dict(seed=CAMPAIGN["seed"],
                    iterations_per_cell=CAMPAIGN["iterations_per_cell"],
                    workers=2)
        partials = load_sidecar_shards(path, meta)
        journaled = set(_cell_keys_in_journal(path))
        assert any(key not in journaled for key in partials)

        resumed = run_campaign(
            corpora, journal=path, resume=True, mode="process", workers=2, **CAMPAIGN
        )
        reused = [
            key
            for key, shards in resumed.shard_counters.items()
            if shards and all(c["resumed"] for c in shards)
        ]
        assert reused  # at least the interrupted cell came from sidecars
        assert serialized(resumed.records) == serialized(baseline[0].records)
        assert path.read_bytes() == baseline[1]
        assert sidecar_paths(path) == []  # cleaned up after success

    def test_mismatched_sidecar_meta_ignored(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        side = CampaignJournal(sidecar_path(path, 7))
        side.ensure_meta(seed=1, iterations_per_cell=8, workers=2)
        side.record_shard(("s", "f", "sat"), 0, 2, YinYangReport(iterations=4))
        meta = dict(seed=1, iterations_per_cell=8, workers=2)
        assert ("s", "f", "sat") in load_sidecar_shards(path, meta)
        assert load_sidecar_shards(path, dict(meta, workers=3)) == {}
        assert load_sidecar_shards(path, dict(meta, seed=2)) == {}

    def test_unreadable_sidecar_skipped(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with open(sidecar_path(path, 3), "w", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        meta = dict(seed=1, iterations_per_cell=8, workers=2)
        assert load_sidecar_shards(path, meta) == {}


class CrashingSolver:
    """Deterministically segfaults on every check (picklable by name,
    so process-mode workers can rebuild it from the factory)."""

    name = "crashy"

    def check_script(self, script):
        raise SolverCrash("simulated segfault", kind="segfault")


def crashing_solvers():
    return [CrashingSolver()]


class TestQuarantineAggregation:
    def test_quarantine_propagates_across_workers_and_cells(self):
        corpora = {"QF_LIA": build_corpus("QF_LIA", scale=0.003, seed=5)}
        result = run_campaign(
            corpora,
            mode="process",
            workers=2,
            policy=ResiliencePolicy(quarantine_after=2),
            **dict(CAMPAIGN, solver_factory=crashing_solvers),
        )
        keys = list(result.reports)
        assert len(keys) >= 2
        first = result.reports[keys[0]]
        # Both workers trip their breakers inside the first cell...
        assert "crashy" in first.quarantined
        assert any(b.kind == "crash" for b in first.bugs)
        # ...and the parent pre-quarantines the solver everywhere after:
        # later cells skip every check and record no further crashes.
        for key in keys[1:]:
            report = result.reports[key]
            assert report.quarantine_skips > 0
            assert not report.bugs
            assert "crashy" in report.quarantined
