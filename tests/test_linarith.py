"""Unit and randomized tests for the simplex / branch-and-bound core."""

import random
from fractions import Fraction as F
from itertools import product

import pytest

from repro.solver.linarith import DeltaRational, LinearAtom, check_linear


def atom(coeffs, op, const):
    return LinearAtom.make(coeffs, op, F(const))


class TestDeltaRational:
    def test_ordering(self):
        assert DeltaRational(1) < DeltaRational(2)
        assert DeltaRational(1, -1) < DeltaRational(1)
        assert DeltaRational(1) < DeltaRational(1, 1)

    def test_arithmetic(self):
        a = DeltaRational(1, 2) + DeltaRational(3, -1)
        assert a == DeltaRational(4, 1)
        assert a - DeltaRational(1) == DeltaRational(3, 1)
        assert DeltaRational(2, 1).scale(F(3)) == DeltaRational(6, 3)

    def test_concretize(self):
        assert DeltaRational(1, 2).concretize(F(1, 4)) == F(3, 2)


class TestLinearAtom:
    def test_make_drops_zero_coeffs(self):
        a = atom({"x": 0, "y": 1}, "<=", 2)
        assert dict(a.coeffs) == {"y": F(1)}

    def test_evaluate(self):
        a = atom({"x": 2, "y": -1}, "<=", 3)
        assert a.evaluate({"x": F(1), "y": F(0)}) is True
        assert a.evaluate({"x": F(2), "y": F(0)}) is False


class TestRationalFeasibility:
    def test_trivial_sat(self):
        status, model = check_linear([atom({"x": 1}, "<=", 5)])
        assert status == "sat"
        assert model["x"] <= 5

    def test_window_unsat(self):
        atoms = [atom({"x": -1}, "<", 0), atom({"x": 1}, "<", 0)]
        assert check_linear(atoms)[0] == "unsat"

    def test_strict_vs_nonstrict(self):
        # x <= 0 and x >= 0 is sat (x = 0); x < 0 and x >= 0 is not.
        assert check_linear([atom({"x": 1}, "<=", 0), atom({"x": -1}, "<=", 0)])[0] == "sat"
        assert check_linear([atom({"x": 1}, "<", 0), atom({"x": -1}, "<=", 0)])[0] == "unsat"

    def test_strict_open_interval_has_rational_point(self):
        status, model = check_linear(
            [atom({"x": -1}, "<", 0), atom({"x": 1}, "<", 1)]
        )
        assert status == "sat"
        assert 0 < model["x"] < 1

    def test_equalities_system(self):
        atoms = [
            atom({"x": 1, "y": 1}, "=", 10),
            atom({"x": 1, "y": -1}, "=", 4),
        ]
        status, model = check_linear(atoms)
        assert status == "sat"
        assert model["x"] == 7 and model["y"] == 3

    def test_inconsistent_equalities(self):
        atoms = [atom({"x": 1}, "=", 1), atom({"x": 1}, "=", 2)]
        assert check_linear(atoms)[0] == "unsat"

    def test_paper_phi4_linear_part(self):
        # 0 < y < v <= w with w < 0 is unsat.
        atoms = [
            atom({"y": -1}, "<", 0),
            atom({"y": 1, "v": -1}, "<", 0),
            atom({"v": 1, "w": -1}, "<=", 0),
            atom({"w": 1}, "<", 0),
        ]
        assert check_linear(atoms)[0] == "unsat"

    def test_constant_atoms(self):
        assert check_linear([atom({}, "<=", 0)])[0] == "sat"
        assert check_linear([atom({}, "<", 0)])[0] == "unsat"
        assert check_linear([atom({}, "=", 0)])[0] == "sat"

    def test_unbounded_direction(self):
        status, model = check_linear([atom({"x": -1}, "<=", -100)])
        assert status == "sat"
        assert model["x"] >= 100


class TestIntegerLayer:
    def test_fractional_equality_unsat(self):
        assert check_linear([atom({"x": 2}, "=", 1)], int_vars={"x"})[0] == "unsat"

    def test_branching_finds_integer(self):
        atoms = [atom({"x": -2}, "<=", -3), atom({"x": 2}, "<=", 5)]
        status, model = check_linear(atoms, int_vars={"x"})
        assert status == "sat"
        assert model["x"] == 2

    def test_tight_window_unsat(self):
        # 0 < 3x < 3 has no integer solution... wait x=0? 0<3x means x>0.
        atoms = [atom({"x": -3}, "<", 0), atom({"x": 3}, "<", 3)]
        assert check_linear(atoms, int_vars={"x"})[0] == "unsat"

    def test_mixed_int_real(self):
        atoms = [
            atom({"x": 1, "r": -1}, "=", 0),  # x = r
            atom({"r": 2}, "=", 3),  # r = 3/2
        ]
        assert check_linear(atoms, int_vars={"x"})[0] == "unsat"
        assert check_linear(atoms)[0] == "sat"

    def test_strict_tightening(self):
        # x < 1 and x > -1 over Int forces x = 0.
        atoms = [atom({"x": 1}, "<", 1), atom({"x": -1}, "<", 1)]
        status, model = check_linear(atoms, int_vars={"x"})
        assert status == "sat"
        assert model["x"] == 0

    @pytest.mark.parametrize("trial", range(25))
    def test_randomized_against_grid(self, trial):
        rng = random.Random(trial * 31337)
        names = ["x", "y", "z"][: rng.randint(1, 3)]
        atoms = []
        for _ in range(rng.randint(1, 6)):
            coeffs = {v: rng.randint(-3, 3) for v in names}
            op = rng.choice(["<=", "<", "="])
            atoms.append(atom(coeffs, op, rng.randint(-4, 4)))
        bounded = atoms + [
            a for v in names for a in (atom({v: 1}, "<=", 5), atom({v: -1}, "<=", 5))
        ]
        status, model = check_linear(bounded, int_vars=set(names))
        found = None
        for values in product(range(-5, 6), repeat=len(names)):
            candidate = dict(zip(names, map(F, values)))
            if all(a.evaluate(candidate) for a in bounded):
                found = candidate
                break
        assert status == ("sat" if found else "unsat")
        if status == "sat":
            assert all(a.evaluate(model) for a in bounded)
            assert all(model[v].denominator == 1 for v in names)
