"""The paper's worked examples and Figure 13 samples, as tests.

These tie the reproduction to the paper's concrete artifacts: the
Section 2 SAT/UNSAT fusion walkthroughs (Figures 2-5) and the six
reduced bug formulas of Figure 13.
"""

import pytest

from repro.cli import make_solver
from repro.faults.fault import analyze_script
from repro.faults.paper_samples import FIGURE_13, sample_by_figure
from repro.smtlib.parser import parse_script
from repro.solver.result import SolverCrash
from repro.solver.solver import ReferenceSolver, SolverConfig

PHI1 = """
(declare-fun x () Int)
(declare-fun w () Bool)
(assert (= x (- 1)))
(assert (= w (= x (- 1))))
(assert w)
(check-sat)
"""

PHI2 = """
(declare-fun y () Int)
(declare-fun v () Bool)
(assert (= v (not (= y (- 1)))))
(assert (ite v false (= y (- 1))))
(check-sat)
"""

FIGURE3_FUSED = """
(declare-fun v () Bool)
(declare-fun w () Bool)
(declare-fun x () Int)
(declare-fun y () Int)
(declare-fun z () Int)
(assert (= (div z y) (- 1)))
(assert (= w (= x (- 1)))) (assert w)
(assert (= v (not (= y (- 1)))))
(assert (ite v false (= (div z x) (- 1))))
(check-sat)
"""

PHI3 = """
(declare-fun x () Real)
(assert (not (= (+ (+ 1.0 x) 6.0) (+ 7.0 x))))
(check-sat)
"""

PHI4 = """
(declare-fun y () Real)
(declare-fun w () Real)
(declare-fun v () Real)
(assert (and (< y v) (>= w v) (< (/ w v) 0) (> y 0)))
(check-sat)
"""

FIGURE5_FUSED = """
(declare-fun v () Real)
(declare-fun w () Real)
(declare-fun x () Real)
(declare-fun y () Real)
(declare-fun z () Real)
(assert (or
  (not (= (+ (+ 1.0 (/ z y)) 6.0) (+ 7.0 x)))
  (and (< (/ z x) v) (>= w v) (< (/ w v) 0) (> (/ z x) 0))))
(assert (= z (* x y)))
(assert (= x (/ z y)))
(assert (= y (/ z x)))
(check-sat)
"""


class TestSectionTwoExamples:
    def test_phi1_sat(self, solver):
        assert str(solver.check_result(PHI1)) == "sat"

    def test_phi2_sat(self, solver):
        assert str(solver.check_result(PHI2)) == "sat"

    def test_figure3_fused_is_sat(self, solver):
        """The SAT-fused formula of Figure 3 (the CVC4 bug trigger):
        a correct solver must answer sat."""
        assert str(solver.check_result(FIGURE3_FUSED)) == "sat"

    def test_phi3_unsat(self, solver):
        assert str(solver.check_result(PHI3)) == "unsat"

    def test_phi4_unsat(self, solver):
        assert str(solver.check_result(PHI4)) == "unsat"

    def test_figure5_fused_is_unsat(self, solver):
        """The UNSAT-fused formula of Figure 5 (the Z3 bug trigger):
        a correct solver must answer unsat."""
        assert str(solver.check_result(FIGURE5_FUSED)) == "unsat"

    def test_figure5_bug_only_in_fusion(self, solver):
        """Section 2.2: 'This bug is only triggered by the fused
        formula; it cannot be triggered by either of the seed formulas
        nor by the disjunction of the two seeds.'"""
        buggy = make_solver("z3-like")
        assert str(buggy.check_result(PHI3)) == "unsat"
        assert str(buggy.check_result(PHI4)) == "unsat"
        assert str(buggy.check_result(FIGURE5_FUSED)) == "sat"  # the bug


class TestFigure13Samples:
    @pytest.mark.parametrize("sample", FIGURE_13, ids=lambda s: s.figure)
    def test_samples_parse_and_classify(self, sample):
        script = parse_script(sample.smt2)
        assert analyze_script(script).logic_family == sample.logic

    @pytest.mark.parametrize(
        "sample",
        [s for s in FIGURE_13 if s.kind == "soundness"],
        ids=lambda s: s.figure,
    )
    def test_soundness_samples_reproduce(self, sample):
        buggy = make_solver(sample.solver)
        assert str(buggy.check_result(sample.smt2)) == "sat"

    def test_crash_sample_reproduces(self):
        sample = sample_by_figure("13f")
        buggy = make_solver(sample.solver)
        with pytest.raises(SolverCrash):
            buggy.check(sample.smt2)

    def test_reference_decides_13c(self, thorough_solver):
        # 13c's unsatisfiability is arithmetic (division-at-zero): the
        # reference proves it. The reduced string samples need reasoning
        # beyond the bounded search's completeness certificate, so the
        # reference honestly answers unknown on them.
        assert str(thorough_solver.check_result(sample_by_figure("13c").smt2)) == "unsat"

    @pytest.mark.parametrize(
        "sample",
        [s for s in FIGURE_13 if s.kind == "soundness"],
        ids=lambda s: s.figure,
    )
    def test_reference_never_contradicts_truth(self, solver, sample):
        # unsat or unknown — never sat on an unsatisfiable sample.
        assert str(solver.check_result(sample.smt2)) != "sat"
