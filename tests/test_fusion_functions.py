"""Unit tests for the Figure 6 fusion/inversion function families.

The core identities: under any model where ``z = f(x, y)``, the
inversion terms recover the originals — ``r_x(y, z) = x`` and
``r_y(x, z) = y``.
"""

import random
from fractions import Fraction

import pytest

from repro.core.config import FusionConfig
from repro.core.fusion_functions import (
    all_scheme_names,
    pick_instance,
    schemes_for_sort,
)
from repro.errors import FusionError
from repro.semantics.evaluator import evaluate
from repro.semantics.model import Model
from repro.smtlib.ast import Var
from repro.smtlib.sorts import BOOL, INT, REAL, STRING


def _roundtrip(instance, x_value, y_value):
    """Evaluate the inversion identities under z = f(x, y)."""
    x = Var("x", instance.sort)
    y = Var("y", instance.sort)
    z = Var("z", instance.sort)
    model = Model({"x": x_value, "y": y_value})
    model["z"] = evaluate(instance.fusion(x, y), model)
    rx = evaluate(instance.invert_x(x, y, z), model)
    ry = evaluate(instance.invert_y(x, y, z), model)
    return rx, ry


INT_VALUES = [-7, -1, 0, 1, 3, 12]
REAL_VALUES = [Fraction(-5, 2), Fraction(0), Fraction(1, 3), Fraction(4)]
STRING_VALUES = ["", "a", "ab", "ba", "aab"]


class TestSchemeRegistry:
    def test_int_families_present(self):
        names = {s.name for s in schemes_for_sort(INT)}
        assert names == {
            "int-addition",
            "int-addition-constant",
            "int-multiplication",
            "int-affine",
        }

    def test_real_families_present(self):
        assert len(schemes_for_sort(REAL)) == 4

    def test_string_families_present(self):
        names = {s.name for s in schemes_for_sort(STRING)}
        assert names == {
            "string-concat-substr",
            "string-concat-replace",
            "string-concat-infix",
        }

    def test_filter_by_name(self):
        only = schemes_for_sort(INT, names=("int-addition",))
        assert [s.name for s in only] == ["int-addition"]

    def test_no_bool_schemes(self):
        with pytest.raises(FusionError):
            pick_instance(BOOL, random.Random(0), FusionConfig())

    def test_all_scheme_names_sorted(self):
        names = all_scheme_names()
        assert names == sorted(names)


class TestArithmeticRoundTrips:
    @pytest.mark.parametrize("scheme", ["int-addition", "int-addition-constant"])
    @pytest.mark.parametrize("x_value", INT_VALUES)
    @pytest.mark.parametrize("y_value", INT_VALUES)
    def test_int_additive(self, scheme, x_value, y_value, rng):
        config = FusionConfig(schemes=(scheme,))
        instance = pick_instance(INT, rng, config)
        assert _roundtrip(instance, x_value, y_value) == (x_value, y_value)

    @pytest.mark.parametrize("x_value", INT_VALUES)
    @pytest.mark.parametrize("y_value", [v for v in INT_VALUES if v != 0])
    def test_int_multiplication_recovers_x(self, x_value, y_value, rng):
        # r_x = z div y recovers x when y != 0 (Euclidean division of an
        # exact product).
        config = FusionConfig(schemes=("int-multiplication",))
        instance = pick_instance(INT, rng, config)
        rx, _ = _roundtrip(instance, x_value, y_value)
        assert rx == x_value

    @pytest.mark.parametrize("trial", range(20))
    def test_int_affine(self, trial):
        rng = random.Random(trial)
        config = FusionConfig(schemes=("int-affine",))
        instance = pick_instance(INT, rng, config)
        x_value = rng.randint(-10, 10)
        y_value = rng.randint(-10, 10)
        assert _roundtrip(instance, x_value, y_value) == (x_value, y_value)

    @pytest.mark.parametrize("scheme", ["real-addition", "real-addition-constant", "real-affine"])
    @pytest.mark.parametrize("x_value", REAL_VALUES)
    @pytest.mark.parametrize("y_value", REAL_VALUES)
    def test_real_schemes(self, scheme, x_value, y_value, rng):
        config = FusionConfig(schemes=(scheme,))
        instance = pick_instance(REAL, rng, config)
        assert _roundtrip(instance, x_value, y_value) == (x_value, y_value)

    @pytest.mark.parametrize("x_value", [v for v in REAL_VALUES if v != 0])
    @pytest.mark.parametrize("y_value", [v for v in REAL_VALUES if v != 0])
    def test_real_multiplication(self, x_value, y_value, rng):
        # Both inversions need nonzero partners: r_y = z / x divides by
        # x (at x = 0 the division is uninterpreted — Section 3.3's
        # linear-to-nonlinear caveat).
        config = FusionConfig(schemes=("real-multiplication",))
        instance = pick_instance(REAL, rng, config)
        assert _roundtrip(instance, x_value, y_value) == (x_value, y_value)

    def test_real_multiplication_at_zero_is_uninterpreted(self, rng):
        config = FusionConfig(schemes=("real-multiplication",))
        instance = pick_instance(REAL, rng, config)
        rx, ry = _roundtrip(instance, Fraction(0), Fraction(2))
        assert rx == 0  # z / y = 0 / 2 recovers x
        assert ry == 0  # z / x = 0 / 0: the model's default choice


class TestStringRoundTrips:
    @pytest.mark.parametrize("scheme", ["string-concat-substr", "string-concat-replace"])
    @pytest.mark.parametrize("x_value", STRING_VALUES)
    @pytest.mark.parametrize("y_value", STRING_VALUES)
    def test_concat_families(self, scheme, x_value, y_value, rng):
        config = FusionConfig(schemes=(scheme,))
        instance = pick_instance(STRING, rng, config)
        rx, ry = _roundtrip(instance, x_value, y_value)
        assert rx == x_value
        if scheme == "string-concat-substr":
            assert ry == y_value
        else:
            # replace removes the *first* occurrence of x in z = x ++ y
            # (for empty x, SMT-LIB replace prepends — still yielding y).
            expected = (
                (x_value + y_value).replace(x_value, "", 1) if x_value else y_value
            )
            assert ry == expected

    @pytest.mark.parametrize("trial", range(15))
    def test_infix_family_recovers_x(self, trial):
        rng = random.Random(trial * 13)
        config = FusionConfig(schemes=("string-concat-infix",))
        instance = pick_instance(STRING, rng, config)
        x_value, y_value = "ba", "ab"
        rx, _ = _roundtrip(instance, x_value, y_value)
        assert rx == x_value


class TestConstraints:
    def test_constraints_hold_under_intended_model(self, rng):
        config = FusionConfig()
        instance = pick_instance(INT, rng, config)
        x, y, z = Var("x", INT), Var("y", INT), Var("z", INT)
        model = Model({"x": 3, "y": -2})
        model["z"] = evaluate(instance.fusion(x, y), model)
        for constraint in instance.constraints(x, y, z):
            assert evaluate(constraint, model) is True

    def test_instances_are_deterministic_given_rng(self):
        config = FusionConfig()
        a = pick_instance(REAL, random.Random(5), config)
        b = pick_instance(REAL, random.Random(5), config)
        assert a.scheme == b.scheme

    def test_coefficient_range_respected(self):
        config = FusionConfig(schemes=("int-affine",), coefficient_range=2)
        for trial in range(40):
            instance = pick_instance(INT, random.Random(trial), config)
            rx, ry = _roundtrip(instance, 1, 1)
            assert (rx, ry) == (1, 1)
