"""Cross-validation of the simplex core against scipy.optimize.linprog.

For random systems of *non-strict* linear constraints (scipy cannot do
strict ones), rational-simplex feasibility must agree with scipy's LP
feasibility phase. This is an independent oracle: scipy shares no code
with our implementation.
"""

import random
from fractions import Fraction

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.solver.linarith import LinearAtom, check_linear


def _random_system(rng, num_vars, num_constraints):
    names = [f"v{i}" for i in range(num_vars)]
    atoms = []
    rows_ub = []
    b_ub = []
    rows_eq = []
    b_eq = []
    for _ in range(num_constraints):
        coeffs = {name: rng.randint(-4, 4) for name in names}
        constant = rng.randint(-6, 6)
        if rng.random() < 0.25:
            atoms.append(LinearAtom.make(coeffs, "=", Fraction(constant)))
            rows_eq.append([coeffs[n] for n in names])
            b_eq.append(constant)
        else:
            atoms.append(LinearAtom.make(coeffs, "<=", Fraction(constant)))
            rows_ub.append([coeffs[n] for n in names])
            b_ub.append(constant)
    # Box to keep scipy comfortable (and match on both sides).
    for name in names:
        atoms.append(LinearAtom.make({name: 1}, "<=", Fraction(50)))
        atoms.append(LinearAtom.make({name: -1}, "<=", Fraction(50)))
    return names, atoms, rows_ub, b_ub, rows_eq, b_eq


def _scipy_feasible(names, rows_ub, b_ub, rows_eq, b_eq):
    result = linprog(
        c=np.zeros(len(names)),
        A_ub=np.array(rows_ub) if rows_ub else None,
        b_ub=np.array(b_ub, dtype=float) if rows_ub else None,
        A_eq=np.array(rows_eq) if rows_eq else None,
        b_eq=np.array(b_eq, dtype=float) if rows_eq else None,
        bounds=[(-50, 50)] * len(names),
        method="highs",
    )
    return result.status == 0  # 0 = optimal (feasible); 2 = infeasible


@pytest.mark.parametrize("trial", range(40))
def test_feasibility_agrees_with_scipy(trial):
    rng = random.Random(trial * 2654435761 % (2**31))
    num_vars = rng.randint(1, 4)
    num_constraints = rng.randint(1, 7)
    names, atoms, rows_ub, b_ub, rows_eq, b_eq = _random_system(
        rng, num_vars, num_constraints
    )
    status, model = check_linear(atoms)
    expected = _scipy_feasible(names, rows_ub, b_ub, rows_eq, b_eq)
    assert status == ("sat" if expected else "unsat")
    if status == "sat":
        for atom in atoms:
            full = {name: model.get(name, Fraction(0)) for name in names}
            assert atom.evaluate(full)
