"""Unit tests for random-occurrence substitution (phi[e/x]_R)."""

import random

import pytest

from repro.core.substitution import (
    count_free_occurrences,
    random_occurrence_substitution,
    substitute_occurrences,
)
from repro.smtlib import builder as b
from repro.smtlib.ast import Quantifier, Var
from repro.smtlib.parser import parse_term
from repro.smtlib.sorts import INT

X = Var("x", INT)
Y = Var("y", INT)
Z = Var("z", INT)


def _term():
    # x appears 3 times.
    return b.and_(b.gt(X, 0), b.eq(b.add(X, Y), b.mul(X, 2)))


class TestSelectiveSubstitution:
    def test_replace_none(self):
        term = _term()
        assert substitute_occurrences(term, X, Z, []) == term

    def test_replace_all(self):
        term = substitute_occurrences(_term(), X, Z, [0, 1, 2])
        assert count_free_occurrences(term, X) == 0
        assert count_free_occurrences(term, Z) == 3

    def test_replace_first_only(self):
        term = substitute_occurrences(_term(), X, Z, [0])
        assert str(term) == "(and (> z 0) (= (+ x y) (* x 2)))"

    def test_replace_middle_only(self):
        term = substitute_occurrences(_term(), X, Z, [1])
        assert str(term) == "(and (> x 0) (= (+ z y) (* x 2)))"

    def test_out_of_range_indices_ignored(self):
        term = substitute_occurrences(_term(), X, Z, [7])
        assert term == _term()

    def test_replacement_not_revisited(self):
        # Replacing x by a term containing x must not loop.
        replacement = b.add(X, 1)
        term = substitute_occurrences(_term(), X, replacement, [0, 1, 2])
        assert count_free_occurrences(term, X) == 3  # one inside each replacement

    def test_self_referential_inversion_term(self):
        # The string schemes use r_x = substr(z, 0, len x), which
        # mentions x itself.
        from repro.smtlib.sorts import STRING

        s = Var("s", STRING)
        z = Var("z", STRING)
        inversion = b.substr(z, 0, b.length(s))
        term = b.eq(s, b.lift("ab"))
        replaced = substitute_occurrences(term, s, inversion, [0])
        assert str(replaced) == '(= (str.substr z 0 (str.len s)) "ab")'

    def test_quantifier_shadowing_respected(self):
        h = Var("h", INT)
        quantified = Quantifier("exists", (("x", INT),), b.gt(Var("x", INT), 0))
        term = b.and_(b.gt(X, 0), quantified)
        replaced = substitute_occurrences(term, X, Z, [0, 1])
        # Only the free occurrence is index 0; the bound one is skipped.
        assert str(replaced) == "(and (> z 0) (exists ((x Int)) (> x 0)))"
        del h


class TestRandomSubstitution:
    def test_probability_zero_replaces_nothing(self, rng):
        term, replaced, total = random_occurrence_substitution(_term(), X, Z, rng, 0.0)
        assert replaced == 0 and total == 3
        assert term == _term()

    def test_probability_one_replaces_everything(self, rng):
        term, replaced, total = random_occurrence_substitution(
            _term(), X, Z, rng, 1.0
        )
        assert replaced == total == 3
        assert count_free_occurrences(term, X) == 0

    def test_missing_variable(self, rng):
        term, replaced, total = random_occurrence_substitution(
            _term(), Var("w", INT), Z, rng, 1.0
        )
        assert (replaced, total) == (0, 0)
        assert term == _term()

    def test_deterministic_given_seed(self):
        a = random_occurrence_substitution(_term(), X, Z, random.Random(4), 0.5)
        c = random_occurrence_substitution(_term(), X, Z, random.Random(4), 0.5)
        assert a[0] == c[0]

    @pytest.mark.parametrize("probability", [0.25, 0.5, 0.75])
    def test_counts_consistent(self, probability):
        rng = random.Random(9)
        for _ in range(20):
            term, replaced, total = random_occurrence_substitution(
                _term(), X, Z, rng, probability
            )
            assert total == 3
            assert 0 <= replaced <= total
            assert count_free_occurrences(term, X) == total - replaced


class TestModelCountInequality:
    def test_partial_substitution_weaker_than_full(self):
        """Section 3.1: C(phi[e/x]) <= C(phi[e/x]_R).

        Check on a finite domain: every model of the full substitution
        extended appropriately is a model of the partial one.
        """
        from repro.semantics.evaluator import evaluate
        from repro.semantics.model import Model

        phi = parse_term("(and (> x 0) (< x 3))", [X])
        e = parse_term("(- z 1)", [Z])
        full = substitute_occurrences(phi, X, e, [0, 1])
        partial = substitute_occurrences(phi, X, e, [0])

        def count(term, names):
            total = 0
            for vx in range(-3, 6):
                for vz in range(-3, 6):
                    model = Model({"x": vx, "z": vz})
                    if evaluate(term, model):
                        total += 1
            return total

        # Over the full grid (x free in partial), the partial
        # substitution admits at least as many models.
        assert count(partial, ["x", "z"]) >= count(full, ["x", "z"])
