"""Tests for DPLL(T) internals: theory dispatch, core shrinking, caching."""

import pytest

from repro.semantics.model import Model
from repro.smtlib import builder as b
from repro.smtlib.parser import parse_script
from repro.solver.dpllt import _check_theory, _shrink_core, check_assertions
from repro.solver.result import SolverResult
from repro.solver.strings import StringConfig


def lit(term, polarity=True):
    return (term, polarity)


X = b.int_var("x")
Y = b.int_var("y")
S = b.string_var("s")


class TestTheoryDispatch:
    def test_empty_conjunction_sat(self):
        status, model, kind = _check_theory([], StringConfig(), 0)
        assert status == "sat"
        assert isinstance(model, Model)

    def test_arith_conjunction(self):
        status, model, _kind = _check_theory(
            [lit(b.gt(X, 0)), lit(b.lt(X, 5))], StringConfig(), 0
        )
        assert status == "sat"
        assert 0 < model["x"] < 5
        assert isinstance(model["x"], int)

    def test_arith_conflict(self):
        status, _, _kind = _check_theory(
            [lit(b.gt(X, 0)), lit(b.gt(X, 0), False)], StringConfig(), 0
        )
        assert status == "unsat"

    def test_string_dispatch(self):
        status, model, _kind = _check_theory(
            [lit(b.eq(b.length(S), 2))], StringConfig(), 0
        )
        assert status == "sat"
        assert len(model["s"]) == 2

    def test_mixed_string_arith_goes_to_strings(self):
        status, model, _kind = _check_theory(
            [lit(b.eq(X, b.length(S))), lit(b.eq(b.length(S), 3))],
            StringConfig(),
            0,
        )
        assert status == "sat"
        assert model["x"] == 3

    def test_decided_false_atom(self):
        status, _, _kind = _check_theory([lit(b.lift(True), False)], StringConfig(), 0)
        assert status == "unsat"


class TestShrinkCore:
    def _checker(self):
        cache = {}

        def check(literals):
            key = frozenset(literals)
            if key not in cache:
                cache[key] = _check_theory(list(literals), StringConfig(), 0)
            return cache[key]

        return check

    def test_shrinks_to_contradiction_pair(self):
        literals = [
            lit(b.gt(X, 0)),
            lit(b.lt(Y, 9)),
            lit(b.lt(X, 0)),
            lit(b.eq(Y, 2)),
        ]
        core = _shrink_core(literals, self._checker())
        assert len(core) == 2
        assert {str(t) for t, _ in core} == {"(> x 0)", "(< x 0)"}

    def test_singleton_core(self):
        literals = [lit(b.eq(X, X), False), lit(b.gt(Y, 0))]
        core = _shrink_core(literals, self._checker())
        assert len(core) == 1

    def test_oversize_input_returned_unshrunk(self):
        literals = [lit(b.gt(X, i)) for i in range(40)] + [lit(b.lt(X, 0))]
        core = _shrink_core(literals, self._checker(), max_literals=10)
        assert core == literals


class TestCheckAssertions:
    def test_round_budget_reports_unknown(self):
        script = parse_script(
            "(declare-fun a () Real)(declare-fun c () Real)"
            "(assert (= (* a a) (+ c 1.0)))(assert (= (* c c) (+ a 1.0)))"
            "(assert (distinct a c))(check-sat)"
        )
        outcome = check_assertions(script.asserts, max_rounds=1)
        if outcome.result is SolverResult.UNKNOWN:
            assert outcome.reason

    def test_no_asserts_is_sat(self):
        outcome = check_assertions([])
        assert outcome.result is SolverResult.SAT

    def test_model_contains_bool_assignments(self):
        script = parse_script(
            "(declare-fun p () Bool)(declare-fun x () Int)"
            "(assert (= p (> x 3)))(assert p)(check-sat)"
        )
        outcome = check_assertions(script.asserts)
        assert outcome.result is SolverResult.SAT
        assert outcome.model["p"] is True
        assert outcome.model["x"] > 3

    def test_purified_fresh_vars_not_leaked_into_trouble(self):
        # Fresh purification variables appear in the model but the
        # original formula still evaluates true.
        from repro.semantics.evaluator import evaluate_script

        script = parse_script(
            "(declare-fun x () Int)(assert (= (div x 3) 2))(check-sat)"
        )
        outcome = check_assertions(script.asserts)
        assert outcome.result is SolverResult.SAT
        assert evaluate_script(script, outcome.model)
        assert 6 <= outcome.model["x"] <= 8
