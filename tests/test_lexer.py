"""Unit tests for the SMT-LIB tokenizer."""

import pytest

from repro.errors import ParseError
from repro.smtlib import lexer


def kinds(text):
    return [t.kind for t in lexer.tokenize(text)]


def texts(text):
    return [t.text for t in lexer.tokenize(text)]


class TestBasicTokens:
    def test_parens(self):
        assert kinds("()") == [lexer.LPAREN, lexer.RPAREN]

    def test_symbol(self):
        assert kinds("foo") == [lexer.SYMBOL]

    def test_symbol_with_dots(self):
        assert texts("str.to.int") == ["str.to.int"]

    def test_symbol_with_operators(self):
        assert texts("<= >= => + - * /") == ["<=", ">=", "=>", "+", "-", "*", "/"]

    def test_numeral(self):
        tokens = lexer.tokenize("42")
        assert tokens[0].kind == lexer.NUMERAL
        assert tokens[0].text == "42"

    def test_decimal(self):
        tokens = lexer.tokenize("3.14")
        assert tokens[0].kind == lexer.DECIMAL
        assert tokens[0].text == "3.14"

    def test_decimal_trailing_zero(self):
        assert kinds("1.0") == [lexer.DECIMAL]

    def test_keyword(self):
        tokens = lexer.tokenize(":status")
        assert tokens[0].kind == lexer.KEYWORD
        assert tokens[0].text == ":status"

    def test_nested_expression(self):
        assert kinds("(+ x 1)") == [
            lexer.LPAREN,
            lexer.SYMBOL,
            lexer.SYMBOL,
            lexer.NUMERAL,
            lexer.RPAREN,
        ]


class TestStrings:
    def test_simple_string(self):
        tokens = lexer.tokenize('"hello"')
        assert tokens[0].kind == lexer.STRING
        assert tokens[0].text == "hello"

    def test_empty_string(self):
        assert lexer.tokenize('""')[0].text == ""

    def test_doubled_quote_escape(self):
        assert lexer.tokenize('"a""b"')[0].text == 'a"b'

    def test_string_with_spaces(self):
        assert lexer.tokenize('"a b c"')[0].text == "a b c"

    def test_string_with_parens(self):
        assert lexer.tokenize('"(not a list)"')[0].text == "(not a list)"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            lexer.tokenize('"oops')

    def test_backslash_is_ordinary(self):
        # SMT-LIB 2.6: backslash has no escape meaning inside strings.
        assert lexer.tokenize(r'"a\b"')[0].text == "a\\b"
        assert lexer.tokenize('"\\\\"')[0].text == "\\\\"


class TestCommentsAndLayout:
    def test_comment_skipped(self):
        assert kinds("; a comment\nx") == [lexer.SYMBOL]

    def test_comment_to_end_of_line(self):
        assert texts("x ; trailing\ny") == ["x", "y"]

    def test_line_numbers(self):
        tokens = lexer.tokenize("a\nb\n  c")
        assert [t.line for t in tokens] == [1, 2, 3]
        assert tokens[2].column == 3

    def test_whitespace_variants(self):
        assert texts("a\tb\r\nc") == ["a", "b", "c"]


class TestQuotedSymbols:
    def test_quoted_symbol(self):
        assert texts("|weird symbol|") == ["weird symbol"]

    def test_unterminated_quoted_symbol(self):
        with pytest.raises(ParseError):
            lexer.tokenize("|oops")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            lexer.tokenize("{")

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as excinfo:
            lexer.tokenize("abc\n   {")
        assert excinfo.value.line == 2
