"""Tests for the reduce, campaign, stats and telemetry CLI surface."""

import json

import pytest

from repro.cli import main
from repro.smtlib.parser import parse_script


@pytest.fixture()
def bug_file(tmp_path):
    """A small formula that triggers z3-soundness-014 (to-int-of-term)."""
    path = tmp_path / "bug.smt2"
    path.write_text(
        "(declare-fun a () String)\n"
        '(assert (>= (str.to.int (str.++ a "x")) 0))\n'
        '(assert (= a ""))\n'
        "(assert (< (str.len a) 0))\n"
        "(check-sat)\n"
    )
    return str(path)


class TestReduceCommand:
    def test_reduce_soundness_bug(self, bug_file, capsys):
        code = main(
            ["reduce", bug_file, "--solver", "z3-like", "--expect", "unsat"]
        )
        out = capsys.readouterr().out
        assert code == 0
        reduced = parse_script(out)
        # Reduction keeps a bug-triggering core, smaller than the input.
        assert 1 <= len(reduced.asserts) <= 3

    def test_reduce_crash_bug(self, tmp_path, capsys):
        from repro.faults.paper_samples import sample_by_figure

        path = tmp_path / "crash.smt2"
        path.write_text(sample_by_figure("13f").smt2)
        code = main(
            ["reduce", str(path), "--solver", "z3-like", "--expect", "crash"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "(check-sat)" in out

    def test_reduce_rejects_non_bug(self, tmp_path):
        path = tmp_path / "fine.smt2"
        path.write_text("(declare-fun x () Int)(assert (> x 0))(check-sat)\n")
        from repro.errors import ReductionError

        with pytest.raises(ReductionError):
            main(["reduce", str(path), "--solver", "z3-like", "--expect", "unsat"])


class TestCampaignCommand:
    def test_campaign_prints_tables(self, capsys):
        code = main(["campaign", "--scale", "0.0005", "--iterations", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 8a" in out and "Figure 8c" in out
        assert "Reported" in out

class TestResilienceFlags:
    def test_test_command_accepts_hardening_flags(self, capsys):
        code = main(
            [
                "test",
                "--oracle",
                "sat",
                "--corpus",
                "QF_LIA",
                "--scale",
                "0.003",
                "--iterations",
                "4",
                "--retries",
                "2",
                "--check-timeout",
                "30",
                "--quarantine-after",
                "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "iterations" in out

    def test_campaign_journal_and_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        args = [
            "campaign",
            "--scale",
            "0.0005",
            "--iterations",
            "3",
            "--journal",
            journal,
        ]
        assert main(args) == 0
        capsys.readouterr()
        # Second run resumes: every cell is journaled, nothing re-runs,
        # and the summary still renders from the journal alone.
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "fused formulas" in out

    def test_resume_without_journal_rejected(self, capsys):
        code = main(["campaign", "--resume"])
        assert code == 2
        assert "requires --journal" in capsys.readouterr().err


_TINY_CAMPAIGN = ["campaign", "--scale", "0.0005", "--iterations", "3",
                  "--deterministic"]


class TestTelemetryCli:
    def test_metrics_sidecar_leaves_journal_alone(self, tmp_path, capsys):
        plain = tmp_path / "plain.jsonl"
        assert main(_TINY_CAMPAIGN + ["--journal", str(plain)]) == 0
        metered = tmp_path / "metered.jsonl"
        sidecar = tmp_path / "metrics.json"
        assert (
            main(
                _TINY_CAMPAIGN
                + ["--journal", str(metered), "--metrics", str(sidecar), "--trace"]
            )
            == 0
        )
        capsys.readouterr()
        # The metered journal is byte-identical: metrics went out-of-band.
        assert metered.read_bytes() == plain.read_bytes()
        snapshot = json.loads(sidecar.read_text())
        assert snapshot["counters"]["iterations"] > 0
        assert any(name.startswith("phase.") for name in snapshot["histograms"])

    def test_trace_without_sidecar_prints_profile(self, capsys):
        assert main(_TINY_CAMPAIGN + ["--trace"]) == 0
        assert "Phase profile" in capsys.readouterr().out

    def test_coverage_flag_fills_coverage_sets(self, tmp_path, capsys):
        sidecar = tmp_path / "metrics.json"
        args = _TINY_CAMPAIGN + ["--metrics", str(sidecar), "--coverage"]
        assert main(args) == 0
        capsys.readouterr()
        snapshot = json.loads(sidecar.read_text())
        assert snapshot["sets"]["coverage.line.fired"]
        assert snapshot["gauges"]["coverage.line.registered"] > 0

    def test_test_subcommand_writes_sidecar(self, tmp_path, capsys):
        sidecar = tmp_path / "metrics.json"
        code = main(
            [
                "test", "--oracle", "sat", "--corpus", "QF_LIA",
                "--scale", "0.003", "--iterations", "4",
                "--metrics", str(sidecar),
            ]
        )
        capsys.readouterr()
        assert code == 0
        snapshot = json.loads(sidecar.read_text())
        assert snapshot["counters"]["iterations"] == 4


class TestStatsCommand:
    @pytest.fixture()
    def campaign_artifacts(self, tmp_path, capsys):
        journal = tmp_path / "journal.jsonl"
        sidecar = tmp_path / "metrics.json"
        assert (
            main(
                _TINY_CAMPAIGN
                + ["--journal", str(journal), "--metrics", str(sidecar), "--trace"]
            )
            == 0
        )
        capsys.readouterr()
        return str(journal), str(sidecar)

    def test_stats_with_metrics(self, campaign_artifacts, capsys):
        journal, sidecar = campaign_artifacts
        assert main(["stats", "--journal", journal, "--metrics", sidecar]) == 0
        out = capsys.readouterr().out
        assert "Per-cell results" in out
        assert "Bugs by kind" in out
        assert "Metrics" in out
        assert "Phase profile" in out

    def test_stats_journal_only(self, campaign_artifacts, capsys):
        journal, _ = campaign_artifacts
        assert main(["stats", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "Per-cell results" in out
        assert "Phase profile" not in out
