"""Differential testing of the reference solver against itself.

The paper's prior-work baselines (FuzzSMT etc.) rely on differential
testing; we use the same idea as an internal soundness net: two
configurations of the reference solver (fast, thorough) must never give
*contradicting* definite answers, across generated seeds and fused
formulas. ``unknown`` is always an acceptable answer; sat-vs-unsat is
never.
"""

import random

import pytest

from repro.core.fusion import fuse
from repro.seeds import (
    generate_arith_seed,
    generate_string_seed,
    generate_stringfuzz_seed,
)
from repro.solver.solver import ReferenceSolver, SolverConfig


@pytest.fixture(scope="module")
def fast():
    return ReferenceSolver(SolverConfig.fast())


@pytest.fixture(scope="module")
def thorough():
    config = SolverConfig.thorough()
    config.timeout_seconds = 5.0
    return ReferenceSolver(config)


def _agree(fast_solver, thorough_solver, script):
    a = fast_solver.check_script(script).result
    b = thorough_solver.check_script(script).result
    if a.is_definite and b.is_definite:
        assert a is b, f"configurations contradict: {a} vs {b}\n{script}"
    return a, b


FAMILIES = ["QF_LIA", "QF_LRA", "QF_NRA", "QF_S", "QF_SLIA"]


class TestSeedAgreement:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("oracle", ["sat", "unsat"])
    def test_configs_never_contradict_on_seeds(self, fast, thorough, family, oracle):
        rng = random.Random(hash((family, oracle)) & 0xFFFF)
        for _ in range(4):
            if family.startswith("QF_S"):
                seed = generate_string_seed(family, oracle, rng)
            else:
                seed = generate_arith_seed(family, oracle, rng)
            a, b = _agree(fast, thorough, seed.script)
            # Additionally: any definite answer must match the label.
            for verdict in (a, b):
                if verdict.is_definite:
                    assert str(verdict) == oracle

    def test_stringfuzz_agreement(self, fast, thorough):
        rng = random.Random(99)
        for oracle in ("sat", "unsat"):
            for _ in range(3):
                seed = generate_stringfuzz_seed(oracle, rng)
                _agree(fast, thorough, seed.script)


class TestFusionAgreement:
    @pytest.mark.parametrize("trial", range(6))
    def test_configs_never_contradict_on_fusions(self, fast, thorough, trial):
        rng = random.Random(trial * 7)
        phi1 = generate_arith_seed("QF_LIA", "sat", rng)
        phi2 = generate_arith_seed("QF_LIA", "sat", rng)
        fused = fuse("sat", phi1.script, phi2.script, rng)
        a, b = _agree(fast, thorough, fused.script)
        for verdict in (a, b):
            if verdict.is_definite:
                assert str(verdict) == "sat"

    @pytest.mark.parametrize("trial", range(4))
    def test_unsat_fusion_agreement(self, fast, thorough, trial):
        rng = random.Random(trial * 13 + 1)
        phi1 = generate_string_seed("QF_S", "unsat", rng)
        phi2 = generate_string_seed("QF_S", "unsat", rng)
        fused = fuse("unsat", phi1.script, phi2.script, rng)
        a, b = _agree(fast, thorough, fused.script)
        for verdict in (a, b):
            if verdict.is_definite:
                assert str(verdict) == "unsat"
