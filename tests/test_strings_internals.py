"""Unit tests for the string solver's internal machinery."""

import pytest

from repro.smtlib import builder as b
from repro.smtlib.ast import Const, Var
from repro.smtlib.sorts import STRING
from repro.solver.strings import (
    StringConfig,
    _analyze,
    _concat_parts,
    _find_derived,
    _length_coeffs,
    _regex_members_of_length,
    _strings_of_length,
)
from repro.semantics import regex as rx

S = b.string_var("s")
T = b.string_var("t")
U = b.string_var("u")


class TestConcatParts:
    def test_var(self):
        assert _concat_parts(S) == [S]

    def test_const(self):
        c = Const("ab", STRING)
        assert _concat_parts(c) == [c]

    def test_nested_concat_flattened(self):
        term = b.concat(b.concat(S, T), b.lift("x"))
        parts = _concat_parts(term)
        assert parts == [S, T, Const("x", STRING)]

    def test_non_concat_structure(self):
        assert _concat_parts(b.replace(S, T, U)) is None

    def test_length_coeffs(self):
        coeffs, constant = _length_coeffs([S, S, Const("abc", STRING), T])
        assert coeffs == {".len.s": 2, ".len.t": 1}
        assert constant == 3


class TestAnalysis:
    def test_alphabet_from_constants(self):
        literals = [(b.contains(S, b.lift("xy")), True)]
        analysis = _analyze(literals, StringConfig())
        assert "x" in analysis.alphabet and "y" in analysis.alphabet

    def test_alphabet_fillers(self):
        literals = [(b.eq(S, T), True)]
        analysis = _analyze(literals, StringConfig(alphabet_size=3))
        assert len(analysis.alphabet) >= 3

    def test_pinned_variables(self):
        literals = [(b.eq(S, b.lift("ab")), True)]
        analysis = _analyze(literals, StringConfig())
        assert analysis.pinned == {"s": "ab"}

    def test_exact_lengths(self):
        literals = [(b.eq(b.length(S), 3), True), (b.eq(b.lift(2), b.length(T)), True)]
        analysis = _analyze(literals, StringConfig())
        assert analysis.exact_lengths == {"s": 3, "t": 2}

    def test_int_images(self):
        literals = [(b.eq(b.str_to_int(S), 12), True)]
        analysis = _analyze(literals, StringConfig())
        assert analysis.int_images == {"s": 12}

    def test_negative_int_image_not_restricting(self):
        literals = [(b.eq(b.str_to_int(S), b.lift(-1)), True)]
        analysis = _analyze(literals, StringConfig())
        assert "s" not in analysis.int_images

    def test_regex_membership_collected(self):
        regex_term = b.re_star(b.to_re(b.lift("ab")))
        literals = [(b.in_re(S, regex_term), True)]
        analysis = _analyze(literals, StringConfig())
        assert "s" in analysis.regexes
        assert rx.matches(analysis.regexes["s"], "abab")

    def test_negative_regex_ignored(self):
        regex_term = b.re_star(b.to_re(b.lift("ab")))
        literals = [(b.in_re(S, regex_term), False)]
        analysis = _analyze(literals, StringConfig())
        assert "s" not in analysis.regexes

    def test_length_equation_from_word_equation(self):
        literals = [(b.eq(S, b.concat(T, b.lift("x"))), True)]
        analysis = _analyze(literals, StringConfig())
        # len(s) - len(t) = 1 must appear in the abstraction.
        equations = [a for a in analysis.length_atoms if a.op == "="]
        assert equations


class TestDerivedVariables:
    def test_simple_definition(self):
        analysis = _analyze([(b.eq(S, b.concat(T, U)), True)], StringConfig())
        derived = _find_derived([(b.eq(S, b.concat(T, U)), True)], analysis)
        assert set(derived) == {"s"}

    def test_reversed_equation(self):
        lits = [(b.eq(b.concat(T, U), S), True)]
        analysis = _analyze(lits, StringConfig())
        assert set(_find_derived(lits, analysis)) == {"s"}

    def test_cycle_avoided(self):
        lits = [
            (b.eq(S, b.concat(T, b.lift("a"))), True),
            (b.eq(T, b.concat(S, b.lift("b"))), True),
        ]
        analysis = _analyze(lits, StringConfig())
        derived = _find_derived(lits, analysis)
        assert len(derived) == 1  # only one direction can be derived

    def test_pinned_not_derived(self):
        lits = [
            (b.eq(S, b.lift("ab")), True),
            (b.eq(S, b.concat(T, U)), True),
        ]
        analysis = _analyze(lits, StringConfig())
        assert "s" not in _find_derived(lits, analysis)

    def test_negative_equation_ignored(self):
        lits = [(b.eq(S, b.concat(T, U)), False)]
        analysis = _analyze(lits, StringConfig())
        assert _find_derived(lits, analysis) == {}


class TestCandidates:
    def test_strings_of_length(self):
        assert list(_strings_of_length("ab", 0)) == [""]
        assert sorted(_strings_of_length("ab", 2)) == ["aa", "ab", "ba", "bb"]

    def test_regex_members_of_length(self):
        regex = rx.star(rx.literal("ab"))
        assert list(_regex_members_of_length(regex, 0, "ab")) == [""]
        assert list(_regex_members_of_length(regex, 2, "ab")) == ["ab"]
        assert list(_regex_members_of_length(regex, 3, "ab")) == []

    def test_regex_members_use_regex_alphabet(self):
        # 'z' is outside the provided alphabet but inside the regex.
        regex = rx.literal("zz")
        assert list(_regex_members_of_length(regex, 2, "ab")) == ["zz"]
