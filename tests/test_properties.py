"""Hypothesis property tests on the core data structures and invariants.

The headline property is the paper's Proposition 1/2 pair: fusion
preserves satisfiability by construction. We test it constructively —
SAT fusion via the explicit model construction of Proposition 1's
proof, UNSAT fusion via the reference solver never answering ``sat``.
"""

import random
from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import FusionConfig
from repro.core.fusion import fuse, fused_model
from repro.core.substitution import (
    count_free_occurrences,
    substitute_occurrences,
)
from repro.semantics import regex as rx
from repro.semantics.evaluator import evaluate, evaluate_script
from repro.semantics.model import Model
from repro.semantics.values import euclidean_div, euclidean_mod
from repro.smtlib import builder as b
from repro.smtlib.ast import Var
from repro.smtlib.parser import parse_script, parse_term
from repro.smtlib.printer import print_script, print_term
from repro.smtlib.sorts import INT

_SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

ints = st.integers(min_value=-50, max_value=50)
small_strings = st.text(alphabet="ab01", max_size=5)


# ---------------------------------------------------------------------------
# Arithmetic semantics
# ---------------------------------------------------------------------------


@_SETTINGS
@given(a=ints, b_=ints.filter(lambda v: v != 0))
def test_euclidean_division_invariant(a, b_):
    q, r = euclidean_div(a, b_), euclidean_mod(a, b_)
    assert a == b_ * q + r
    assert 0 <= r < abs(b_)


@_SETTINGS
@given(x=ints, y=ints)
def test_evaluator_matches_python_arithmetics(x, y):
    model = Model({"x": x, "y": y})
    vx, vy = Var("x", INT), Var("y", INT)
    assert evaluate(b.add(vx, vy), model) == x + y
    assert evaluate(b.sub(vx, vy), model) == x - y
    assert evaluate(b.mul(vx, vy), model) == x * y
    assert evaluate(b.lt(vx, vy), model) == (x < y)


# ---------------------------------------------------------------------------
# Printer round-trips
# ---------------------------------------------------------------------------


@_SETTINGS
@given(n=st.integers(min_value=-10**9, max_value=10**9))
def test_int_constant_roundtrip(n):
    from repro.smtlib.ast import Const

    printed = print_term(Const(n, INT))
    assert parse_term(printed) == Const(n, INT) or str(parse_term(printed)) == printed


@_SETTINGS
@given(
    num=st.integers(min_value=-1000, max_value=1000),
    den=st.integers(min_value=1, max_value=1000),
)
def test_real_constant_roundtrip(num, den):
    from repro.smtlib.ast import Const
    from repro.smtlib.sorts import REAL

    value = Fraction(num, den)
    printed = print_term(Const(value, REAL))
    reparsed = parse_term(printed)
    assert evaluate(reparsed, Model()) == value


@_SETTINGS
@given(text=st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=12))
def test_string_constant_roundtrip(text):
    from repro.smtlib.ast import Const
    from repro.smtlib.sorts import STRING

    printed = print_term(Const(text, STRING))
    assert parse_term(printed) == Const(text, STRING)


# ---------------------------------------------------------------------------
# Regex engine vs Python's re
# ---------------------------------------------------------------------------


@_SETTINGS
@given(parts=st.lists(st.sampled_from(["a", "b", "ab"]), min_size=1, max_size=3), text=small_strings)
def test_regex_union_of_literals(parts, text):
    regex = rx.union(*[rx.literal(p) for p in parts])
    assert rx.matches(regex, text) == (text in parts)


@_SETTINGS
@given(stride=st.sampled_from(["a", "ab", "aab"]), count=st.integers(0, 4), junk=small_strings)
def test_regex_star_accepts_repetitions(stride, count, junk):
    regex = rx.star(rx.literal(stride))
    assert rx.matches(regex, stride * count)
    if junk and not _is_repetition(junk, stride):
        assert not rx.matches(regex, junk)


def _is_repetition(text, stride):
    if not stride:
        return text == ""
    n = len(stride)
    return len(text) % n == 0 and all(
        text[i : i + n] == stride for i in range(0, len(text), n)
    )


@_SETTINGS
@given(text=small_strings)
def test_regex_complement_is_involution(text):
    regex = rx.star(rx.literal("ab"))
    complemented = rx.complement(regex)
    assert rx.matches(regex, text) != rx.matches(complemented, text)


# ---------------------------------------------------------------------------
# Substitution
# ---------------------------------------------------------------------------


@_SETTINGS
@given(data=st.data())
def test_substitution_occurrence_accounting(data):
    x, y, z = Var("x", INT), Var("y", INT), Var("z", INT)
    term = b.and_(b.gt(b.add(x, x, y), 0), b.eq(b.mul(x, 2), z))
    total = count_free_occurrences(term, x)
    subset = data.draw(st.sets(st.integers(0, total - 1)))
    replaced = substitute_occurrences(term, x, z, subset)
    assert count_free_occurrences(replaced, x) == total - len(subset)


# ---------------------------------------------------------------------------
# The headline property: fusion preserves satisfiability
# ---------------------------------------------------------------------------


def _sat_seed_pair(x_value, y_value):
    phi1 = parse_script(
        f"(declare-fun x () Int)(assert (>= x {_lit(x_value)}))"
        f"(assert (<= x {_lit(x_value)}))(check-sat)"
    )
    phi2 = parse_script(
        f"(declare-fun y () Int)(assert (= y {_lit(y_value)}))(check-sat)"
    )
    return phi1, phi2


def _lit(n):
    return str(n) if n >= 0 else f"(- {-n})"


@_SETTINGS
@given(
    x_value=st.integers(-6, 6),
    y_value=st.integers(-6, 6),
    seed=st.integers(0, 10**6),
    pairs=st.integers(1, 2),
    probability=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
)
def test_proposition1_constructed_model_satisfies_fusion(
    x_value, y_value, seed, pairs, probability
):
    """Proposition 1, constructively: M = M1 ∪ M2 ∪ {z -> f(x,y)} is a
    model of the fused formula — for every scheme, coefficient draw,
    and substitution choice. (With two triplets the division-at-zero
    pins can collide on one key; in that measure-zero corner the fused
    formula is still satisfiable — we fall back to the solver.)"""
    from repro.solver.solver import ReferenceSolver

    phi1, phi2 = _sat_seed_pair(x_value, y_value)
    config = FusionConfig(max_pairs=pairs, substitution_probability=probability)
    result = fuse("sat", phi1, phi2, random.Random(seed), config)
    model = fused_model(result, Model({"x": x_value}), Model({"y": y_value}))
    if not evaluate_script(result.script, model):
        verdict = str(ReferenceSolver().check_script(result.script).result)
        assert verdict != "unsat"


@_SETTINGS
@given(
    seed=st.integers(0, 10**6),
    probability=st.sampled_from([0.0, 0.5, 1.0]),
)
def test_proposition2_unsat_fusion_never_sat(solver_cache, seed, probability):
    """Proposition 2: the reference solver never finds a model for an
    UNSAT fusion (answers unsat or — rarely, on hard nonlinear
    instances — unknown, but never sat)."""
    phi1 = parse_script(
        "(declare-fun x () Int)(assert (> x 2))(assert (< x 2))(check-sat)"
    )
    phi2 = parse_script(
        "(declare-fun y () Int)(assert (= (* 2 y) 1))(check-sat)"
    )
    config = FusionConfig(substitution_probability=probability)
    result = fuse("unsat", phi1, phi2, random.Random(seed), config)
    assert str(solver_cache.check_script(result.script).result) != "sat"


import pytest


@pytest.fixture(scope="module")
def solver_cache():
    from repro.solver.solver import ReferenceSolver

    return ReferenceSolver()


# ---------------------------------------------------------------------------
# Seeds: generated labels are correct by construction
# ---------------------------------------------------------------------------


@_SETTINGS
@given(
    family=st.sampled_from(["QF_LIA", "QF_LRA", "QF_NRA", "LIA", "LRA"]),
    seed=st.integers(0, 10**6),
)
def test_generated_sat_seeds_verify(family, seed):
    from repro.seeds import generate_arith_seed
    from repro.smtlib.ast import Quantifier

    labeled = generate_arith_seed(family, "sat", random.Random(seed))
    qf = [
        t
        for t in labeled.script.asserts
        if not any(isinstance(n, Quantifier) for n in t.walk())
    ]
    assert evaluate_script(labeled.script.with_asserts(qf), labeled.model)


@_SETTINGS
@given(seed=st.integers(0, 10**6))
def test_generated_string_seeds_verify(seed):
    from repro.seeds import generate_string_seed

    labeled = generate_string_seed("QF_SLIA", "sat", random.Random(seed))
    assert evaluate_script(labeled.script, labeled.model)


# ---------------------------------------------------------------------------
# Pretty printer preserves semantics
# ---------------------------------------------------------------------------


@_SETTINGS
@given(x=st.integers(-5, 5), seed=st.integers(0, 10**6))
def test_prettify_preserves_semantics(x, seed):
    from repro.seeds import generate_arith_seed
    from repro.smtlib.pretty import prettify_script

    labeled = generate_arith_seed("QF_LIA", "sat", random.Random(seed))
    pretty = prettify_script(labeled.script)
    assert evaluate_script(pretty, labeled.model) == evaluate_script(
        labeled.script, labeled.model
    )
