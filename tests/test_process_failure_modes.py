"""End-to-end abnormal-termination coverage for ProcessSolver.

Each test drives a tiny on-disk fixture "solver" (a Python stub script
invoked as a binary, exactly how the paper points YinYang at Z3/CVC4)
through one way real solver processes die: hanging past the timeout,
exiting via a signal, exiting nonzero with no verdict, printing
garbage, or printing error signatures. Assertions pin down the
``SolverCrash.kind`` taxonomy and the ``unknown_on_timeout`` policy.
"""

import sys
import textwrap

import pytest

from repro.solver.process import ProcessSolver
from repro.solver.result import SolverCrash, SolverResult

SAT_TEXT = "(declare-fun x () Int)(assert (> x 0))(check-sat)"


@pytest.fixture
def make_stub(tmp_path):
    """Write a fixture solver script and return a ProcessSolver for it."""

    def build(name, body, **kwargs):
        path = tmp_path / f"{name}.py"
        path.write_text(textwrap.dedent(body))
        return ProcessSolver(name, [sys.executable, str(path)], **kwargs)

    return build


class TestHangs:
    HANG = """
        import time
        time.sleep(60)
    """

    def test_hang_past_timeout_is_unknown_by_default(self, make_stub):
        solver = make_stub("hanging", self.HANG, timeout=0.3)
        outcome = solver.check(SAT_TEXT)
        assert outcome.result is SolverResult.UNKNOWN
        assert outcome.reason == "timeout"

    def test_hang_is_crash_under_strict_policy(self, make_stub):
        solver = make_stub(
            "hanging", self.HANG, timeout=0.3, unknown_on_timeout=False
        )
        with pytest.raises(SolverCrash) as excinfo:
            solver.check(SAT_TEXT)
        assert excinfo.value.kind == "timeout"


class TestSignals:
    def test_sigsegv_death(self, make_stub):
        solver = make_stub(
            "segfaulting",
            """
            import os, signal
            os.kill(os.getpid(), signal.SIGSEGV)
            """,
        )
        with pytest.raises(SolverCrash) as excinfo:
            solver.check(SAT_TEXT)
        assert excinfo.value.kind == "signal"
        assert "signal" in str(excinfo.value)

    def test_sigabrt_after_partial_output(self, make_stub):
        # An abort() after stderr chatter, before any verdict.
        solver = make_stub(
            "aborting",
            """
            import os, signal, sys
            print("rewriting...", file=sys.stderr)
            os.kill(os.getpid(), signal.SIGABRT)
            """,
        )
        with pytest.raises(SolverCrash) as excinfo:
            solver.check(SAT_TEXT)
        assert excinfo.value.kind == "signal"


class TestAbnormalExits:
    def test_nonzero_exit_without_verdict(self, make_stub):
        solver = make_stub(
            "dying",
            """
            import sys
            print("(error \\"unexpected token\\")", file=sys.stderr)
            sys.exit(112)
            """,
        )
        with pytest.raises(SolverCrash) as excinfo:
            solver.check(SAT_TEXT)
        assert excinfo.value.kind == "abnormal-exit"
        assert "112" in str(excinfo.value)

    def test_error_marker_with_nonzero_exit_is_internal_error(self, make_stub):
        solver = make_stub(
            "asserting",
            """
            import sys
            print("ASSERTION VIOLATION: m_kind == OP_ADD", file=sys.stderr)
            sys.exit(134)
            """,
        )
        with pytest.raises(SolverCrash) as excinfo:
            solver.check(SAT_TEXT)
        assert excinfo.value.kind == "internal-error"

    def test_fatal_failure_marker_without_verdict(self, make_stub):
        solver = make_stub(
            "fatal",
            """
            import sys
            print("Fatal failure within TheoryEngine::check()", file=sys.stderr)
            sys.exit(0)
            """,
        )
        with pytest.raises(SolverCrash) as excinfo:
            solver.check(SAT_TEXT)
        assert excinfo.value.kind == "internal-error"


class TestGarbageOutput:
    def test_garbage_stdout_clean_exit_is_unknown(self, make_stub):
        solver = make_stub(
            "babbling",
            """
            print("%$#@! not a verdict at all")
            print("12345")
            """,
        )
        outcome = solver.check(SAT_TEXT)
        assert outcome.result is SolverResult.UNKNOWN
        assert outcome.reason == "no verdict on stdout"

    def test_verdict_buried_in_garbage_still_found(self, make_stub):
        solver = make_stub(
            "noisy",
            """
            print("; warning: something")
            print("unsat")
            print("(model)")
            """,
        )
        outcome = solver.check(SAT_TEXT)
        assert outcome.result is SolverResult.UNSAT

    def test_benign_stderr_chatter_with_verdict_is_not_a_crash(self, make_stub):
        # Regression for the false-positive crash detection: a solver
        # echoing assertion diagnostics on stderr while answering
        # correctly with exit 0 must not be reported as a crash.
        solver = make_stub(
            "chatty",
            """
            import sys
            print("echoing assertion (assert (> x 0))", file=sys.stderr)
            print("sat")
            """,
        )
        outcome = solver.check(SAT_TEXT)
        assert outcome.result is SolverResult.SAT
