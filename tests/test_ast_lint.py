"""AST lint: term nodes must be built through the interning constructors.

Direct ``App(...)``/``Var(...)``/``Const(...)``/``Quantifier(...)``
calls bypass the per-scope intern table, producing un-shared nodes that
defeat identity-keyed memo tables and O(1) equality. Only
``repro/smtlib`` (the term layer itself) may call the dataclass
constructors; everything else goes through ``mk_*`` or the typechecked
``app()``.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

_FORBIDDEN = {"App", "Var", "Const", "Quantifier"}

# The term layer itself: definitions, interning, and its internal users.
_ALLOWED = {SRC / "smtlib" / "ast.py"}


def _modules():
    return sorted(p for p in SRC.rglob("*.py") if p not in _ALLOWED)


def _direct_constructions(path):
    """(line, name) for every direct term-constructor call in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in _FORBIDDEN:
                hits.append((node.lineno, fn.id))
            elif isinstance(fn, ast.Attribute) and fn.attr in _FORBIDDEN:
                hits.append((node.lineno, fn.attr))
    return hits


@pytest.mark.parametrize("path", _modules(), ids=lambda p: str(p.relative_to(SRC)))
def test_no_direct_term_construction(path):
    hits = _direct_constructions(path)
    assert not hits, (
        f"{path.relative_to(SRC)} constructs term nodes directly "
        f"(use mk_app/mk_var/mk_const/mk_quantifier or typecheck.app): {hits}"
    )


def test_lint_actually_detects_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("t = App('and', (a, b), BOOL)\nu = x.Const(1, INT)\n")
    assert _direct_constructions(bad) == [(1, "App"), (2, "Const")]


# ---------------------------------------------------------------------------
# Strategy-pipeline lint: the campaign core must stay workload-agnostic.
# ---------------------------------------------------------------------------

# Mutator modules the strategy-agnostic loop must never reach into;
# they are only reachable through repro.strategies.
_MUTATOR_MODULES = {"repro.core.fusion", "repro.core.concatfuzz"}


def _mutator_imports(path):
    """(line, module) for every import of a mutator module in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _MUTATOR_MODULES:
                    hits.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.module in _MUTATOR_MODULES:
                hits.append((node.lineno, node.module))
    return hits


def test_yinyang_has_no_fusion_imports():
    """The main loop drives strategies, not fusion: a fusion-specific
    import creeping back into yinyang.py would quietly re-monolith the
    pipeline."""
    hits = _mutator_imports(SRC / "core" / "yinyang.py")
    assert not hits, (
        "repro/core/yinyang.py must stay strategy-agnostic; route mutation "
        f"through repro.strategies instead of importing: {hits}"
    )


def test_checker_has_no_mutator_imports():
    """The shared checker classifies any strategy's mutants; it must not
    depend on a particular mutator either."""
    hits = _mutator_imports(SRC / "core" / "checker.py")
    assert not hits


def test_mutator_import_lint_detects_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from repro.core.fusion import fuse\nimport repro.core.concatfuzz\n"
    )
    assert _mutator_imports(bad) == [
        (1, "repro.core.fusion"),
        (2, "repro.core.concatfuzz"),
    ]
