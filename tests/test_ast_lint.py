"""AST lint: term nodes must be built through the interning constructors.

Direct ``App(...)``/``Var(...)``/``Const(...)``/``Quantifier(...)``
calls bypass the per-scope intern table, producing un-shared nodes that
defeat identity-keyed memo tables and O(1) equality. Only
``repro/smtlib`` (the term layer itself) may call the dataclass
constructors; everything else goes through ``mk_*`` or the typechecked
``app()``.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

_FORBIDDEN = {"App", "Var", "Const", "Quantifier"}

# The term layer itself: definitions, interning, and its internal users.
_ALLOWED = {SRC / "smtlib" / "ast.py"}


def _modules():
    return sorted(p for p in SRC.rglob("*.py") if p not in _ALLOWED)


def _direct_constructions(path):
    """(line, name) for every direct term-constructor call in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in _FORBIDDEN:
                hits.append((node.lineno, fn.id))
            elif isinstance(fn, ast.Attribute) and fn.attr in _FORBIDDEN:
                hits.append((node.lineno, fn.attr))
    return hits


@pytest.mark.parametrize("path", _modules(), ids=lambda p: str(p.relative_to(SRC)))
def test_no_direct_term_construction(path):
    hits = _direct_constructions(path)
    assert not hits, (
        f"{path.relative_to(SRC)} constructs term nodes directly "
        f"(use mk_app/mk_var/mk_const/mk_quantifier or typecheck.app): {hits}"
    )


def test_lint_actually_detects_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("t = App('and', (a, b), BOOL)\nu = x.Const(1, INT)\n")
    assert _direct_constructions(bad) == [(1, "App"), (2, "Const")]


# ---------------------------------------------------------------------------
# Strategy-pipeline lint: the campaign core must stay workload-agnostic.
# ---------------------------------------------------------------------------

# Mutator modules the strategy-agnostic loop must never reach into;
# they are only reachable through repro.strategies.
_MUTATOR_MODULES = {"repro.core.fusion", "repro.core.concatfuzz"}


def _mutator_imports(path):
    """(line, module) for every import of a mutator module in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _MUTATOR_MODULES:
                    hits.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.module in _MUTATOR_MODULES:
                hits.append((node.lineno, node.module))
    return hits


def test_yinyang_has_no_fusion_imports():
    """The main loop drives strategies, not fusion: a fusion-specific
    import creeping back into yinyang.py would quietly re-monolith the
    pipeline."""
    hits = _mutator_imports(SRC / "core" / "yinyang.py")
    assert not hits, (
        "repro/core/yinyang.py must stay strategy-agnostic; route mutation "
        f"through repro.strategies instead of importing: {hits}"
    )


def test_checker_has_no_mutator_imports():
    """The shared checker classifies any strategy's mutants; it must not
    depend on a particular mutator either."""
    hits = _mutator_imports(SRC / "core" / "checker.py")
    assert not hits


def test_mutator_import_lint_detects_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from repro.core.fusion import fuse\nimport repro.core.concatfuzz\n"
    )
    assert _mutator_imports(bad) == [
        (1, "repro.core.fusion"),
        (2, "repro.core.concatfuzz"),
    ]


# ---------------------------------------------------------------------------
# Theory-registry lint: sorts and operator tables live in repro/smtlib.
# ---------------------------------------------------------------------------

# Only the sort layer itself may call the Sort dataclass constructor;
# everyone else uses the interned singletons (BOOL/INT/...) or the
# indexed-family constructors (bitvec_sort). A stray Sort("Int") would
# still compare equal but evades the intern table's identity guarantee
# and bypasses the registry as the one place sorts are defined.
_SMTLIB = SRC / "smtlib"


def _sort_constructions(path):
    """(line,) for every direct ``Sort(...)`` call in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            fn = node.func
            name = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else None
            )
            if name == "Sort":
                hits.append((node.lineno,))
    return hits


@pytest.mark.parametrize(
    "path",
    sorted(p for p in SRC.rglob("*.py") if _SMTLIB not in p.parents),
    ids=lambda p: str(p.relative_to(SRC)),
)
def test_no_direct_sort_construction_outside_smtlib(path):
    hits = _sort_constructions(path)
    assert not hits, (
        f"{path.relative_to(SRC)} constructs Sort objects directly; use the "
        f"interned singletons or an indexed constructor like bitvec_sort "
        f"(lines {[h[0] for h in hits]})"
    )


def test_sort_lint_detects_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("s = Sort('Int')\nt = sorts.Sort('(_ BitVec 8)')\n")
    assert _sort_constructions(bad) == [(1,), (2,)]


def _operator_tables(path, op_names, threshold=3):
    """(line, keys) for dict literals keyed by ``threshold``+ operator
    names — the shape of an ad-hoc operator dispatch/signature table.

    Such tables belong in the theory registry (``repro/smtlib``): a
    per-module copy silently falls out of sync the moment a theory adds
    an operator, which is exactly the drift the registry refactor
    removed.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        keys = [
            k.value
            for k in node.keys
            if isinstance(k, ast.Constant) and isinstance(k.value, str)
        ]
        ops = [k for k in keys if k in op_names]
        if len(ops) >= threshold and len(ops) == len(keys):
            hits.append((node.lineno, tuple(ops)))
    return hits


def _registered_op_names():
    from repro.smtlib import theory

    names = set()
    for t in theory.theories():
        names.update(t.handlers)
        names.update(t.aliases)
    return names


@pytest.mark.parametrize(
    "path",
    sorted(p for p in SRC.rglob("*.py") if _SMTLIB not in p.parents),
    ids=lambda p: str(p.relative_to(SRC)),
)
def test_no_adhoc_operator_tables_outside_smtlib(path):
    hits = _operator_tables(path, _registered_op_names())
    assert not hits, (
        f"{path.relative_to(SRC)} keeps an ad-hoc operator table; register "
        f"it with the theory (repro.smtlib.theory) instead: {hits}"
    )


def test_operator_table_lint_detects_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "HANDLERS = {'bvadd': f, 'bvsub': g, 'bvmul': h}\n"
        "ok = {'bvadd': f, 'note': 1}\n"  # mixed keys: not an op table
    )
    hits = _operator_tables(bad, {"bvadd", "bvsub", "bvmul"})
    assert hits == [(1, ("bvadd", "bvsub", "bvmul"))]
