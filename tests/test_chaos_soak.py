"""Chaos engineering for the harness: ChaosSolver unit tests + the soak.

The soak test is the acceptance test for the hardened campaign
harness: a campaign over a solver that hangs, crashes, prints garbage,
answers wrongly, and raises unexpected exceptions must run to
completion with no uncaught exception, quarantine that solver after
the configured threshold, and report the contained errors. Everything
is seeded, so the storm replays identically every run (the ``chaos``
marker tags it as such).
"""

import time

import pytest

from repro.campaign.runner import run_campaign
from repro.robustness import ChaosError, ChaosSolver, ResiliencePolicy
from repro.smtlib.parser import parse_script
from repro.solver.result import CheckOutcome, SolverCrash, SolverResult

SEEDS = [
    parse_script("(declare-fun x () Int)(assert (> x 0))(check-sat)"),
    parse_script("(declare-fun y () Int)(assert (< y 9))(check-sat)"),
    parse_script("(declare-fun w () Int)(assert (= w 4))(check-sat)"),
]


class SteadySolver:
    """Instant, deterministic, always right (for sat-only corpora)."""

    name = "steady"

    def active_faults(self):
        return []

    def check_script(self, script):
        return CheckOutcome(SolverResult.SAT)


class ToyCorpus:
    """A sat-only corpus so SteadySolver's answer is always correct."""

    def by_oracle(self, oracle):
        return SEEDS if oracle == "sat" else []


class TestChaosSolver:
    def test_validates_probabilities(self):
        with pytest.raises(ValueError):
            ChaosSolver(SteadySolver(), p_crash=1.5)

    def test_zero_probabilities_are_transparent(self):
        chaos = ChaosSolver(SteadySolver(), seed=1)
        for script in SEEDS:
            assert chaos.check_script(script).result is SolverResult.SAT
        assert all(count == 0 for count in chaos.injected.values())

    def test_deterministic_given_seed(self):
        def storm(seed):
            chaos = ChaosSolver(
                SteadySolver(), seed=seed, p_crash=0.3, p_garbage=0.3, p_wrong=0.3
            )
            outcomes = []
            for _ in range(40):
                try:
                    outcomes.append(str(chaos.check_script(SEEDS[0]).result))
                except SolverCrash:
                    outcomes.append("crash")
            return outcomes

        assert storm(7) == storm(7)
        assert storm(7) != storm(8)

    def test_injected_crash_is_solver_crash(self):
        chaos = ChaosSolver(SteadySolver(), seed=0, p_crash=1.0)
        with pytest.raises(SolverCrash) as excinfo:
            chaos.check_script(SEEDS[0])
        assert excinfo.value.kind == "segfault"
        assert chaos.injected["crash"] == 1

    def test_injected_exception_is_not_a_solver_crash(self):
        chaos = ChaosSolver(SteadySolver(), seed=0, p_exception=1.0)
        with pytest.raises(ChaosError):
            chaos.check_script(SEEDS[0])

    def test_garbage_is_unknown_with_noise(self):
        chaos = ChaosSolver(SteadySolver(), seed=0, p_garbage=1.0)
        outcome = chaos.check_script(SEEDS[0])
        assert outcome.result is SolverResult.UNKNOWN
        assert outcome.reason.startswith("garbage output:")

    def test_wrong_answer_flips_the_verdict(self):
        chaos = ChaosSolver(SteadySolver(), seed=0, p_wrong=1.0)
        assert chaos.check_script(SEEDS[0]).result is SolverResult.UNSAT

    def test_hang_sleeps_then_answers(self):
        chaos = ChaosSolver(
            SteadySolver(), seed=0, p_hang=1.0, hang_seconds=0.1
        )
        began = time.perf_counter()
        outcome = chaos.check_script(SEEDS[0])
        assert time.perf_counter() - began >= 0.1
        assert outcome.result is SolverResult.SAT

    def test_delegates_unknown_attrs(self):
        chaos = ChaosSolver(SteadySolver(), seed=0)
        assert chaos.name == "chaos(steady)"
        assert chaos.active_faults() == []


@pytest.mark.chaos
class TestChaosSoak:
    """The harness survives a deterministic storm of solver failures."""

    QUARANTINE_AFTER = 4

    @pytest.fixture(scope="class")
    def soak(self):
        chaotic = ChaosSolver(
            SteadySolver(),
            seed=27,
            p_hang=0.12,
            p_crash=0.3,
            p_garbage=0.1,
            p_wrong=0.15,
            p_exception=0.2,
            hang_seconds=5.0,
        )
        policy = ResiliencePolicy(
            check_timeout=0.5, quarantine_after=self.QUARANTINE_AFTER
        )
        result = run_campaign(
            {"toy": ToyCorpus()},
            solvers=[chaotic, SteadySolver()],
            iterations_per_cell=30,
            seed=3,
            policy=policy,
        )
        return chaotic, result

    def test_campaign_completes_despite_every_failure_mode(self, soak):
        chaotic, result = soak
        # Every chaos mode actually fired (seed 27 is chosen for that).
        assert all(count >= 1 for count in chaotic.injected.values())
        assert result.fused_total == 60  # both solvers' cells completed

    def test_chaotic_solver_quarantined_after_threshold(self, soak):
        chaotic, result = soak
        counters = result.resilience_counters()
        assert counters["quarantined"] == ["chaos(steady)"]
        assert counters["quarantine_skips"] > 0

    def test_contained_errors_reported_in_summary(self, soak):
        _, result = soak
        counters = result.resilience_counters()
        assert counters["contained_errors"] >= 1
        assert counters["timeouts"] >= 1
        assert "contained errors" in result.summary()
        assert "quarantined: chaos(steady)" in result.summary()

    def test_healthy_solver_untouched(self, soak):
        _, result = soak
        steady = result.reports[("steady", "toy", "sat")]
        assert steady.iterations == 30
        assert steady.bugs == []
        assert "steady" not in result.resilience_counters()["quarantined"]

    def test_soak_is_deterministic(self, soak):
        chaotic, _ = soak
        replay = ChaosSolver(
            SteadySolver(),
            seed=27,
            p_hang=0.12,
            p_crash=0.3,
            p_garbage=0.1,
            p_wrong=0.15,
            p_exception=0.2,
            hang_seconds=5.0,
        )
        policy = ResiliencePolicy(
            check_timeout=0.5, quarantine_after=self.QUARANTINE_AFTER
        )
        result = run_campaign(
            {"toy": ToyCorpus()},
            solvers=[replay, SteadySolver()],
            iterations_per_cell=30,
            seed=3,
            policy=policy,
        )
        assert replay.injected == chaotic.injected
        assert result.resilience_counters()["quarantined"] == ["chaos(steady)"]
