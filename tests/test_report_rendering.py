"""Tests for table/bar rendering used by the benchmark harness."""

from repro.campaign.report import (
    PAPER_FIG8A,
    PAPER_FIG8B,
    PAPER_FIG8C,
    render_bars,
    render_table,
)
from repro.coverage.report import CoverageComparison, CoverageReport


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "n"], [("a", 1), ("long-name", 22)])
        lines = text.splitlines()
        assert len({line.index("1") for line in lines if "1" in line}) >= 1
        assert lines[1].startswith("-")

    def test_title(self):
        assert render_table(["x"], [(1,)], title="T").splitlines()[0] == "T"

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestRenderBars:
    def test_peak_gets_full_width(self):
        text = render_bars([(2015, 10), (2016, 20)], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_zero_value(self):
        text = render_bars([("a", 0), ("b", 4)])
        assert "| " in text.splitlines()[0]

    def test_title_line(self):
        assert render_bars([("a", 1)], title="bars").splitlines()[0] == "bars"

    def test_all_zero(self):
        text = render_bars([("a", 0), ("b", 0)])
        assert "0" in text


class TestPaperConstants:
    def test_fig8a_consistency(self):
        # Confirmed = fixed + (confirmed-but-open) <= reported.
        assert PAPER_FIG8A["Confirmed"] <= PAPER_FIG8A["Reported"]
        assert PAPER_FIG8A["Fixed"] <= PAPER_FIG8A["Confirmed"]

    def test_fig8b_sums_to_confirmed(self):
        z3 = sum(v[0] for v in PAPER_FIG8B.values())
        cvc4 = sum(v[1] for v in PAPER_FIG8B.values())
        assert (z3, cvc4) == PAPER_FIG8A["Confirmed"]

    def test_fig8c_sums_to_confirmed(self):
        z3 = sum(v[0] for v in PAPER_FIG8C.values())
        cvc4 = sum(v[1] for v in PAPER_FIG8C.values())
        assert (z3, cvc4) == PAPER_FIG8A["Confirmed"]


class TestCoverageComparison:
    def test_improvement_signs(self):
        bench = CoverageReport("b", 10, 20, 30)
        yy = CoverageReport("y", 12, 25, 30)
        comparison = CoverageComparison("QF_X", "sat", bench, yy)
        improvement = comparison.improvement()
        assert improvement["line"] == 2
        assert improvement["branch"] == 0

    def test_str(self):
        report = CoverageReport("label", 1.23, 4.56, 7.89)
        assert "label" in str(report) and "1.2" in str(report)
