"""Tests for the probe-based coverage layer (the Gcov stand-in)."""

from repro.coverage.probes import (
    CoverageSession,
    branch_probe,
    coverage_session,
    declare_probes,
    function_probe,
    line_probe,
    registry_snapshot,
)
from repro.coverage.report import CoverageReport, average_reports


class TestProbes:
    def test_probe_outside_session_is_noop(self):
        line_probe("test.noop")  # must not raise

    def test_session_collects_fired(self):
        with coverage_session("t") as session:
            line_probe("test.fired.1")
            function_probe("test.func.1")
        assert "test.fired.1" in session.fired["line"]
        assert "test.func.1" in session.fired["function"]

    def test_unfired_probes_count_in_denominator(self):
        declare_probes("line", ["test.never.fired.a", "test.never.fired.b"])
        with coverage_session("t") as session:
            line_probe("test.fired.2")
        fired, registered = session.counts()["line"]
        assert fired == 1
        assert registered >= 3

    def test_branch_declares_both_arms(self):
        with coverage_session("t") as session:
            taken = branch_probe("test.branch.1", True)
        assert taken is True
        assert "test.branch.1:T" in session.fired["branch"]
        snapshot = registry_snapshot()
        assert snapshot["branch"] >= 2  # both arms registered

    def test_branch_returns_condition(self):
        with coverage_session("t"):
            assert branch_probe("test.branch.2", False) is False

    def test_nested_sessions_both_collect(self):
        with coverage_session("outer") as outer:
            with coverage_session("inner") as inner:
                line_probe("test.nested")
        assert "test.nested" in outer.fired["line"]
        assert "test.nested" in inner.fired["line"]

    def test_merge(self):
        a = CoverageSession()
        b = CoverageSession()
        a.fired["line"].add("x")
        b.fired["line"].add("y")
        a.merge(b)
        assert a.fired["line"] == {"x", "y"}

    def test_percentages_monotone_in_fired(self):
        with coverage_session("small") as small:
            line_probe("test.mono.1")
        with coverage_session("big") as big:
            line_probe("test.mono.1")
            line_probe("test.mono.2")
        assert big.percentages()["line"] >= small.percentages()["line"]


class TestSolverInstrumentation:
    def test_solver_run_fires_probes(self, solver):
        with coverage_session("solve") as session:
            solver.check("(declare-fun x () Int)(assert (> x 0))(check-sat)")
        assert session.counts()["line"][0] > 0
        assert session.counts()["function"][0] > 0
        assert session.counts()["branch"][0] > 0

    def test_string_logic_reaches_string_probes(self, solver):
        with coverage_session("arith") as arith:
            solver.check("(declare-fun x () Int)(assert (> x 0))(check-sat)")
        with coverage_session("strings") as strings:
            solver.check(
                '(declare-fun s () String)(assert (= (str.len s) 1))(check-sat)'
            )
        string_only = {
            p for p in strings.fired["function"] if p.startswith("strings.")
        }
        assert string_only
        assert not any(p.startswith("strings.") for p in arith.fired["function"])

    def test_coverage_far_below_total(self, solver):
        # One easy formula touches a small slice of the solver — the
        # paper's "mostly below 30%" observation for single-logic runs.
        with coverage_session("one") as session:
            solver.check("(declare-fun x () Int)(assert (= x 1))(check-sat)")
        assert session.percentages()["line"] < 60.0


class TestReports:
    def test_report_from_session(self):
        with coverage_session("t") as session:
            line_probe("test.report.1")
        report = CoverageReport.from_session(session, "label")
        assert report.label == "label"
        assert 0 <= report.line <= 100

    def test_dominates(self):
        a = CoverageReport("a", 10, 10, 10)
        b = CoverageReport("b", 9, 10, 8)
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_average(self):
        avg = average_reports(
            [CoverageReport("a", 10, 20, 30), CoverageReport("b", 20, 40, 50)], "avg"
        )
        assert (avg.line, avg.function, avg.branch) == (15, 30, 40)

    def test_average_empty(self):
        avg = average_reports([], "none")
        assert avg.line == 0.0

    def test_row_rounding(self):
        report = CoverageReport("r", 12.345, 67.891, 0.049)
        assert report.row() == (12.3, 67.9, 0.0)
