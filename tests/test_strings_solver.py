"""Unit tests for the bounded string theory solver."""

import pytest

from repro.smtlib import builder as b
from repro.solver.strings import StringConfig, check_strings, involves_strings


def lits(*pairs):
    return list(pairs)


S = b.string_var("s")
T = b.string_var("t")
U = b.string_var("u")
I = b.int_var("i")


class TestInvolvesStrings:
    def test_string_var(self):
        assert involves_strings([b.eq(S, T)])

    def test_pure_arith(self):
        assert not involves_strings([b.gt(I, 0)])

    def test_len_bridge(self):
        assert involves_strings([b.gt(b.length(S), I)])


class TestSatisfiable:
    def test_concat_equation(self):
        status, model = check_strings(lits((b.eq(S, b.concat(T, b.lift("x"))), True)))
        assert status == "sat"
        assert model["s"] == model["t"] + "x"

    def test_length_pin(self):
        status, model = check_strings(
            lits((b.eq(b.length(S), 2), True), (b.prefixof(b.lift("a"), S), True))
        )
        assert status == "sat"
        assert len(model["s"]) == 2 and model["s"].startswith("a")

    def test_regex_membership(self):
        regex = b.re_star(b.to_re(b.lift("ab")))
        status, model = check_strings(
            lits((b.in_re(S, regex), True), (b.eq(b.length(S), 4), True))
        )
        assert status == "sat"
        assert model["s"] == "abab"

    def test_negative_literal(self):
        status, model = check_strings(
            lits((b.eq(S, b.lift("")), False), (b.le(b.length(S), 1), True))
        )
        assert status == "sat"
        assert model["s"] != ""

    def test_to_int_image(self):
        status, model = check_strings(
            lits((b.eq(b.str_to_int(S), 7), True), (b.eq(b.length(S), 2), True))
        )
        assert status == "sat"
        assert model["s"] == "07"

    def test_numeric_bridge_variable(self):
        status, model = check_strings(
            lits((b.eq(I, b.length(S)), True), (b.eq(S, b.lift("abc")), True))
        )
        assert status == "sat"
        assert model["i"] == 3

    def test_numeric_position_probe(self):
        status, model = check_strings(
            lits((b.eq(b.at(b.lift("hello"), I), b.lift("l")), True))
        )
        assert status == "sat"
        assert model["i"] in (2, 3)

    def test_derived_variable_can_exceed_length_cap(self):
        # s = t ++ u ++ "abc": s's value is derived, not enumerated, so
        # it may be longer than max_len_per_var.
        config = StringConfig(max_len_per_var=2, max_total_len=4)
        status, model = check_strings(
            lits(
                (b.eq(S, b.concat(T, U, b.lift("abc"))), True),
                (b.eq(b.length(T), 2), True),
                (b.eq(b.length(U), 2), True),
            ),
            config,
        )
        assert status == "sat"
        assert len(model["s"]) == 7


class TestUnsatisfiable:
    def test_length_abstraction_conflict(self):
        status, _ = check_strings(
            lits(
                (b.eq(S, b.concat(T, b.lift("x"))), True),
                (b.eq(b.length(S), b.length(T)), True),
            )
        )
        assert status == "unsat"

    def test_negative_length(self):
        status, _ = check_strings(lits((b.lt(b.length(S), 0), True)))
        assert status == "unsat"

    def test_regex_stride_conflict(self):
        regex = b.re_star(b.to_re(b.lift("aa")))
        status, _ = check_strings(
            lits((b.in_re(S, regex), True), (b.eq(b.length(S), 3), True))
        )
        assert status == "unsat"

    def test_empty_regex(self):
        regex = b.re_inter(b.to_re(b.lift("a")), b.to_re(b.lift("b")))
        status, _ = check_strings(lits((b.in_re(S, regex), True)))
        assert status == "unsat"

    def test_pinned_conflict(self):
        status, _ = check_strings(
            lits((b.eq(S, b.lift("a")), True), (b.eq(S, b.lift("b")), True))
        )
        assert status == "unsat"

    def test_to_int_conflicting_images(self):
        status, _ = check_strings(
            lits(
                (b.eq(b.str_to_int(S), 3), True),
                (b.eq(b.str_to_int(S), 4), True),
            )
        )
        assert status == "unsat"

    def test_contains_vs_pin(self):
        status, _ = check_strings(
            lits((b.contains(S, b.lift("z")), True), (b.eq(S, b.lift("aa")), True))
        )
        assert status == "unsat"

    def test_small_model_assumption_off_gives_unknown(self):
        config = StringConfig(small_model_assumption=False)
        status, _ = check_strings(
            lits((b.contains(S, b.lift("z")), True), (b.eq(S, b.lift("aa")), True)),
            config,
        )
        assert status == "unknown"


class TestBudgets:
    def test_budget_truncation_reports_unknown(self):
        config = StringConfig(max_assignments=5, max_len_per_var=3)
        status, _ = check_strings(
            lits(
                (b.contains(S, b.lift("q")), True),
                (b.contains(T, b.lift("q")), True),
                (b.contains(U, b.lift("q")), True),
            ),
            config,
        )
        # 'q' is outside the inferred alphabet, search cannot succeed;
        # with a tiny budget the solver must admit unknown (not unsat).
        assert status in ("unknown", "unsat")

    def test_zero_length_only(self):
        config = StringConfig(max_len_per_var=0, max_total_len=0)
        status, model = check_strings(lits((b.eq(b.length(S), 0), True)), config)
        assert status == "sat"
        assert model["s"] == ""
