"""Unit tests for the pretty-printer simplification passes."""

from repro.semantics.evaluator import evaluate
from repro.semantics.model import Model
from repro.smtlib import builder as b
from repro.smtlib.ast import Var
from repro.smtlib.parser import parse_script, parse_term
from repro.smtlib.pretty import drop_neutral, flatten, fold_constants, prettify, prettify_script
from repro.smtlib.sorts import INT

X = Var("x", INT)


class TestFlatten:
    def test_flattens_nested_and(self):
        term = parse_term("(and (and (> x 0) (< x 5)) (= x 2))", [X])
        flat = flatten(term)
        assert flat.op == "and"
        assert len(flat.args) == 3

    def test_flattens_nested_plus(self):
        term = parse_term("(+ (+ x 1) (+ x 2))", [X])
        assert len(flatten(term).args) == 4

    def test_preserves_different_ops(self):
        term = parse_term("(+ (* x 2) 1)", [X])
        assert flatten(term) == term

    def test_flattens_under_quantifier(self):
        term = parse_term("(exists ((h Int)) (and (and (> h 0) (< h 9)) (= h 1)))")
        assert len(flatten(term).body.args) == 3


class TestDropNeutral:
    def test_drops_zero_in_sum(self):
        term = parse_term("(+ x 0 1)", [X])
        assert str(drop_neutral(term)) == "(+ x 1)"

    def test_drops_one_in_product(self):
        term = parse_term("(* 1 x)", [X])
        assert str(drop_neutral(term)) == "x"

    def test_drops_true_in_and(self):
        term = parse_term("(and true (> x 0))", [X])
        assert str(drop_neutral(term)) == "(> x 0)"

    def test_drops_false_in_or(self):
        term = parse_term("(or false (> x 0))", [X])
        assert str(drop_neutral(term)) == "(> x 0)"

    def test_keeps_all_neutral_sum(self):
        term = parse_term("(+ 0 0)")
        result = drop_neutral(term)
        assert str(result) == "0"

    def test_drops_empty_string_in_concat(self):
        s = parse_term('(str.++ "" s "")', [Var("s", __import__("repro.smtlib.sorts", fromlist=["STRING"]).STRING)])
        assert str(drop_neutral(s)) == "s"


class TestFoldConstants:
    def test_folds_sum(self):
        assert str(fold_constants(parse_term("(+ 1 2 3)"))) == "6"

    def test_folds_product(self):
        assert str(fold_constants(parse_term("(* 2 3)"))) == "6"

    def test_folds_negation(self):
        assert str(fold_constants(parse_term("(- 5 2)"))) == "3"

    def test_folds_not(self):
        assert str(fold_constants(parse_term("(not true)"))) == "false"

    def test_leaves_variables(self):
        term = parse_term("(+ x 1)", [X])
        assert fold_constants(term) == term


class TestPrettify:
    def test_reaches_fixpoint(self):
        term = parse_term("(and (and true (> (+ x 0) (* 1 2))) true)", [X])
        pretty = prettify(term)
        assert str(pretty) == "(> x 2)"

    def test_semantics_preserved(self):
        term = parse_term("(and (and (> (+ x 0 1) 0) true) (< (* x 1) 5))", [X])
        pretty = prettify(term)
        for value in (-3, 0, 2, 7):
            model = Model({"x": value})
            assert evaluate(term, model) == evaluate(pretty, model)

    def test_prettify_script(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (and true (> (+ x 0) 1)))(check-sat)"
        )
        pretty = prettify_script(script)
        assert str(pretty.asserts[0]) == "(> x 1)"
