"""Tests for crash-safe campaign journaling and resume.

The acceptance test here: a campaign interrupted mid-run (simulated
``KeyboardInterrupt`` after k cells) resumes from its journal, skips
the k completed cells, and the merged :class:`CampaignResult` equals an
uninterrupted run byte-for-byte on serialized bug records.
"""

import json
import os

import pytest

from repro.campaign.runner import run_campaign
from repro.core.yinyang import BugRecord, YinYangReport
from repro.robustness import CampaignJournal, JournalError
from repro.robustness.journal import (
    deserialize_bug_record,
    deserialize_report,
    serialize_bug_record,
    serialize_report,
)
from repro.seeds import build_corpus
from repro.smtlib.parser import parse_script


def serialized(records):
    return [json.dumps(serialize_bug_record(r), sort_keys=True) for r in records]


@pytest.fixture(scope="module")
def corpora():
    return {
        "QF_S": build_corpus("QF_S", scale=0.0015, seed=5),
        "QF_LIA": build_corpus("QF_LIA", scale=0.003, seed=5),
    }


# The resume-equality contract is about bug *identity*, so the
# campaign runs without the wall-clock performance threshold (a
# performance record's payload is a timing measurement, which no
# journal can replay byte-for-byte).
CAMPAIGN = dict(iterations_per_cell=8, seed=6, performance_threshold=None)


class TestSerialization:
    def _record(self):
        return BugRecord(
            kind="soundness",
            solver="z3-like",
            oracle="unsat",
            reported="sat",
            script=parse_script(
                "(declare-fun x () Int)(assert (> x 0))(check-sat)"
            ),
            seed_indices=(3, 5),
            schemes=("int-sum",),
            logic="QF_LIA",
            elapsed=1.25,
            note="fault:z3-soundness-014",
        )

    def test_record_round_trips(self):
        record = self._record()
        data = serialize_bug_record(record)
        back = deserialize_bug_record(data)
        assert serialize_bug_record(back) == data
        assert back.kind == record.kind
        assert back.seed_indices == (3, 5)
        assert "declare-fun x" in back.script  # stored as SMT-LIB text

    def test_elapsed_excluded_from_serialization(self):
        data = serialize_bug_record(self._record())
        assert "elapsed" not in data

    def test_report_round_trips_with_counters(self):
        report = YinYangReport(
            iterations=10,
            fused=9,
            fusion_failures=1,
            unknowns=2,
            retries=3,
            timeouts=1,
            contained_errors=2,
            quarantine_skips=4,
        )
        report.quarantined = {"z3-like"}
        report.bugs = [self._record()]
        back = deserialize_report(serialize_report(report))
        assert back.iterations == 10
        assert back.retries == 3
        assert back.contained_errors == 2
        assert back.quarantined == {"z3-like"}
        assert len(back.bugs) == 1

    def test_none_script_survives(self):
        record = BugRecord(
            kind="crash", solver="s", oracle="sat", reported="x", script=None
        )
        assert deserialize_bug_record(serialize_bug_record(record)).script is None


class TestJournalFile:
    def test_journal_file_is_always_valid_jsonl(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.ensure_meta(seed=1, iterations_per_cell=4)
        journal.record_cell(("s", "f", "sat"), YinYangReport(iterations=4))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)  # every committed line parses

    def test_reload_sees_recorded_cells(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.record_cell(("s", "f", "sat"), YinYangReport(iterations=4, fused=3))
        reloaded = CampaignJournal(path)
        cells = reloaded.completed_cells()
        assert cells[("s", "f", "sat")].fused == 3

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.record_cell(("s", "f", "sat"), YinYangReport(iterations=4))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "cell", "solver": "tr')  # torn write
        cells = CampaignJournal(path).completed_cells()
        assert len(cells) == 1  # the complete entry survives

    def test_meta_mismatch_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CampaignJournal(path).ensure_meta(seed=1, iterations_per_cell=4)
        journal = CampaignJournal(path)
        with pytest.raises(JournalError):
            journal.ensure_meta(seed=2, iterations_per_cell=4)

    def test_bad_version_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"type": "meta", "version": 999}\n')
        with pytest.raises(JournalError):
            CampaignJournal(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.record_cell(("s", "f", "sat"), YinYangReport())
        assert os.listdir(tmp_path) == ["j.jsonl"]


class TestCampaignResume:
    def _interrupted_campaign(self, corpora, path, after_cells):
        """Run a journaled campaign that dies after ``after_cells`` cells."""
        from repro.core.yinyang import YinYang

        original = YinYang.test
        state = {"cells": 0}

        def interrupting(self, *args, **kwargs):
            if state["cells"] >= after_cells:
                raise KeyboardInterrupt
            state["cells"] += 1
            return original(self, *args, **kwargs)

        YinYang.test = interrupting
        try:
            with pytest.raises(KeyboardInterrupt):
                run_campaign(corpora, journal=path, **CAMPAIGN)
        finally:
            YinYang.test = original

    def test_interrupted_campaign_resumes_byte_for_byte(self, corpora, tmp_path):
        baseline = run_campaign(corpora, **CAMPAIGN)
        assert baseline.records, "campaign must find bugs for this test to bite"

        path = tmp_path / "campaign.jsonl"
        self._interrupted_campaign(corpora, path, after_cells=3)
        journaled = CampaignJournal(path).completed_cells()
        assert len(journaled) == 3  # exactly the cells that finished

        resumed = run_campaign(corpora, journal=path, resume=True, **CAMPAIGN)
        assert len(resumed.reports) == len(baseline.reports)
        assert serialized(resumed.records) == serialized(baseline.records)

    def test_resume_skips_completed_cells(self, corpora, tmp_path):
        path = tmp_path / "campaign.jsonl"
        self._interrupted_campaign(corpora, path, after_cells=3)

        from repro.core.yinyang import YinYang

        original = YinYang.test
        ran = []

        def counting(self, *args, **kwargs):
            ran.append(1)
            return original(self, *args, **kwargs)

        YinYang.test = counting
        try:
            result = run_campaign(corpora, journal=path, resume=True, **CAMPAIGN)
        finally:
            YinYang.test = original
        total_cells = len(result.reports)
        assert sum(ran) == total_cells - 3  # the 3 journaled cells skipped

    def test_fully_journaled_campaign_runs_nothing(self, corpora, tmp_path):
        path = tmp_path / "campaign.jsonl"
        first = run_campaign(corpora, journal=path, **CAMPAIGN)
        from repro.core.yinyang import YinYang

        original = YinYang.test
        ran = []
        YinYang.test = lambda self, *a, **k: ran.append(1) or original(self, *a, **k)
        try:
            again = run_campaign(corpora, journal=path, resume=True, **CAMPAIGN)
        finally:
            YinYang.test = original
        assert ran == []
        assert serialized(again.records) == serialized(first.records)

    def test_resume_with_wrong_params_refused(self, corpora, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_campaign(corpora, journal=path, **CAMPAIGN)
        with pytest.raises(JournalError):
            run_campaign(
                corpora,
                journal=path,
                resume=True,
                iterations_per_cell=99,
                seed=6,
                performance_threshold=None,
            )
