"""QF_BV end-to-end: sorts, typecheck, bit-blasting, campaigns.

The bit-vector theory is the registry's proof of pluggability: it was
added without editing the campaign core, and these tests pin each layer
of the path — well-sortedness enforcement at construction, evaluator vs
bit-blasted-solver agreement, and a full fault-injection campaign
(fusion + opfuzz, ``--triage --incremental`` included) that finds every
injected BV fault with byte-identical journals across fleet shapes.
"""

import random
from dataclasses import replace

import pytest

from repro.campaign.runner import deterministic_bv_solvers, run_campaign
from repro.campaign.triage import TriagePolicy
from repro.errors import SortError
from repro.seeds import build_corpus
from repro.seeds.bv_gen import generate_bv_seed
from repro.semantics.evaluator import evaluate
from repro.smtlib import builder as b
from repro.smtlib.bitvec import bv_const
from repro.smtlib.sorts import bitvec_sort, bitvec_width, is_bitvec
from repro.solver.solver import ReferenceSolver, SolverConfig
from repro.solver.strings import StringConfig


def _reference():
    # deterministic_bv_solvers' base recipe: step-counted budgets only.
    config = replace(
        SolverConfig.fast(),
        timeout_seconds=0.0,
        max_rounds=30,
        nonlinear_budget=120,
        strings=StringConfig(
            max_assignments=600, max_len_per_var=3, max_total_len=6
        ),
    )
    return ReferenceSolver(config)


# ---------------------------------------------------------------------------
# 1. Sorts and negative typechecking
# ---------------------------------------------------------------------------


class TestBitvecSorts:
    def test_widths_are_interned(self):
        assert bitvec_sort(8) is bitvec_sort(8)
        assert bitvec_sort(8) is not bitvec_sort(4)
        assert is_bitvec(bitvec_sort(8))
        assert bitvec_width(bitvec_sort(12)) == 12

    def test_width_mismatch_rejected(self):
        x8 = b.bv_var("x", 8)
        y4 = b.bv_var("y", 4)
        with pytest.raises(SortError):
            b.bvadd(x8, y4)
        with pytest.raises(SortError):
            b.bvult(x8, y4)
        with pytest.raises(SortError):
            b.eq(x8, y4)

    def test_non_bitvec_argument_rejected(self):
        with pytest.raises(SortError):
            b.bvadd(b.int_var("i"), b.int_var("j"))
        with pytest.raises(SortError):
            b.bvnot(b.bool_var("p"))

    def test_out_of_range_extract_rejected(self):
        x8 = b.bv_var("x", 8)
        with pytest.raises(SortError):
            b.bv_extract(8, 0, x8)  # high bit == width
        with pytest.raises(SortError):
            b.bv_extract(2, 5, x8)  # high < low
        with pytest.raises(SortError):
            b.bv_extract(-1, -2, x8)

    def test_extract_and_concat_widths(self):
        x8 = b.bv_var("x", 8)
        y4 = b.bv_var("y", 4)
        assert bitvec_width(b.bv_extract(5, 2, x8).sort) == 4
        assert bitvec_width(b.bv_concat(x8, y4).sort) == 12

    def test_constants_wrap_to_width(self):
        # bv_const is documented as ``value mod 2**width``: out-of-range
        # inputs wrap instead of raising, matching SMT-LIB's bv semantics.
        assert evaluate(bv_const(255, 8), None) == 255
        assert evaluate(bv_const(256, 8), None) == 0
        assert evaluate(bv_const(-1, 8), None) == 255


# ---------------------------------------------------------------------------
# 2. Evaluator vs bit-blasted solver agreement
# ---------------------------------------------------------------------------


class TestEvaluatorSolverAgreement:
    def test_labels_and_models_agree(self):
        # Each generated seed carries ground truth (sat ones a model);
        # the bit-blasting backend must agree, and the model it returns
        # must satisfy every assertion under the exact evaluator.
        solver = _reference()
        for i in range(30):
            oracle = "sat" if i % 2 == 0 else "unsat"
            seed = generate_bv_seed("QF_BV", oracle, random.Random(i))
            outcome = solver.check_script(seed.script)
            assert str(outcome.result) == oracle, f"seed {i}"
            if oracle == "sat":
                for term in seed.script.asserts:
                    assert evaluate(term, outcome.model) is True

    def test_modular_semantics(self):
        # 200 + 100 wraps to 44 in 8 bits: evaluator and blaster agree.
        solver = _reference()
        x = b.bv_var("x", 8)
        term = b.eq(b.bvadd(bv_const(200, 8), bv_const(100, 8)), x)
        assert evaluate(b.bvadd(bv_const(200, 8), bv_const(100, 8)), None) == 44
        from repro.smtlib.ast import Assert, CheckSat, DeclareFun, Script, SetLogic

        script = Script(
            [
                SetLogic("QF_BV"),
                DeclareFun("x", (), bitvec_sort(8)),
                Assert(term),
                CheckSat(),
            ]
        )
        outcome = solver.check_script(script)
        assert str(outcome.result) == "sat"
        assert outcome.model["x"] == 44


# ---------------------------------------------------------------------------
# 3. The QF_BV campaign: every fault found, byte-identical journals
# ---------------------------------------------------------------------------

_EXPECTED_FAULTS = {
    "z3-like": {
        "z3-bv-soundness-000",
        "z3-bv-soundness-001",
        "z3-bv-crash-000",
        "z3-bv-negnot",
    },
    "cvc4-like": {
        "cvc4-bv-soundness-000",
        "cvc4-bv-crash-000",
        "cvc4-bv-ult-ule",
    },
}

_CAMPAIGN = dict(
    iterations_per_cell=120,
    seed=0,
    performance_threshold=None,
    solver_factory=deterministic_bv_solvers,
    logic="QF_BV",
)


@pytest.fixture(scope="module")
def bv_corpora():
    return {"QF_BV": build_corpus("QF_BV", scale=0.05, seed=0)}


@pytest.fixture(scope="module")
def fusion_serial(bv_corpora, tmp_path_factory):
    path = tmp_path_factory.mktemp("bv") / "fusion-serial.jsonl"
    result = run_campaign(
        bv_corpora,
        journal=path,
        strategy="fusion",
        triage=TriagePolicy(),
        incremental=True,
        **_CAMPAIGN,
    )
    return result, path.read_bytes()


@pytest.fixture(scope="module")
def opfuzz_serial(bv_corpora, tmp_path_factory):
    path = tmp_path_factory.mktemp("bv") / "opfuzz-serial.jsonl"
    result = run_campaign(
        bv_corpora,
        journal=path,
        strategy="opfuzz",
        triage=TriagePolicy(),
        incremental=True,
        **_CAMPAIGN,
    )
    return result, path.read_bytes()


def _found(result):
    return {
        solver: {fault for fault in faults if fault}
        for solver, faults in result.found_faults().items()
    }


class TestBVCampaign:
    def test_union_finds_every_injected_fault(self, fusion_serial, opfuzz_serial):
        union = {"z3-like": set(), "cvc4-like": set()}
        for result, _ in (fusion_serial, opfuzz_serial):
            for solver, faults in _found(result).items():
                union[solver].update(faults)
        for solver, expected in _EXPECTED_FAULTS.items():
            assert union[solver] == expected

    def test_journal_meta_records_logic(self, fusion_serial):
        import json

        meta = json.loads(fusion_serial[1].splitlines()[0])
        assert meta["logic"] == "QF_BV"
        assert meta["triage"] == TriagePolicy().describe()

    def test_process_pool_matches_serial_bytes(
        self, bv_corpora, fusion_serial, tmp_path
    ):
        path = tmp_path / "fusion-process2.jsonl"
        result = run_campaign(
            bv_corpora,
            journal=path,
            strategy="fusion",
            triage=TriagePolicy(),
            incremental=True,
            mode="process",
            workers=2,
            **_CAMPAIGN,
        )
        assert path.read_bytes() == fusion_serial[1]
        assert _found(result) == _found(fusion_serial[0])

    def test_thread_pool_matches_serial_bytes(
        self, bv_corpora, opfuzz_serial, tmp_path
    ):
        path = tmp_path / "opfuzz-thread3.jsonl"
        result = run_campaign(
            bv_corpora,
            journal=path,
            strategy="opfuzz",
            triage=TriagePolicy(),
            incremental=True,
            mode="thread",
            workers=3,
            **_CAMPAIGN,
        )
        assert path.read_bytes() == opfuzz_serial[1]
        assert _found(result) == _found(opfuzz_serial[0])
