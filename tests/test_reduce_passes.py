"""Unit tests for the individual reduction passes."""

from repro.reduce.passes import (
    drop_assert_candidates,
    drop_unused_declarations,
    hoist_candidates,
    shrink_nary_candidates,
    subterm_to_neutral_candidates,
)
from repro.smtlib.parser import parse_script


def script(text):
    return parse_script(text)


BASE = script(
    "(declare-fun x () Int)(declare-fun y () Int)"
    "(assert (and (> x 0) (< y 5)))"
    "(assert (= (+ x y 1) 7))"
    "(check-sat)"
)


class TestDropAssert:
    def test_yields_one_per_assert(self):
        candidates = list(drop_assert_candidates(BASE))
        assert len(candidates) == 2
        assert all(len(c.asserts) == 1 for c in candidates)

    def test_no_asserts(self):
        empty = script("(declare-fun x () Int)(check-sat)")
        assert list(drop_assert_candidates(empty)) == []


class TestHoist:
    def test_hoists_bool_subterms(self):
        candidates = list(hoist_candidates(BASE))
        texts = {str(c.asserts[0]) for c in candidates if len(c.asserts) == 2}
        assert "(> x 0)" in texts
        assert "(< y 5)" in texts

    def test_skips_non_bool_subterms(self):
        for candidate in hoist_candidates(BASE):
            for term in candidate.asserts:
                assert term.sort.name == "Bool"


class TestShrinkNary:
    def test_drops_one_argument(self):
        source = script(
            "(declare-fun x () Int)(assert (< (+ x 1 2) 9))(check-sat)"
        )
        texts = {str(c.asserts[0]) for c in shrink_nary_candidates(source)}
        assert "(< (+ 1 2) 9)" in texts
        assert "(< (+ x 2) 9)" in texts
        assert "(< (+ x 1) 9)" in texts

    def test_binary_not_shrunk(self):
        source = script("(declare-fun x () Int)(assert (< (+ x 1) 9))(check-sat)")
        assert list(shrink_nary_candidates(source)) == []


class TestNeutralSubstitution:
    def test_replaces_with_sort_neutral(self):
        source = script(
            '(declare-fun s () String)(assert (= (str.++ s "ab") "xab"))(check-sat)'
        )
        texts = {str(c.asserts[0]) for c in subterm_to_neutral_candidates(source)}
        # The concat subterm can be replaced by the empty string.
        assert any('"" "xab"' in t or '(= "" "xab")' in t for t in texts)

    def test_candidates_strictly_smaller(self):
        from repro.smtlib.ast import term_size

        for candidate in subterm_to_neutral_candidates(BASE):
            assert sum(term_size(t) for t in candidate.asserts) < sum(
                term_size(t) for t in BASE.asserts
            )


class TestDropDeclarations:
    def test_drops_only_unused(self):
        source = script(
            "(declare-fun x () Int)(declare-fun dead () Int)"
            "(assert (> x 0))(check-sat)"
        )
        smaller = drop_unused_declarations(source)
        from repro.smtlib.ast import DeclareFun

        names = [c.name for c in smaller.commands if isinstance(c, DeclareFun)]
        assert names == ["x"]

    def test_none_when_all_used(self):
        source = script("(declare-fun x () Int)(assert (> x 0))(check-sat)")
        assert drop_unused_declarations(source) is None
