"""Unit tests for SMT-LIB printing (including round-trips)."""

from fractions import Fraction

import pytest

from repro.smtlib.ast import Const, Var
from repro.smtlib.parser import parse_script, parse_term
from repro.smtlib.printer import print_script, print_term
from repro.smtlib.sorts import BOOL, INT, REAL, STRING


class TestConstants:
    def test_positive_int(self):
        assert print_term(Const(7, INT)) == "7"

    def test_negative_int(self):
        assert print_term(Const(-7, INT)) == "(- 7)"

    def test_bool(self):
        assert print_term(Const(True, BOOL)) == "true"
        assert print_term(Const(False, BOOL)) == "false"

    def test_whole_real(self):
        assert print_term(Const(Fraction(3), REAL)) == "3.0"

    def test_decimal_real(self):
        assert print_term(Const(Fraction(1, 2), REAL)) == "0.5"

    def test_decimal_real_quarters(self):
        assert print_term(Const(Fraction(5, 4), REAL)) == "1.25"

    def test_negative_real(self):
        assert print_term(Const(Fraction(-7, 4), REAL)) == "(- 1.75)"

    def test_non_decimal_rational(self):
        assert print_term(Const(Fraction(1, 3), REAL)) == "(/ 1.0 3.0)"

    def test_negative_non_decimal_rational(self):
        assert print_term(Const(Fraction(-22, 7), REAL)) == "(- (/ 22.0 7.0))"

    def test_string_plain(self):
        assert print_term(Const("ab", STRING)) == '"ab"'

    def test_string_with_quote(self):
        assert print_term(Const('a"b', STRING)) == '"a""b"'


class TestRoundTrip:
    CASES = [
        "(declare-fun x () Int)\n(assert (> x 0))\n(check-sat)",
        "(declare-fun r () Real)\n(assert (<= (/ r 2.0) 1.5))\n(check-sat)",
        '(declare-fun s () String)\n(assert (str.in.re s (re.* (str.to.re "ab"))))\n(check-sat)',
        "(declare-fun x () Int)\n(assert (exists ((h Int)) (> h x)))\n(check-sat)",
        "(set-logic QF_LIA)\n(declare-const c Int)\n(assert (= c (- 3)))\n(check-sat)",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_parse_print_parse_fixpoint(self, source):
        once = print_script(parse_script(source))
        twice = print_script(parse_script(once))
        assert once == twice

    @pytest.mark.parametrize("source", CASES)
    def test_reprint_preserves_asserts(self, source):
        original = parse_script(source)
        reparsed = parse_script(print_script(original))
        assert original.asserts == reparsed.asserts


class TestTermPrinting:
    def test_nested_application(self):
        x = Var("x", INT)
        term = parse_term("(+ (* 2 x) 1)", [x])
        assert print_term(term) == "(+ (* 2 x) 1)"

    def test_quantifier_printing(self):
        term = parse_term("(forall ((a Int) (b Int)) (= a b))")
        assert print_term(term) == "(forall ((a Int) (b Int)) (= a b))"

    def test_nullary_regex(self):
        term = parse_term("(re.++ re.allchar re.none)")
        assert print_term(term) == "(re.++ re.allchar re.none)"

    def test_str_term_via_dunder(self):
        term = parse_term('(str.++ "a" "b")')
        assert str(term) == '(str.++ "a" "b")'
