"""Unit tests for the SMT-LIB parser."""

from fractions import Fraction

import pytest

from repro.errors import ParseError
from repro.smtlib.ast import (
    App,
    Assert,
    CheckSat,
    Const,
    DeclareFun,
    Quantifier,
    SetLogic,
    Var,
)
from repro.smtlib.parser import parse_script, parse_term
from repro.smtlib.sorts import BOOL, INT, REAL, STRING


class TestCommands:
    def test_declare_fun(self):
        script = parse_script("(declare-fun x () Int)")
        cmd = script.commands[0]
        assert isinstance(cmd, DeclareFun)
        assert cmd.name == "x"
        assert cmd.return_sort == INT

    def test_declare_const(self):
        script = parse_script("(declare-const s String)")
        assert script.declarations["s"].sort == STRING

    def test_set_logic(self):
        script = parse_script("(set-logic QF_NRA)")
        assert isinstance(script.commands[0], SetLogic)
        assert script.logic == "QF_NRA"

    def test_assert_and_check_sat(self):
        script = parse_script("(declare-fun b () Bool)(assert b)(check-sat)")
        assert isinstance(script.commands[1], Assert)
        assert isinstance(script.commands[2], CheckSat)

    def test_asserted_term_must_be_bool(self):
        with pytest.raises(ParseError):
            parse_script("(declare-fun x () Int)(assert x)")

    def test_uninterpreted_function_rejected(self):
        with pytest.raises(ParseError):
            parse_script("(declare-fun f (Int) Int)")

    def test_set_info_roundtrips(self):
        script = parse_script('(set-info :status sat)')
        assert script.commands[0].keyword == ":status"

    def test_unknown_command(self):
        with pytest.raises(ParseError):
            parse_script("(pop 1)")

    def test_define_fun_expanded_at_use(self):
        script = parse_script(
            "(declare-fun x () Int)"
            "(define-fun double ((a Int)) Int (+ a a))"
            "(assert (= (double x) 4))"
        )
        term = script.asserts[0]
        assert "double" not in str(term)
        assert "(+ x x)" in str(term)

    def test_define_fun_arity_checked(self):
        with pytest.raises(ParseError):
            parse_script(
                "(define-fun one () Int 1)(assert (= (one 2) 1))"
            )


class TestTerms:
    def test_numeral(self):
        assert parse_term("5") == Const(5, INT)

    def test_negative_numeral_via_minus(self):
        # Unary minus of a literal is normalized to a negative constant
        # (exact print/parse round-trips).
        assert parse_term("(- 5)") == Const(-5, INT)

    def test_unary_minus_of_variable_stays_an_application(self):
        x = Var("x", INT)
        term = parse_term("(- x)", [x])
        assert isinstance(term, App) and term.op == "-"

    def test_decimal(self):
        assert parse_term("2.5") == Const(Fraction(5, 2), REAL)

    def test_true_false(self):
        assert parse_term("true") == Const(True, BOOL)
        assert parse_term("false") == Const(False, BOOL)

    def test_string_literal(self):
        assert parse_term('"ab"') == Const("ab", STRING)

    def test_variable_requires_declaration(self):
        with pytest.raises(ParseError):
            parse_term("x")

    def test_variable_with_binding(self):
        x = Var("x", INT)
        assert parse_term("x", [x]) == x

    def test_application(self):
        x = Var("x", INT)
        term = parse_term("(+ x 1)", [x])
        assert term.op == "+"
        assert term.sort == INT

    def test_alias_normalized(self):
        s = Var("s", STRING)
        term = parse_term("(str.to_int s)", [s])
        assert term.op == "str.to.int"

    def test_unknown_operator(self):
        with pytest.raises(ParseError):
            parse_term("(frobnicate 1)")

    def test_ill_sorted_application(self):
        with pytest.raises(ParseError):
            parse_term('(+ 1 "s")')

    def test_annotation_dropped(self):
        term = parse_term("(! (+ 1 2) :named foo)")
        assert term.op == "+"


class TestLet:
    def test_let_expands(self):
        term = parse_term("(let ((u (+ 1 2))) (= u 3))")
        assert "(= (+ 1 2) 3)" == str(term)

    def test_let_is_simultaneous(self):
        x = Var("x", INT)
        term = parse_term("(let ((a x) (b (+ x 1))) (= a b))", [x])
        # b's definition must see the outer x, not a.
        assert str(term) == "(= x (+ x 1))"

    def test_nested_let(self):
        term = parse_term("(let ((a 1)) (let ((b (+ a 1))) (= b 2)))")
        assert str(term) == "(= (+ 1 1) 2)"

    def test_let_shadowing(self):
        x = Var("x", INT)
        term = parse_term("(let ((x 7)) (= x 7))", [x])
        assert str(term) == "(= 7 7)"


class TestQuantifiers:
    def test_exists(self):
        term = parse_term("(exists ((h Int)) (> h 0))")
        assert isinstance(term, Quantifier)
        assert term.kind == "exists"
        assert term.bindings == (("h", INT),)

    def test_forall(self):
        term = parse_term("(forall ((a Real) (b Real)) (= a b))")
        assert term.kind == "forall"
        assert len(term.bindings) == 2

    def test_body_must_be_bool(self):
        with pytest.raises(ParseError):
            parse_term("(exists ((h Int)) (+ h 1))")

    def test_bound_variable_scoping(self):
        x = Var("x", INT)
        term = parse_term("(exists ((x Int)) (> x 0))", [x])
        from repro.smtlib.ast import free_vars

        assert free_vars(term) == set()


class TestScriptViews:
    def test_free_variables_ordered(self):
        script = parse_script(
            "(declare-fun b () Int)(declare-fun a () Int)"
            "(assert (> b 0))(assert (> a 0))"
        )
        assert [v.name for v in script.free_variables()] == ["b", "a"]

    def test_asserts_view(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 0))(assert (< x 5))(check-sat)"
        )
        assert len(script.asserts) == 2

    def test_conjunction_of_empty(self):
        script = parse_script("(check-sat)")
        assert script.conjunction() == Const(True, BOOL)

    def test_with_asserts_replaces_in_place(self):
        script = parse_script(
            "(declare-fun x () Int)(assert (> x 0))(check-sat)"
        )
        new = script.with_asserts([Const(True, BOOL)])
        assert len(new.asserts) == 1
        assert isinstance(new.commands[-1], CheckSat)

    def test_with_asserts_on_assertless_script(self):
        script = parse_script("(declare-fun x () Int)(check-sat)")
        new = script.with_asserts([Const(False, BOOL)])
        assert new.asserts == [Const(False, BOOL)]
        assert isinstance(new.commands[-1], CheckSat)
