"""Tests for the boolean abstraction (Tseitin encoding)."""

from itertools import product

import pytest

from repro.smtlib import builder as b
from repro.smtlib.ast import Const, Var
from repro.smtlib.parser import parse_term
from repro.smtlib.sorts import BOOL, INT
from repro.solver.sat import SatSolver
from repro.solver.tseitin import Abstraction, encode, is_theory_atom

P = Var("p", BOOL)
Q = Var("q", BOOL)
R = Var("r", BOOL)
X = Var("x", INT)


def _models_of(term, names):
    """Truth-table models of a pure-boolean term."""
    out = set()
    from repro.semantics.evaluator import evaluate
    from repro.semantics.model import Model

    for bits in product([False, True], repeat=len(names)):
        model = Model(dict(zip(names, bits)))
        if evaluate(term, model):
            out.add(bits)
    return out


def _sat_models(term, names):
    """Models found by encode+CDCL+blocking, projected to the atoms."""
    sat = SatSolver()
    abstraction = encode([term], sat)
    atom_vars = {name: abstraction.atom_to_var[Var(name, BOOL)] for name in names}
    found = set()
    while sat.solve():
        model = sat.model()
        bits = tuple(model[atom_vars[name]] for name in names)
        found.add(bits)
        sat.add_clause([-atom_vars[n] if model[atom_vars[n]] else atom_vars[n] for n in names])
    return found


class TestAtomClassification:
    def test_bool_var_is_atom(self):
        assert is_theory_atom(P)

    def test_comparison_is_atom(self):
        assert is_theory_atom(b.gt(X, 0))

    def test_connectives_are_not_atoms(self):
        assert not is_theory_atom(b.and_(P, Q))
        assert not is_theory_atom(b.not_(P))

    def test_numeric_equality_is_atom(self):
        assert is_theory_atom(b.eq(X, 1))

    def test_bool_equality_is_structural(self):
        assert not is_theory_atom(b.eq(P, Q))

    def test_const_is_not_atom(self):
        assert not is_theory_atom(Const(True, BOOL))


class TestEquisatisfiability:
    FORMULAS = [
        "(and p q)",
        "(or p (not q))",
        "(=> p q)",
        "(xor p q r)",
        "(= p q)",
        "(= p q r)",
        "(ite p q r)",
        "(not (and p (or q (not r))))",
        "(or (and p q) (and (not p) r))",
        "(=> (=> p q) (=> q p))",
        "(distinct p q)",
    ]

    @pytest.mark.parametrize("source", FORMULAS)
    def test_projected_models_match_truth_table(self, source):
        term = parse_term(source, [P, Q, R])
        names = sorted(v.name for v in __import__("repro.smtlib.ast", fromlist=["free_vars"]).free_vars(term))
        expected = _models_of(term, names)
        assert _sat_models(term, names) == expected

    def test_false_constant_unsat(self):
        sat = SatSolver()
        encode([Const(False, BOOL)], sat)
        assert sat.solve() is False

    def test_true_constant_sat(self):
        sat = SatSolver()
        encode([Const(True, BOOL)], sat)
        assert sat.solve() is True


class TestTheoryInterface:
    def test_atoms_mapped_bidirectionally(self):
        sat = SatSolver()
        atom = b.gt(X, 0)
        abstraction = encode([b.or_(atom, P)], sat)
        var = abstraction.atom_to_var[atom]
        assert abstraction.var_to_atom[var] == atom

    def test_theory_assignment_extraction(self):
        sat = SatSolver()
        atom = b.gt(X, 0)
        abstraction = encode([b.and_(atom, P)], sat)
        assert sat.solve() is True
        literals = dict(abstraction.theory_assignment(sat.model()))
        assert literals[atom] is True
        assert literals[P] is True

    def test_blocking_removes_assignment(self):
        sat = SatSolver()
        atom = b.gt(X, 0)
        abstraction = encode([b.or_(atom, P)], sat)
        assert sat.solve() is True
        first = abstraction.theory_assignment(sat.model())
        abstraction.block(
            [
                abstraction.atom_to_var[a] if v else -abstraction.atom_to_var[a]
                for a, v in first
            ]
        )
        assert sat.solve() is True
        second = abstraction.theory_assignment(sat.model())
        assert dict(first) != dict(second)

    def test_shared_subterm_encoded_once(self):
        sat = SatSolver()
        atom = b.gt(X, 0)
        abstraction = encode([b.and_(atom, b.or_(atom, P))], sat)
        assert len([a for a in abstraction.atom_to_var if not isinstance(a, Var)]) == 1
