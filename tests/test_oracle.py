"""Tests for seed labeling and oracle bookkeeping."""

import pytest

from repro.core.oracle import LabeledSeed, SeedCorpus
from repro.smtlib.parser import parse_script

SAT = parse_script("(declare-fun x () Int)(assert (> x 0))(check-sat)")
UNSAT = parse_script("(declare-fun x () Int)(assert (distinct x x))(check-sat)")


class TestLabeledSeed:
    def test_valid(self):
        seed = LabeledSeed(SAT, "sat", "QF_LIA")
        assert seed.oracle == "sat"

    def test_invalid_oracle(self):
        with pytest.raises(ValueError):
            LabeledSeed(SAT, "perhaps")


class TestSeedCorpus:
    def _corpus(self):
        corpus = SeedCorpus("demo")
        corpus.add(LabeledSeed(SAT, "sat", "QF_LIA"))
        corpus.add(LabeledSeed(UNSAT, "unsat", "QF_LIA"))
        corpus.add(LabeledSeed(SAT, "sat", "QF_LIA"))
        return corpus

    def test_split_by_oracle(self):
        corpus = self._corpus()
        assert len(corpus.sat_seeds) == 2
        assert len(corpus.unsat_seeds) == 1

    def test_counts_row(self):
        assert self._corpus().counts() == (1, 2, 3)

    def test_validate_agreement(self, solver):
        assert self._corpus().validate(solver) == []

    def test_validate_flags_mislabeled(self, solver):
        corpus = SeedCorpus("bad")
        corpus.add(LabeledSeed(UNSAT, "sat", "QF_LIA"))  # wrong label
        mismatches = corpus.validate(solver)
        assert len(mismatches) == 1
        index, seed, verdict = mismatches[0]
        assert str(verdict) == "unsat"

    def test_validate_max_seeds(self, solver):
        corpus = self._corpus()
        assert corpus.validate(solver, max_seeds=0) == []
