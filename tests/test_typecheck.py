"""Unit tests for sort checking and inference."""

from fractions import Fraction

import pytest

from repro.errors import SortError
from repro.smtlib.ast import Const, Var
from repro.smtlib.sorts import BOOL, INT, REAL, REGLAN, STRING
from repro.smtlib.typecheck import app, canonical_op, is_known_op

X = Var("x", INT)
R = Var("r", REAL)
S = Var("s", STRING)
B = Var("b", BOOL)


class TestCore:
    def test_not(self):
        assert app("not", B).sort == BOOL

    def test_not_arity(self):
        with pytest.raises(SortError):
            app("not", B, B)

    def test_and_nary(self):
        assert app("and", B, B, B).sort == BOOL

    def test_and_requires_bool(self):
        with pytest.raises(SortError):
            app("and", B, X)

    def test_implies_needs_two(self):
        with pytest.raises(SortError):
            app("=>", B)

    def test_eq_same_sort(self):
        assert app("=", X, X).sort == BOOL

    def test_eq_mixed_numeric_coerces(self):
        term = app("=", X, R)
        assert all(a.sort == REAL for a in term.args)

    def test_eq_incompatible(self):
        with pytest.raises(SortError):
            app("=", X, S)

    def test_ite_result_sort(self):
        assert app("ite", B, X, X).sort == INT

    def test_ite_condition_must_be_bool(self):
        with pytest.raises(SortError):
            app("ite", X, X, X)

    def test_ite_branch_coercion(self):
        term = app("ite", B, X, R)
        assert term.sort == REAL

    def test_distinct(self):
        assert app("distinct", S, S).sort == BOOL


class TestArithmetic:
    def test_add_int(self):
        assert app("+", X, X).sort == INT

    def test_add_mixed_is_real(self):
        assert app("+", X, R).sort == REAL

    def test_int_const_coerced_in_real_context(self):
        term = app("+", Const(1, INT), R)
        assert term.args[0] == Const(Fraction(1), REAL)

    def test_int_var_wrapped_in_to_real(self):
        term = app("+", X, R)
        assert term.args[0].op == "to_real"

    def test_unary_minus(self):
        assert app("-", X).sort == INT

    def test_real_division_coerces(self):
        assert app("/", X, X).sort == REAL

    def test_int_division(self):
        assert app("div", X, X).sort == INT

    def test_div_rejects_real(self):
        with pytest.raises(SortError):
            app("div", R, R)

    def test_mod(self):
        assert app("mod", X, X).sort == INT

    def test_abs(self):
        assert app("abs", R).sort == REAL

    def test_comparison(self):
        assert app("<", X, R).sort == BOOL

    def test_comparison_rejects_string(self):
        with pytest.raises(SortError):
            app("<", S, S)

    def test_to_real(self):
        assert app("to_real", X).sort == REAL

    def test_to_int(self):
        assert app("to_int", R).sort == INT

    def test_is_int(self):
        assert app("is_int", R).sort == BOOL


class TestStrings:
    def test_concat(self):
        assert app("str.++", S, S).sort == STRING

    def test_len(self):
        assert app("str.len", S).sort == INT

    def test_at(self):
        assert app("str.at", S, X).sort == STRING

    def test_substr(self):
        assert app("str.substr", S, X, X).sort == STRING

    def test_substr_signature(self):
        with pytest.raises(SortError):
            app("str.substr", S, S, X)

    def test_indexof(self):
        assert app("str.indexof", S, S, X).sort == INT

    def test_replace(self):
        assert app("str.replace", S, S, S).sort == STRING

    def test_predicates(self):
        for op in ("str.prefixof", "str.suffixof", "str.contains"):
            assert app(op, S, S).sort == BOOL

    def test_to_int(self):
        assert app("str.to.int", S).sort == INT

    def test_from_int(self):
        assert app("str.from.int", X).sort == STRING

    def test_in_re(self):
        regex = app("str.to.re", S)
        assert app("str.in.re", S, regex).sort == BOOL

    def test_in_re_signature(self):
        with pytest.raises(SortError):
            app("str.in.re", S, S)


class TestRegex:
    def test_nullary(self):
        for op in ("re.none", "re.all", "re.allchar"):
            assert app(op).sort == REGLAN

    def test_star(self):
        assert app("re.*", app("re.allchar")).sort == REGLAN

    def test_union_arity(self):
        with pytest.raises(SortError):
            app("re.union", app("re.none"))

    def test_range(self):
        assert app("re.range", S, S).sort == REGLAN


class TestAliases:
    def test_canonical_op(self):
        assert canonical_op("str.to_int") == "str.to.int"
        assert canonical_op("int.to.str") == "str.from.int"
        assert canonical_op("str.in_re") == "str.in.re"

    def test_is_known_op(self):
        assert is_known_op("str.substring")
        assert not is_known_op("nope")

    def test_alias_application(self):
        assert app("str.to_int", S).op == "str.to.int"


class TestErrors:
    def test_unknown_operator(self):
        with pytest.raises(SortError):
            app("zorp", X)

    def test_non_term_argument(self):
        with pytest.raises(TypeError):
            app("+", X, 1)
