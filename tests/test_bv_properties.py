"""Hypothesis properties for the bit-vector theory.

Two contracts, property-tested because their input space is the whole
term language:

- **Round-trip identity**: every script the QF_BV generator emits
  survives print -> parse with its assertion ASTs intact (the file
  workflow feeds .smt2 text to solver binaries, so the printer and
  parser must be exact inverses on the fragment we emit).
- **Evaluator/blaster agreement**: the exact big-integer evaluator and
  the eager bit-blasting backend are two implementations of the same
  semantics; for any generated term ``t`` and model ``M``,
  ``assert (= t eval(t, M))`` must be satisfiable, and generated seeds'
  labels must match the solver verdict.
"""

import random
from dataclasses import replace

import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.seeds.bv_gen import _random_term, generate_bv_seed
from repro.semantics.evaluator import evaluate
from repro.semantics.model import Model
from repro.smtlib import builder as b
from repro.smtlib.ast import Assert, CheckSat, DeclareFun, Script, SetLogic, mk_var
from repro.smtlib.bitvec import GENERATOR_WIDTHS, bv_const
from repro.smtlib.parser import parse_script
from repro.smtlib.printer import print_script
from repro.smtlib.sorts import bitvec_sort
from repro.solver.solver import ReferenceSolver, SolverConfig
from repro.solver.strings import StringConfig

_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _reference():
    config = replace(
        SolverConfig.fast(),
        timeout_seconds=0.0,
        max_rounds=30,
        nonlinear_budget=120,
        strings=StringConfig(
            max_assignments=600, max_len_per_var=3, max_total_len=6
        ),
    )
    return ReferenceSolver(config)


@_SETTINGS
@given(
    oracle=st.sampled_from(["sat", "unsat"]),
    seed=st.integers(0, 10**6),
)
def test_bv_seed_roundtrip(oracle, seed):
    labeled = generate_bv_seed("QF_BV", oracle, random.Random(seed))
    text = print_script(labeled.script)
    reparsed = parse_script(text)
    assert reparsed.asserts == labeled.script.asserts
    assert print_script(reparsed) == text


@_SETTINGS
@given(
    width=st.sampled_from(GENERATOR_WIDTHS),
    seed=st.integers(0, 10**6),
)
def test_evaluator_agrees_with_bitblaster(width, seed):
    rng = random.Random(seed)
    sort = bitvec_sort(width)
    variables = [mk_var(f"b{i}", sort) for i in range(3)]
    model = Model(
        {v.name: rng.randint(0, (1 << width) - 1) for v in variables}
    )
    term = _random_term(variables, rng, width, depth=3)
    value = evaluate(term, model)
    assert 0 <= value < (1 << width)
    # Pin every variable to its model value; the blasted solver must
    # then agree that the term evaluates to exactly ``value``.
    commands = [SetLogic("QF_BV")]
    commands += [DeclareFun(v.name, (), sort) for v in variables]
    commands += [Assert(b.eq(v, bv_const(model[v.name], width))) for v in variables]
    commands += [Assert(b.eq(term, bv_const(value, width))), CheckSat()]
    outcome = _reference().check_script(Script(commands))
    assert str(outcome.result) == "sat"


@_SETTINGS
@given(seed=st.integers(0, 10**6))
def test_generated_labels_match_solver_verdict(seed):
    oracle = "sat" if seed % 2 == 0 else "unsat"
    labeled = generate_bv_seed("QF_BV", oracle, random.Random(seed))
    outcome = _reference().check_script(labeled.script)
    assert str(outcome.result) == oracle
