"""Tests for the error hierarchy, results, and package surface."""

import pytest

from repro.errors import (
    EvaluationError,
    FusionError,
    ParseError,
    ReductionError,
    ReproError,
    SmtLibError,
    SortError,
)
from repro.solver.result import CheckOutcome, SolverCrash, SolverResult


class TestHierarchy:
    def test_all_inherit_from_repro_error(self):
        for exc in (SmtLibError, ParseError, SortError, EvaluationError, FusionError, ReductionError):
            assert issubclass(exc, ReproError)

    def test_parse_error_location_rendering(self):
        err = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(err) and "column 7" in str(err)

    def test_parse_error_without_location(self):
        assert str(ParseError("oops")) == "oops"

    def test_sort_error_is_smtlib_error(self):
        assert issubclass(SortError, SmtLibError)


class TestSolverResult:
    def test_from_string(self):
        assert SolverResult.from_string("SAT") is SolverResult.SAT
        assert SolverResult.from_string(" unsat ") is SolverResult.UNSAT

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            SolverResult.from_string("maybe")

    def test_is_definite(self):
        assert SolverResult.SAT.is_definite
        assert SolverResult.UNSAT.is_definite
        assert not SolverResult.UNKNOWN.is_definite

    def test_flipped(self):
        assert SolverResult.SAT.flipped() is SolverResult.UNSAT
        assert SolverResult.UNSAT.flipped() is SolverResult.SAT
        assert SolverResult.UNKNOWN.flipped() is SolverResult.UNKNOWN

    def test_str(self):
        assert str(SolverResult.SAT) == "sat"

    def test_outcome_defaults(self):
        outcome = CheckOutcome(SolverResult.UNKNOWN)
        assert outcome.stats == {}
        assert str(outcome) == "unknown"

    def test_crash_kind(self):
        crash = SolverCrash("boom", kind="assertion")
        assert crash.kind == "assertion"
        assert isinstance(crash, ReproError)


class TestPackageSurface:
    def test_lazy_exports(self):
        import repro

        assert callable(repro.parse_script)
        assert callable(repro.fuse_scripts)
        assert repro.SolverResult is SolverResult

    def test_unknown_attribute(self):
        import repro

        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_version(self):
        import repro

        assert repro.__version__
