"""Property tests: printer/parser round-trips over generated seeds.

Every script our generators emit must survive print -> parse with its
assertion ASTs intact, and fused scripts must too — this is what makes
the tool's file-based workflow (the paper feeds .smt2 files to solver
binaries) trustworthy.
"""

import random

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.fusion import fuse
from repro.errors import FusionError
from repro.seeds import (
    generate_arith_seed,
    generate_string_seed,
    generate_stringfuzz_seed,
)
from repro.smtlib.parser import parse_script
from repro.smtlib.printer import print_script

_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

FAMILIES = ["LIA", "LRA", "NRA", "QF_LIA", "QF_LRA", "QF_NRA"]


def _roundtrip_equal(script):
    text = print_script(script)
    reparsed = parse_script(text)
    assert reparsed.asserts == script.asserts
    assert print_script(reparsed) == text
    return reparsed


@_SETTINGS
@given(
    family=st.sampled_from(FAMILIES),
    oracle=st.sampled_from(["sat", "unsat"]),
    seed=st.integers(0, 10**6),
)
def test_arith_seed_roundtrip(family, oracle, seed):
    labeled = generate_arith_seed(family, oracle, random.Random(seed))
    _roundtrip_equal(labeled.script)


@_SETTINGS
@given(
    family=st.sampled_from(["QF_S", "QF_SLIA"]),
    oracle=st.sampled_from(["sat", "unsat"]),
    seed=st.integers(0, 10**6),
)
def test_string_seed_roundtrip(family, oracle, seed):
    labeled = generate_string_seed(family, oracle, random.Random(seed))
    _roundtrip_equal(labeled.script)


@_SETTINGS
@given(oracle=st.sampled_from(["sat", "unsat"]), seed=st.integers(0, 10**6))
def test_stringfuzz_seed_roundtrip(oracle, seed):
    labeled = generate_stringfuzz_seed(oracle, random.Random(seed))
    _roundtrip_equal(labeled.script)


@_SETTINGS
@given(
    family=st.sampled_from(["QF_LIA", "QF_LRA", "QF_NRA", "QF_S", "QF_SLIA"]),
    oracle=st.sampled_from(["sat", "unsat"]),
    seed=st.integers(0, 10**6),
)
def test_fused_script_roundtrip(family, oracle, seed):
    rng = random.Random(seed)
    if family in ("QF_S", "QF_SLIA"):
        phi1 = generate_string_seed(family, oracle, rng)
        phi2 = generate_string_seed(family, oracle, rng)
    else:
        phi1 = generate_arith_seed(family, oracle, rng)
        phi2 = generate_arith_seed(family, oracle, rng)
    try:
        fused = fuse(oracle, phi1.script, phi2.script, rng)
    except FusionError:
        # A legitimate non-fusable draw (e.g. no same-sort variable
        # pair between the seeds) — reject it, don't fail on it.
        assume(False)
    _roundtrip_equal(fused.script)
