"""Tests for the yinyang command line."""

import pytest

from repro.cli import build_parser, main, make_solver


@pytest.fixture()
def seed_files(tmp_path):
    a = tmp_path / "a.smt2"
    a.write_text("(declare-fun x () Int)(assert (> x 0))(check-sat)\n")
    b = tmp_path / "b.smt2"
    b.write_text("(declare-fun y () Int)(assert (< y 0))(check-sat)\n")
    return str(a), str(b)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fuse_args(self, seed_files):
        args = build_parser().parse_args(
            ["fuse", "--oracle", "sat", *seed_files]
        )
        assert args.oracle == "sat"

    def test_bad_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "f.smt2", "--solver", "z4"])


class TestCommands:
    def test_fuse_outputs_script(self, seed_files, capsys):
        code = main(["fuse", "--oracle", "sat", *seed_files, "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "(check-sat)" in out
        assert "declare-fun z" in out

    def test_check_reference(self, seed_files, capsys):
        code = main(["check", seed_files[0], "--solver", "reference"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "sat"

    def test_check_crash_exit_code(self, tmp_path, capsys):
        from repro.faults.paper_samples import sample_by_figure

        crash = tmp_path / "crash.smt2"
        crash.write_text(sample_by_figure("13f").smt2)
        code = main(["check", str(crash), "--solver", "z3-like"])
        assert code == 2
        assert "crash" in capsys.readouterr().out

    def test_generate(self, capsys):
        code = main(
            ["generate", "--family", "QF_LIA", "--oracle", "unsat", "--count", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("(check-sat)") == 2
        assert "; oracle: unsat" in out

    def test_test_loop(self, capsys):
        code = main(
            [
                "test",
                "--oracle",
                "unsat",
                "--corpus",
                "QF_LIA",
                "--solver",
                "reference",
                "--iterations",
                "4",
                "--scale",
                "0.002",
                "--show",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 iterations" in out
        assert "throughput" in out

    def test_make_solver_names(self):
        assert make_solver("reference").name == "reference"
        assert make_solver("z3-like").name == "z3-like"
        assert make_solver("cvc4-like").name == "cvc4-like"
