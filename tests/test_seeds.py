"""Tests for the seed generators and corpora (the Figure 7 substrate)."""

import random

import pytest

from repro.faults.fault import analyze_script
from repro.seeds import (
    PAPER_SEED_COUNTS,
    build_all_corpora,
    build_corpus,
    generate_arith_seed,
    generate_string_seed,
    generate_stringfuzz_seed,
)
from repro.seeds.corpus import figure7_rows
from repro.semantics.evaluator import evaluate_script
from repro.smtlib.ast import Quantifier

ARITH_FAMILIES = ["LIA", "LRA", "NRA", "QF_LIA", "QF_LRA", "QF_NRA"]


class TestArithGenerator:
    @pytest.mark.parametrize("family", ARITH_FAMILIES)
    def test_sat_seed_carries_verifying_model(self, family):
        rng = random.Random(1)
        for _ in range(5):
            seed = generate_arith_seed(family, "sat", rng)
            assert seed.oracle == "sat"
            assert seed.model is not None
            # Verify the quantifier-free part against the model.
            qf = [
                t
                for t in seed.script.asserts
                if not any(isinstance(n, Quantifier) for n in t.walk())
            ]
            probe = seed.script.with_asserts(qf)
            assert evaluate_script(probe, seed.model)

    @pytest.mark.parametrize("family", ARITH_FAMILIES)
    def test_unsat_seed_refuted_by_solver(self, family, solver):
        rng = random.Random(2)
        for _ in range(3):
            seed = generate_arith_seed(family, "unsat", rng)
            verdict = str(solver.check_script(seed.script).result)
            assert verdict != "sat"

    def test_quantified_families_use_quantifiers_sometimes(self):
        rng = random.Random(3)
        found = False
        for _ in range(20):
            seed = generate_arith_seed("LRA", "sat", rng)
            if any(
                isinstance(n, Quantifier)
                for t in seed.script.asserts
                for n in t.walk()
            ):
                found = True
                break
        assert found

    def test_qf_families_stay_quantifier_free(self):
        rng = random.Random(4)
        for _ in range(10):
            seed = generate_arith_seed("QF_NRA", "sat", rng)
            assert not any(
                isinstance(n, Quantifier)
                for t in seed.script.asserts
                for n in t.walk()
            )

    def test_set_logic_emitted(self):
        seed = generate_arith_seed("QF_LIA", "sat", random.Random(5))
        assert seed.script.logic == "QF_LIA"


class TestStringGenerator:
    @pytest.mark.parametrize("family", ["QF_S", "QF_SLIA"])
    def test_sat_seed_model_verifies(self, family):
        rng = random.Random(6)
        for _ in range(8):
            seed = generate_string_seed(family, "sat", rng)
            assert evaluate_script(seed.script, seed.model)

    @pytest.mark.parametrize("family", ["QF_S", "QF_SLIA"])
    def test_unsat_seed_refuted(self, family, solver):
        rng = random.Random(7)
        for _ in range(5):
            seed = generate_string_seed(family, "unsat", rng)
            assert str(solver.check_script(seed.script).result) != "sat"

    def test_qf_slia_has_integer_variable(self):
        seed = generate_string_seed("QF_SLIA", "sat", random.Random(8))
        assert analyze_script(seed.script).logic_family == "QF_SLIA"

    def test_qf_s_has_no_integer_variable(self):
        seed = generate_string_seed("QF_S", "sat", random.Random(9))
        assert analyze_script(seed.script).logic_family == "QF_S"


class TestStringFuzzGenerator:
    def test_sat_model_verifies(self):
        rng = random.Random(10)
        for _ in range(8):
            seed = generate_stringfuzz_seed("sat", rng)
            assert evaluate_script(seed.script, seed.model)

    def test_unsat_refuted(self, solver):
        rng = random.Random(11)
        for _ in range(5):
            seed = generate_stringfuzz_seed("unsat", rng)
            assert str(solver.check_script(seed.script).result) != "sat"

    def test_chain_flavor(self):
        seed = generate_stringfuzz_seed("sat", random.Random(12), chain_length=5)
        assert len(seed.script.free_variables()) == 5


class TestCorpora:
    def test_single_corpus_counts(self):
        corpus = build_corpus("QF_LRA", scale=0.01, seed=1)
        unsat, sat, total = corpus.counts()
        assert unsat >= 1 and sat >= 1
        assert total == unsat + sat

    def test_nra_has_no_sat_seeds(self):
        corpus = build_corpus("NRA", scale=0.01, seed=1)
        unsat, sat, _ = corpus.counts()
        assert sat == 0 and unsat > 0  # matching Figure 7

    def test_all_families_buildable(self):
        corpora = build_all_corpora(scale=0.001, seed=2)
        assert set(corpora) == set(PAPER_SEED_COUNTS)

    def test_figure7_rows_order(self):
        corpora = build_all_corpora(scale=0.001, seed=2)
        rows = figure7_rows(corpora)
        assert [r[0] for r in rows] == list(PAPER_SEED_COUNTS)

    def test_determinism(self):
        import re

        normalize = lambda s: re.sub(r"!\d+", "!N", s)
        a = build_corpus("QF_S", scale=0.002, seed=9)
        c = build_corpus("QF_S", scale=0.002, seed=9)
        assert [normalize(str(x.script)) for x in a.seeds] == [
            normalize(str(x.script)) for x in c.seeds
        ]

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            build_corpus("QF_FP", scale=0.01)

    def test_extra_family_qf_bv(self):
        corpus = build_corpus("QF_BV", scale=0.01, seed=0)
        unsat, sat, total = corpus.counts()
        assert unsat >= 1 and sat >= 1 and total == unsat + sat
        assert all(seed.origin == "bv-gen" for seed in corpus.seeds)

    def test_validate_against_reference(self, solver):
        corpus = build_corpus("QF_LIA", scale=0.003, seed=4)
        mismatches = corpus.validate(solver, max_seeds=10)
        assert mismatches == []
