"""Integration tests for the campaign runner, triage, and tables."""

import pytest

from repro.campaign import (
    attribute_fault,
    figure8a_rows,
    figure8b_rows,
    figure8c_rows,
    figure9_rows,
    figure10_rows,
    render_table,
    run_campaign,
)
from repro.campaign.runner import default_solvers
from repro.core.yinyang import BugRecord
from repro.seeds import build_corpus


@pytest.fixture(scope="module")
def small_campaign():
    corpora = {
        "QF_S": build_corpus("QF_S", scale=0.0015, seed=5),
        "QF_LIA": build_corpus("QF_LIA", scale=0.003, seed=5),
    }
    return run_campaign(corpora, iterations_per_cell=12, seed=6)


class TestAttribution:
    def test_fault_note_parsing(self):
        record = BugRecord(
            kind="soundness",
            solver="z3-like",
            oracle="unsat",
            reported="sat",
            script=None,
            note="fault:z3-soundness-014",
        )
        assert attribute_fault(record) == "z3-soundness-014"

    def test_crash_note_parsing(self):
        record = BugRecord(
            kind="crash",
            solver="z3-like",
            oracle="unsat",
            reported="segfault",
            script=None,
            note="z3-crash-006",
        )
        assert attribute_fault(record) == "z3-crash-006"

    def test_unknown_note_parsing(self):
        record = BugRecord(
            kind="unknown",
            solver="z3-like",
            oracle="sat",
            reported="unknown",
            script=None,
            note="error: rewriter failed to converge (z3-unknown-000)",
        )
        assert attribute_fault(record) == "z3-unknown-000"

    def test_no_note(self):
        record = BugRecord(
            kind="soundness",
            solver="z3-like",
            oracle="sat",
            reported="unsat",
            script=None,
        )
        assert attribute_fault(record) == ""


class TestCampaign:
    def test_finds_bugs(self, small_campaign):
        assert small_campaign.records
        assert small_campaign.fused_total > 0

    def test_found_faults_are_known(self, small_campaign):
        found = small_campaign.found_faults()
        for solver_name, faults in found.items():
            catalog_ids = {f.fault_id for f in small_campaign.catalogs[solver_name]}
            assert set(faults) <= catalog_ids

    def test_z3_like_yields_more(self, small_campaign):
        found = small_campaign.found_faults()
        assert len(found["z3-like"]) >= len(found["cvc4-like"])

    def test_records_attribute_to_their_solver(self, small_campaign):
        found = small_campaign.found_faults()
        for solver_name, faults in found.items():
            for fault_id, records in faults.items():
                assert all(r.solver == solver_name for r in records)

    def test_summary_mentions_both_solvers(self, small_campaign):
        text = small_campaign.summary()
        assert "z3-like" in text and "cvc4-like" in text


class TestTables:
    def test_figure8a_row_structure(self, small_campaign):
        rows = figure8a_rows(small_campaign)
        labels = [r[0] for r in rows]
        assert labels == ["Reported", "Confirmed", "Fixed", "Duplicate", "Won't fix"]
        reported = rows[0]
        assert reported[1] >= rows[1][1]  # reported >= confirmed

    def test_figure8b_types(self, small_campaign):
        rows = {r[0]: r for r in figure8b_rows(small_campaign)}
        assert set(rows) == {"Soundness", "Crash", "Performance", "Unknown"}
        # Paper columns present.
        assert rows["Soundness"][3] == 24 and rows["Soundness"][4] == 5

    def test_figure8c_logics(self, small_campaign):
        rows = {r[0]: r for r in figure8c_rows(small_campaign)}
        assert rows["NRA"][3] == 15  # paper column

    def test_figure9(self, small_campaign):
        per_year, shares = figure9_rows(small_campaign)
        assert sum(n for _, n in per_year["z3-like"]) == 146
        assert "z3-like" in shares

    def test_figure10(self, small_campaign):
        tables = figure10_rows(small_campaign)
        z3_rows = tables["z3-like"]
        assert z3_rows[-1][0] == "trunk"
        # ours <= paper everywhere (a quick campaign finds a subset).
        for release, ours, paper in z3_rows:
            assert ours <= paper

    def test_render_table(self):
        text = render_table(["a", "bb"], [(1, 22), (333, 4)], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in lines[-1]


class TestReleases:
    def test_default_solvers_release_parameter(self):
        trunk_z3 = default_solvers("trunk")[0]
        old_z3 = default_solvers("4.5.0")[0]
        assert len(old_z3.active_faults()) < len(trunk_z3.active_faults())
