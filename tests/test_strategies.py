"""Strategy-pipeline tests: the refactor must be invisible to fusion.

Three guarantees pinned here:

1. **Golden byte-identity** — the default fusion strategy reproduces
   the pre-refactor campaign journal byte-for-byte
   (``tests/golden/fusion_campaign_journal.jsonl``, generated on the
   commit *before* the strategy pipeline landed) across serial, thread
   and process modes at several worker counts. The extraction of the
   loop into :class:`~repro.strategies.fusion.FusionStrategy` must be
   draw-for-draw exact or these fail.
2. **OpFuzz well-typedness** — every operator-mutation mutant
   round-trips through print → parse (which typechecks), and every
   rewritten operator stays inside its type-equivalence class.
3. **OpFuzz end-to-end** — a second, differential-oracle workload runs
   through the whole stack (modes, resume, journaling, stats) with the
   same byte-determinism as fusion, and journals refuse to mix
   strategies.
"""

import json
from pathlib import Path

import pytest

from repro.campaign.runner import deterministic_solvers, run_campaign
from repro.core.yinyang import YinYang, iteration_rng
from repro.errors import FusionError, MutationError
from repro.robustness.journal import JournalError, serialize_bug_record
from repro.seeds import build_corpus
from repro.smtlib.parser import parse_script
from repro.smtlib.printer import print_script
from repro.smtlib.typecheck import (
    mutation_alternatives,
    operator_equivalence_classes,
)
from repro.strategies import (
    ConcatFuzzStrategy,
    FusionStrategy,
    MixedFusionStrategy,
    OpFuzzStrategy,
    iter_strategies,
    make_strategy,
    register_strategy,
    strategy_names,
)

GOLDEN = Path(__file__).resolve().parent / "golden" / "fusion_campaign_journal.jsonl"

# Identical to the parameters the golden journal was generated with
# (and to tests/test_parallel_determinism.py — machine-independent).
CAMPAIGN = dict(
    iterations_per_cell=8,
    seed=6,
    performance_threshold=None,
    solver_factory=deterministic_solvers,
)


@pytest.fixture(scope="module")
def corpora():
    return {
        "QF_S": build_corpus("QF_S", scale=0.0015, seed=5),
        "QF_LIA": build_corpus("QF_LIA", scale=0.003, seed=5),
    }


@pytest.fixture(scope="module")
def lia_corpus():
    return build_corpus("QF_LIA", scale=0.003, seed=5)


# ---------------------------------------------------------------------------
# 1. Fusion reproduces the pre-refactor journal byte-for-byte
# ---------------------------------------------------------------------------


class TestFusionGoldenJournal:
    def test_serial_matches_pre_refactor_bytes(self, corpora, tmp_path):
        path = tmp_path / "serial.jsonl"
        run_campaign(corpora, journal=path, **CAMPAIGN)
        assert path.read_bytes() == GOLDEN.read_bytes()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_thread_matches_pre_refactor_bytes(self, corpora, tmp_path, workers):
        path = tmp_path / f"thread{workers}.jsonl"
        run_campaign(
            corpora, journal=path, mode="thread", workers=workers, **CAMPAIGN
        )
        assert path.read_bytes() == GOLDEN.read_bytes()

    def test_process_matches_pre_refactor_bytes(self, corpora, tmp_path):
        path = tmp_path / "process2.jsonl"
        run_campaign(
            corpora, journal=path, mode="process", workers=2, **CAMPAIGN
        )
        assert path.read_bytes() == GOLDEN.read_bytes()

    @pytest.mark.slow
    def test_process_four_workers_matches_pre_refactor_bytes(
        self, corpora, tmp_path
    ):
        path = tmp_path / "process4.jsonl"
        run_campaign(
            corpora, journal=path, mode="process", workers=4, **CAMPAIGN
        )
        assert path.read_bytes() == GOLDEN.read_bytes()

    def test_explicit_fusion_name_is_the_default(self, corpora, tmp_path):
        path = tmp_path / "named.jsonl"
        run_campaign(corpora, journal=path, strategy="fusion", **CAMPAIGN)
        assert path.read_bytes() == GOLDEN.read_bytes()

    def test_fusion_journal_has_no_strategy_key(self):
        lines = [json.loads(l) for l in GOLDEN.read_text().splitlines()]
        meta = lines[0]
        assert meta["type"] == "meta"
        assert "strategy" not in meta
        for entry in lines[1:]:
            for bug in entry["report"]["bugs"]:
                assert "strategy" not in bug


# ---------------------------------------------------------------------------
# 2. The registry and the strategy protocol
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        assert {"fusion", "concatfuzz", "opfuzz"} <= set(strategy_names())

    def test_make_strategy_by_name(self):
        assert isinstance(make_strategy("fusion"), FusionStrategy)
        assert isinstance(make_strategy("concatfuzz"), ConcatFuzzStrategy)
        assert isinstance(make_strategy("opfuzz"), OpFuzzStrategy)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="fusion"):
            make_strategy("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy("fusion", lambda config: FusionStrategy(config))

    def test_describe_rows(self):
        for strategy in iter_strategies():
            name, seeds, kind, theories, summary = strategy.describe()
            assert name == strategy.name
            assert seeds >= 1
            assert kind in ("oracle-preserving", "differential")
            assert summary
            assert theories == "/".join(strategy.theories())

    def test_strategy_theories_from_registry(self):
        # Fusion requires registered fusion schemes; opfuzz requires
        # multi-member operator equivalence classes; concatfuzz works
        # over any value theory. All three value theories qualify today.
        for strategy in iter_strategies():
            theories = strategy.theories()
            assert {"arithmetic", "strings", "bitvectors"} <= set(theories)
            logics = strategy.logics()
            assert "QF_BV" in logics and "QF_SLIA" in logics

    def test_yinyang_accepts_name_instance_and_default(self, solver):
        assert isinstance(YinYang(solver).strategy, FusionStrategy)
        assert YinYang(solver, strategy="opfuzz").strategy.name == "opfuzz"
        inst = ConcatFuzzStrategy()
        assert YinYang(solver, strategy=inst).strategy is inst

    def test_fusion_error_is_a_mutation_error(self):
        # The generic loop catches MutationError; fusion raises
        # FusionError — the subclassing is what keeps both worlds.
        assert issubclass(FusionError, MutationError)


# ---------------------------------------------------------------------------
# 3. Type-equivalence classes and opfuzz well-typedness
# ---------------------------------------------------------------------------


class TestMutationAlternatives:
    def test_classes_have_at_least_two_members(self):
        for ops in operator_equivalence_classes():
            assert len(ops) >= 2

    def test_alternatives_exclude_self_and_stay_in_class(self):
        classes = {ops: set(ops) for ops in operator_equivalence_classes()}
        for ops, members in classes.items():
            for op in ops:
                alts = mutation_alternatives(op, 2)
                assert op not in alts
                assert set(alts) <= members - {op}

    def test_expected_pairs_are_classmates(self):
        assert "<=" in mutation_alternatives("<", 2)
        assert "or" in mutation_alternatives("and", 2)
        assert "*" in mutation_alternatives("+", 2)
        # `-` supports unary negation, so its signature (and handler)
        # differs from +/*: not a classmate.
        assert mutation_alternatives("-", 2) == ()

    def test_implies_needs_two_args(self):
        # `not` is unary-only and (=> x) is ill-formed: at arity 1 the
        # class must not offer `=>`.
        assert "=>" not in mutation_alternatives("and", 1)
        assert "=>" in mutation_alternatives("and", 2)

    def test_unknown_op_has_no_alternatives(self):
        assert mutation_alternatives("frobnicate", 2) == ()


class TestOpFuzzWellTyped:
    """Property: every opfuzz mutant is well-sorted by construction."""

    def _mutants(self, corpus, count=40):
        strategy = OpFuzzStrategy()
        seeds = [s for s in corpus.seeds]
        scripts = [s.script for s in seeds]
        logics = [s.logic for s in seeds]
        work = strategy.prepare("", scripts, logics)
        out = []
        for index in range(count):
            rng = iteration_rng(99, index)
            try:
                mutant = strategy.mutate(rng, work)
            except MutationError:
                continue
            out.append((index, mutant))
        return out

    def test_mutants_roundtrip_through_typechecking_parser(self, lia_corpus):
        mutants = self._mutants(lia_corpus)
        assert mutants, "no opfuzz mutants produced"
        for _index, mutant in mutants:
            text = print_script(mutant.script)
            # parse_script typechecks as it parses: an ill-sorted
            # mutant cannot round-trip.
            reparsed = parse_script(text)
            assert print_script(reparsed) == text

    def test_mutated_operators_change_and_stay_in_class(self, lia_corpus):
        for _index, mutant in self._mutants(lia_corpus):
            assert mutant.schemes
            for label in mutant.schemes:
                old, new = label.split("->")
                assert old != new
                assert new in mutation_alternatives(old, 2) or new in (
                    mutation_alternatives(old, 1)
                )

    def test_mutant_differs_from_seed(self, lia_corpus):
        scripts = [s.script for s in lia_corpus.seeds]
        for _index, mutant in self._mutants(lia_corpus):
            i, _j = mutant.seed_indices
            assert print_script(mutant.script) != print_script(scripts[i])

    def test_mutation_is_deterministic(self, lia_corpus):
        one = self._mutants(lia_corpus)
        two = self._mutants(lia_corpus)
        assert [(i, print_script(m.script)) for i, m in one] == [
            (i, print_script(m.script)) for i, m in two
        ]

    def test_strategy_stamp(self, lia_corpus):
        for _index, mutant in self._mutants(lia_corpus, count=10):
            assert mutant.strategy == "opfuzz"


# ---------------------------------------------------------------------------
# 4. OpFuzz end-to-end: modes, resume, journal hygiene, stats
# ---------------------------------------------------------------------------

OPFUZZ_CAMPAIGN = dict(CAMPAIGN, strategy="opfuzz")


@pytest.fixture(scope="module")
def opfuzz_baseline(lia_corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("opfuzz") / "serial.jsonl"
    result = run_campaign({"QF_LIA": lia_corpus}, journal=path, **OPFUZZ_CAMPAIGN)
    return result, path.read_bytes()


class TestOpFuzzEndToEnd:
    def test_serial_runs_and_journals(self, opfuzz_baseline):
        result, blob = opfuzz_baseline
        assert result.strategy == "opfuzz"
        assert result.fused_total > 0
        meta = json.loads(blob.decode().splitlines()[0])
        assert meta["strategy"] == "opfuzz"

    def test_records_stamped_with_strategy(self, opfuzz_baseline):
        result, blob = opfuzz_baseline
        for record in result.records:
            assert record.strategy == "opfuzz"
            assert serialize_bug_record(record).get("strategy") == "opfuzz"
        for line in blob.decode().splitlines()[1:]:
            for bug in json.loads(line)["report"]["bugs"]:
                assert bug["strategy"] == "opfuzz"

    @pytest.mark.parametrize("workers", [2, 4])
    def test_thread_matches_serial_bytes(
        self, lia_corpus, opfuzz_baseline, tmp_path, workers
    ):
        path = tmp_path / f"thread{workers}.jsonl"
        run_campaign(
            {"QF_LIA": lia_corpus},
            journal=path,
            mode="thread",
            workers=workers,
            **OPFUZZ_CAMPAIGN,
        )
        assert path.read_bytes() == opfuzz_baseline[1]

    def test_process_matches_serial_bytes(
        self, lia_corpus, opfuzz_baseline, tmp_path
    ):
        path = tmp_path / "process2.jsonl"
        result = run_campaign(
            {"QF_LIA": lia_corpus},
            journal=path,
            mode="process",
            workers=2,
            **OPFUZZ_CAMPAIGN,
        )
        assert path.read_bytes() == opfuzz_baseline[1]
        assert result.summary_counters() == opfuzz_baseline[0].summary_counters()

    def test_resume_skips_completed_cells(self, lia_corpus, tmp_path):
        path = tmp_path / "resume.jsonl"
        first = run_campaign(
            {"QF_LIA": lia_corpus}, journal=path, **OPFUZZ_CAMPAIGN
        )
        blob = path.read_bytes()
        resumed = run_campaign(
            {"QF_LIA": lia_corpus}, journal=path, resume=True, **OPFUZZ_CAMPAIGN
        )
        assert path.read_bytes() == blob
        assert resumed.summary_counters() == first.summary_counters()
        # All cells came from the journal: nothing was re-fuzzed.
        assert all(r.elapsed == 0.0 for r in resumed.reports.values())

    def test_resume_refuses_strategy_mismatch(self, lia_corpus, tmp_path):
        path = tmp_path / "mix.jsonl"
        run_campaign({"QF_LIA": lia_corpus}, journal=path, **OPFUZZ_CAMPAIGN)
        with pytest.raises(JournalError, match="opfuzz"):
            run_campaign(
                {"QF_LIA": lia_corpus}, journal=path, resume=True, **CAMPAIGN
            )

    def test_fusion_journal_refuses_opfuzz_resume(self, lia_corpus, tmp_path):
        path = tmp_path / "mix2.jsonl"
        run_campaign({"QF_LIA": lia_corpus}, journal=path, **CAMPAIGN)
        with pytest.raises(JournalError, match="fusion"):
            run_campaign(
                {"QF_LIA": lia_corpus},
                journal=path,
                resume=True,
                **OPFUZZ_CAMPAIGN,
            )

    def test_stats_renders_strategy(self, opfuzz_baseline, tmp_path):
        from repro.observability.stats import render_stats

        path = tmp_path / "stats.jsonl"
        path.write_bytes(opfuzz_baseline[1])
        text = render_stats(path)
        assert "strategy opfuzz" in text

    def test_telemetry_per_strategy_counter(self, lia_corpus):
        from repro.observability.telemetry import Telemetry

        telemetry = Telemetry()
        try:
            run_campaign(
                {"QF_LIA": lia_corpus}, telemetry=telemetry, **OPFUZZ_CAMPAIGN
            )
            counters = telemetry.snapshot()["counters"]
        finally:
            telemetry.close()
        assert counters.get("mutants.opfuzz", 0) > 0
        assert "mutants.fusion" not in counters


# ---------------------------------------------------------------------------
# 5. ConcatFuzz and mixed fusion ride the same pipeline
# ---------------------------------------------------------------------------


class TestOtherStrategiesOnPipeline:
    def test_concatfuzz_campaign_is_deterministic(self, lia_corpus, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_campaign(
            {"QF_LIA": lia_corpus},
            journal=a,
            strategy="concatfuzz",
            mode="thread",
            workers=2,
            **CAMPAIGN,
        )
        run_campaign(
            {"QF_LIA": lia_corpus}, journal=b, strategy="concatfuzz", **CAMPAIGN
        )
        assert a.read_bytes() == b.read_bytes()
        meta = json.loads(a.read_text().splitlines()[0])
        assert meta["strategy"] == "concatfuzz"

    def test_concatfuzz_draws_same_seed_pairs_as_fusion(self, lia_corpus):
        # RQ4's controlled comparison: at a fixed (seed, index), both
        # strategies must select the same seed pair.
        fusion, concat = FusionStrategy(), ConcatFuzzStrategy()
        scripts = [s.script for s in lia_corpus.by_oracle("sat")]
        logics = [""] * len(scripts)
        fw = fusion.prepare("sat", scripts, logics)
        cw = concat.prepare("sat", scripts, logics)
        for index in range(20):
            try:
                mf = fusion.mutate(iteration_rng(3, index), fw)
            except MutationError:
                continue
            mc = concat.mutate(iteration_rng(3, index), cw)
            assert mf.seed_indices == mc.seed_indices

    def test_mixed_fusion_records_carry_strategy(self, solver, lia_corpus):
        sat = lia_corpus.by_oracle("sat")
        unsat = lia_corpus.by_oracle("unsat")
        tool = YinYang(solver)
        report = tool.test_mixed("sat", sat, unsat, iterations=6)
        assert report.iterations == 6
        for bug in report.bugs:
            assert bug.strategy == "fusion-mixed"

    def test_mixed_fusion_rejects_bad_want(self):
        with pytest.raises(ValueError, match="want"):
            MixedFusionStrategy("maybe")


# ---------------------------------------------------------------------------
# 6. CLI surface
# ---------------------------------------------------------------------------


class TestStrategyCli:
    def test_strategies_subcommand_lists_builtins(self, capsys):
        from repro.cli import main

        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for name in ("fusion", "concatfuzz", "opfuzz"):
            assert name in out

    def test_test_subcommand_accepts_strategy(self, capsys):
        from repro.cli import main

        code = main(
            [
                "test",
                "--oracle",
                "sat",
                "--corpus",
                "QF_LIA",
                "--scale",
                "0.003",
                "--seed",
                "5",
                "--iterations",
                "4",
                "--strategy",
                "opfuzz",
                "--show",
                "0",
            ]
        )
        assert code == 0
        assert "iterations" in capsys.readouterr().out

    def test_campaign_parser_rejects_unknown_strategy(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "--strategy", "does-not-exist"]
            )
