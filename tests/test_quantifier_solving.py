"""Deeper tests of the quantifier fragments the solver supports."""

import pytest

from repro.smtlib.parser import parse_script
from repro.smtlib.quantbounds import bound_from_atom, guarded_integer_bounds
from repro.smtlib.parser import parse_term
from repro.smtlib.ast import Var
from repro.smtlib.sorts import INT


class TestBoundExtraction:
    def test_var_on_left(self):
        h = "h"
        assert bound_from_atom(parse_term("(<= h 5)", [Var("h", INT)]), h) == ("hi", 5)
        assert bound_from_atom(parse_term("(< h 5)", [Var("h", INT)]), h) == ("hi", 4)
        assert bound_from_atom(parse_term("(>= h 2)", [Var("h", INT)]), h) == ("lo", 2)
        assert bound_from_atom(parse_term("(> h 2)", [Var("h", INT)]), h) == ("lo", 3)

    def test_var_on_right(self):
        h = "h"
        assert bound_from_atom(parse_term("(<= 2 h)", [Var("h", INT)]), h) == ("lo", 2)
        assert bound_from_atom(parse_term("(> 5 h)", [Var("h", INT)]), h) == ("hi", 4)

    def test_irrelevant_atom(self):
        assert bound_from_atom(parse_term("(= 1 1)"), "h") is None

    def test_guarded_bounds(self):
        term = parse_term(
            "(forall ((h Int)) (=> (and (>= h 0) (<= h 3)) (= h h)))"
        )
        assert guarded_integer_bounds(term) == {"h": (0, 3)}

    def test_guarded_bounds_tightest_wins(self):
        term = parse_term(
            "(forall ((h Int)) (=> (and (>= h 0) (>= h 2) (<= h 9) (<= h 4)) true))"
        )
        assert guarded_integer_bounds(term) == {"h": (2, 4)}

    def test_missing_bound_rejected(self):
        term = parse_term("(forall ((h Int)) (=> (>= h 0) true))")
        assert guarded_integer_bounds(term) is None

    def test_real_binding_rejected(self):
        term = parse_term(
            "(forall ((h Real)) (=> (and (>= h 0.0) (<= h 1.0)) true))"
        )
        assert guarded_integer_bounds(term) is None


class TestQuantifiedSolving:
    def verdict(self, solver, text):
        return str(solver.check_result(text))

    def test_exists_conjunction(self, solver):
        text = (
            "(declare-fun x () Int)"
            "(assert (exists ((h Int) (k Int)) (and (> h x) (< k x))))"
            "(check-sat)"
        )
        assert self.verdict(solver, text) == "sat"

    def test_negated_forall_becomes_witnessable(self, solver):
        text = (
            "(assert (not (forall ((h Int)) (distinct h 42))))"
            "(check-sat)"
        )
        assert self.verdict(solver, text) == "sat"

    def test_bounded_forall_interacts_with_free_vars(self, solver):
        # x must dominate 0..3, and be below 10.
        text = (
            "(declare-fun x () Int)"
            "(assert (forall ((h Int)) (=> (and (>= h 0) (<= h 3)) (> x h))))"
            "(assert (< x 10))"
            "(check-sat)"
        )
        outcome = __import__("repro.solver.solver", fromlist=["ReferenceSolver"]).ReferenceSolver().check(text)
        assert str(outcome.result) == "sat"
        assert 3 < outcome.model["x"] < 10

    def test_bounded_forall_conflict(self, solver):
        text = (
            "(declare-fun x () Int)"
            "(assert (forall ((h Int)) (=> (and (>= h 0) (<= h 3)) (> x h))))"
            "(assert (< x 2))"
            "(check-sat)"
        )
        assert self.verdict(solver, text) == "unsat"

    def test_refutation_uses_formula_constants(self, solver):
        # forall h. h > x with x = 3: instantiating h with x (a harvested
        # candidate term) refutes.
        text = (
            "(declare-fun x () Int)(assert (= x 3))"
            "(assert (forall ((h Int)) (> h x)))(check-sat)"
        )
        assert self.verdict(solver, text) == "unsat"

    def test_quantified_strings_unknown_not_wrong(self, solver):
        text = (
            '(declare-fun s () String)'
            '(assert (forall ((t String)) (str.prefixof "" t)))'
            "(check-sat)"
        )
        # True universally; our fragment cannot prove it — must not say unsat.
        assert self.verdict(solver, text) != "unsat"

    def test_mixed_polarity_residue_is_unknown(self, solver):
        text = (
            "(declare-fun p () Bool)"
            "(assert (= p (forall ((h Int)) (> (* h h) (- 1)))))"
            "(assert p)"
            "(check-sat)"
        )
        assert self.verdict(solver, text) == "unknown"

    def test_paper_13f_shape_no_crash(self, solver):
        from repro.faults.paper_samples import sample_by_figure

        # The reference build must survive the crash-triggering formula.
        outcome = solver.check(sample_by_figure("13f").smt2)
        assert str(outcome.result) in ("unsat", "unknown")
