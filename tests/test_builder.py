"""Tests for the term-construction DSL."""

from fractions import Fraction

import pytest

from repro.smtlib import builder as b
from repro.smtlib.ast import Const, Quantifier
from repro.smtlib.sorts import BOOL, INT, REAL, REGLAN, STRING


class TestLift:
    def test_int(self):
        assert b.lift(3) == Const(3, INT)

    def test_bool_before_int(self):
        assert b.lift(True) == Const(True, BOOL)

    def test_fraction(self):
        assert b.lift(Fraction(1, 2)) == Const(Fraction(1, 2), REAL)

    def test_float_converted_exactly(self):
        assert b.lift(0.5) == Const(Fraction(1, 2), REAL)

    def test_string(self):
        assert b.lift("ab") == Const("ab", STRING)

    def test_int_with_real_hint(self):
        assert b.lift(2, sort_hint=REAL) == Const(Fraction(2), REAL)

    def test_term_passthrough(self):
        x = b.int_var("x")
        assert b.lift(x) is x

    def test_unsupported(self):
        with pytest.raises(TypeError):
            b.lift(object())


class TestConstructors:
    def test_variables(self):
        assert b.int_var("i").sort == INT
        assert b.real_var("r").sort == REAL
        assert b.bool_var("p").sort == BOOL
        assert b.string_var("s").sort == STRING

    def test_arith_sorts(self):
        x = b.int_var("x")
        assert b.add(x, 1).sort == INT
        assert b.div(x, 2).sort == REAL
        assert b.idiv(x, 2).sort == INT
        assert b.lt(x, 0).sort == BOOL

    def test_string_ops(self):
        s = b.string_var("s")
        assert b.concat(s, "x").sort == STRING
        assert b.length(s).sort == INT
        assert b.in_re(s, b.re_all()).sort == BOOL
        assert b.to_re(s).sort == REGLAN

    def test_regex_ops(self):
        r = b.to_re(b.lift("a"))
        assert b.re_star(r).sort == REGLAN
        assert b.re_union(r, b.re_none()).sort == REGLAN
        assert b.re_range("a", "z").sort == REGLAN

    def test_quantifiers_from_vars(self):
        h = b.int_var("h")
        term = b.forall([h], b.ge(h, h))
        assert isinstance(term, Quantifier)
        assert term.bindings == (("h", INT),)

    def test_quantifiers_from_pairs(self):
        term = b.exists([("k", REAL)], b.lift(True))
        assert term.bindings == (("k", REAL),)

    def test_python_values_lifted_in_place(self):
        term = b.and_(True, b.gt(b.int_var("x"), 0))
        assert term.op == "and"
        assert term.args[0] == Const(True, BOOL)
