"""Tests for ddmin and the script reducer."""

import pytest

from repro.errors import ReductionError
from repro.reduce import Reducer, ddmin, reduce_script
from repro.smtlib.ast import term_size
from repro.smtlib.parser import parse_script


class TestDdmin:
    def test_single_culprit(self):
        items = list(range(20))
        result = ddmin(items, lambda subset: 13 in subset)
        assert result == [13]

    def test_two_culprits(self):
        items = list(range(16))
        result = ddmin(items, lambda s: 3 in s and 12 in s)
        assert sorted(result) == [3, 12]

    def test_all_needed(self):
        items = [1, 2, 3]
        result = ddmin(items, lambda s: len(s) == 3)
        assert result == [1, 2, 3]

    def test_input_must_fail(self):
        with pytest.raises(ValueError):
            ddmin([1, 2], lambda s: False)

    def test_monotone_size_predicate(self):
        items = list(range(30))
        result = ddmin(items, lambda s: sum(s) >= 5)
        assert sum(result) >= 5
        assert len(result) <= 2

    def test_budget_respected(self):
        calls = [0]

        def predicate(subset):
            calls[0] += 1
            return 7 in subset

        ddmin(list(range(64)), predicate, max_tests=10)
        assert calls[0] <= 12  # initial check + budget


class TestReducer:
    def _script(self):
        return parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)(declare-fun s () Bool)"
            "(assert (> x 0))"
            "(assert (and (< y 10) (> (+ x y y) (- 5))))"
            "(assert (or s (not s)))"
            "(assert (= x 7))"
            "(check-sat)"
        )

    def test_reduces_to_culprit_assert(self):
        script = self._script()

        def still_fails(candidate):
            return any("(= x 7)" in str(t) for t in candidate.asserts)

        reduced = reduce_script(script, still_fails)
        assert len(reduced.asserts) == 1
        assert "(= x 7)" in str(reduced.asserts[0])

    def test_unused_declarations_dropped(self):
        script = self._script()

        def still_fails(candidate):
            return any("(= x 7)" in str(t) for t in candidate.asserts)

        reduced = reduce_script(script, still_fails)
        from repro.smtlib.ast import DeclareFun

        declared = [c.name for c in reduced.commands if isinstance(c, DeclareFun)]
        assert declared == ["x"]

    def test_shrinks_inside_terms(self):
        script = parse_script(
            "(declare-fun x () Int)"
            "(assert (and (> x 0) (< (+ x 1 2 3) 100) (= x x)))"
            "(check-sat)"
        )

        def still_fails(candidate):
            return any("(> x 0)" in str(t) for t in candidate.asserts)

        reduced = reduce_script(script, still_fails)
        total = sum(term_size(t) for t in reduced.asserts)
        assert total <= 4

    def test_requires_failing_input(self):
        with pytest.raises(ReductionError):
            reduce_script(self._script(), lambda s: False)

    def test_predicate_exceptions_treated_as_pass(self):
        script = self._script()
        seen_first = []

        def flaky(candidate):
            if not seen_first:
                seen_first.append(True)
                return True  # the initial check
            if len(candidate.asserts) < 2:
                raise RuntimeError("solver crashed during reduction")
            return True

        reduced = Reducer(flaky).reduce(script)
        assert len(reduced.asserts) >= 1

    def test_reduction_with_solver_predicate(self, solver):
        # End-to-end: reduce while preserving unsatisfiability.
        script = parse_script(
            "(declare-fun x () Int)(declare-fun y () Int)"
            "(assert (< y 100))"
            "(assert (> x 0))"
            "(assert (< x 0))"
            "(assert (> (+ x y) (- 50)))"
            "(check-sat)"
        )

        def still_unsat(candidate):
            return str(solver.check_script(candidate).result) == "unsat"

        reduced = reduce_script(script, still_unsat)
        assert len(reduced.asserts) == 2
        assert str(solver.check_script(reduced).result) == "unsat"
