"""Integration tests for Semantic Fusion (Algorithm 2)."""

import random

import pytest

from repro.core.config import FusionConfig
from repro.core.fusion import fuse, fuse_mixed, fuse_scripts, fused_model
from repro.errors import FusionError
from repro.semantics.evaluator import evaluate_script
from repro.semantics.model import Model
from repro.smtlib.ast import DeclareFun
from repro.smtlib.parser import parse_script

SAT_INT_1 = parse_script(
    "(declare-fun x () Int)(assert (> x 0))(assert (> x 1))(check-sat)"
)
SAT_INT_2 = parse_script(
    "(declare-fun y () Int)(assert (< y 0))(assert (< y 1))(check-sat)"
)
UNSAT_INT_1 = parse_script(
    "(declare-fun x () Int)(assert (> x 0))(assert (< x 0))(check-sat)"
)
UNSAT_INT_2 = parse_script(
    "(declare-fun y () Int)(assert (distinct y y))(check-sat)"
)
SAT_STR = parse_script(
    '(declare-fun s () String)(assert (= (str.len s) 2))(check-sat)'
)
SAT_BOOL_ONLY = parse_script(
    "(declare-fun p () Bool)(assert p)(check-sat)"
)


class TestStructure:
    def test_sat_fusion_merges_asserts(self, rng):
        result = fuse("sat", SAT_INT_1, SAT_INT_2, rng)
        assert len(result.script.asserts) == 4

    def test_unsat_fusion_adds_constraints(self, rng):
        result = fuse("unsat", UNSAT_INT_1, UNSAT_INT_2, rng)
        # One disjunction plus three constraints per triplet.
        assert len(result.script.asserts) == 1 + 3 * len(result.triplets)

    def test_fresh_z_declared(self, rng):
        result = fuse("sat", SAT_INT_1, SAT_INT_2, rng)
        declared = {
            c.name for c in result.script.commands if isinstance(c, DeclareFun)
        }
        for triplet in result.triplets:
            assert triplet.z.name in declared

    def test_variable_renaming_on_collision(self, rng):
        clone = parse_script(
            "(declare-fun x () Int)(assert (< x 0))(check-sat)"
        )
        result = fuse("sat", SAT_INT_1, clone, rng)
        assert result.renaming  # x collided
        names = {c.name for c in result.script.commands if isinstance(c, DeclareFun)}
        assert len(names) == len(
            [c for c in result.script.commands if isinstance(c, DeclareFun)]
        )

    def test_no_fusible_pair_raises(self, rng):
        with pytest.raises(FusionError):
            fuse("sat", SAT_BOOL_ONLY, SAT_BOOL_ONLY, rng)

    def test_cross_sort_pairs_not_formed(self, rng):
        # Int-only and String-only seeds share no sort: no pair.
        with pytest.raises(FusionError):
            fuse("sat", SAT_INT_1, SAT_STR, rng)

    def test_bad_oracle_rejected(self, rng):
        with pytest.raises(FusionError):
            fuse("maybe", SAT_INT_1, SAT_INT_2, rng)

    def test_max_pairs_respected(self):
        phi1 = parse_script(
            "(declare-fun a () Int)(declare-fun c () Int)"
            "(assert (> (+ a c) 0))(check-sat)"
        )
        phi2 = parse_script(
            "(declare-fun d () Int)(declare-fun e () Int)"
            "(assert (< (+ d e) 0))(check-sat)"
        )
        result = fuse("sat", phi1, phi2, random.Random(0), FusionConfig(max_pairs=1))
        assert len(result.triplets) == 1

    def test_deterministic_given_seed(self):
        import re

        # Fresh-name counters differ between calls; everything else is
        # determined by the seed.
        normalize = lambda s: re.sub(r"!\d+", "!N", str(s))
        a = fuse_scripts("sat", SAT_INT_1, SAT_INT_2, seed=5)
        c = fuse_scripts("sat", SAT_INT_1, SAT_INT_2, seed=5)
        assert normalize(a) == normalize(c)

    def test_inputs_not_mutated(self, rng):
        before = str(SAT_INT_1)
        fuse("sat", SAT_INT_1, SAT_INT_2, rng)
        assert str(SAT_INT_1) == before


class TestSatPreservation:
    @pytest.mark.parametrize("trial", range(12))
    def test_sat_fusion_preserves_sat(self, trial, solver):
        result = fuse("sat", SAT_INT_1, SAT_INT_2, random.Random(trial))
        verdict = str(solver.check_script(result.script).result)
        assert verdict != "unsat"

    @pytest.mark.parametrize("trial", range(12))
    def test_unsat_fusion_preserves_unsat(self, trial, solver):
        result = fuse("unsat", UNSAT_INT_1, UNSAT_INT_2, random.Random(trial))
        verdict = str(solver.check_script(result.script).result)
        assert verdict != "sat"

    @pytest.mark.parametrize("trial", range(8))
    def test_constructed_model_satisfies_sat_fusion(self, trial):
        result = fuse("sat", SAT_INT_1, SAT_INT_2, random.Random(trial))
        model = fused_model(result, Model({"x": 5}), Model({"y": -3}))
        assert evaluate_script(result.script, model)

    def test_constructed_model_applies_renaming(self):
        clone = parse_script("(declare-fun x () Int)(assert (< x 0))(check-sat)")
        result = fuse("sat", SAT_INT_1, clone, random.Random(1))
        model = fused_model(result, Model({"x": 5}), Model({"x": -3}))
        assert evaluate_script(result.script, model)


class TestPropositionTwoCounterexample:
    def test_dropping_constraints_can_lose_unsatness(self, solver):
        """Section 3.2's counterexample: without the fusion constraints
        the disjunction of substituted unsat formulas can become sat."""
        from repro.smtlib.ast import Assert, Script

        found_sat = False
        for trial in range(30):
            result = fuse("unsat", UNSAT_INT_1, UNSAT_INT_2, random.Random(trial))
            if result.replaced_occurrences == 0:
                continue
            # Strip the fusion constraints, keep only the disjunction.
            stripped = result.script.with_asserts(result.script.asserts[:1])
            verdict = str(solver.check_script(stripped).result)
            if verdict == "sat":
                found_sat = True
                break
        assert found_sat, "some stripped fusion must become satisfiable"


class TestMixedFusion:
    def test_mixed_sat(self, solver, rng):
        result = fuse_mixed(SAT_INT_1, UNSAT_INT_1, "sat", rng)
        assert str(solver.check_script(result.script).result) != "unsat"

    def test_mixed_unsat(self, solver, rng):
        result = fuse_mixed(SAT_INT_1, UNSAT_INT_1, "unsat", rng)
        assert str(solver.check_script(result.script).result) != "sat"

    def test_mixed_rejects_bad_want(self, rng):
        with pytest.raises(FusionError):
            fuse_mixed(SAT_INT_1, UNSAT_INT_1, "perhaps", rng)


class TestMetadata:
    def test_occurrence_accounting(self, rng):
        result = fuse("sat", SAT_INT_1, SAT_INT_2, rng)
        assert 0 <= result.replaced_occurrences <= result.total_occurrences
        assert result.total_occurrences >= 2  # x twice... y twice (per pair)

    def test_schemes_recorded(self, rng):
        result = fuse("sat", SAT_INT_1, SAT_INT_2, rng)
        for triplet in result.triplets:
            assert triplet.scheme.startswith("int-")

    def test_str_gives_smtlib(self, rng):
        result = fuse("sat", SAT_INT_1, SAT_INT_2, rng)
        assert "(check-sat)" in str(result)
