"""Pluggable mutation strategies: the campaign's workload layer.

- :mod:`repro.strategies.base` — the :class:`MutationStrategy`
  protocol, work items, mutants, and oracle-preservation kinds.
- :mod:`repro.strategies.registry` — name-keyed factories; names are
  how strategies cross the CLI, journal, and process-spawn boundaries.
- :mod:`repro.strategies.fusion` — Semantic Fusion (the default) and
  mixed fusion, extracted from the old monolithic loop.
- :mod:`repro.strategies.concatfuzz` — the RQ4 concatenation baseline.
- :mod:`repro.strategies.opfuzz` — type-aware operator mutation under a
  differential oracle (the second workload).
"""

from repro.strategies.base import (
    ORACLE_DIFFERENTIAL,
    ORACLE_PRESERVING,
    Mutant,
    MutationError,
    MutationStrategy,
    WorkItem,
)
from repro.strategies.concatfuzz import ConcatFuzzStrategy
from repro.strategies.fusion import FusionStrategy, MixedFusionStrategy
from repro.strategies.opfuzz import OpFuzzStrategy
from repro.strategies.registry import (
    iter_strategies,
    make_strategy,
    register_strategy,
    strategy_names,
)

register_strategy("fusion", lambda config: FusionStrategy(config))
register_strategy("concatfuzz", lambda config: ConcatFuzzStrategy(config))
register_strategy("opfuzz", lambda config: OpFuzzStrategy(config))

__all__ = [
    "ConcatFuzzStrategy",
    "FusionStrategy",
    "MixedFusionStrategy",
    "Mutant",
    "MutationError",
    "MutationStrategy",
    "OpFuzzStrategy",
    "ORACLE_DIFFERENTIAL",
    "ORACLE_PRESERVING",
    "WorkItem",
    "iter_strategies",
    "make_strategy",
    "register_strategy",
    "strategy_names",
]
