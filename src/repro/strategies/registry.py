"""The strategy registry: names are the cross-boundary identity.

Every layer that must reconstruct a strategy — CLI flags, process-pool
workers on the far side of a spawn, journal resume validation — does so
from the registry name plus the shared
:class:`~repro.core.config.FusionConfig`. Registering a factory here is
all it takes for a new workload to gain the full stack: sharded
execution, crash-safe journaling, resume, telemetry, and the CLI.
"""

from __future__ import annotations

_REGISTRY = {}


def register_strategy(name, factory):
    """Register ``factory(fusion_config) -> MutationStrategy`` under ``name``."""
    if name in _REGISTRY:
        raise ValueError(f"strategy {name!r} is already registered")
    _REGISTRY[name] = factory


def strategy_names():
    """The registered strategy names, sorted."""
    return sorted(_REGISTRY)


def make_strategy(name, fusion_config=None):
    """Instantiate a registered strategy by name.

    ``fusion_config`` is handed to every factory (strategies that do
    not use fusion knobs ignore it), so one picklable
    :class:`~repro.core.config.YinYangConfig` fully determines the
    worker-side strategy.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(strategy_names()) or "none"
        raise ValueError(f"unknown strategy {name!r} (registered: {known})")
    return factory(fusion_config)


def iter_strategies(fusion_config=None):
    """Fresh instances of every registered strategy, in name order."""
    return [make_strategy(name, fusion_config) for name in strategy_names()]
