"""Type-aware operator mutation (OpFuzz-style): the second workload.

Per *On the Unusual Effectiveness of Type-Aware Operator Mutations for
Testing SMT Solvers* (Winterer, Zhang, Su — same authors as Semantic
Fusion): take one seed, pick k operator occurrences, and rewrite each
with a different operator of the same type — ``<=`` for ``<``, ``or``
for ``and``, ``div`` for ``mod`` — so the mutant stays well-sorted by
construction while its semantics shift freely.

The replacement candidates come straight from the typecheck layer:
:func:`repro.smtlib.typecheck.mutation_alternatives` derives the
type-equivalence classes from the operator dispatch table itself (ops
sharing a handler share a signature), and every rewritten node is
rebuilt through the typechecked :func:`repro.smtlib.typecheck.app`, so
a mutant that fails to sort-check cannot be constructed at all — the
well-typedness property tests in ``tests/test_strategies.py`` pin this.

Unlike fusion, operator mutation does **not** preserve satisfiability,
so the expected verdict is established differentially: each mutant is
solved once by a trusted reference solver in its deterministic
configuration (purely step-counted budgets, no wall clock — the same
recipe as ``--deterministic`` campaigns), and that verdict becomes the
oracle the solvers under test are compared against. The reference draws
no randomness, so shard partitions and worker counts still reproduce
bit-for-bit. Mutants the reference cannot decide carry an empty oracle
and are skipped (counted as unknowns).

Occurrences are counted in *tree* preorder (a shared DAG node occurring
twice is two occurrences), skipping quantifier bodies; unmutated
subtrees keep their interned identity, so sharing survives the rewrite.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import MutationError
from repro.observability.telemetry import NULL_TELEMETRY
from repro.smtlib.ast import App, mk_app
from repro.smtlib.typecheck import app as typed_app
from repro.smtlib.typecheck import mutation_alternatives
from repro.solver.result import SolverCrash
from repro.strategies.base import ORACLE_DIFFERENTIAL, Mutant, MutationStrategy


def _mutable_positions(term):
    """Preorder positions of App nodes with at least one type-compatible
    replacement. Position numbering counts *every* App node (mutable or
    not) so the rewrite pass can replay it without knowing the filter;
    quantifier bodies are never entered (binders stay untouched)."""
    positions = []
    counter = 0
    stack = [term]
    while stack:
        node = stack.pop()
        if type(node) is not App:
            continue
        if mutation_alternatives(node.op, len(node.args)):
            positions.append(counter)
        counter += 1
        # Reversed push keeps preorder = leftmost-first, matching the
        # recursive rewrite in _rewrite_term.
        stack.extend(reversed(node.args))
    return positions


def _rewrite_term(term, targets):
    """Rebuild ``term`` with the App at preorder position ``p`` rewritten
    to ``targets[p]``; untouched subtrees are returned by identity."""
    counter = 0

    def rec(node):
        nonlocal counter
        if type(node) is not App:
            return node
        position = counter
        counter += 1
        new_args = tuple(rec(a) for a in node.args)
        new_op = targets.get(position)
        if new_op is not None:
            # The typechecked constructor re-validates sorts: a
            # replacement that does not fit (impossible within a class,
            # but cheap to enforce) fails loudly here, never downstream.
            return typed_app(new_op, *new_args)
        if new_args == node.args:
            return node
        return mk_app(node.op, new_args, node.sort)

    return rec(term)


class OpFuzzStrategy(MutationStrategy):
    """Type-aware operator mutation (OpFuzz): rewrite k operator
    occurrences with same-type replacements; the verdict is established
    differentially by a deterministic reference solve per mutant."""

    name = "opfuzz"
    seeds_per_iteration = 1
    oracle_preservation = ORACLE_DIFFERENTIAL
    mutate_phase = "mutate"

    #: Upper bound on rewritten occurrences per mutant (k is drawn
    #: uniformly from [1, min(max_mutations, candidates)]).
    max_mutations = 2

    def __init__(self, config=None):
        # Accepts (and ignores) a FusionConfig for registry uniformity.
        self.config = config
        self._oracle_solver = None

    def theories(self):
        """Operator mutation needs replacement candidates: only theories
        owning at least one operator in a multi-member type-equivalence
        class (a lone op in its class has nothing to rewrite to)."""
        from repro.smtlib import theory as _theory
        from repro.smtlib.typecheck import operator_equivalence_classes

        mutable = {
            _theory.op_theory(op)
            for ops in operator_equivalence_classes()
            for op in ops
        }
        return tuple(
            t.name for t in _theory.value_theories() if t.name in mutable
        )

    # -- the trusted ground-truth solver ---------------------------------

    def _reference(self):
        """The deterministic reference solver (built lazily, cached).

        Mirrors :func:`repro.campaign.runner.deterministic_solvers`'
        base configuration: wall-clock deadline off, purely step-counted
        budgets — the same verdict on every machine, mode, and worker
        count, which is what keeps the differential oracle shard-safe.
        """
        if self._oracle_solver is None:
            from repro.solver.solver import ReferenceSolver, SolverConfig
            from repro.solver.strings import StringConfig

            config = replace(
                SolverConfig.fast(),
                timeout_seconds=0.0,
                max_rounds=30,
                nonlinear_budget=120,
                strings=StringConfig(
                    max_assignments=600, max_len_per_var=3, max_total_len=6
                ),
            )
            self._oracle_solver = ReferenceSolver(config)
        return self._oracle_solver

    def resolve_oracle(self, script, tel=NULL_TELEMETRY):
        """Ground truth for one mutant: ``"sat"``/``"unsat"``, or ``""``
        when the reference cannot decide (the mutant is then skipped)."""
        with tel.phase("oracle"):
            try:
                outcome = self._reference().check_script(script)
            except SolverCrash:
                return ""
        result = outcome.result
        return str(result) if result.is_definite else ""

    # -- the mutator ------------------------------------------------------

    def mutate(self, rng, work, tel=NULL_TELEMETRY):
        scripts = work.scripts
        with tel.phase("seed_pick"):
            i = rng.randrange(len(scripts))
        seed = scripts[i]
        with tel.phase("mutate"):
            asserts = seed.asserts
            candidates = []  # (assert index, preorder position)
            for ai, term in enumerate(asserts):
                candidates.extend(
                    (ai, position) for position in _mutable_positions(term)
                )
            if not candidates:
                raise MutationError(
                    "no type-compatible operator occurrence to mutate"
                )
            k = rng.randint(1, min(self.max_mutations, len(candidates)))
            chosen = sorted(rng.sample(range(len(candidates)), k))
            per_assert = {}
            labels = []
            for index in chosen:
                ai, position = candidates[index]
                term = asserts[ai]
                # Re-derive the node's op for the label: cheap relative
                # to the rewrite, and keeps candidates position-only.
                old_op = _op_at(term, position)
                new_op = rng.choice(
                    mutation_alternatives(old_op, _arity_at(term, position))
                )
                per_assert.setdefault(ai, {})[position] = new_op
                labels.append(f"{old_op}->{new_op}")
            new_asserts = [
                _rewrite_term(term, per_assert[ai])
                if ai in per_assert
                else term
                for ai, term in enumerate(asserts)
            ]
            script = seed.with_asserts(new_asserts)
        oracle = self.resolve_oracle(script, tel)
        return Mutant(
            script=script,
            oracle=oracle,
            seed_indices=(i, i),
            logic=work.logics[i],
            schemes=tuple(labels),
            strategy=self.name,
        )


def _node_at(term, position):
    """The App node at tree-preorder ``position`` (as _mutable_positions
    numbers them); None when out of range."""
    counter = 0
    stack = [term]
    while stack:
        node = stack.pop()
        if type(node) is not App:
            continue
        if counter == position:
            return node
        counter += 1
        stack.extend(reversed(node.args))
    return None


def _op_at(term, position):
    return _node_at(term, position).op


def _arity_at(term, position):
    return len(_node_at(term, position).args)
