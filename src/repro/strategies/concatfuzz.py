"""ConcatFuzz as a strategy: the RQ4 ablation baseline on the pipeline.

Step (1) of Semantic Fusion only — conjunction for satisfiable seeds,
disjunction for unsatisfiable ones, no variable fusion or inversion.
Running it through the same pipeline as fusion is exactly the paper's
RQ4 setup: identical loop, identical oracle discipline, the mutator is
the only variable. Seed selection draws the same two indices fusion
would, so a ConcatFuzz campaign visits the same seed pairs as a fusion
campaign at the same seed — the controlled comparison RQ4 wants.
"""

from __future__ import annotations

from repro.core.concatfuzz import concat_scripts
from repro.observability.telemetry import NULL_TELEMETRY
from repro.strategies.base import ORACLE_PRESERVING, Mutant, MutationStrategy


class ConcatFuzzStrategy(MutationStrategy):
    """ConcatFuzz (paper RQ4): concatenate same-label seed pairs
    without variable fusion; satisfiability is trivially preserved."""

    name = "concatfuzz"
    seeds_per_iteration = 2
    oracle_preservation = ORACLE_PRESERVING
    mutate_phase = "concat"

    def __init__(self, config=None):
        # Accepts (and ignores) a FusionConfig so the registry can hand
        # every strategy the same construction arguments.
        self.config = config

    def mutate(self, rng, work, tel=NULL_TELEMETRY):
        scripts = work.scripts
        with tel.phase("seed_pick"):
            i = rng.randrange(len(scripts))
            j = rng.randrange(len(scripts))
        with tel.phase("concat"):
            script = concat_scripts(work.oracle, scripts[i], scripts[j])
        return Mutant(
            script=script,
            oracle=work.oracle,
            seed_indices=(i, j),
            logic=work.logics[i] or work.logics[j],
            schemes=("concat",),
            strategy=self.name,
        )
