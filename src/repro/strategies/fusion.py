"""Semantic Fusion as a pluggable strategy (the default workload).

This is the paper's Algorithm 1 body, extracted verbatim from the old
``YinYang._one_iteration``: draw two seed indices, fuse the pair, hand
back the fused script under the seeds' shared label. The extraction is
draw-for-draw identical to the pre-pipeline loop — two ``randrange``
calls inside the ``seed_pick`` span, then :func:`repro.core.fusion.fuse`
consuming the same ``rng`` inside the ``fuse`` span — which is what
keeps campaign journals byte-for-byte identical to pre-refactor builds
(enforced by the golden-diff tests in ``tests/test_strategies.py``).

:class:`MixedFusionStrategy` is Section 3.2's mixed mode on the same
interface: one satisfiable and one unsatisfiable seed per iteration,
with ``want`` selecting which label the fusion preserves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FusionConfig
from repro.core.fusion import fuse, fuse_mixed
from repro.observability.telemetry import NULL_TELEMETRY
from repro.strategies.base import (
    ORACLE_PRESERVING,
    Mutant,
    MutationStrategy,
    WorkItem,
)


class FusionStrategy(MutationStrategy):
    """Semantic Fusion (PLDI 2020): fuse same-label seed pairs via
    variable fusion and inversion substitution; satisfiability is
    preserved by construction (Propositions 1 and 2)."""

    name = "fusion"
    seeds_per_iteration = 2
    oracle_preservation = ORACLE_PRESERVING
    mutate_phase = "fuse"

    def __init__(self, config=None):
        self.config = config or FusionConfig()

    def theories(self):
        """Fusion needs fusion schemes: only theories that registered
        Figure 6 fusion-function families participate."""
        from repro.smtlib import theory as _theory

        return tuple(
            t.name for t in _theory.value_theories() if t.fusion_schemes
        )

    def mutate(self, rng, work, tel=NULL_TELEMETRY):
        scripts = work.scripts
        with tel.phase("seed_pick"):
            i = rng.randrange(len(scripts))
            j = rng.randrange(len(scripts))
        with tel.phase("fuse"):
            result = fuse(work.oracle, scripts[i], scripts[j], rng, self.config)
        return Mutant(
            script=result.script,
            oracle=result.oracle,
            seed_indices=(i, j),
            logic=work.logics[i] or work.logics[j],
            schemes=tuple(t.scheme for t in result.triplets),
            strategy=self.name,
        )

    # -- fusion-specific surface (single-shot helpers) -------------------

    def fuse_pair(self, oracle, phi1, phi2, rng):
        """Fuse one explicit pair, returning the full
        :class:`~repro.core.fusion.FusionResult` (triplets, renaming,
        occurrence counts) — the strategy-interface home of what used
        to be ``YinYang.fuse_once`` reaching into fusion internals."""
        return fuse(oracle, phi1, phi2, rng, self.config)


@dataclass
class MixedWorkItem(WorkItem):
    """Mixed fusion's work item: both seed pools, kept separate."""

    unsat_scripts: list = None


class MixedFusionStrategy(MutationStrategy):
    """Mixed fusion (paper Section 3.2): one satisfiable and one
    unsatisfiable seed per iteration; ``want`` selects whether the
    fused formula is satisfiable (disjunction) or unsatisfiable
    (conjunction plus fusion constraints)."""

    name = "fusion-mixed"
    seeds_per_iteration = 2
    oracle_preservation = ORACLE_PRESERVING
    mutate_phase = "fuse"

    def __init__(self, want, config=None):
        if want not in ("sat", "unsat"):
            raise ValueError(f"want must be 'sat' or 'unsat', got {want!r}")
        self.want = want
        self.config = config or FusionConfig()

    theories = FusionStrategy.theories

    def prepare_pools(self, sat_scripts, unsat_scripts):
        """The mixed-mode work item (two pools instead of one)."""
        return MixedWorkItem(
            oracle=self.want,
            scripts=sat_scripts,
            logics=[""] * len(sat_scripts),
            unsat_scripts=unsat_scripts,
        )

    def mutate(self, rng, work, tel=NULL_TELEMETRY):
        phi_sat = work.scripts[rng.randrange(len(work.scripts))]
        phi_unsat = work.unsat_scripts[rng.randrange(len(work.unsat_scripts))]
        with tel.phase("fuse"):
            result = fuse_mixed(phi_sat, phi_unsat, self.want, rng, self.config)
        return Mutant(
            script=result.script,
            oracle=result.oracle,
            seed_indices=(0, 0),
            logic="",
            schemes=tuple(t.scheme for t in result.triplets),
            strategy=self.name,
        )
