"""The mutation-strategy protocol: what a campaign workload must provide.

Semantic Fusion, ConcatFuzz and OpFuzz-style operator mutation are all
the same loop — *draw seeds, mutate, ask a solver, compare against an
oracle* — differing only in the mutator and in how the expected answer
is known. A :class:`MutationStrategy` captures exactly that difference,
so the campaign core (:mod:`repro.core.yinyang`), the process pool
(:mod:`repro.core.parallel`), the journal and the telemetry stack drive
any workload without knowing which one it is.

The contract every strategy must keep, because every layer above relies
on it:

- **Determinism**: :meth:`MutationStrategy.mutate` draws randomness
  *only* from the ``rng`` it is handed (the per-iteration RNG seeded by
  ``(campaign seed, iteration index)``) and runs inside the caller's
  ``fresh_scope()``. A mutant is then a pure function of
  ``(strategy, seed corpus, campaign seed, index)`` — which is what
  makes shard partitions, resume, and worker counts invisible to the
  oracle.
- **Picklability by name**: strategies cross the spawn boundary as
  their registry name plus the shared
  :class:`~repro.core.config.YinYangConfig`; live instances (which may
  hold solver handles or caches) never travel.
- **Telemetry is observational**: the ``tel`` handed to ``mutate`` may
  time phases and bump counters but must never feed back into the
  mutation (it defaults to the null telemetry).

Oracle-preservation kinds:

- :data:`ORACLE_PRESERVING` — the mutant provably keeps the seeds'
  satisfiability label (fusion's Propositions 1/2, concatenation), so
  the expected answer is the cell's oracle, free of charge.
- :data:`ORACLE_DIFFERENTIAL` — the mutation does not preserve
  satisfiability (operator mutation), so the strategy must establish
  ground truth per mutant (here: a trusted, deterministically
  configured reference solve). A mutant whose truth cannot be
  established carries an empty ``oracle`` and is skipped, counted as an
  unknown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MutationError
from repro.observability.telemetry import NULL_TELEMETRY

ORACLE_PRESERVING = "oracle-preserving"
ORACLE_DIFFERENTIAL = "differential"


@dataclass
class WorkItem:
    """One prepared cell: the seed pool a strategy mutates from.

    Built once per cell/shard by :meth:`MutationStrategy.prepare`;
    strategies may subclass or wrap it to stash precomputed views, but
    must keep whatever they add derivable from the seeds (no hidden
    RNG, no mutable cross-iteration state).
    """

    oracle: str  # the cell's seed label ("sat" | "unsat"), "" if none
    scripts: list
    logics: list


@dataclass
class Mutant:
    """One mutated script plus the provenance the report layer records."""

    script: object  # Script
    oracle: str  # expected verdict; "" = ground truth unknown, skip checks
    seed_indices: tuple = (0, 0)
    logic: str = ""
    schemes: tuple = ()  # per-mutation labels (fusion schemes, op rewrites)
    strategy: str = "fusion"  # the registry name, journaled per record
    # Optional triage hint: precomputed
    # :class:`~repro.campaign.triage.DifficultyFeatures` a strategy may
    # stamp when it already walked the script (must equal
    # ``script_features(script)`` — triage falls back to computing that
    # when the hint is absent, so the hint is a cache, never an input).
    difficulty: object = None


class MutationStrategy:
    """Base class / protocol for campaign workloads.

    Subclasses override the three methods and the class metadata:

    - ``name`` — the registry identity (CLI ``--strategy``, journal
      meta, per-record provenance);
    - ``seeds_per_iteration`` — how many seeds one mutant consumes
      (informational: the strategy draws its own indices from ``rng``);
    - ``oracle_preservation`` — :data:`ORACLE_PRESERVING` or
      :data:`ORACLE_DIFFERENTIAL` (see the module docstring);
    - ``mutate_phase`` — the telemetry span name of the mutation step.
    """

    name = "abstract"
    seeds_per_iteration = 1
    oracle_preservation = ORACLE_PRESERVING
    mutate_phase = "mutate"

    def prepare(self, oracle, scripts, logics):
        """Build the per-cell work item (called once per cell/shard)."""
        return WorkItem(oracle=oracle, scripts=scripts, logics=logics)

    def mutate(self, rng, work, tel=NULL_TELEMETRY):
        """Produce one :class:`Mutant` from ``work`` using ``rng``.

        Must raise :class:`~repro.errors.MutationError` when no mutant
        can be built for this draw; draws randomness only from ``rng``.
        """
        raise NotImplementedError

    def expected_oracle(self, work):
        """The expected verdict for mutants of ``work``.

        Oracle-preserving strategies return the cell's label;
        differential strategies return ``""`` here and stamp each
        mutant with the ground truth they established for it.
        """
        if self.oracle_preservation == ORACLE_PRESERVING:
            return work.oracle
        return ""

    def theories(self):
        """Names of the registered theories this strategy can mutate
        over. The default — every value theory — fits structural
        strategies (concatenation works over any vocabulary); strategies
        with theory-specific machinery override it with a registry
        query (fusion needs fusion schemes, opfuzz needs multi-member
        operator equivalence classes)."""
        from repro.smtlib import theory as _theory

        return tuple(t.name for t in _theory.value_theories())

    def logics(self):
        """The SMT-LIB logics covered by :meth:`theories`, in theory
        registration order."""
        from repro.smtlib import theory as _theory

        out = []
        for name in self.theories():
            for logic in _theory.theory(name).logics:
                if logic not in out:
                    out.append(logic)
        return tuple(out)

    def describe(self):
        """One registry row: (name, seeds/iter, oracle kind, theories,
        summary)."""
        doc = (self.__doc__ or "").strip().splitlines()
        summary = doc[0].rstrip(".") if doc else ""
        return (
            self.name,
            self.seeds_per_iteration,
            self.oracle_preservation,
            "/".join(self.theories()),
            summary,
        )


__all__ = [
    "Mutant",
    "MutationError",
    "MutationStrategy",
    "ORACLE_DIFFERENTIAL",
    "ORACLE_PRESERVING",
    "WorkItem",
]
