"""The fault model: structural triggers and solver-level effects.

A :class:`Fault` is a simulated solver defect. Its *trigger* is a
structural predicate over the formula (logic family plus a syntactic
pattern); its *effect* determines what the buggy solver does when the
trigger fires:

- ``"answer"`` — a broken fast path returns a fixed (wrong for one
  oracle) verdict without solving;
- ``"rewrite"`` — an unsound simplification rewrites the formula before
  the real solver runs (e.g. the ``str.to.int ""`` corner of the
  paper's Figure 13b);
- ``"crash"`` — an internal assertion fires (segfault / internal
  error);
- ``"slow"`` — a pathological code path burns time;
- ``"unknown"`` — the solver gives up with an internal error note.

Triggers key on the patterns Semantic Fusion introduces — inversion
terms like ``(div z y)`` with a variable divisor, ``str.substr`` guided
by ``str.len``, nested ``str.replace``, products of variables inside
fusion constraints — which is exactly why fusion finds these bugs and
plain concatenation (RQ4's ConcatFuzz) mostly does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.smtlib.ast import App, Const, Quantifier, Var
from repro.smtlib.bitvec import EXTRACT_PREFIX, BV_OPS
from repro.smtlib.sorts import INT, REAL, STRING, is_bitvec

# ---------------------------------------------------------------------------
# Formula analysis
# ---------------------------------------------------------------------------


@dataclass
class FormulaInfo:
    """Structural summary of a script, used by fault triggers."""

    logic_family: str
    patterns: set = field(default_factory=set)
    num_asserts: int = 0
    num_vars: int = 0
    ops: set = field(default_factory=set)

    def has(self, pattern):
        return pattern in self.patterns


def _is_constant(term):
    return isinstance(term, Const)


def analyze_script(script):
    """Compute the :class:`FormulaInfo` for a script."""
    patterns = set()
    ops = set()
    sorts = set()
    quantified = False
    nonlinear = False
    var_names = set()

    asserts = script.asserts
    for term in asserts:
        for node in term.walk():
            if isinstance(node, Var):
                sorts.add(node.sort)
                var_names.add(node.name)
            elif isinstance(node, Quantifier):
                quantified = True
            elif isinstance(node, App):
                ops.add(node.op)
                _collect_patterns(node, patterns)
                if node.op in ("*", "bvmul") and sum(
                    0 if _is_constant(a) else 1 for a in node.args
                ) >= 2:
                    nonlinear = True
                if node.op in ("/", "div", "mod") and not _is_constant(node.args[-1]):
                    nonlinear = True

    if len(asserts) >= 4:
        patterns.add("many-asserts")
    if STRING in sorts and INT in sorts:
        patterns.add("string-int-mix")
    if {INT, REAL} & sorts and (STRING in sorts):
        patterns.add("cross-theory")

    logic_family = _infer_logic(sorts, ops, quantified, nonlinear)
    return FormulaInfo(
        logic_family=logic_family,
        patterns=patterns,
        num_asserts=len(asserts),
        num_vars=len(var_names),
        ops=ops,
    )


def _collect_patterns(node, patterns):
    op = node.op
    if op in ("div", "/") and not _is_constant(node.args[-1]):
        patterns.add("var-divisor")
        first = node.args[0]
        if isinstance(first, App) and first.op == "-" and any(
            isinstance(a, App) and a.op == "*" for a in first.args
        ):
            patterns.add("affine-inversion")
    if op == "mod" and not _is_constant(node.args[-1]):
        patterns.add("var-divisor")
    if op == "*" and sum(0 if _is_constant(a) else 1 for a in node.args) >= 2:
        patterns.add("var-product")
    if op == "=":
        for a, b in ((node.args[0], node.args[-1]), (node.args[-1], node.args[0])):
            if isinstance(a, Var) and isinstance(b, App) and b.op == "*":
                patterns.add("fusion-constraint")
            if isinstance(a, Var) and isinstance(b, App) and b.op == "str.++":
                patterns.add("concat-definition")
    if op == "str.substr":
        if any(isinstance(a, App) and a.op == "str.len" for a in node.args[1:]):
            patterns.add("substr-by-len")
    if op == "str.replace":
        if any(isinstance(a, App) and a.op == "str.replace" for a in node.args):
            patterns.add("nested-replace")
        if isinstance(node.args[2], Const) and node.args[2].value == "":
            patterns.add("replace-with-empty")
        if isinstance(node.args[1], Var):
            patterns.add("replace-var-pattern")
    if op == "str.to.int":
        inner = node.args[0]
        if isinstance(inner, App):
            patterns.add("to-int-of-term")
    if op == "str.at":
        if isinstance(node.args[1], App):
            patterns.add("at-computed-index")
    if op == "str.indexof":
        patterns.add("indexof")
    if op == "str.in.re":
        patterns.add("regex")
    if op == "ite":
        if any(isinstance(a, App) and a.op in ("/", "div") for a in node.args[0].walk() if isinstance(a, App)):
            patterns.add("ite-on-division")
    if op == "or":
        if all(isinstance(a, App) and a.op in ("and", "not") for a in node.args):
            patterns.add("or-of-ands")
    if op in ("<", "<=", ">", ">="):
        if any(isinstance(a, App) and a.op in ("/", "div") for a in node.args):
            patterns.add("compare-division")
    # --- bit-vectors -------------------------------------------------------
    if op == "bvmul" and sum(0 if _is_constant(a) else 1 for a in node.args) >= 2:
        patterns.add("bv-product")
    if op in ("bvshl", "bvlshr") and not _is_constant(node.args[-1]):
        patterns.add("bv-shift-var")
    if op in ("bvneg", "bvnot"):
        patterns.add("bv-negation")
    if op in ("bvand", "bvor", "bvxor"):
        patterns.add("bv-bitwise")
    if op in ("bvult", "bvule"):
        patterns.add("bv-compare")
    if op == "concat":
        patterns.add("bv-concat")
    if op.startswith(EXTRACT_PREFIX):
        patterns.add("bv-extract")
    if op == "=":
        for a, b in ((node.args[0], node.args[-1]), (node.args[-1], node.args[0])):
            if (
                isinstance(a, Var)
                and isinstance(b, App)
                and b.op in ("bvadd", "bvsub", "bvxor")
            ):
                patterns.add("bv-fusion-constraint")


def _infer_logic(sorts, ops, quantified, nonlinear):
    """Classify a formula into the paper's logic families (Figure 8c).

    A string formula counts as QF_SLIA when it has free *integer
    variables* (pure ``str.len`` facts keep it in QF_S, matching how
    the paper's benchmark suites are split).
    """
    has_bv = any(is_bitvec(s) for s in sorts) or any(
        op in BV_OPS or op.startswith(EXTRACT_PREFIX) for op in ops
    )
    if has_bv:
        return "QF_BV"
    has_strings = STRING in sorts or any(op.startswith(("str.", "re.")) for op in ops)
    if has_strings:
        if INT in sorts:
            return "QF_SLIA"
        return "QF_S"
    real = REAL in sorts
    if quantified:
        if nonlinear:
            return "NRA" if real else "NIA"
        return "LRA" if real else "LIA"
    if nonlinear:
        return "QF_NRA" if real else "QF_NIA"
    return "QF_LRA" if real else "QF_LIA"


ALL_PATTERNS = (
    "var-divisor",
    "affine-inversion",
    "var-product",
    "fusion-constraint",
    "concat-definition",
    "substr-by-len",
    "nested-replace",
    "replace-with-empty",
    "replace-var-pattern",
    "to-int-of-term",
    "at-computed-index",
    "indexof",
    "regex",
    "ite-on-division",
    "or-of-ands",
    "compare-division",
    "many-asserts",
    "string-int-mix",
    "cross-theory",
    "bv-product",
    "bv-shift-var",
    "bv-negation",
    "bv-bitwise",
    "bv-compare",
    "bv-concat",
    "bv-extract",
    "bv-fusion-constraint",
)


# ---------------------------------------------------------------------------
# Faults
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fault:
    """One simulated solver defect.

    ``status`` ∈ {fixed, confirmed, duplicate, wontfix, pending} models
    the lifecycle of Figure 8a; ``duplicate_of`` names the root fault.
    ``affected_releases`` is the set of release tags the bug is present
    in (always including "trunk" — the campaign tests trunk).
    """

    fault_id: str
    solver: str  # "z3-like" | "cvc4-like"
    kind: str  # soundness | crash | performance | unknown
    logic: str  # NRA / NIA / QF_NRA / QF_NIA / QF_S / QF_SLIA / ...
    pattern: str  # entry of ALL_PATTERNS
    effect: str  # answer | rewrite | crash | slow | unknown
    wrong_answer: str = "sat"  # for "answer" effects
    status: str = "fixed"
    duplicate_of: str = ""
    affected_releases: tuple = ("trunk",)
    description: str = ""
    salt: int = 0
    modulus: int = 1  # trigger fires when (num_vars + salt) % modulus == 0

    def triggers_on(self, info):
        """True if this fault fires on a formula with ``info``.

        ``pattern`` supports a small combination language mirroring how
        real bugs need several code paths to interact: ``a&b`` requires
        both patterns, ``a|b`` accepts either; ``&`` binds looser than
        ``|`` (so ``a&b|c`` means ``a and (b or c)``).
        """
        if info.logic_family != self.logic:
            return False
        for conjunct in self.pattern.split("&"):
            if not any(info.has(p) for p in conjunct.split("|")):
                return False
        if self.modulus > 1 and (info.num_vars + self.salt) % self.modulus != 0:
            return False
        return True
