"""A solver wrapper that injects catalog faults: the buggy Z3/CVC4 stand-in.

``FaultySolver`` behaves exactly like its base solver until a fault's
trigger fires on the input formula; then it misbehaves according to the
fault's effect. A ``release`` tag selects which faults are live,
simulating historical builds for the Figure 10 study.
"""

from __future__ import annotations

import threading
import time

from repro.coverage.probes import (
    declare_module_probes,
    function_probe,
    line_probe,
)
from repro.faults.fault import analyze_script
from repro.semantics.values import default_value
from repro.smtlib.ast import App, Var, mk_app, mk_const
from repro.smtlib.sorts import INT, STRING
from repro.smtlib.typecheck import app as mk
from repro.solver.result import CheckOutcome, SolverCrash, SolverResult

_CRASH_MESSAGES = {
    "z3-like": (
        "Failed to verify: m_util.is_numeral(rhs, _k)\n"
        "[2] 25133 segmentation fault (core dumped)"
    ),
    "cvc4-like": (
        "Fatal failure within CVC4::theory::TheoryEngine::check()\n"
        "Internal error detected; aborting"
    ),
}


class FaultySolver:
    """The base solver plus a catalog of injected defects."""

    def __init__(self, base_solver, faults, name, release="trunk", slow_seconds=0.4):
        self.base = base_solver
        self.name = name
        self.release = release
        self.slow_seconds = slow_seconds
        self.faults = [
            f for f in faults if release in f.affected_releases
        ]
        # Per-thread, so YinYang.test(threads=N) workers sharing this
        # solver don't race each other's trigger lists.
        self._local = threading.local()

    @property
    def last_triggered(self):
        """Faults triggered by the calling thread's most recent check."""
        return getattr(self._local, "last_triggered", [])

    def active_faults(self):
        return list(self.faults)

    def triggered_faults(self, script):
        """The faults whose triggers fire on ``script`` (in catalog order)."""
        info = analyze_script(script)
        return [f for f in self.faults if f.triggers_on(info)]

    def check_script(self, script, directive=None, session=None):
        """Check a script, subject to the injected faults."""
        function_probe("faulty.check")
        triggered = self.triggered_faults(script)
        self._local.last_triggered = triggered
        if len(triggered) > 1:
            # Which buggy code path wins depends on the formula (as it
            # would in a real solver); rotate deterministically so no
            # fault permanently shadows another across a campaign.
            offset = (
                len(script.asserts)
                + sum(len(v.name) for v in script.free_variables())
            ) % len(triggered)
            triggered = triggered[offset:] + triggered[:offset]

        working = script
        slow_ids = []
        for fault in triggered:
            if fault.effect == "crash":
                line_probe("faulty.crash")
                crash = SolverCrash(
                    _CRASH_MESSAGES.get(self.name, "internal error"),
                    kind="segfault",
                )
                crash.fault_id = fault.fault_id
                raise crash
            if fault.effect == "answer":
                line_probe("faulty.answer")
                outcome = CheckOutcome(
                    SolverResult.from_string(fault.wrong_answer),
                    reason=f"fault:{fault.fault_id}",
                )
                outcome.stats["triggered"] = [fault.fault_id]
                if fault.wrong_answer == "sat":
                    outcome.model = _bogus_model(script)
                return outcome
            if fault.effect == "rewrite":
                line_probe("faulty.rewrite")
                working = _apply_rewrite(fault.fault_id, working)
            if fault.effect == "slow":
                slow_ids.append(fault.fault_id)
            if fault.effect == "unknown":
                line_probe("faulty.unknown")
                outcome = CheckOutcome(
                    SolverResult.UNKNOWN,
                    reason=f"error: rewriter failed to converge ({fault.fault_id})",
                )
                outcome.stats["triggered"] = [fault.fault_id]
                return outcome

        if slow_ids:
            line_probe("faulty.slow")
            time.sleep(self.slow_seconds)
        if session is not None:
            outcome = self.base.check_script(
                working, directive=directive, session=session
            )
        elif directive is None:
            outcome = self.base.check_script(working)
        else:
            outcome = self.base.check_script(working, directive=directive)
        outcome.stats["triggered"] = [f.fault_id for f in triggered]
        if slow_ids:
            outcome.stats["slow_faults"] = slow_ids
        rewrites = [f.fault_id for f in triggered if f.effect == "rewrite"]
        if rewrites:
            outcome.stats["rewrite_faults"] = rewrites
            if not outcome.reason:
                outcome.reason = "fault:" + rewrites[0]
        return outcome

    def check(self, source):
        from repro.smtlib.parser import parse_script

        script = parse_script(source) if isinstance(source, str) else source
        return self.check_script(script)

    def check_result(self, source):
        return self.check(source).result


def _bogus_model(script):
    """A default-valued 'model' for a bogus sat answer (incorrect, like
    the wrong models the paper shows solvers printing)."""
    from repro.semantics.model import Model

    model = Model()
    for var in script.free_variables():
        model[var.name] = default_value(var.sort)
    return model


# ---------------------------------------------------------------------------
# Demo rewrite effects (realistic root causes)
# ---------------------------------------------------------------------------


def _rewrite_toint_empty(term):
    """Unsound: treat ``str.to.int ""`` as 0 (Figure 13b's root cause)."""
    if isinstance(term, App):
        args = tuple(_rewrite_toint_empty(a) for a in term.args)
        term = mk_app(term.op, args, term.sort)
        if term.op == "str.to.int":
            inner = term.args[0]
            is_empty = mk("=", inner, mk_const("", STRING))
            return mk("ite", is_empty, mk_const(0, INT), term)
    return term


def _rewrite_replace_var(term):
    """Unsound: ``str.replace s pat rep`` with a variable pattern is
    simplified to ``s`` (assumes the pattern never occurs)."""
    if isinstance(term, App):
        args = tuple(_rewrite_replace_var(a) for a in term.args)
        term = mk_app(term.op, args, term.sort)
        if term.op == "str.replace" and isinstance(term.args[1], Var):
            return term.args[0]
    return term


def _rewrite_bv_negnot(term):
    """Unsound: ``bvneg x`` is folded to ``bvnot x`` — the classic
    two's-complement rewrite bug that forgets the ``+1``."""
    if isinstance(term, App):
        args = tuple(_rewrite_bv_negnot(a) for a in term.args)
        term = mk_app(term.op, args, term.sort)
        if term.op == "bvneg":
            return mk("bvnot", term.args[0])
    return term


def _rewrite_bv_ult_ule(term):
    """Unsound: ``bvult`` is weakened to ``bvule`` (strictness lost in
    a comparator simplification)."""
    if isinstance(term, App):
        args = tuple(_rewrite_bv_ult_ule(a) for a in term.args)
        term = mk_app(term.op, args, term.sort)
        if term.op == "bvult":
            return mk("bvule", term.args[0], term.args[1])
    return term


_REWRITES = {
    "demo-toint-empty": _rewrite_toint_empty,
    "demo-replace-var": _rewrite_replace_var,
    "z3-bv-negnot": _rewrite_bv_negnot,
    "cvc4-bv-ult-ule": _rewrite_bv_ult_ule,
}


def _apply_rewrite(fault_id, script):
    rewrite = _REWRITES.get(fault_id)
    if rewrite is None:
        return script
    return script.with_asserts([rewrite(t) for t in script.asserts])


declare_module_probes(__file__)
