"""Fault-injected solver variants: the stand-in for buggy Z3/CVC4 builds.

- :mod:`repro.faults.fault` — the fault model (structural triggers +
  effects) and the formula-analysis pattern library.
- :mod:`repro.faults.catalog` — the "z3-like" and "cvc4-like" fault
  catalogs, shaped after the paper's Figure 8.
- :mod:`repro.faults.faulty_solver` — a solver wrapper that applies a
  catalog's faults.
- :mod:`repro.faults.releases` — simulated release histories (Figure 10).
- :mod:`repro.faults.tracker` — the historic issue-tracker survey data
  (Figure 9).
"""

from repro.faults.fault import Fault, FormulaInfo, analyze_script
from repro.faults.catalog import cvc4_like_catalog, z3_like_catalog
from repro.faults.faulty_solver import FaultySolver

__all__ = [
    "Fault",
    "FormulaInfo",
    "analyze_script",
    "z3_like_catalog",
    "cvc4_like_catalog",
    "FaultySolver",
]
