"""Historic issue-tracker survey data (the paper's Figure 9 and RQ2).

Figure 9 plots soundness bugs per year from the GitHub issue trackers:
Z3 from April 2015 (146 total through October 2019), CVC4 from July
2010 (42 total). The Z3 bars are legible in our copy of the paper
(15, 18, 22, 28, 63 for 2015-2019 — they sum to the stated 146). The
CVC4 bars are partially garbled by OCR; the reconstruction below keeps
every legible bar (2, 9, 1, 9, 3, 1, ..., 2, 13) and fills the two
illegible middle years so the total matches the authoritative 42.
EXPERIMENTS.md records this as a known transcription caveat.
"""

from __future__ import annotations

Z3_SOUNDNESS_PER_YEAR = {
    2015: 15,
    2016: 18,
    2017: 22,
    2018: 28,
    2019: 63,
}

CVC4_SOUNDNESS_PER_YEAR = {
    2010: 2,
    2011: 9,
    2012: 1,
    2013: 9,
    2014: 3,
    2015: 1,
    2016: 1,  # reconstructed (OCR-illegible)
    2017: 1,  # reconstructed (OCR-illegible)
    2018: 2,
    2019: 13,
}

Z3_TOTAL_SOUNDNESS = 146
CVC4_TOTAL_SOUNDNESS = 42

# RQ2 shares the paper reports.
PAPER_Z3_FOUND_SHARE = (24, 146)  # "24 out of 146 (16%)"
PAPER_CVC4_FOUND_SHARE = (5, 43)  # "5 soundness bugs out of 43 (11%)" —
# the prose says both 42 and 43; we keep both numbers and flag it.

# Nonlinear / string breakdowns from RQ2's text.
PAPER_Z3_NONLINEAR_SHARE = (18, 25)  # "18 out of the 25 soundness bugs in
# non-linear logics in Z3 since 2015"
PAPER_Z3_STRING_SHARE = (15, 53)  # "15 out of the 53 soundness bugs in its
# string logic"


def found_share(found_faults, solver_name):
    """(found, historical_total) for the RQ2 percentage."""
    found = sum(
        1
        for f in found_faults
        if f.solver == solver_name
        and f.kind == "soundness"
        and f.status in ("fixed", "confirmed")
    )
    total = Z3_TOTAL_SOUNDNESS if solver_name == "z3-like" else CVC4_TOTAL_SOUNDNESS
    return found, total


def per_year_rows(solver_name):
    data = (
        Z3_SOUNDNESS_PER_YEAR if solver_name == "z3-like" else CVC4_SOUNDNESS_PER_YEAR
    )
    return sorted(data.items())
