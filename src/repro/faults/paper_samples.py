"""The paper's Figure 13: six reduced bug-triggering formulas, verbatim.

Each sample records the solver the paper blamed, the bug kind, the
logic, and the ground-truth satisfiability. Our transcriptions parse
with this package's frontend, and the corresponding catalog faults
(``figure-13a`` ... ``figure-13f`` in their descriptions) trigger on
exactly these formulas.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperSample:
    figure: str
    solver: str  # which simulated solver exhibits the bug
    kind: str  # soundness | crash
    logic: str
    oracle: str  # ground truth satisfiability ("unsat" for all soundness samples)
    issue: str  # the paper's issue-tracker URL
    smt2: str


FIGURE_13 = (
    PaperSample(
        figure="13a",
        solver="z3-like",
        kind="soundness",
        logic="QF_S",
        oracle="unsat",
        issue="https://github.com/Z3Prover/z3/issues/2618",
        smt2="""
(declare-fun a () String)
(declare-fun b () String)
(declare-fun c () String)
(assert
  (and
    (str.in.re c (re.* (str.to.re "aa")))
    (= 0 (str.to.int (str.replace a b (str.at a (str.len a)))))))
(assert (= a (str.++ b c)))
(check-sat)
""",
    ),
    PaperSample(
        figure="13b",
        solver="cvc4-like",
        kind="soundness",
        logic="QF_S",
        oracle="unsat",
        issue="https://github.com/CVC4/CVC4/issues/3357",
        smt2="""
(declare-const a String)
(declare-const b String)
(declare-const c String)
(declare-const d String)
(declare-const e String)
(declare-const f String)
(assert (or
  (and (= c (str.++ e d))
       (str.in.re e (re.* (str.to.re "aaa")))
       (> 0 (str.to.int d))
       (= 1 (str.len e))
       (= 2 (str.len c)))
  (and (str.in.re f (re.* (str.to.re "aa")))
       (= 0 (str.to.int (str.replace (str.replace a b "") "a" ""))))))
(assert (= a (str.++ (str.++ b "a") f)))
(check-sat)
""",
    ),
    PaperSample(
        figure="13c",
        solver="z3-like",
        kind="soundness",
        logic="QF_NRA",
        oracle="unsat",
        issue="https://github.com/Z3Prover/z3/issues/2391",
        smt2="""
(declare-fun a () Real)
(declare-fun b () Real)
(declare-fun c () Real)
(declare-fun d () Real)
(declare-fun e () Real)
(declare-fun f () Real)
(assert
  (and
    (> 0 (- d f))
    (= d (ite (>= (/ a c) f) (+ b f) f))
    (> 0 (/ a (/ c e)))
    (or (= e 1.0) (= e 2.0))
    (> d 0) (= c 0)))
(check-sat)
""",
    ),
    PaperSample(
        figure="13d",
        solver="cvc4-like",
        kind="soundness",
        logic="QF_SLIA",
        oracle="unsat",
        issue="https://github.com/CVC4/CVC4/issues/3203",
        smt2="""
(declare-fun a () String)
(declare-fun b () String)
(declare-fun d () String)
(declare-fun e () String)
(declare-fun f () Int)
(declare-fun g () String)
(declare-fun h () String)
(assert (or
  (not (= (str.replace "B" (str.at "A" f) "") "B"))
  (not (= (str.replace "B" (str.replace "B" g "") "")
          (str.at (str.replace (str.replace a d "") "C" "")
                  (str.indexof "B"
                               (str.replace (str.replace a d "") "C" "")
                               0))))))
(assert (= a (str.++ (str.++ d "C") g)))
(assert (= b (str.++ e g)))
(check-sat)
""",
    ),
    PaperSample(
        figure="13e",
        solver="z3-like",
        kind="soundness",
        logic="QF_S",
        oracle="unsat",
        issue="https://github.com/Z3Prover/z3/issues/2513",
        smt2="""
(declare-fun a () String)
(declare-fun b () String)
(declare-fun c () String)
(declare-fun d () String)
(assert (= a (str.++ b d)))
(assert (or
  (and
    (= (str.indexof (str.substr a 0 (str.len b)) "=" 0) 0)
    (= (str.indexof b "=" 0) 1))
  (not (= (str.suffixof "A" d)
          (str.suffixof "A" (str.replace c c d))))))
(check-sat)
""",
    ),
    PaperSample(
        figure="13f",
        solver="z3-like",
        kind="crash",
        logic="NRA",
        oracle="unknown",  # the paper reports the crash, not a verdict
        issue="https://github.com/Z3Prover/z3/issues/2449",
        smt2="""
(declare-fun a () Real)
(declare-fun b () Real)
(declare-fun c () Real)
(declare-fun d () Real)
(declare-fun i () Real)
(declare-fun e () Real)
(declare-fun ep () Real)
(declare-fun f () Real)
(declare-fun j () Real)
(declare-fun g () Real)
(assert (or
  (not (exists ((h Real))
    (=> (and (= 0.0 (/ b j)) (< 0.0 e))
        (=> (= 0.0 i)
            (= (= (<= 0.0 h) (<= h ep)) (= 1.0 2.0))))))
  (not (exists ((h Real))
    (=> (<= 0.0 (/ a h)) (= 0 (/ c e)))))))
(assert (= c (/ c g) g 0))
(assert (= ep (/ d f)))
(check-sat)
""",
    ),
)


def sample_by_figure(figure):
    for sample in FIGURE_13:
        if sample.figure == figure:
            return sample
    raise KeyError(f"no Figure {figure} sample")
