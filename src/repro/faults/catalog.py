"""Fault catalogs for the simulated "z3-like" and "cvc4-like" solvers.

The catalogs reproduce the *shape* of the paper's findings (Figure 8):

=========  ====  =====
status     Z3    CVC4
=========  ====  =====
reported   44    13
confirmed  37    8
fixed      35    6
duplicate  4     1
won't fix  2     0
=========  ====  =====

with confirmed bugs typed soundness 24/5, crash 11/1, performance 1/2,
unknown 1/0, distributed over logics as in Figure 8c, and soundness
bugs carrying affected-release windows that regenerate Figure 10.

Six entries correspond to the paper's Figure 13 samples: their
(logic, pattern) keys fire on our transcriptions of the exact reduced
formulas the paper shows.
"""

from __future__ import annotations

from repro.faults.fault import Fault

Z3_RELEASES = ("4.5.0", "4.6.0", "4.7.1", "4.8.1", "4.8.3", "4.8.4", "4.8.5", "trunk")
CVC4_RELEASES = ("1.5", "1.6", "1.7", "trunk")

_FULL_Z3 = Z3_RELEASES
_FULL_CVC4 = CVC4_RELEASES

# Release windows for the 24 z3-like soundness faults, chosen so the
# per-release counts come out as Figure 10's Z3 bars:
# 4.5.0:8  4.6.0:5  4.7.1:5  4.8.1:5  4.8.3:5  4.8.4:8  4.8.5:10  trunk:24
_Z3_SOUNDNESS_WINDOWS = (
    [_FULL_Z3] * 5
    + [("4.5.0", "trunk")] * 3  # regressions re-introduced after 4.5.0
    + [("4.8.4", "4.8.5", "trunk")] * 3
    + [("4.8.5", "trunk")] * 2
    + [("trunk",)] * 11
)

# CVC4 bars: 1.5:2  1.6:1  1.7:2  trunk:5
_CVC4_SOUNDNESS_WINDOWS = (
    [_FULL_CVC4]
    + [("1.5", "trunk")]
    + [("1.7", "trunk")]
    + [("trunk",)] * 2
)


def _make(solver, index, kind, logic, pattern, **kw):
    prefix = "z3" if solver == "z3-like" else "cvc4"
    fault_id = kw.pop("fault_id", f"{prefix}-{kind}-{index:03d}")
    defaults = {
        "wrong_answer": "sat",
        "status": "fixed",
        "affected_releases": ("trunk",),
        "description": f"{kind} defect in {logic} triggered by {pattern}",
    }
    defaults.update(kw)
    return Fault(
        fault_id=fault_id,
        solver=solver,
        kind=kind,
        logic=logic,
        pattern=pattern,
        effect=kw.get(
            "effect",
            {"soundness": "answer", "crash": "crash", "performance": "slow", "unknown": "unknown"}[
                kind
            ],
        ),
        **{k: v for k, v in defaults.items() if k != "effect"},
    )


def z3_like_catalog():
    """All 44 reported z3-like faults (37 confirmed, Figure 8 shape)."""
    faults = []
    # --- 24 confirmed soundness bugs -------------------------------------
    # (logic, pattern, wrong_answer, salt, modulus, note)
    soundness = [
        # NRA (10) — most Z3 soundness bugs were in NRA (Fig. 8c).
        ("NRA", "var-divisor", "sat", 0, 2, ""),
        ("NRA", "var-product", "sat", 0, 2, ""),
        ("NRA", "affine-inversion", "sat", 0, 1, ""),
        ("NRA", "fusion-constraint", "sat", 1, 2, ""),
        ("NRA", "compare-division", "sat", 0, 2, ""),
        ("NRA", "var-divisor", "unsat", 0, 2, ""),
        ("NRA", "var-product", "unsat", 1, 3, ""),
        ("NRA", "fusion-constraint", "sat", 0, 3, ""),
        ("NRA", "affine-inversion", "unsat", 1, 3, ""),
        ("NRA", "compare-division", "unsat", 0, 3, ""),
        # NIA (2)
        ("NIA", "var-divisor", "sat", 0, 1, ""),
        ("NIA", "affine-inversion", "unsat", 0, 2, ""),
        # QF_NRA (2)
        ("QF_NRA", "compare-division&ite-on-division|fusion-constraint", "sat", 0, 1, "figure-13c / figure-5"),
        ("QF_NRA", "var-product", "unsat", 0, 2, ""),
        # QF_S (8)
        ("QF_S", "to-int-of-term", "sat", 0, 1, "figure-13a"),
        ("QF_S", "substr-by-len", "sat", 0, 1, "figure-13e"),
        ("QF_S", "nested-replace", "unsat", 0, 2, ""),
        ("QF_S", "replace-with-empty", "sat", 1, 2, ""),
        ("QF_S", "regex&substr-by-len|nested-replace|replace-with-empty|fusion-constraint", "unsat", 0, 3, ""),
        ("QF_S", "replace-var-pattern&substr-by-len|nested-replace|replace-with-empty|fusion-constraint", "sat", 1, 3, ""),
        ("QF_S", "concat-definition&substr-by-len|nested-replace|replace-with-empty|fusion-constraint", "sat", 2, 3, ""),
        ("QF_S", "indexof", "sat", 0, 2, ""),
        # QF_SLIA (2)
        ("QF_SLIA", "string-int-mix", "sat", 0, 1, ""),
        ("QF_SLIA", "substr-by-len", "unsat", 0, 2, ""),
    ]
    for i, ((logic, pattern, wrong, salt, modulus, note), window) in enumerate(
        zip(soundness, _Z3_SOUNDNESS_WINDOWS)
    ):
        status = "fixed" if i < 23 else "confirmed"  # 1 confirmed-not-yet-fixed
        faults.append(
            _make(
                "z3-like",
                i,
                "soundness",
                logic,
                pattern,
                wrong_answer=wrong,
                salt=salt,
                modulus=modulus,
                status=status,
                affected_releases=tuple(window),
                description=note or f"unsound simplification in {logic} ({pattern})",
            )
        )
    # --- 11 confirmed crash bugs -----------------------------------------
    crashes = [
        ("NRA", "compare-division", 0, 1, "figure-13f"),
        ("NRA", "var-divisor", 2, 3, ""),
        ("NRA", "affine-inversion", 2, 2, ""),
        ("NRA", "var-product", 2, 3, ""),
        ("NRA", "fusion-constraint", 1, 3, ""),
        ("QF_S", "nested-replace", 1, 2, ""),
        ("QF_S", "at-computed-index", 0, 2, ""),
        ("QF_S", "regex&substr-by-len|nested-replace|replace-with-empty|fusion-constraint", 1, 2, ""),
        ("QF_S", "substr-by-len", 1, 2, ""),
        ("QF_S", "replace-with-empty", 0, 2, ""),
        ("QF_S", "indexof", 1, 3, ""),
    ]
    for i, (logic, pattern, salt, modulus, note) in enumerate(crashes):
        status = "fixed" if i < 11 else "confirmed"
        faults.append(
            _make(
                "z3-like",
                i,
                "crash",
                logic,
                pattern,
                salt=salt,
                modulus=modulus,
                status=status,
                description=note or f"assertion violation in {logic} ({pattern})",
            )
        )
    # One of the 37 confirmed is not fixed: flip the last crash.
    faults[-1] = Fault(
        **{**faults[-1].__dict__, "status": "confirmed"}
    )
    # --- 1 performance, 1 unknown ---------------------------------------
    faults.append(
        _make("z3-like", 0, "performance", "QF_S", "regex&substr-by-len|nested-replace|replace-with-empty|fusion-constraint", status="fixed")
    )
    faults.append(
        _make("z3-like", 0, "unknown", "QF_SLIA", "string-int-mix", status="fixed")
    )
    # Totals so far: 24 + 11 + 1 + 1 = 37 confirmed (35 fixed).
    # --- 4 duplicates, 2 won't-fix, 1 pending ---------------------------
    duplicates = [
        ("NRA", "var-divisor", "z3-soundness-000", 0, 2),
        ("NRA", "var-product", "z3-soundness-001", 1, 1),
        ("QF_S", "nested-replace", "z3-soundness-016", 1, 1),
        ("QF_S", "regex&substr-by-len|nested-replace|replace-with-empty|fusion-constraint", "z3-soundness-018", 1, 1),
    ]
    for i, (logic, pattern, root, salt, modulus) in enumerate(duplicates):
        faults.append(
            _make(
                "z3-like",
                i,
                "soundness",
                logic,
                pattern,
                fault_id=f"z3-duplicate-{i:03d}",
                status="duplicate",
                duplicate_of=root,
                salt=salt,
                modulus=modulus,
                description=f"duplicate of {root}",
            )
        )
    wontfix = [("NRA", "many-asserts"), ("QF_S", "many-asserts")]
    for i, (logic, pattern) in enumerate(wontfix):
        faults.append(
            _make(
                "z3-like",
                i,
                "soundness",
                logic,
                pattern,
                fault_id=f"z3-wontfix-{i:03d}",
                status="wontfix",
                wrong_answer="unsat",
                salt=i,
                modulus=3,
                description="behaves as documented; developers declined to change",
            )
        )
    faults.append(
        _make(
            "z3-like",
            0,
            "crash",
            "QF_SLIA",
            "at-computed-index",
            fault_id="z3-pending-000",
            status="pending",
            salt=1,
            modulus=2,
            description="reported, awaiting triage",
        )
    )
    assert len(faults) == 44
    return faults


def cvc4_like_catalog():
    """All 13 reported cvc4-like faults (8 confirmed, Figure 8 shape)."""
    faults = []
    soundness = [
        ("NIA", "var-divisor", "sat", 1, 2, ""),
        ("NRA", "fusion-constraint", "sat", 2, 2, ""),
        ("QF_NIA", "affine-inversion", "sat", 0, 1, ""),
        ("QF_S", "nested-replace", "sat", 0, 1, "figure-13b"),
        ("QF_SLIA", "at-computed-index", "sat", 0, 1, "figure-13d"),
    ]
    for i, ((logic, pattern, wrong, salt, modulus, note), window) in enumerate(
        zip(soundness, _CVC4_SOUNDNESS_WINDOWS)
    ):
        status = "fixed" if i < 4 else "confirmed"
        faults.append(
            _make(
                "cvc4-like",
                i,
                "soundness",
                logic,
                pattern,
                wrong_answer=wrong,
                salt=salt,
                modulus=modulus,
                status=status,
                affected_releases=tuple(window),
                description=note or f"unsound rewrite in {logic} ({pattern})",
            )
        )
    faults.append(
        _make("cvc4-like", 0, "crash", "QF_S", "regex&substr-by-len|nested-replace|replace-with-empty|fusion-constraint", salt=2, modulus=2, status="fixed")
    )
    faults.append(
        _make(
            "cvc4-like", 0, "performance", "QF_S", "indexof", status="fixed",
        )
    )
    faults.append(
        _make(
            "cvc4-like",
            1,
            "performance",
            "QF_S",
            "substr-by-len",
            status="confirmed",
            salt=1,
            modulus=2,
        )
    )
    # 8 confirmed so far (6 fixed). Now 1 duplicate + 4 pending.
    faults.append(
        _make(
            "cvc4-like",
            0,
            "soundness",
            "QF_S",
            "nested-replace",
            fault_id="cvc4-duplicate-000",
            status="duplicate",
            duplicate_of="cvc4-soundness-003",
            salt=1,
            modulus=1,
        )
    )
    pending = [
        ("QF_S", "replace-with-empty", "soundness", "unsat"),
        ("QF_SLIA", "string-int-mix", "crash", "sat"),
        ("NRA", "var-product", "soundness", "unsat"),
        ("QF_NRA", "compare-division", "soundness", "sat"),
    ]
    for i, (logic, pattern, kind, wrong) in enumerate(pending):
        faults.append(
            _make(
                "cvc4-like",
                i,
                kind,
                logic,
                pattern,
                fault_id=f"cvc4-pending-{i:03d}",
                status="pending",
                wrong_answer=wrong,
                salt=i,
                modulus=2,
            )
        )
    assert len(faults) == 13
    return faults


def demo_rewrite_faults():
    """Realistic *rewrite-mechanism* faults, for examples and tests.

    These model the actual root causes the paper describes — e.g.
    "a missed corner case in the str.to.int reduction function for an
    empty string" (Figure 13b) — by rewriting the formula unsoundly
    before solving, rather than short-circuiting the answer.
    """
    return [
        Fault(
            fault_id="demo-toint-empty",
            solver="demo",
            kind="soundness",
            logic="QF_S",
            pattern="to-int-of-term",
            effect="rewrite",
            status="confirmed",
            description="str.to.int treats the empty string as 0 instead of -1",
        ),
        Fault(
            fault_id="demo-replace-var",
            solver="demo",
            kind="soundness",
            logic="QF_S",
            pattern="replace-var-pattern",
            effect="rewrite",
            status="confirmed",
            description="str.replace assumes a variable pattern never occurs",
        ),
    ]


def bv_fault_catalog(solver_name):
    """Injected QF_BV defects for ``solver_name``.

    Kept out of :func:`z3_like_catalog` / :func:`cvc4_like_catalog`:
    those two reproduce the paper's Figure 8 counts exactly (44 and 13)
    and are pinned by regression tests. BV campaigns attach this
    catalog instead (``yinyang campaign --logic QF_BV``); its faults
    all have observable effects (wrong answers, unsound rewrites,
    crashes), so a campaign can find every one of them.
    """
    if solver_name == "z3-like":
        return [
            _make(
                "z3-like",
                0,
                "soundness",
                "QF_BV",
                "bv-fusion-constraint",
                fault_id="z3-bv-soundness-000",
                status="confirmed",
                wrong_answer="sat",
                salt=0,
                modulus=2,
                description="bit-blaster drops a fused definition clause",
            ),
            _make(
                "z3-like",
                1,
                "soundness",
                "QF_BV",
                "bv-compare",
                fault_id="z3-bv-soundness-001",
                status="confirmed",
                wrong_answer="unsat",
                salt=0,
                modulus=2,
                description="unsigned comparator miscompares equal prefixes",
            ),
            _make(
                "z3-like",
                0,
                "crash",
                "QF_BV",
                "bv-extract|bv-concat",
                fault_id="z3-bv-crash-000",
                status="confirmed",
                salt=1,
                modulus=2,
                description="width bookkeeping assertion fails on slicing",
            ),
            _make(
                "z3-like",
                0,
                "soundness",
                "QF_BV",
                "bv-negation",
                fault_id="z3-bv-negnot",
                effect="rewrite",
                status="confirmed",
                description="rewriter folds bvneg to bvnot (missing the +1)",
            ),
        ]
    if solver_name == "cvc4-like":
        return [
            _make(
                "cvc4-like",
                0,
                "soundness",
                "QF_BV",
                "bv-product",
                fault_id="cvc4-bv-soundness-000",
                status="confirmed",
                wrong_answer="sat",
                description="shift-and-add multiplier drops the carry row",
            ),
            _make(
                "cvc4-like",
                0,
                "crash",
                "QF_BV",
                "bv-shift-var",
                fault_id="cvc4-bv-crash-000",
                status="confirmed",
                description="barrel shifter indexes past the width",
            ),
            _make(
                "cvc4-like",
                0,
                "soundness",
                "QF_BV",
                "bv-compare",
                fault_id="cvc4-bv-ult-ule",
                effect="rewrite",
                status="confirmed",
                description="rewriter weakens bvult to bvule",
            ),
        ]
    raise KeyError(f"no BV catalog for {solver_name!r}")


def catalog_for(solver_name):
    if solver_name == "z3-like":
        return z3_like_catalog()
    if solver_name == "cvc4-like":
        return cvc4_like_catalog()
    raise KeyError(f"no catalog for {solver_name!r}")
