"""Simulated release histories (the paper's Figure 10 study).

Each solver has a sequence of release tags ending in ``trunk``.
Soundness faults carry ``affected_releases`` windows; given the set of
soundness bugs a campaign found in trunk, :func:`release_impact` counts
how many of them also affect each historical release — the paper's
"number of found soundness bugs that affect corresponding release
versions".
"""

from __future__ import annotations

from repro.faults.catalog import CVC4_RELEASES, Z3_RELEASES

RELEASE_DATES = {
    # The paper: "Z3 4.5.0 was released on November 8, 2016, and CVC4
    # 1.5 was released on July 10, 2017" — 3- and 2-year latencies.
    ("z3-like", "4.5.0"): "2016-11-08",
    ("cvc4-like", "1.5"): "2017-07-10",
}

# Figure 10's bars, used by the benchmark as the paper-reported shape.
PAPER_RELEASE_IMPACT = {
    "z3-like": dict(
        zip(Z3_RELEASES, (8, 5, 5, 5, 5, 8, 10, 24))
    ),
    "cvc4-like": dict(zip(CVC4_RELEASES, (2, 1, 2, 5))),
}


def releases_for(solver_name):
    if solver_name == "z3-like":
        return Z3_RELEASES
    if solver_name == "cvc4-like":
        return CVC4_RELEASES
    raise KeyError(f"no release history for {solver_name!r}")


def release_impact(found_faults, solver_name):
    """Per-release counts of found soundness faults affecting the release."""
    releases = releases_for(solver_name)
    impact = {}
    soundness = [
        f for f in found_faults if f.kind == "soundness" and f.solver == solver_name
        and f.status in ("fixed", "confirmed")
    ]
    for release in releases:
        impact[release] = sum(1 for f in soundness if release in f.affected_releases)
    return impact
