"""Campaign orchestration: run YinYang against the fault-injected
solvers over the Figure 7 corpora and regenerate the paper's tables.
"""

from repro.campaign.runner import (
    CampaignResult,
    bv_solvers,
    default_solvers,
    deterministic_bv_solvers,
    deterministic_solvers,
    run_campaign,
    solver_factory_for_logic,
)
from repro.campaign.classify import attribute_fault, collect_found_faults
from repro.campaign.report import (
    figure8a_rows,
    figure8b_rows,
    figure8c_rows,
    figure9_rows,
    figure10_rows,
    render_shard_table,
    render_table,
    shard_counter_rows,
)

__all__ = [
    "CampaignResult",
    "run_campaign",
    "bv_solvers",
    "default_solvers",
    "deterministic_bv_solvers",
    "deterministic_solvers",
    "solver_factory_for_logic",
    "attribute_fault",
    "collect_found_faults",
    "figure8a_rows",
    "figure8b_rows",
    "figure8c_rows",
    "figure9_rows",
    "figure10_rows",
    "render_shard_table",
    "render_table",
    "shard_counter_rows",
]
