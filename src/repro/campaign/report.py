"""Table generation for the campaign: Figures 8a, 8b, 8c, 9 and 10,
plus the per-shard counter table of parallel (process-mode) campaigns."""

from __future__ import annotations

from repro.faults.releases import PAPER_RELEASE_IMPACT, release_impact, releases_for
from repro.faults.tracker import found_share, per_year_rows

_SOLVER_LABELS = {"z3-like": "Z3", "cvc4-like": "CVC4"}

# The paper's Figure 8 numbers, for side-by-side bench output.
PAPER_FIG8A = {
    "Reported": (44, 13),
    "Confirmed": (37, 8),
    "Fixed": (35, 6),
    "Duplicate": (4, 1),
    "Won't fix": (2, 0),
}
PAPER_FIG8B = {
    "Soundness": (24, 5),
    "Crash": (11, 1),
    "Performance": (1, 2),
    "Unknown": (1, 0),
}
PAPER_FIG8C = {
    "NIA": (2, 1),
    "NRA": (15, 1),
    "QF_NIA": (0, 1),
    "QF_NRA": (2, 0),
    "QF_S": (15, 4),
    "QF_SLIA": (3, 1),
}

_CONFIRMED = ("fixed", "confirmed")


def _counts_by(found_faults, key, solver_names, confirmed_only=True):
    table = {}
    for solver_index, solver_name in enumerate(solver_names):
        for fault in found_faults:
            if fault.solver != solver_name:
                continue
            if confirmed_only and fault.status not in _CONFIRMED:
                continue
            bucket = key(fault)
            row = table.setdefault(bucket, [0] * len(solver_names))
            row[solver_index] += 1
    return table


def figure8a_rows(campaign):
    """Status rows: (label, z3_count, cvc4_count, z3_paper, cvc4_paper)."""
    found = campaign.found_fault_objects()
    solver_names = list(campaign.catalogs)
    rows = []
    status_sets = {
        "Reported": None,
        "Confirmed": _CONFIRMED,
        "Fixed": ("fixed",),
        "Duplicate": ("duplicate",),
        "Won't fix": ("wontfix",),
    }
    for label, statuses in status_sets.items():
        counts = []
        for solver_name in solver_names:
            n = sum(
                1
                for f in found
                if f.solver == solver_name
                and (statuses is None or f.status in statuses)
            )
            counts.append(n)
        paper = PAPER_FIG8A.get(label, ("-", "-"))
        rows.append((label, *counts, *paper))
    return rows


def figure8b_rows(campaign):
    """Confirmed bug types per solver, with the paper's numbers."""
    found = campaign.found_fault_objects()
    solver_names = list(campaign.catalogs)
    table = _counts_by(found, lambda f: f.kind, solver_names)
    rows = []
    for label, key in (
        ("Soundness", "soundness"),
        ("Crash", "crash"),
        ("Performance", "performance"),
        ("Unknown", "unknown"),
    ):
        counts = table.get(key, [0] * len(solver_names))
        rows.append((label, *counts, *PAPER_FIG8B[label]))
    return rows


def figure8c_rows(campaign):
    """Confirmed bug logics per solver, with the paper's numbers."""
    found = campaign.found_fault_objects()
    solver_names = list(campaign.catalogs)
    table = _counts_by(found, lambda f: f.logic, solver_names)
    rows = []
    for logic in ("NIA", "NRA", "QF_NIA", "QF_NRA", "QF_S", "QF_SLIA"):
        counts = table.get(logic, [0] * len(solver_names))
        rows.append((logic, *counts, *PAPER_FIG8C[logic]))
    return rows


def figure9_rows(campaign=None):
    """Per-year historic soundness-bug counts, plus our found share."""
    rows = {"z3-like": per_year_rows("z3-like"), "cvc4-like": per_year_rows("cvc4-like")}
    shares = {}
    if campaign is not None:
        found = campaign.found_fault_objects()
        for solver_name in ("z3-like", "cvc4-like"):
            shares[solver_name] = found_share(found, solver_name)
    return rows, shares


def figure10_rows(campaign):
    """Per-release impact of found soundness bugs vs the paper's bars."""
    found = campaign.found_fault_objects()
    out = {}
    for solver_name in campaign.catalogs:
        ours = release_impact(found, solver_name)
        paper = PAPER_RELEASE_IMPACT.get(solver_name, {})
        out[solver_name] = [
            (release, ours.get(release, 0), paper.get(release, "-"))
            for release in releases_for(solver_name)
        ]
    return out


def shard_counter_rows(campaign):
    """Per-shard counter rows of a process-mode campaign.

    One row per (cell, shard): how the cell's iterations were split,
    what each shard found, and which worker ran it (``resumed`` marks
    shards reloaded from a sidecar journal instead of re-run).
    """
    rows = []
    for key in sorted(campaign.shard_counters):
        solver, family, oracle = key
        for c in campaign.shard_counters[key]:
            rows.append(
                (
                    f"{solver}/{family}/{oracle}",
                    f"{c['shard']}/{c['of']}",
                    c.get("iterations", 0),
                    c.get("fused", 0),
                    c.get("fusion_failures", 0),
                    c.get("bugs", 0),
                    f"{c.get('elapsed', 0.0):.2f}s",
                    "resumed" if c.get("resumed") else f"pid {c.get('pid')}",
                )
            )
    return rows


def render_shard_table(campaign):
    """The per-shard counter table (empty string when not sharded)."""
    rows = shard_counter_rows(campaign)
    if not rows:
        return ""
    headers = ["cell", "shard", "iter", "fused", "fuse-fail", "bugs", "wall", "worker"]
    title = f"Per-shard counters ({campaign.mode} x{campaign.workers})"
    return render_table(headers, rows, title)


def render_table(headers, rows, title=""):
    """Plain-text table rendering for bench output."""
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(pairs, title="", width=40):
    """ASCII bar chart (the paper's Figures 9/10 are bar charts).

    ``pairs`` is a list of (label, value).
    """
    lines = [title] if title else []
    values = [v for _, v in pairs]
    peak = max(values) if values else 1
    label_width = max((len(str(label)) for label, _ in pairs), default=0)
    for label, value in pairs:
        bar = "#" * max(1 if value else 0, round(width * value / peak)) if peak else ""
        lines.append(f"{str(label).rjust(label_width)} | {bar} {value}")
    return "\n".join(lines)
