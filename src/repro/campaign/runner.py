"""The campaign runner: YinYang against buggy solvers over all corpora.

This is the offline equivalent of the paper's four-month testing
campaign, compressed: for each (solver, corpus, oracle) cell the runner
fuses seed pairs and records every bug-triggering formula, then triage
(:mod:`repro.campaign.classify`) maps records to catalog faults.

A long campaign is expected to be interrupted and to meet misbehaving
solvers; ``run_campaign`` therefore accepts a
:class:`~repro.robustness.policy.ResiliencePolicy` (guarded execution)
and a :class:`~repro.robustness.journal.CampaignJournal` (crash-safe
per-cell journaling with ``resume=True`` skipping completed cells).

Campaigns run in one of four execution modes:

- ``serial`` — one process, one thread (the default);
- ``thread`` — each cell's iterations sharded over a thread pool
  (cheap, but GIL-bound for the pure-Python solvers under test);
- ``process`` — each cell's iterations sharded over a persistent
  spawn-safe worker pool (:mod:`repro.core.parallel`): per-worker
  solver instances, parse caches, and crash-safe sidecar journals the
  parent merges into the main journal;
- ``tcp`` — each cell's iterations leased to a socket worker fleet
  (:mod:`repro.distributed`): separate ``yinyang worker`` processes
  pull leases by work stealing, always under supervision, and the
  coordinator merges their shipped shard payloads (plus a
  coordinator-side fleet sidecar for resume).

All modes and worker counts produce identical bug records and identical
journal bytes for a fixed seed; sharding is invisible to the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.campaign.classify import collect_found_faults, found_fault_objects
from repro.campaign.triage import TriagePolicy, parse_budget_tiers
from repro.core.config import FusionConfig, YinYangConfig
from repro.core.yinyang import (
    EXECUTION_MODES,
    YinYang,
    merge_shard_reports,
    shard_indices,
)
from repro.faults.catalog import bv_fault_catalog, cvc4_like_catalog, z3_like_catalog
from repro.faults.faulty_solver import FaultySolver
from repro.robustness.journal import (
    CampaignJournal,
    load_sidecar_shards,
    remove_sidecars,
)
from repro.solver.solver import ReferenceSolver, SolverConfig
from repro.solver.strings import StringConfig
from repro.strategies.registry import make_strategy

#: The modes ``run_campaign`` accepts: YinYang's in-process trio plus
#: the distributed socket fleet (campaign-level only — ``YinYang.test``
#: has no tcp mode; a fleet needs the campaign's lease machinery).
CAMPAIGN_MODES = EXECUTION_MODES + ("tcp",)


def default_solvers(release="trunk", base_config=None):
    """The two solvers under test, with their catalogs attached.

    The base solver runs with the fast (short-timeout) configuration,
    the standard fuzzing setup for real solvers too. Also the default
    ``solver_factory`` of process-mode campaigns: it is a picklable
    module-level callable, so every worker can build its own instances.
    """
    base = ReferenceSolver(base_config or SolverConfig.fast())
    z3 = FaultySolver(base, z3_like_catalog(), "z3-like", release=release)
    cvc4 = FaultySolver(base, cvc4_like_catalog(), "cvc4-like", release=release)
    return [z3, cvc4]


def deterministic_solvers(release="trunk"):
    """:func:`default_solvers` with all wall-clock dependence removed.

    The fast configuration's 1.5 s deadline makes borderline checks
    flip between a real answer and ``unknown`` with machine load; the
    purely step-counted budgets (DPLL rounds, nonlinear enumeration,
    string assignments) still bound every check, but identically in
    every run. They are tightened here to compensate for the missing
    deadline, so hard inputs answer ``unknown`` by running out of steps
    instead of out of time. This is the factory behind
    ``--deterministic`` campaigns whose journals must be reproducible
    byte-for-byte across machines, modes and worker counts.
    """
    config = replace(
        SolverConfig.fast(),
        timeout_seconds=0.0,
        max_rounds=30,
        nonlinear_budget=120,
        strings=StringConfig(max_assignments=600, max_len_per_var=3, max_total_len=6),
    )
    return default_solvers(release=release, base_config=config)


def bv_solvers(release="trunk", base_config=None):
    """The two solvers under test with the QF_BV fault catalogs.

    The paper-shaped catalogs (44/13 faults) never fire on QF_BV
    formulas — their triggers require arithmetic or string logics — so
    BV campaigns attach :func:`~repro.faults.catalog.bv_fault_catalog`
    instead, keeping ``result.catalogs`` (and "found every fault"
    accounting) exact. Picklable, like :func:`default_solvers`.
    """
    base = ReferenceSolver(base_config or SolverConfig.fast())
    z3 = FaultySolver(base, bv_fault_catalog("z3-like"), "z3-like", release=release)
    cvc4 = FaultySolver(
        base, bv_fault_catalog("cvc4-like"), "cvc4-like", release=release
    )
    return [z3, cvc4]


def deterministic_bv_solvers(release="trunk"):
    """:func:`bv_solvers` with all wall-clock dependence removed (the
    QF_BV analogue of :func:`deterministic_solvers`)."""
    config = replace(
        SolverConfig.fast(),
        timeout_seconds=0.0,
        max_rounds=30,
        nonlinear_budget=120,
        strings=StringConfig(max_assignments=600, max_len_per_var=3, max_total_len=6),
    )
    return bv_solvers(release=release, base_config=config)


def solver_factory_for_logic(logic, deterministic=False):
    """The picklable campaign solver factory for ``logic``.

    ``None`` (the default corpora) keeps the paper catalogs; ``QF_BV``
    swaps in the BV catalogs. Factories must be module-level callables:
    process/tcp campaigns ship them across the spawn boundary.
    """
    if logic == "QF_BV":
        return deterministic_bv_solvers if deterministic else bv_solvers
    return deterministic_solvers if deterministic else default_solvers


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    records: list = field(default_factory=list)  # all BugRecords
    reports: dict = field(default_factory=dict)  # (solver, corpus, oracle) -> report
    catalogs: dict = field(default_factory=dict)  # solver name -> fault list
    fused_total: int = 0
    elapsed_total: float = 0.0
    mode: str = "serial"
    workers: int = 1
    strategy: str = "fusion"  # the mutation strategy's registry name
    # (solver, corpus, oracle) -> [per-shard counter dicts] (process mode)
    shard_counters: dict = field(default_factory=dict)
    # Supervised process mode: quarantined poison-iteration artifacts
    # (PoisonedIteration records) and the supervisor's counters
    # (restarts / retries / requeues / bisections / poisoned / ...).
    poisoned: list = field(default_factory=list)
    supervision: dict = field(default_factory=dict)

    def found_faults(self):
        """{solver: {fault_id: [records]}} via triage."""
        return collect_found_faults(self.records, self.catalogs)

    def found_fault_objects(self):
        return found_fault_objects(self.found_faults(), self.catalogs)

    def resilience_counters(self):
        """Aggregated guard counters across all cell reports."""
        totals = {
            "retries": 0,
            "timeouts": 0,
            "contained_errors": 0,
            "quarantine_skips": 0,
        }
        quarantined = set()
        for report in self.reports.values():
            for key in totals:
                totals[key] += getattr(report, key, 0)
            quarantined |= getattr(report, "quarantined", set())
        totals["quarantined"] = sorted(quarantined)
        return totals

    def summary_counters(self):
        """Deterministic campaign-level counters, for determinism checks
        and the per-shard table's totals row."""
        totals = {}
        for report in self.reports.values():
            for key, value in report.counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def summary(self):
        found = self.found_faults()
        parts = [f"{self.fused_total} fused formulas"]
        if self.strategy != "fusion":
            parts.append(f"strategy {self.strategy}")
        if self.mode != "serial":
            parts.append(f"mode {self.mode} x{self.workers}")
        for solver_name, faults in found.items():
            parts.append(f"{solver_name}: {len(faults)} distinct faults")
        counters = self.resilience_counters()
        if counters["retries"]:
            parts.append(f"{counters['retries']} retries")
        if counters["timeouts"]:
            parts.append(f"{counters['timeouts']} timeouts")
        if counters["contained_errors"]:
            parts.append(f"{counters['contained_errors']} contained errors")
        if counters["quarantined"]:
            parts.append("quarantined: " + "/".join(counters["quarantined"]))
        if self.supervision.get("restarts"):
            parts.append(f"{self.supervision['restarts']} worker restarts")
        if self.poisoned:
            parts.append(f"{len(self.poisoned)} poisoned iterations")
        return ", ".join(parts)


def _campaign_cells(solvers, corpora):
    """The campaign's cells in their canonical (journal) order."""
    cells = []
    for solver in solvers:
        for family, corpus in corpora.items():
            for oracle in ("sat", "unsat"):
                seeds = corpus.by_oracle(oracle)
                if len(seeds) < 1:
                    continue
                cells.append(((solver.name, family, oracle), solver, seeds))
    return cells


def _absorb_cell(result, key, report, journal, telemetry=None):
    """Fold one completed cell into the result and the journal."""
    result.reports[key] = report
    result.records.extend(report.bugs)
    result.fused_total += report.fused
    result.elapsed_total += report.elapsed
    if telemetry is not None:
        telemetry.count("cells")
    if journal is not None:
        if telemetry is not None:
            # The print/journal phase: serializing bug scripts back to
            # SMT-LIB and committing the cell durably. Timed only —
            # telemetry never writes into the journal itself.
            with telemetry.phase("journal_write"):
                journal.record_cell(key, report)
        else:
            journal.record_cell(key, report)


def run_campaign(
    corpora,
    solvers=None,
    iterations_per_cell=120,
    seed=0,
    fusion_config=None,
    performance_threshold=0.3,
    policy=None,
    journal=None,
    resume=False,
    mode="serial",
    workers=1,
    solver_factory=None,
    telemetry=None,
    strategy="fusion",
    supervise=None,
    containment=None,
    chaos_process=None,
    triage=None,
    incremental=None,
    logic=None,
    steal_seed=0,
    listen=None,
    spawn_workers=None,
    net_chaos=None,
):
    """Run the full campaign.

    ``corpora`` maps family name to
    :class:`~repro.core.oracle.SeedCorpus`. Returns a
    :class:`CampaignResult`.

    ``policy`` wraps every solver in a
    :class:`~repro.robustness.guard.GuardedSolver` (watchdog, retries,
    error containment, quarantine). ``journal`` (a path or a
    :class:`~repro.robustness.journal.CampaignJournal`) durably records
    each completed (solver, corpus, oracle) cell; with ``resume=True``
    completed cells are loaded from the journal instead of re-run, so a
    campaign interrupted by ^C or a crash continues where it stopped.
    Cells are deterministic given ``seed``, so an interrupted-and-
    resumed campaign produces the same records as an uninterrupted one
    — even when the resume uses a different ``mode`` or ``workers``
    than the original run.

    ``logic`` names the campaign's logic restriction (e.g. ``"QF_BV"``)
    for the journal header; like ``strategy``, it is stamped into the
    journal meta only when set, so default-campaign journal bytes are
    unchanged, and a resume refuses to mix logics.

    ``mode`` / ``workers`` select the execution mode (see the module
    docstring). ``solver_factory`` is a picklable zero-argument
    callable building the solvers under test; process mode requires it
    (it defaults to :func:`default_solvers` when ``solvers`` is not
    given) because live solver objects cannot cross a spawn boundary.

    ``telemetry`` (a :class:`~repro.observability.Telemetry`) collects
    metrics/traces/profiles for the whole campaign. It is strictly an
    observer: it draws no randomness, and journal bytes are identical
    with telemetry off, on, or traced (see
    ``tests/test_parallel_determinism.py``). In process mode each
    worker runs its own telemetry and the parent merges per-shard
    snapshots, exactly like sidecar journals.

    ``strategy`` selects the mutation workload by registry name
    (``"fusion"``, ``"concatfuzz"``, ``"opfuzz"``, ...) or as a ready
    :class:`~repro.strategies.base.MutationStrategy` instance; the
    journal records it (non-default strategies only, to keep fusion
    journal bytes stable) and a resume refuses to mix strategies.

    ``supervise`` (``True`` or a
    :class:`~repro.robustness.supervisor.SupervisorPolicy`) runs
    process mode under the self-healing coordinator: dead or hung
    workers are respawned, their shard leases resume from crash-safe
    checkpoints, and an iteration that keeps killing workers is
    bisected out and quarantined as a reproduction artifact
    (``result.poisoned`` / journal ``poison`` entries) instead of
    failing the campaign. ``containment`` (a
    :class:`~repro.robustness.containment.ContainmentPolicy`) applies
    rlimits inside every worker; ``chaos_process`` (a
    :class:`~repro.robustness.chaos.ProcessChaos`) injects planned
    worker-level faults for recovery testing. All three imply
    ``mode="process"`` supervision and are rejected elsewhere.

    ``triage`` routes each mutant to a solve-budget tier before
    checking: ``True`` (the default
    :class:`~repro.campaign.triage.TriagePolicy`), a ``--budget-tiers``
    spec string, or a ready policy. Routing is a pure function of the
    mutant's formula, so journals stay identical across modes and
    worker counts; the journal records the policy spec and the
    unknown-kind split, and a resume refuses to mix triage and
    non-triage shards. ``None`` keeps journal bytes identical to the
    pre-triage campaign.

    ``mode="tcp"`` runs the campaign over a socket worker fleet
    (:class:`~repro.distributed.endpoint.TcpFleet`), always supervised:
    ``listen`` is the coordinator's ``(host, port)`` (default
    127.0.0.1 on an ephemeral port), ``spawn_workers`` the number of
    local ``yinyang worker`` processes to start (default ``workers``;
    0 to serve only externally-connected workers), ``steal_seed``
    seeds the work-stealing permutation (any seed must merge to
    identical journal bytes — that invariant is the product), and
    ``net_chaos`` (a :class:`~repro.distributed.netchaos.NetChaos`)
    injects planned disconnects and seeded frame faults for recovery
    testing.

    ``incremental`` switches on per-cell incremental solving: ``True``
    (the default :class:`~repro.solver.session.SessionConfig`) or a
    ready config. Each cell/shard builds a
    :class:`~repro.solver.session.SolverSession` from its seed pool —
    outcome/theory caches plus assumption-guarded warm SAT starts —
    whose reuse is answer-invariant by construction, so journals stay
    byte-identical across modes and worker counts (the journal records
    the session spec; a resume refuses to mix incremental and cold
    shards). ``None`` keeps the cold solve path and pre-session journal
    bytes.
    """
    if mode not in CAMPAIGN_MODES:
        raise ValueError(f"mode must be one of {CAMPAIGN_MODES}, got {mode!r}")
    # A socket fleet is always supervised: worker disconnects are lease
    # failures only the supervisor's retry machinery can absorb.
    supervised = (
        bool(supervise)
        or containment is not None
        or chaos_process is not None
        or mode == "tcp"
    )
    if supervised and mode not in ("process", "tcp"):
        raise ValueError(
            "supervise/containment/chaos_process need mode='process' or "
            "'tcp': supervision works at the worker boundary"
        )
    if net_chaos is not None and mode != "tcp":
        raise ValueError("net_chaos needs mode='tcp': it faults the wire")
    workers = max(1, workers)
    strategy_name = strategy if isinstance(strategy, str) else strategy.name
    if triage is True:
        triage = TriagePolicy()
    elif isinstance(triage, str):
        triage = parse_budget_tiers(triage)
    if incremental is True:
        from repro.solver.session import SessionConfig

        incremental = SessionConfig()
    if mode in ("process", "tcp"):
        if solver_factory is None:
            if solvers is not None:
                raise ValueError(
                    f"{mode} mode needs solver_factory (a picklable callable); "
                    "live solver objects cannot be shipped to worker processes"
                )
            solver_factory = default_solvers
        if solvers is None:
            solvers = solver_factory()
    else:
        if solvers is None:
            solvers = solver_factory() if solver_factory is not None else default_solvers()
    if journal is not None and not isinstance(journal, CampaignJournal):
        journal = CampaignJournal(journal)
    # Solvers outside the fault-injected family (ProcessSolver, a bare
    # ReferenceSolver, chaos wrappers around one) have no fault catalog.
    result = CampaignResult(
        catalogs={
            s.name: getattr(s, "active_faults", lambda: [])() for s in solvers
        },
        mode=mode,
        workers=workers,
        strategy=strategy_name,
    )
    completed = {}
    if journal is not None:
        meta_params = {"seed": seed, "iterations_per_cell": iterations_per_cell}
        if strategy_name != "fusion":
            # Fusion journals predate strategies and must keep their
            # exact bytes; only other workloads stamp the meta key.
            meta_params["strategy"] = strategy_name
        if triage is not None:
            # The canonical policy spec: a resume with a different
            # policy (or none) mismatches and is refused, and the
            # split counters ride every cell report.
            meta_params["triage"] = triage.describe()
            journal.unknown_split = True
        if incremental is not None and incremental is not False:
            # Same discipline as triage: stamp the session spec only
            # when the feature is on (cold journal bytes stay stable)
            # and refuse resumes that would mix warm and cold shards.
            meta_params["incremental"] = incremental.describe()
        if logic:
            # Stamped only for logic-restricted campaigns (QF_BV):
            # default journal bytes stay stable, and a resume with a
            # different logic restriction mismatches and is refused.
            meta_params["logic"] = logic
        journal.ensure_meta(**meta_params)
        journal.ensure_strategy(strategy_name)
        if resume:
            completed = journal.completed_cells()
    config = YinYangConfig(
        fusion=fusion_config or FusionConfig(),
        seed=seed,
        triage=triage,
        incremental=incremental or None,
    )
    cells = _campaign_cells(solvers, corpora)
    # Resumed cells are folded in first, in canonical order, so the
    # in-memory result (not just the journal) is shard- and
    # interruption-independent.
    remaining = []
    for key, solver, seeds in cells:
        if key in completed:
            _absorb_cell(result, key, completed[key], journal=None)
        else:
            remaining.append((key, solver, seeds))
    if mode in ("process", "tcp"):
        _run_cells_process(
            result,
            remaining,
            config=config,
            iterations_per_cell=iterations_per_cell,
            performance_threshold=performance_threshold,
            policy=policy,
            solver_factory=solver_factory,
            journal=journal,
            resume=resume,
            workers=workers,
            telemetry=telemetry,
            strategy=strategy_name,
            logic=logic,
            supervise=(supervise or True) if supervised else None,
            containment=containment,
            chaos_process=chaos_process,
            mode=mode,
            steal_seed=steal_seed,
            listen=listen,
            spawn_workers=spawn_workers,
            net_chaos=net_chaos,
        )
        return result
    # One strategy instance shared across all cells and solvers: its
    # caches (e.g. opfuzz's reference solver) keep earning, and mutants
    # stay a pure function of (strategy, seed, index) regardless.
    strategy_obj = (
        make_strategy(strategy_name, config.fusion)
        if isinstance(strategy, str)
        else strategy
    )
    tools = {}
    for key, solver, seeds in remaining:
        tool = tools.get(key[0])
        if tool is None:
            tool = tools[key[0]] = YinYang(
                solver,
                config,
                performance_threshold=performance_threshold,
                policy=policy,
                telemetry=telemetry,
                strategy=strategy_obj,
            )
        report = tool.test(
            key[2], seeds, iterations=iterations_per_cell, mode=mode, workers=workers
        )
        _absorb_cell(result, key, report, journal, telemetry)
    return result


def _run_cells_process(
    result,
    remaining,
    config,
    iterations_per_cell,
    performance_threshold,
    policy,
    solver_factory,
    journal,
    resume,
    workers,
    telemetry=None,
    strategy="fusion",
    logic=None,
    supervise=None,
    containment=None,
    chaos_process=None,
    mode="process",
    steal_seed=0,
    listen=None,
    spawn_workers=None,
    net_chaos=None,
):
    """Shard each remaining cell over a persistent worker pool.

    Cells run one at a time (each sharded ``workers`` ways) and are
    journaled in canonical order — exactly the order and bytes a serial
    run would produce. Quarantine state is aggregated across workers
    between cells: once any shard's breaker trips for a solver, later
    cells pre-quarantine it everywhere, mirroring serial mode where one
    guard object spans the campaign.

    With ``supervise`` the same cells run as supervised shard leases
    (see :func:`_run_cells_supervised`); the journal bytes are
    identical either way as long as no iteration is poisoned.
    """
    from repro.core.parallel import (
        ShardedPool,
        ShardTask,
        WorkerSpec,
        collect_shard,
        serialize_seeds,
    )

    # Sidecars are transient (removed once the campaign lands in the
    # main journal), so they carry the strategy unconditionally: a
    # resume must never splice one strategy's partial shards into
    # another's cells.
    meta = {
        "seed": config.seed,
        "iterations_per_cell": iterations_per_cell,
        "workers": workers,
        "strategy": strategy,
    }
    if config.triage is not None:
        # Like strategy: sidecar partials from a triage run must never
        # be spliced into a non-triage resume (different budgets mean
        # different unknown counts for the same iterations).
        meta["triage"] = config.triage.describe()
    if config.incremental:
        # And likewise for incremental sessions: warm and cold partial
        # shards may differ in unknown counts and must not be mixed.
        meta["incremental"] = config.incremental.describe()
    if logic:
        # A logic-restricted campaign's partial shards must never be
        # spliced into a default campaign's resume (different catalogs).
        meta["logic"] = logic
    partials = {}
    if journal is not None and resume:
        partials = load_sidecar_shards(journal.path, meta)
    spec = WorkerSpec(
        solver_factory=solver_factory,
        config=config,
        performance_threshold=performance_threshold,
        policy=policy,
        # tcp workers never see the journal's host path — the
        # coordinator records fleet shards in its own sidecar instead.
        journal_path=(
            journal.path if journal is not None and mode == "process" else None
        ),
        journal_meta=meta if mode == "process" else {},
        telemetry=telemetry.config() if telemetry is not None else None,
        containment=containment,
        chaos_process=chaos_process,
    )
    if supervise is not None:
        _run_cells_supervised(
            result,
            remaining,
            spec=spec,
            iterations_per_cell=iterations_per_cell,
            journal=journal,
            partials=partials,
            workers=workers,
            telemetry=telemetry,
            strategy=strategy,
            supervise=supervise,
            containment=containment,
            mode=mode,
            sidecar_meta=meta,
            steal_seed=steal_seed,
            listen=listen,
            spawn_workers=spawn_workers,
            net_chaos=net_chaos,
        )
        if journal is not None:
            remove_sidecars(journal.path)
        return
    quarantined = set()
    seed_text_cache = {}
    with ShardedPool(workers, spec) as pool:
        for key, _solver, seeds in remaining:
            cache_key = (key[1], key[2])  # (family, oracle): seeds shared by solvers
            if cache_key not in seed_text_cache:
                if telemetry is not None:
                    # The print phase: seeds cross the spawn boundary
                    # as SMT-LIB text.
                    with telemetry.phase("print"):
                        seed_text_cache[cache_key] = serialize_seeds(seeds)
                else:
                    seed_text_cache[cache_key] = serialize_seeds(seeds)
            texts, logics = seed_text_cache[cache_key]
            have = {
                shard: report
                for (shard, of), report in partials.get(key, {}).items()
                if of == workers
            }
            futures = {}
            for shard in range(workers):
                if len(shard_indices(iterations_per_cell, shard, workers)) == 0:
                    continue
                if shard in have:
                    continue
                futures[shard] = pool.submit(
                    ShardTask(
                        oracle=key[2],
                        seed_texts=texts,
                        logics=logics,
                        iterations=iterations_per_cell,
                        shard=shard,
                        of=workers,
                        seed=config.seed,
                        cell=key,
                        solver_names=(key[0],),
                        quarantined=tuple(sorted(quarantined)),
                        strategy=strategy,
                    )
                )
            shard_reports = dict(have)
            counters = {
                shard: {"shard": shard, "of": workers, "pid": None, "resumed": True}
                for shard in have
            }
            for shard, future in futures.items():
                payload = future.result()
                shard_reports[shard] = collect_shard(payload)
                if telemetry is not None and payload.get("telemetry") is not None:
                    telemetry.merge_snapshot(payload["telemetry"])
                counters[shard] = {
                    "shard": shard,
                    "of": workers,
                    "pid": payload["pid"],
                    "resumed": False,
                }
            for shard, report in shard_reports.items():
                counters[shard].update(report.counters())
                counters[shard]["elapsed"] = report.elapsed
            merged = merge_shard_reports(
                [shard_reports[shard] for shard in sorted(shard_reports)]
            )
            quarantined |= merged.quarantined
            result.shard_counters[key] = [
                counters[shard] for shard in sorted(counters)
            ]
            _absorb_cell(result, key, merged, journal, telemetry)
    if journal is not None:
        # Every cell is durably in the main journal now; the sidecar
        # partials have served their purpose.
        remove_sidecars(journal.path)


def _run_cells_supervised(
    result,
    remaining,
    spec,
    iterations_per_cell,
    journal,
    partials,
    workers,
    telemetry=None,
    strategy="fusion",
    supervise=True,
    containment=None,
    mode="process",
    sidecar_meta=None,
    steal_seed=0,
    listen=None,
    spawn_workers=None,
    net_chaos=None,
):
    """Run the remaining cells as supervised shard leases.

    Builds the lease backend for ``mode`` — the in-process
    :class:`~repro.core.parallel.SupervisedPoolBackend` or a socket
    :class:`~repro.distributed.endpoint.TcpFleet` — and hands the cell
    loop to the :class:`~repro.distributed.coordinator.Coordinator`:
    one supervisor spans the campaign (restart budget and counters are
    campaign-global), each cell's shards become leases whose
    checkpoints live in lease progress files next to the journal, and
    a lease re-executed after a worker death replays its completed
    iterations — the merged cell report, and therefore the journal,
    matches a failure-free run byte for byte. Poisoned iterations are
    journaled as ``poison`` entries and collected on
    ``result.poisoned``.
    """
    from repro.core.parallel import reconstruct_iteration_script
    from repro.distributed.coordinator import Coordinator
    from repro.robustness.supervisor import SupervisorPolicy

    policy = supervise if isinstance(supervise, SupervisorPolicy) else SupervisorPolicy()

    def poison_artifact(task, index):
        return reconstruct_iteration_script(
            spec.config,
            task.strategy,
            task.oracle,
            task.seed_texts,
            task.logics,
            task.seed,
            index,
        )

    def on_poison(record):
        if journal is not None and record.cell is not None:
            journal.record_poison(tuple(record.cell), record.as_dict())

    if mode == "tcp":
        from repro.distributed.endpoint import TcpFleet

        backend = TcpFleet(
            workers,
            spec,
            listen=listen or ("127.0.0.1", 0),
            steal_seed=steal_seed,
            spawn_workers=spawn_workers,
            net_chaos=net_chaos,
            telemetry=telemetry,
        )
    else:
        from repro.core.parallel import SupervisedPoolBackend

        backend = SupervisedPoolBackend(workers, spec)
    with backend:
        coordinator = Coordinator(
            backend,
            policy=policy,
            containment=containment,
            telemetry=telemetry,
            poison_artifact=poison_artifact,
            on_poison=on_poison,
        )
        coordinator.run_cells(
            result,
            remaining,
            spec=spec,
            iterations_per_cell=iterations_per_cell,
            journal=journal,
            partials=partials,
            workers=workers,
            strategy=strategy,
            sidecar_meta=sidecar_meta,
            fleet_sidecar=(mode == "tcp"),
        )
