"""The campaign runner: YinYang against buggy solvers over all corpora.

This is the offline equivalent of the paper's four-month testing
campaign, compressed: for each (solver, corpus, oracle) cell the runner
fuses seed pairs and records every bug-triggering formula, then triage
(:mod:`repro.campaign.classify`) maps records to catalog faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.classify import collect_found_faults, found_fault_objects
from repro.core.config import FusionConfig, YinYangConfig
from repro.core.yinyang import YinYang
from repro.faults.catalog import cvc4_like_catalog, z3_like_catalog
from repro.faults.faulty_solver import FaultySolver
from repro.solver.solver import ReferenceSolver, SolverConfig


def default_solvers(release="trunk", base_config=None):
    """The two solvers under test, with their catalogs attached.

    The base solver runs with the fast (short-timeout) configuration,
    the standard fuzzing setup for real solvers too.
    """
    base = ReferenceSolver(base_config or SolverConfig.fast())
    z3 = FaultySolver(base, z3_like_catalog(), "z3-like", release=release)
    cvc4 = FaultySolver(base, cvc4_like_catalog(), "cvc4-like", release=release)
    return [z3, cvc4]


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    records: list = field(default_factory=list)  # all BugRecords
    reports: dict = field(default_factory=dict)  # (solver, corpus, oracle) -> report
    catalogs: dict = field(default_factory=dict)  # solver name -> fault list
    fused_total: int = 0
    elapsed_total: float = 0.0

    def found_faults(self):
        """{solver: {fault_id: [records]}} via triage."""
        return collect_found_faults(self.records, self.catalogs)

    def found_fault_objects(self):
        return found_fault_objects(self.found_faults(), self.catalogs)

    def summary(self):
        found = self.found_faults()
        parts = [f"{self.fused_total} fused formulas"]
        for solver_name, faults in found.items():
            parts.append(f"{solver_name}: {len(faults)} distinct faults")
        return ", ".join(parts)


def run_campaign(
    corpora,
    solvers=None,
    iterations_per_cell=120,
    seed=0,
    fusion_config=None,
    performance_threshold=0.3,
):
    """Run the full campaign.

    ``corpora`` maps family name to
    :class:`~repro.core.oracle.SeedCorpus`. Returns a
    :class:`CampaignResult`.
    """
    solvers = solvers or default_solvers()
    result = CampaignResult(
        catalogs={s.name: s.active_faults() for s in solvers}
    )
    config = YinYangConfig(
        fusion=fusion_config or FusionConfig(), seed=seed
    )
    for solver in solvers:
        tool = YinYang(solver, config, performance_threshold=performance_threshold)
        for family, corpus in corpora.items():
            for oracle in ("sat", "unsat"):
                seeds = corpus.by_oracle(oracle)
                if len(seeds) < 1:
                    continue
                report = tool.test(oracle, seeds, iterations=iterations_per_cell)
                result.reports[(solver.name, family, oracle)] = report
                result.records.extend(report.bugs)
                result.fused_total += report.fused
                result.elapsed_total += report.elapsed
    return result
