"""The campaign runner: YinYang against buggy solvers over all corpora.

This is the offline equivalent of the paper's four-month testing
campaign, compressed: for each (solver, corpus, oracle) cell the runner
fuses seed pairs and records every bug-triggering formula, then triage
(:mod:`repro.campaign.classify`) maps records to catalog faults.

A long campaign is expected to be interrupted and to meet misbehaving
solvers; ``run_campaign`` therefore accepts a
:class:`~repro.robustness.policy.ResiliencePolicy` (guarded execution)
and a :class:`~repro.robustness.journal.CampaignJournal` (crash-safe
per-cell journaling with ``resume=True`` skipping completed cells).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.classify import collect_found_faults, found_fault_objects
from repro.core.config import FusionConfig, YinYangConfig
from repro.core.yinyang import YinYang
from repro.faults.catalog import cvc4_like_catalog, z3_like_catalog
from repro.faults.faulty_solver import FaultySolver
from repro.robustness.journal import CampaignJournal
from repro.smtlib.ast import fresh_scope
from repro.solver.solver import ReferenceSolver, SolverConfig


def default_solvers(release="trunk", base_config=None):
    """The two solvers under test, with their catalogs attached.

    The base solver runs with the fast (short-timeout) configuration,
    the standard fuzzing setup for real solvers too.
    """
    base = ReferenceSolver(base_config or SolverConfig.fast())
    z3 = FaultySolver(base, z3_like_catalog(), "z3-like", release=release)
    cvc4 = FaultySolver(base, cvc4_like_catalog(), "cvc4-like", release=release)
    return [z3, cvc4]


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    records: list = field(default_factory=list)  # all BugRecords
    reports: dict = field(default_factory=dict)  # (solver, corpus, oracle) -> report
    catalogs: dict = field(default_factory=dict)  # solver name -> fault list
    fused_total: int = 0
    elapsed_total: float = 0.0

    def found_faults(self):
        """{solver: {fault_id: [records]}} via triage."""
        return collect_found_faults(self.records, self.catalogs)

    def found_fault_objects(self):
        return found_fault_objects(self.found_faults(), self.catalogs)

    def resilience_counters(self):
        """Aggregated guard counters across all cell reports."""
        totals = {
            "retries": 0,
            "timeouts": 0,
            "contained_errors": 0,
            "quarantine_skips": 0,
        }
        quarantined = set()
        for report in self.reports.values():
            for key in totals:
                totals[key] += getattr(report, key, 0)
            quarantined |= getattr(report, "quarantined", set())
        totals["quarantined"] = sorted(quarantined)
        return totals

    def summary(self):
        found = self.found_faults()
        parts = [f"{self.fused_total} fused formulas"]
        for solver_name, faults in found.items():
            parts.append(f"{solver_name}: {len(faults)} distinct faults")
        counters = self.resilience_counters()
        if counters["retries"]:
            parts.append(f"{counters['retries']} retries")
        if counters["timeouts"]:
            parts.append(f"{counters['timeouts']} timeouts")
        if counters["contained_errors"]:
            parts.append(f"{counters['contained_errors']} contained errors")
        if counters["quarantined"]:
            parts.append("quarantined: " + "/".join(counters["quarantined"]))
        return ", ".join(parts)


def run_campaign(
    corpora,
    solvers=None,
    iterations_per_cell=120,
    seed=0,
    fusion_config=None,
    performance_threshold=0.3,
    policy=None,
    journal=None,
    resume=False,
):
    """Run the full campaign.

    ``corpora`` maps family name to
    :class:`~repro.core.oracle.SeedCorpus`. Returns a
    :class:`CampaignResult`.

    ``policy`` wraps every solver in a
    :class:`~repro.robustness.guard.GuardedSolver` (watchdog, retries,
    error containment, quarantine). ``journal`` (a path or a
    :class:`~repro.robustness.journal.CampaignJournal`) durably records
    each completed (solver, corpus, oracle) cell; with ``resume=True``
    completed cells are loaded from the journal instead of re-run, so a
    campaign interrupted by ^C or a crash continues where it stopped.
    Cells are deterministic given ``seed``, so an interrupted-and-
    resumed campaign produces the same records as an uninterrupted one.
    """
    solvers = solvers or default_solvers()
    if journal is not None and not isinstance(journal, CampaignJournal):
        journal = CampaignJournal(journal)
    # Solvers outside the fault-injected family (ProcessSolver, a bare
    # ReferenceSolver, chaos wrappers around one) have no fault catalog.
    result = CampaignResult(
        catalogs={
            s.name: getattr(s, "active_faults", lambda: [])() for s in solvers
        }
    )
    completed = {}
    if journal is not None:
        journal.ensure_meta(seed=seed, iterations_per_cell=iterations_per_cell)
        if resume:
            completed = journal.completed_cells()
            for key, report in completed.items():
                result.reports[key] = report
                result.records.extend(report.bugs)
                result.fused_total += report.fused
                result.elapsed_total += report.elapsed
    config = YinYangConfig(
        fusion=fusion_config or FusionConfig(), seed=seed
    )
    for solver in solvers:
        tool = YinYang(
            solver,
            config,
            performance_threshold=performance_threshold,
            policy=policy,
        )
        for family, corpus in corpora.items():
            for oracle in ("sat", "unsat"):
                key = (solver.name, family, oracle)
                if key in completed:
                    continue
                seeds = corpus.by_oracle(oracle)
                if len(seeds) < 1:
                    continue
                # Each cell runs in its own fresh-name scope so its
                # fused scripts are a pure function of (seed, cell) —
                # the property journal resume relies on.
                with fresh_scope():
                    report = tool.test(
                        oracle, seeds, iterations=iterations_per_cell
                    )
                result.reports[key] = report
                result.records.extend(report.bugs)
                result.fused_total += report.fused
                result.elapsed_total += report.elapsed
                if journal is not None:
                    journal.record_cell(key, report)
    return result
