"""The RQ3/RQ4 coverage experiments (paper Figures 11 and 12).

Protocol, mirroring Section 4.2:

1. Run the solver on all seed formulas of a benchmark — coverage
   labeled **Benchmark**.
2. Continue with YinYang-fused formulas for a budget — coverage labeled
   **YinYang** (cumulative, like re-running Gcov after the fuzzing
   session).
3. For RQ4, repeat with **ConcatFuzz** (concatenation only).

Coverage is probe-based (see :mod:`repro.coverage`): the reference
solver's line/function/branch probes stand in for Gcov counters.
"""

from __future__ import annotations

import random

from repro.core.concatfuzz import concat_scripts
from repro.core.config import FusionConfig
from repro.core.fusion import fuse
from repro.coverage.probes import coverage_session
from repro.coverage.report import CoverageComparison, CoverageReport, average_reports
from repro.errors import FusionError
from repro.observability.metrics import MetricsRegistry
from repro.observability.telemetry import publish_coverage_session
from repro.solver.result import SolverCrash


def _session_report(session, label, telemetry=None):
    """Turn a coverage session into a report *through* the metrics
    registry.

    The session's fired probes are published into a registry and the
    percentages read back out of its snapshot — the same encode/decode
    pair ``yinyang stats`` uses — so the Figure 11 numbers and the
    dashboard share one source of truth. When a campaign ``telemetry``
    is supplied, the probes also accumulate into it (value-sets union,
    so republishing across cells stays exact).
    """
    registry = MetricsRegistry()
    publish_coverage_session(registry, session)
    if telemetry is not None:
        telemetry.registry.merge_snapshot(registry.snapshot())
    return CoverageReport.from_metrics(registry.snapshot(), label)


def _run_scripts(solver, scripts, session_label):
    with coverage_session(session_label) as session:
        for script in scripts:
            try:
                solver.check_script(script)
            except SolverCrash:
                pass
    return session


def _fused_scripts(oracle, scripts, budget, seed, mode):
    rng = random.Random(seed)
    config = FusionConfig()
    out = []
    attempts = 0
    while len(out) < budget and attempts < budget * 4:
        attempts += 1
        i = rng.randrange(len(scripts))
        j = rng.randrange(len(scripts))
        try:
            if mode == "yinyang":
                out.append(fuse(oracle, scripts[i], scripts[j], rng, config).script)
            else:
                out.append(concat_scripts(oracle, scripts[i], scripts[j]))
        except FusionError:
            continue
    return out


def coverage_cell(
    solver, corpus, oracle, fuzz_budget=30, seed=0, with_concatfuzz=False, telemetry=None
):
    """One Figure 11 cell: Benchmark vs YinYang (vs ConcatFuzz) coverage.

    Returns a :class:`~repro.coverage.report.CoverageComparison`. Pass
    a campaign ``telemetry`` to also accumulate the cell's probe hits
    into its cumulative ``coverage.*`` metrics.
    """
    seeds = corpus.by_oracle(oracle)
    scripts = [s.script for s in seeds]
    if not scripts:
        empty = CoverageReport(f"{corpus.name}-{oracle}", 0.0, 0.0, 0.0)
        return CoverageComparison(corpus.name, oracle, empty, empty, empty)

    benchmark_session = _run_scripts(solver, scripts, "benchmark")
    benchmark = _session_report(
        benchmark_session, f"{corpus.name}/{oracle}/benchmark", telemetry
    )

    # YinYang coverage is cumulative on top of the benchmark run.
    fused = _fused_scripts(oracle, scripts, fuzz_budget, seed, "yinyang")
    yy_session = _run_scripts(solver, fused, "yinyang")
    yy_session.merge(benchmark_session)
    yinyang = _session_report(yy_session, f"{corpus.name}/{oracle}/yinyang", telemetry)

    concat = None
    if with_concatfuzz:
        concatenated = _fused_scripts(oracle, scripts, fuzz_budget, seed, "concat")
        cf_session = _run_scripts(solver, concatenated, "concatfuzz")
        cf_session.merge(benchmark_session)
        concat = _session_report(
            cf_session, f"{corpus.name}/{oracle}/concatfuzz", telemetry
        )

    return CoverageComparison(corpus.name, oracle, benchmark, yinyang, concat)


def coverage_table(
    solver, corpora, families, fuzz_budget=30, seed=0, with_concatfuzz=False,
    telemetry=None,
):
    """Figure 11: comparisons for each (family, oracle) cell."""
    cells = []
    for family in families:
        corpus = corpora[family]
        for oracle in ("sat", "unsat"):
            if not corpus.by_oracle(oracle):
                continue
            cells.append(
                coverage_cell(
                    solver, corpus, oracle, fuzz_budget, seed, with_concatfuzz,
                    telemetry=telemetry,
                )
            )
    return cells


def figure12_averages(cells):
    """Figure 12: Benchmark / ConcatFuzz / YinYang averaged over cells."""
    benchmark = average_reports([c.benchmark for c in cells], "Benchmark")
    yinyang = average_reports([c.yinyang for c in cells], "YinYang")
    concat_cells = [c.concatfuzz for c in cells if c.concatfuzz is not None]
    concatfuzz = average_reports(concat_cells, "ConcatFuzz")
    return benchmark, concatfuzz, yinyang
