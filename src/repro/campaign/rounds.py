"""The paper's testing-round protocol (Section 4.2, RQ1).

"To avoid duplicate bug reports, we always use the trunk versions of
the solvers for testing. Once the developers have fixed a bug, we
validate the fixed version on the rest of the formulas which triggered
bugs in the previous testing round. If the solvers passed all formulas
and no bug was triggered, we started a new testing round."

:func:`run_fix_rounds` simulates that loop: each round runs YinYang,
triages the findings, *fixes* the implicated faults (removes them from
the solver build — the developers' patch), revalidates the previous
round's triggering formulas against the patched build, and goes again
until a round finds nothing new.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.classify import attribute_fault
from repro.core.config import YinYangConfig
from repro.core.yinyang import YinYang
from repro.faults.faulty_solver import FaultySolver
from repro.solver.result import SolverCrash


@dataclass
class Round:
    """One testing round's outcome."""

    index: int
    new_fault_ids: list
    bug_count: int
    revalidation_failures: int = 0


@dataclass
class FixRoundsResult:
    rounds: list = field(default_factory=list)
    fixed_fault_ids: list = field(default_factory=list)

    @property
    def total_rounds(self):
        return len(self.rounds)

    def summary(self):
        per_round = ", ".join(
            f"round {r.index}: {len(r.new_fault_ids)} new" for r in self.rounds
        )
        return f"{len(self.fixed_fault_ids)} faults fixed over {self.total_rounds} rounds ({per_round})"


def run_fix_rounds(
    base_solver,
    catalog,
    solver_name,
    oracle,
    seeds,
    iterations_per_round=40,
    max_rounds=8,
    seed=0,
):
    """Run fix-validate-retest rounds until a round finds nothing.

    Returns a :class:`FixRoundsResult`. Each round's finds are "fixed"
    by dropping them from the active fault set before the next round —
    so round counts decrease monotonically toward zero, mirroring the
    paper's campaign cadence.
    """
    remaining = list(catalog)
    result = FixRoundsResult()
    previous_triggers = []

    for index in range(1, max_rounds + 1):
        solver = FaultySolver(base_solver, remaining, solver_name)

        # Revalidate the previous round's triggering formulas against
        # the patched build. A formula that still misbehaves either
        # (a) implicates a fault that was supposedly fixed — a failed
        # fix, which must not happen with our mechanical patches — or
        # (b) uncovers a *different*, still-active fault, which the
        # paper reported as a fresh bug; we fold those into this
        # round's finds.
        revalidation_failures = 0
        revalidation_finds = []
        for script, expected in previous_triggers:
            implicated = ""
            try:
                outcome = solver.check_script(script)
            except SolverCrash as crash:
                implicated = getattr(crash, "fault_id", "")
            else:
                if outcome.result.is_definite and str(outcome.result) != expected:
                    triggered = solver.triggered_faults(script)
                    implicated = triggered[0].fault_id if triggered else ""
            if not implicated:
                continue
            if implicated in result.fixed_fault_ids:
                revalidation_failures += 1
            else:
                revalidation_finds.append(implicated)

        tool = YinYang(solver, YinYangConfig(seed=seed + index))
        report = tool.test(oracle, seeds, iterations=iterations_per_round)

        new_ids = []
        for fault_id in revalidation_finds:
            if fault_id not in new_ids:
                new_ids.append(fault_id)
        for bug in report.bugs:
            fault_id = attribute_fault(bug)
            if fault_id and fault_id not in new_ids:
                new_ids.append(fault_id)
        result.rounds.append(
            Round(
                index=index,
                new_fault_ids=new_ids,
                bug_count=len(report.bugs),
                revalidation_failures=revalidation_failures,
            )
        )
        if not new_ids:
            break

        # "The developers fixed the bugs": drop them from the build.
        result.fixed_fault_ids.extend(new_ids)
        remaining = [f for f in remaining if f.fault_id not in new_ids]
        previous_triggers = [(bug.script, bug.oracle) for bug in report.bugs][:40]

    return result
