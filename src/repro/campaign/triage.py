"""Mutant triage: a deterministic structural difficulty predictor and
the tiered budget policy that routes mutants by it.

Fusion's campaign bottleneck is not fusing but *solving*: variable
fusion's inversion terms make many mutants nonlinear, and each one
burns the full deterministic solve budget before answering ``unknown``
(``benchmarks/results/strategy_throughput.txt``). Triage reads the
difficulty off the formula's structure — nonlinear multiplications,
quantifier depth, string/regex operator count, node count — and routes
hopeless mutants to a fail-fast budget tier, reclaiming the saved wall
clock as extra iterations.

Determinism contract (property-tested in ``tests/test_triage.py``):

- :func:`term_features` is a **pure function of the term's structure**:
  it recurses over the tree exactly as the printer does, so the same
  formula scores identically across ``fresh_scope()`` boundaries,
  interning-table states, pickling (spawn), and parse→print round
  trips. Journals therefore stay byte-identical across shard shapes
  with triage on.
- It is **total**: every node is a ``Const``/``Var``/``App``/
  ``Quantifier``, each with a defined contribution — no operator or
  sort can make it raise.
- :func:`difficulty_score` is **monotone in the nonlinear-term count**:
  adding a nonlinear multiplication strictly increases the score.

Features are cached per interned node (``_difficulty`` in the node's
``__dict__``, the same idiom as the lazy free-variable caches), so a
mutant sharing subterms with its seeds — the normal case under
hash-consing — scores in O(new nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.smtlib import theory as _theory
from repro.smtlib.ast import App, Const, Quantifier, Var
from repro.solver.budget import SolveDirective

_ZERO = (0, 0, 0)

# Difficulty-relevant operator sets, as declared by the registered
# theories: ``*``/``bvmul`` (product enumeration / shift-and-add
# blasting) and ``/``/``div``/``mod``/``bvshl``/``bvlshr`` (purified
# division constraints / barrel shifters).
_HARD_MUL_OPS = _theory.hard_mul_ops()
_HARD_DIV_OPS = _theory.hard_div_ops()

#: Per-feature weights of :func:`difficulty_score`. Nonlinear terms
#: dominate (they exhaust the enumeration budget), quantifier residue
#: sends the solver down the refutation path, and string/node counts
#: only matter in bulk.
_W_NONLINEAR = 3
_W_QUANT = 2
_STRING_OPS_PER_POINT = 16
_NODES_PER_POINT = 2048


@dataclass(frozen=True)
class DifficultyFeatures:
    """The structural features the predictor scores a formula by."""

    nonlinear: int  # multiplications of >=2 non-constant factors, etc.
    quant_depth: int  # maximum quantifier nesting depth
    string_ops: int  # str.* / re.* applications
    node_count: int  # total tree size


def _nonlinear_app(node):
    """Does this application itself contribute a nonlinear term?

    ``*`` with at least two non-constant factors, or a division-like
    operator with a non-constant divisor (purification turns those into
    multiplication constraints the nonlinear core must solve).
    """
    op = node.op
    if op in _HARD_MUL_OPS:
        non_const = 0
        for a in node.args:
            if not isinstance(a, Const):
                non_const += 1
                if non_const >= 2:
                    return True
        return False
    if op in _HARD_DIV_OPS:
        return any(not isinstance(a, Const) for a in node.args[1:])
    return False


def term_features(term):
    """The :class:`DifficultyFeatures` of one term (pure, total, cached)."""
    features = _tree_features(term)
    return DifficultyFeatures(
        nonlinear=features[0],
        quant_depth=features[1],
        string_ops=features[2],
        node_count=term.node_count,
    )


def _tree_features(term):
    """(nonlinear, quant_depth, string_ops) with tree (per-occurrence)
    semantics, matching ``node_count``: a subterm shared through
    hash-consing counts once per occurrence, so the result depends only
    on the formula's structure, never on how it was interned."""
    if isinstance(term, (Const, Var)):
        return _ZERO
    cached = term.__dict__.get("_difficulty")
    if cached is not None:
        return cached
    stack = [term]
    while stack:
        node = stack[-1]
        if isinstance(node, (Const, Var)) or "_difficulty" in node.__dict__:
            stack.pop()
            continue
        if isinstance(node, Quantifier):
            body = node.body
            below = _child_features(body)
            if below is None:
                stack.append(body)
                continue
            node.__dict__["_difficulty"] = (below[0], below[1] + 1, below[2])
            stack.pop()
            continue
        # App: fold the children (all of which must be resolved first).
        missing = [a for a in node.args if _child_features(a) is None]
        if missing:
            stack.extend(missing)
            continue
        nonlinear = 1 if _nonlinear_app(node) else 0
        quant_depth = 0
        string_ops = (
            1 if node.op.startswith("str.") or node.op.startswith("re.") else 0
        )
        for a in node.args:
            below = _child_features(a)
            nonlinear += below[0]
            string_ops += below[2]
            if below[1] > quant_depth:
                quant_depth = below[1]
        node.__dict__["_difficulty"] = (nonlinear, quant_depth, string_ops)
        stack.pop()
    return term.__dict__["_difficulty"]


def _child_features(node):
    if isinstance(node, (Const, Var)):
        return _ZERO
    return node.__dict__.get("_difficulty")


def script_features(script):
    """Features of a whole script: assertions folded like a conjunction
    (counts summed, quantifier depth maxed)."""
    nonlinear = string_ops = node_count = quant_depth = 0
    for term in script.asserts:
        below = _tree_features(term)
        nonlinear += below[0]
        string_ops += below[2]
        node_count += term.node_count
        if below[1] > quant_depth:
            quant_depth = below[1]
    return DifficultyFeatures(
        nonlinear=nonlinear,
        quant_depth=quant_depth,
        string_ops=string_ops,
        node_count=node_count,
    )


def difficulty_score(features):
    """A single integer difficulty; strictly monotone in ``nonlinear``."""
    return (
        _W_NONLINEAR * features.nonlinear
        + _W_QUANT * features.quant_depth
        + features.string_ops // _STRING_OPS_PER_POINT
        + features.node_count // _NODES_PER_POINT
    )


# ---------------------------------------------------------------------------
# The tiered budget policy
# ---------------------------------------------------------------------------

#: The easy tier runs the configured budgets unchanged but switches on
#: the fused-structure fast paths: both are sound (elimination is an
#: equisatisfiable rewrite, a guessed model is verified by evaluation
#: before it is believed), so they can speed a verdict up but never
#: change it from definite to definite.
EASY_TIER = SolveDirective(
    tier="easy", eliminate_definitions=True, model_guess=True
)

#: The hard tier halves every step budget: borderline mutants get one
#: real attempt, not the full crawl.
HARD_TIER = SolveDirective(
    tier="hard",
    rounds=(1, 2),
    nonlinear=(1, 2),
    strings=(1, 2),
    timeout=0.5,
    eliminate_definitions=True,
    model_guess=True,
)

#: The hopeless tier fails fast: 1/8th of every budget is enough for
#: the model-guess and elimination fast paths to answer the easy
#: stragglers, while a genuinely hopeless nonlinear mutant exits in
#: milliseconds instead of seconds. The denominator is deliberately 8,
#: not 16: at the deterministic config's 30 DPLL rounds, 1/8 still
#: leaves 3 rounds — enough for an eliminated unsat-fusion mutant to
#: propagate its contradiction — where 1/16 would floor to a single
#: round and turn cheap definite verdicts into unknowns.
HOPELESS_TIER = SolveDirective(
    tier="hopeless",
    rounds=(1, 8),
    nonlinear=(1, 8),
    strings=(1, 8),
    timeout=1 / 8,
    eliminate_definitions=True,
    model_guess=True,
)


@dataclass(frozen=True)
class TriagePolicy:
    """Score thresholds and the directives of the three tiers.

    Frozen and picklable: a policy rides
    :class:`~repro.core.config.YinYangConfig` across the spawn
    boundary, and every worker recomputes the tier per mutant — a pure
    function of the formula, so the routing is identical at any worker
    count.
    """

    hard_at: int = 4
    hopeless_at: int = 9
    easy: SolveDirective = EASY_TIER
    hard: SolveDirective = HARD_TIER
    hopeless: SolveDirective = HOPELESS_TIER

    def __post_init__(self):
        if self.hopeless_at < self.hard_at:
            raise ValueError(
                f"hopeless_at ({self.hopeless_at}) must be >= "
                f"hard_at ({self.hard_at})"
            )

    def tier_for(self, script):
        return self.route(script)[0]

    def directive_for(self, script):
        return self.route(script)[1]

    def route(self, script, hint=None):
        """(tier name, directive) for one mutant script.

        ``hint`` short-circuits the feature pass when the strategy
        already stamped :class:`DifficultyFeatures` on the mutant.
        """
        features = hint if isinstance(hint, DifficultyFeatures) else None
        if features is None:
            features = script_features(script)
        score = difficulty_score(features)
        if score >= self.hopeless_at:
            return "hopeless", self.hopeless
        if score >= self.hard_at:
            return "hard", self.hard
        return "easy", self.easy

    def describe(self):
        """The canonical spec string (journal meta; round-trips through
        :func:`parse_budget_tiers`)."""
        return (
            f"hard@{self.hard_at}:{self.hard.rounds[0]}/{self.hard.rounds[1]},"
            f"hopeless@{self.hopeless_at}:"
            f"{self.hopeless.rounds[0]}/{self.hopeless.rounds[1]}"
        )


def _tier_directive(name, numerator, denominator):
    ratio = (numerator, denominator)
    return SolveDirective(
        tier=name,
        rounds=ratio,
        nonlinear=ratio,
        strings=ratio,
        timeout=numerator / denominator,
        eliminate_definitions=True,
        model_guess=True,
    )


def parse_budget_tiers(spec):
    """Parse a ``--budget-tiers`` spec into a :class:`TriagePolicy`.

    Format: ``hard@SCORE:NUM/DEN,hopeless@SCORE:NUM/DEN`` — each tier
    names the score at which it starts and the rational budget scale it
    applies (e.g. ``hard@4:1/2,hopeless@9:1/16``, the default policy).
    Either tier may be omitted; the default for that tier is kept.
    """
    kwargs = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            name, rest = part.split("@", 1)
            threshold, ratio = rest.split(":", 1)
            numerator, denominator = ratio.split("/", 1)
            name = name.strip()
            threshold = int(threshold)
            numerator = int(numerator)
            denominator = int(denominator)
        except ValueError:
            raise ValueError(
                f"bad --budget-tiers entry {part!r}: "
                "expected tier@SCORE:NUM/DEN"
            ) from None
        if name not in ("hard", "hopeless"):
            raise ValueError(f"unknown budget tier {name!r} in {spec!r}")
        if denominator < 1 or numerator < 1 or numerator > denominator:
            raise ValueError(
                f"bad budget scale {numerator}/{denominator} in {part!r}: "
                "need 1 <= NUM <= DEN"
            )
        kwargs[f"{name}_at"] = threshold
        kwargs[name] = _tier_directive(name, numerator, denominator)
    if not kwargs:
        raise ValueError(f"empty --budget-tiers spec {spec!r}")
    return TriagePolicy(**kwargs)
