"""Attribution of bug records to catalog faults (bug triage).

In the paper, each bug-triggering formula is reduced and reported, and
developers map reports to root causes. Here the triage is mechanical:
each :class:`~repro.core.yinyang.BugRecord` carries the internal fault
note the buggy solver emitted (the equivalent of the stderr/stack
signature a human would match on), and records whose notes name the
same fault are duplicates of one report.
"""

from __future__ import annotations

import re

_FAULT_NOTE = re.compile(r"fault:([A-Za-z0-9_.-]+)")


def attribute_fault(record):
    """The fault id responsible for a bug record, or ``""``."""
    note = record.note or ""
    match = _FAULT_NOTE.search(note)
    if match:
        return match.group(1)
    # Crash records carry the bare fault id; unknown records embed it
    # in parentheses.
    match = re.search(r"\(([A-Za-z0-9_.-]+)\)", note)
    if match and "-" in match.group(1):
        return match.group(1)
    if note and " " not in note:
        return note
    return ""


def collect_found_faults(records, catalogs):
    """Map bug records to catalog faults.

    ``catalogs`` maps solver name to its fault list. Returns
    ``{solver_name: {fault_id: [records...]}}`` covering only records
    that attribute to a known fault.
    """
    by_id = {}
    for solver_name, faults in catalogs.items():
        by_id[solver_name] = {f.fault_id: f for f in faults}
    found = {name: {} for name in catalogs}
    for record in records:
        fault_id = attribute_fault(record)
        if not fault_id:
            continue
        for solver_name, table in by_id.items():
            if record.solver == solver_name and fault_id in table:
                found[solver_name].setdefault(fault_id, []).append(record)
    return found


def found_fault_objects(found, catalogs):
    """Flatten a ``collect_found_faults`` result into fault objects."""
    out = []
    for solver_name, faults in catalogs.items():
        table = {f.fault_id: f for f in faults}
        for fault_id in found.get(solver_name, {}):
            out.append(table[fault_id])
    return out
