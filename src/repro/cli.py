"""The ``yinyang`` command line.

Mirrors the paper's tool surface: point it at seed files (or a
generated corpus) and a solver under test, and it fuses seed pairs and
reports inconsistencies. The reproduction adds subcommands for the
built-in buggy solvers, seed generation, single-shot fusion, and bug
reduction.

Examples::

    yinyang fuse --oracle sat seed1.smt2 seed2.smt2
    yinyang test --oracle unsat --solver z3-like --corpus QF_S --iterations 200
    yinyang test --oracle sat --strategy opfuzz --corpus QF_LIA
    yinyang generate --family QF_NRA --oracle unsat --count 5
    yinyang check formula.smt2 --solver reference
    yinyang strategies
    yinyang campaign --mode tcp --workers 2 --deterministic
    yinyang worker --connect 127.0.0.1:7777
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import FusionConfig, YinYangConfig
from repro.core.fusion import fuse_scripts
from repro.core.yinyang import YinYang
from repro.faults.catalog import catalog_for
from repro.faults.faulty_solver import FaultySolver
from repro.seeds import build_corpus
from repro.smtlib.parser import parse_script
from repro.smtlib.printer import print_script
from repro.solver.result import SolverCrash
from repro.solver.solver import ReferenceSolver
from repro.strategies import iter_strategies, strategy_names


def _load_script(path):
    with open(path, encoding="utf-8") as handle:
        return parse_script(handle.read())


def make_solver(name, release="trunk"):
    """Instantiate a solver by name: reference | z3-like | cvc4-like."""
    if name == "reference":
        return ReferenceSolver()
    return FaultySolver(ReferenceSolver(), catalog_for(name), name, release=release)


def make_solver_list(name, release="trunk"):
    """A one-solver list for process-mode worker factories.

    Module-level (so :func:`functools.partial` over it pickles) — each
    spawned worker rebuilds its own solver instance from the name.
    """
    return [make_solver(name, release)]


def _solver_factory(args):
    import functools

    return functools.partial(make_solver_list, args.solver, args.release)


def _policy_from_args(args):
    """A ResiliencePolicy when any hardening flag was given, else None."""
    if not (args.retries or args.check_timeout or args.quarantine_after):
        return None
    from repro.robustness import ResiliencePolicy

    return ResiliencePolicy(
        check_timeout=args.check_timeout,
        retries=args.retries,
        quarantine_after=args.quarantine_after,
    )


def _supervision_from_args(args):
    """(supervise, containment) when any supervision flag was given.

    Returns ``(None, None)`` otherwise. ``--supervise`` alone takes
    the default policy; any tuning or containment flag implies
    supervision (which in turn requires ``--mode process``).
    """
    tuned = (
        args.max_worker_restarts is not None
        or args.max_shard_retries is not None
        or args.heartbeat_timeout is not None
    )
    contained = (
        args.worker_mem_limit is not None or args.worker_cpu_limit is not None
    )
    if not (args.supervise or tuned or contained):
        return None, None
    from repro.robustness import ContainmentPolicy, SupervisorPolicy

    policy_kwargs = {}
    if args.max_worker_restarts is not None:
        policy_kwargs["max_worker_restarts"] = args.max_worker_restarts
    if args.max_shard_retries is not None:
        policy_kwargs["max_shard_retries"] = args.max_shard_retries
    if args.heartbeat_timeout is not None:
        policy_kwargs["heartbeat_timeout"] = args.heartbeat_timeout
    supervise = SupervisorPolicy(**policy_kwargs)
    containment = None
    if contained:
        containment = ContainmentPolicy(
            mem_limit_mb=args.worker_mem_limit,
            cpu_limit_seconds=args.worker_cpu_limit,
        )
    return supervise, containment


def _telemetry_from_args(args):
    """A Telemetry when any observability flag was given, else None."""
    if not (args.metrics or args.trace or getattr(args, "coverage", False)):
        return None
    from repro.observability import Telemetry

    return Telemetry(
        trace=args.trace,
        profile=True,
        coverage=getattr(args, "coverage", False),
    )


def _finish_telemetry(telemetry, args):
    """Write the metrics sidecar (out-of-band, never the journal)."""
    if telemetry is None:
        return
    try:
        if args.metrics:
            telemetry.write(args.metrics)
            print(f"metrics written to {args.metrics}")
        elif args.trace:
            # No sidecar requested: show the phase profile directly.
            from repro.campaign.report import render_table
            from repro.observability.trace import phase_rows

            rows = [
                (name, calls, f"{total:.3f}s", f"{mean * 1e3:.2f}ms")
                for name, calls, total, mean, _p90 in phase_rows(
                    telemetry.snapshot()
                )
            ]
            if rows:
                print(
                    render_table(
                        ["phase", "calls", "total", "mean"],
                        rows,
                        "Phase profile (wall time)",
                    )
                )
    finally:
        telemetry.close()


def _add_telemetry_flags(parser, coverage=False):
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="collect campaign metrics and write them to PATH as JSON "
        "(a sidecar — journal bytes are unaffected)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="trace per-phase wall times (seed-pick/fuse/solve/oracle-check) "
        "into fixed-bucket histograms",
    )
    if coverage:
        parser.add_argument(
            "--coverage",
            action="store_true",
            help="accumulate solver probe coverage across all cells into "
            "the metrics (cumulative, not per-cell)",
        )


def _add_strategy_flag(parser):
    parser.add_argument(
        "--strategy",
        choices=strategy_names(),
        default="fusion",
        help="mutation strategy (see `yinyang strategies`); opfuzz uses a "
        "differential oracle instead of fusion's metamorphic one",
    )


def _add_triage_flags(parser):
    parser.add_argument(
        "--triage",
        action="store_true",
        help="route each mutant to a solve-budget tier by structural "
        "difficulty (nonlinear terms, quantifier depth, string ops, "
        "size); hopeless mutants fail fast instead of burning the "
        "full budget",
    )
    parser.add_argument(
        "--budget-tiers",
        default=None,
        metavar="SPEC",
        help="triage tier spec `hard@SCORE:NUM/DEN,hopeless@SCORE:NUM/DEN` "
        "(default hard@4:1/2,hopeless@9:1/8); implies --triage",
    )


def _triage_from_args(args):
    """A TriagePolicy when a triage flag was given, else None."""
    if args.budget_tiers:
        from repro.campaign.triage import parse_budget_tiers

        return parse_budget_tiers(args.budget_tiers)
    if args.triage:
        from repro.campaign.triage import TriagePolicy

        return TriagePolicy()
    return None


def _add_incremental_flag(parser):
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="per-cell incremental solver sessions: reuse outcome/theory "
        "caches and assumption-guarded warm SAT starts across the "
        "shared-seed mutant stream (answer-invariant; journals stay "
        "byte-identical across modes and worker counts)",
    )


def _incremental_from_args(args):
    """A SessionConfig when --incremental was given, else None."""
    if getattr(args, "incremental", False):
        from repro.solver.session import SessionConfig

        return SessionConfig()
    return None


def _add_resilience_flags(parser):
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry transient solver failures this many times (capped backoff)",
    )
    parser.add_argument(
        "--check-timeout",
        type=float,
        default=None,
        help="wall-clock deadline per check in seconds (watchdog)",
    )
    parser.add_argument(
        "--quarantine-after",
        type=int,
        default=None,
        help="quarantine a solver after N consecutive crashes/timeouts",
    )


def _cmd_fuse(args):
    phi1 = _load_script(args.seeds[0])
    phi2 = _load_script(args.seeds[1])
    config = FusionConfig(
        max_pairs=args.pairs, substitution_probability=args.probability
    )
    fused = fuse_scripts(args.oracle, phi1, phi2, seed=args.seed, config=config)
    sys.stdout.write(print_script(fused))
    return 0


def _cmd_check(args):
    solver = make_solver(args.solver, args.release)
    script = _load_script(args.file)
    try:
        outcome = solver.check_script(script)
    except SolverCrash as crash:
        print(f"crash: {crash}")
        return 2
    print(outcome.result)
    return 0


def _cmd_generate(args):
    corpus = build_corpus(args.family, scale=0.0001, seed=args.seed)
    wanted = [s for s in corpus.seeds if s.oracle == args.oracle]
    import random

    from repro.seeds.corpus import _generate

    rng = random.Random(args.seed)
    while len(wanted) < args.count:
        wanted.append(_generate(args.family, args.oracle, rng))
    for seed in wanted[: args.count]:
        sys.stdout.write(f"; oracle: {seed.oracle}  logic: {seed.logic}\n")
        sys.stdout.write(print_script(seed.script))
        sys.stdout.write("\n")
    return 0


def _cmd_reduce(args):
    buggy = make_solver(args.solver, args.release)
    trusted = make_solver("reference")
    script = _load_script(args.file)
    from repro.reduce import reduce_script
    from repro.solver.result import SolverResult

    if args.expect == "crash":

        def still_buggy(candidate):
            try:
                buggy.check_script(candidate)
            except SolverCrash:
                return True
            return False

    else:
        expected = SolverResult.from_string(args.expect)

        def still_buggy(candidate):
            try:
                outcome = buggy.check_script(candidate)
            except SolverCrash:
                return False
            if outcome.result is not expected.flipped():
                return False
            return trusted.check_script(candidate).result is not expected.flipped()

    reduced = reduce_script(script, still_buggy)
    sys.stdout.write(print_script(reduced))
    return 0


def _cmd_worker(args):
    """Serve a fleet coordinator: ``yinyang worker --connect HOST:PORT``."""
    from repro.distributed import parse_net_chaos, run_worker

    net_chaos = parse_net_chaos(args.net_chaos) if args.net_chaos else None
    return run_worker(
        args.connect,
        net_chaos=net_chaos,
        codec=args.codec,
        connect_timeout=args.connect_timeout,
    )


def _cmd_campaign(args):
    from repro.campaign import (
        figure8a_rows,
        figure8b_rows,
        figure8c_rows,
        render_shard_table,
        render_table,
        run_campaign,
    )
    from repro.seeds import build_all_corpora

    if args.resume and not args.journal:
        print("--resume requires --journal", file=sys.stderr)
        return 2
    logic = getattr(args, "logic", None)
    if logic:
        # A logic-restricted campaign: one corpus family, with the
        # matching fault catalogs (QF_BV swaps in the BV catalog).
        corpora = {logic: build_corpus(logic, scale=args.scale, seed=args.seed)}
    else:
        corpora = build_all_corpora(scale=args.scale, seed=args.seed)
    solver_factory = None
    performance_threshold = args.perf_threshold or None
    if args.deterministic:
        # Reproducible byte-for-byte: no wall-clock solver deadline and
        # no wall-clock performance classification.
        from repro.campaign import solver_factory_for_logic

        solver_factory = solver_factory_for_logic(logic, deterministic=True)
        performance_threshold = None
    elif logic:
        from repro.campaign import solver_factory_for_logic

        solver_factory = solver_factory_for_logic(logic)
    telemetry = _telemetry_from_args(args)
    supervise, containment = _supervision_from_args(args)
    if supervise is not None and args.mode not in ("process", "tcp"):
        print(
            "--supervise and worker limits require --mode process or tcp",
            file=sys.stderr,
        )
        return 2
    listen = None
    if args.listen:
        from repro.distributed.protocol import parse_address

        listen = parse_address(args.listen)
    net_chaos = None
    if args.net_chaos:
        from repro.distributed import parse_net_chaos

        net_chaos = parse_net_chaos(args.net_chaos)
    result = run_campaign(
        corpora,
        iterations_per_cell=args.iterations,
        seed=args.seed,
        performance_threshold=performance_threshold,
        policy=_policy_from_args(args),
        journal=args.journal,
        resume=args.resume,
        mode=args.mode,
        workers=args.workers,
        solver_factory=solver_factory,
        telemetry=telemetry,
        strategy=args.strategy,
        supervise=supervise,
        containment=containment,
        triage=_triage_from_args(args),
        incremental=_incremental_from_args(args),
        logic=logic,
        steal_seed=args.steal_seed,
        listen=listen,
        spawn_workers=args.spawn_workers,
        net_chaos=net_chaos,
    )
    print(result.summary())
    _finish_telemetry(telemetry, args)
    shard_table = render_shard_table(result)
    if shard_table:
        print(shard_table)
    headers = ["", "Z3", "CVC4", "Z3(paper)", "CVC4(paper)"]
    print(render_table(headers, figure8a_rows(result), "Figure 8a"))
    print(render_table(headers, figure8b_rows(result), "Figure 8b"))
    print(render_table(headers, figure8c_rows(result), "Figure 8c"))
    return 0


def _cmd_test(args):
    solver = make_solver(args.solver, args.release)
    corpus = build_corpus(args.corpus, scale=args.scale, seed=args.seed)
    seeds = corpus.by_oracle(args.oracle)
    if not seeds:
        print(f"no {args.oracle} seeds in corpus {args.corpus}", file=sys.stderr)
        return 1
    config = YinYangConfig(
        fusion=FusionConfig(
            max_pairs=args.pairs, substitution_probability=args.probability
        ),
        seed=args.seed,
        triage=_triage_from_args(args),
        incremental=_incremental_from_args(args),
    )
    telemetry = _telemetry_from_args(args)
    tool = YinYang(
        solver,
        config,
        performance_threshold=args.perf_threshold,
        policy=_policy_from_args(args),
        telemetry=telemetry,
        strategy=args.strategy,
    )
    mode = args.mode
    workers = args.workers
    if mode is None:
        # Back-compat: --threads N alone selects thread mode.
        mode = "thread" if args.threads > 1 else "serial"
        workers = workers or args.threads
    report = tool.test(
        args.oracle,
        seeds,
        iterations=args.iterations,
        mode=mode,
        workers=workers or 1,
        solver_factory=_solver_factory(args) if mode == "process" else None,
    )
    print(report.summary())
    print(f"throughput: {report.throughput:.1f} fused formulas/s")
    _finish_telemetry(telemetry, args)
    for i, bug in enumerate(report.bugs[: args.show]):
        print(f"--- bug {i}: {bug}")
        sys.stdout.write(print_script(bug.script))
    return 0


def _cmd_strategies(args):
    from repro.campaign.report import render_table

    rows = [
        (name, str(seeds), kind, theories, "/".join(s.logics()), summary)
        for s in iter_strategies()
        for name, seeds, kind, theories, summary in (s.describe(),)
    ]
    print(
        render_table(
            ["strategy", "seeds/iter", "oracle", "theories", "logics", "description"],
            rows,
            "Registered mutation strategies",
        )
    )
    return 0


def _cmd_stats(args):
    from repro.observability.stats import render_stats
    from repro.observability.telemetry import load_snapshot

    snapshot = load_snapshot(args.metrics) if args.metrics else None
    sys.stdout.write(render_stats(args.journal, snapshot))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="yinyang",
        description="Semantic Fusion testing for SMT solvers (PLDI 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fuse = sub.add_parser("fuse", help="fuse two seed scripts once")
    p_fuse.add_argument("seeds", nargs=2, help="two SMT-LIB files with equal satisfiability")
    p_fuse.add_argument("--oracle", choices=["sat", "unsat"], required=True)
    p_fuse.add_argument("--seed", type=int, default=0)
    p_fuse.add_argument("--pairs", type=int, default=2)
    p_fuse.add_argument("--probability", type=float, default=0.5)
    p_fuse.set_defaults(func=_cmd_fuse)

    p_check = sub.add_parser("check", help="run a solver on one script")
    p_check.add_argument("file")
    p_check.add_argument(
        "--solver", choices=["reference", "z3-like", "cvc4-like"], default="reference"
    )
    p_check.add_argument("--release", default="trunk")
    p_check.set_defaults(func=_cmd_check)

    p_gen = sub.add_parser("generate", help="generate labeled seed formulas")
    p_gen.add_argument("--family", required=True)
    p_gen.add_argument("--oracle", choices=["sat", "unsat"], default="sat")
    p_gen.add_argument("--count", type=int, default=3)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.set_defaults(func=_cmd_generate)

    p_reduce = sub.add_parser("reduce", help="reduce a bug-triggering script")
    p_reduce.add_argument("file")
    p_reduce.add_argument("--solver", choices=["z3-like", "cvc4-like"], default="z3-like")
    p_reduce.add_argument("--release", default="trunk")
    p_reduce.add_argument(
        "--expect",
        choices=["sat", "unsat", "crash"],
        required=True,
        help="the ground-truth oracle (or 'crash' for crash bugs)",
    )
    p_reduce.set_defaults(func=_cmd_reduce)

    p_campaign = sub.add_parser("campaign", help="run the full Figure 8 campaign")
    p_campaign.add_argument("--scale", type=float, default=0.002)
    p_campaign.add_argument("--iterations", type=int, default=30)
    p_campaign.add_argument("--seed", type=int, default=0)
    p_campaign.add_argument(
        "--perf-threshold",
        type=float,
        default=0.3,
        help="wall-clock seconds before a check counts as a performance "
        "bug; 0 disables (timing-independent, hence fully deterministic)",
    )
    p_campaign.add_argument(
        "--deterministic",
        action="store_true",
        help="remove all wall-clock dependence (solver deadlines, "
        "performance classification): identical journals on every "
        "run, any mode, any worker count",
    )
    p_campaign.add_argument(
        "--logic",
        default=None,
        metavar="LOGIC",
        help="restrict the campaign to one logic's corpus and fault "
        "catalog (e.g. QF_BV); default: all Figure 7 families",
    )
    p_campaign.add_argument(
        "--mode",
        choices=["serial", "thread", "process", "tcp"],
        default="serial",
        help="execution mode: process shards each cell over a worker "
        "pool; tcp leases shards to a socket worker fleet "
        "(always supervised)",
    )
    p_campaign.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard count for --mode thread/process/tcp",
    )
    p_campaign.add_argument(
        "--steal-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the tcp fleet's work-stealing permutation (any "
        "seed produces identical journal bytes — vary it to check)",
    )
    p_campaign.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="tcp coordinator bind address (default 127.0.0.1 on an "
        "ephemeral port); use with --spawn-workers 0 to serve "
        "workers started in other terminals via `yinyang worker`",
    )
    p_campaign.add_argument(
        "--spawn-workers",
        type=int,
        default=None,
        metavar="N",
        help="local `yinyang worker` processes the tcp coordinator "
        "starts itself (default: --workers; 0 = external workers only)",
    )
    p_campaign.add_argument(
        "--net-chaos",
        default=None,
        metavar="SPEC",
        help="seeded network fault plan for --mode tcp, e.g. "
        "'disconnect=3,11;drop=0.2;dup=0.2;delay=0.05;seed=9' "
        "(recovery testing; journals must stay byte-identical)",
    )
    _add_strategy_flag(p_campaign)
    _add_triage_flags(p_campaign)
    _add_incremental_flag(p_campaign)
    _add_resilience_flags(p_campaign)
    _add_telemetry_flags(p_campaign, coverage=True)
    p_campaign.add_argument(
        "--supervise",
        action="store_true",
        help="run --mode process under the self-healing coordinator: "
        "dead/hung workers are respawned, shard leases resume from "
        "checkpoints, repeat-killer iterations are quarantined",
    )
    p_campaign.add_argument(
        "--max-worker-restarts",
        type=int,
        default=None,
        metavar="N",
        help="worker-pool respawns allowed before the campaign gives up "
        "(implies --supervise; default 8)",
    )
    p_campaign.add_argument(
        "--max-shard-retries",
        type=int,
        default=None,
        metavar="N",
        help="re-executions of a dying shard lease before its iteration "
        "range is bisected to isolate the killer (implies --supervise; "
        "default 2)",
    )
    p_campaign.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill a worker whose lease heartbeat goes stale this long "
        "(implies --supervise; default off)",
    )
    p_campaign.add_argument(
        "--worker-mem-limit",
        type=float,
        default=None,
        metavar="MB",
        help="RLIMIT_AS ceiling per worker process in megabytes "
        "(implies --supervise)",
    )
    p_campaign.add_argument(
        "--worker-cpu-limit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="RLIMIT_CPU ceiling per worker process in CPU-seconds "
        "(implies --supervise)",
    )
    p_campaign.add_argument(
        "--journal",
        default=None,
        help="crash-safe JSONL journal of completed campaign cells",
    )
    p_campaign.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already completed in --journal",
    )
    p_campaign.set_defaults(func=_cmd_campaign)

    p_stats = sub.add_parser(
        "stats", help="render a campaign dashboard from a journal (+ metrics)"
    )
    p_stats.add_argument(
        "--journal", required=True, help="campaign journal written by `campaign`"
    )
    p_stats.add_argument(
        "--metrics",
        default=None,
        help="metrics sidecar written by `campaign --metrics`",
    )
    p_stats.set_defaults(func=_cmd_stats)

    p_test = sub.add_parser("test", help="run the YinYang loop (Algorithm 1)")
    p_test.add_argument(
        "--solver", choices=["reference", "z3-like", "cvc4-like"], default="z3-like"
    )
    p_test.add_argument("--release", default="trunk")
    p_test.add_argument("--corpus", default="QF_S")
    p_test.add_argument("--oracle", choices=["sat", "unsat"], required=True)
    p_test.add_argument("--iterations", type=int, default=100)
    p_test.add_argument("--scale", type=float, default=0.002)
    p_test.add_argument("--seed", type=int, default=0)
    p_test.add_argument("--pairs", type=int, default=2)
    p_test.add_argument("--probability", type=float, default=0.5)
    p_test.add_argument(
        "--threads",
        type=int,
        default=1,
        help="legacy alias for --mode thread --workers N",
    )
    p_test.add_argument(
        "--mode",
        choices=["serial", "thread", "process"],
        default=None,
        help="execution mode (process: per-worker solvers and caches)",
    )
    p_test.add_argument(
        "--workers", type=int, default=None, help="shard count for thread/process mode"
    )
    p_test.add_argument("--perf-threshold", type=float, default=0.3)
    p_test.add_argument("--show", type=int, default=2, help="bug scripts to print")
    _add_strategy_flag(p_test)
    _add_triage_flags(p_test)
    _add_incremental_flag(p_test)
    _add_resilience_flags(p_test)
    _add_telemetry_flags(p_test)
    p_test.set_defaults(func=_cmd_test)

    p_strategies = sub.add_parser(
        "strategies", help="list the registered mutation strategies"
    )
    p_strategies.set_defaults(func=_cmd_strategies)

    p_worker = sub.add_parser(
        "worker",
        help="serve a fleet coordinator: pull campaign leases over tcp",
    )
    p_worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the coordinator's listen address (`campaign --mode tcp --listen`)",
    )
    p_worker.add_argument(
        "--net-chaos",
        default=None,
        metavar="SPEC",
        help="override the coordinator's network fault plan (testing)",
    )
    p_worker.add_argument(
        "--codec",
        choices=["json", "msgpack"],
        default="json",
        help="frame payload codec (msgpack only when installed)",
    )
    p_worker.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="keep retrying the connection this long before giving up",
    )
    p_worker.set_defaults(func=_cmd_worker)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
