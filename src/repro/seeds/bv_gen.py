"""Bit-vector seed generation (QF_BV).

Mirrors :mod:`repro.seeds.arith_gen`: satisfiable seeds are built *from
a model* — random bit-vector terms are evaluated exactly under the
model and a relation that holds is asserted, so the ``sat`` label is
certain and the witnessing model ships with the seed.  Unsatisfiable
seeds embed one of a library of modular-arithmetic contradiction
templates (algebraic identities that the bit-blasted solver must
refute) under satisfiable-looking noise.
"""

from __future__ import annotations

import random

from repro.core.oracle import LabeledSeed
from repro.errors import EvaluationError
from repro.seeds.spec import LOGICS
from repro.semantics.evaluator import evaluate
from repro.semantics.model import Model
from repro.smtlib import builder as b
from repro.smtlib.ast import (
    Assert,
    CheckSat,
    DeclareFun,
    Script,
    SetLogic,
    free_vars,
    mk_var,
)
from repro.smtlib.bitvec import GENERATOR_WIDTHS, bv_const
from repro.smtlib.sorts import BOOL, bitvec_sort


def _random_value(width, rng):
    return rng.randint(0, (1 << width) - 1)


def _random_term(variables, rng, width, depth=2):
    """A random bit-vector term over ``variables`` (all of ``width``)."""
    roll = rng.random()
    if depth <= 0 or roll < 0.35:
        if rng.random() < 0.7 and variables:
            return rng.choice(variables)
        return bv_const(_random_value(width, rng), width)
    if roll < 0.45:
        return b.bvnot(_random_term(variables, rng, width, depth - 1))
    left = _random_term(variables, rng, width, depth - 1)
    right = _random_term(variables, rng, width, depth - 1)
    op = rng.choice(
        [
            b.bvadd,
            b.bvadd,
            b.bvsub,
            b.bvand,
            b.bvor,
            b.bvxor,
            b.bvmul,
            b.bvshl,
            b.bvlshr,
            "slice",
        ]
    )
    if op == "slice":
        # Width-preserving concat/extract: the low ``width`` bits of
        # (concat left right) are exactly ``right``, but the slicing
        # structure exercises the blaster's width bookkeeping.
        return b.bv_extract(width - 1, 0, b.bv_concat(left, right))
    return op(left, right)


def _true_atom(term, model, rng, width):
    """An atom over ``term`` that holds under ``model``."""
    value = evaluate(term, model)
    top = (1 << width) - 1
    roll = rng.random()
    if roll < 0.35:
        return b.eq(term, bv_const(value, width))
    if roll < 0.55 and value < top:
        bound = rng.randint(value + 1, top)
        return b.bvult(term, bv_const(bound, width))
    if roll < 0.75 and value > 0:
        bound = rng.randint(0, value - 1)
        return b.bvult(bv_const(bound, width), term)
    return b.bvule(term, bv_const(rng.randint(value, top), width))


def _structured_assert(atom, variables, model, rng, bool_pool):
    """Wrap a true atom in boolean structure that stays true."""
    roll = rng.random()
    if roll < 0.5:
        return [atom]
    if roll < 0.65:
        # Paper phi1 style: (= w atom) and assert w.
        w = mk_var(f"w{len(bool_pool)}", BOOL)
        bool_pool.append(w)
        model[w.name] = True
        return [b.eq(w, atom), w]
    if roll < 0.8:
        width = _width_of(variables[0])
        other = _random_term(variables, rng, width)
        noise = b.bvule(other, bv_const(_random_value(width, rng), width))
        branches = [atom, noise]
        rng.shuffle(branches)
        return [b.or_(*branches)]
    if roll < 0.9:
        return [b.not_(b.not_(atom))]
    # ite with the condition known under the model.
    width = _width_of(variables[0])
    cond_var = rng.choice(variables)
    cond = b.bvule(cond_var, bv_const(model[cond_var.name], width))
    return [b.ite(cond, atom, b.eq(cond_var, cond_var))]


def _width_of(var):
    from repro.smtlib.sorts import bitvec_width

    return bitvec_width(var.sort)


# ---------------------------------------------------------------------------
# Contradiction templates (the UNSAT library)
# ---------------------------------------------------------------------------


def _contradiction(variables, rng, width):
    """A list of assertions that cannot all hold (modulo 2^width)."""
    x = rng.choice(variables)
    y = rng.choice(variables)
    kind = rng.choice(
        ["ult-window", "neg-not", "or-below-and", "extract-concat", "diseq", "shift"]
    )
    if kind == "ult-window":
        # Unsigned order is strict: x < y and y < x cannot both hold.
        return [b.bvult(x, y), b.bvult(y, x)]
    if kind == "neg-not":
        # bvneg x = (bvnot x) + 1, so they are never equal.
        return [b.eq(b.bvneg(x), b.bvnot(x))]
    if kind == "or-below-and":
        # Bitwise AND is a lower bound of OR: or < and is impossible.
        return [b.bvult(b.bvor(x, y), b.bvand(x, y))]
    if kind == "extract-concat":
        # The low bits of (concat y x) are exactly x.
        return [b.distinct(b.bv_extract(width - 1, 0, b.bv_concat(y, x)), x)]
    if kind == "diseq":
        return [b.distinct(x, x)]
    # shift: (c1 + x) + c2 != (c1 + c2) + x, the paper's phi3 mod 2^w.
    c1 = _random_value(width, rng)
    c2 = _random_value(width, rng)
    lhs = b.bvadd(b.bvadd(bv_const(c1, width), x), bv_const(c2, width))
    rhs = b.bvadd(bv_const((c1 + c2) % (1 << width), width), x)
    return [b.not_(b.eq(lhs, rhs))]


def _noise_atom(variables, rng, width):
    term = _random_term(variables, rng, width)
    bound = bv_const(_random_value(width, rng), width)
    op = rng.choice([b.bvult, b.bvule, b.eq])
    if op is b.bvult and rng.random() < 0.5:
        return op(bound, term)
    return op(term, bound)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def generate_bv_seed(logic_name, oracle, rng=None, num_vars=None):
    """Generate one labeled QF_BV seed.

    Returns a :class:`~repro.core.oracle.LabeledSeed`; sat seeds carry
    their witnessing model.
    """
    spec = LOGICS[logic_name]
    rng = rng or random.Random()
    width = rng.choice(GENERATOR_WIDTHS)
    sort = bitvec_sort(width)
    n = num_vars or rng.randint(2, 4)
    variables = [mk_var(f"b{i}", sort) for i in range(n)]

    if oracle == "sat":
        return _generate_sat(spec, variables, width, rng)
    return _generate_unsat(spec, variables, width, rng)


def _generate_sat(spec, variables, width, rng):
    model = Model({v.name: _random_value(width, rng) for v in variables})
    bool_pool = []
    asserts = []
    for _ in range(rng.randint(2, 5)):
        term = _random_term(variables, rng, width)
        try:
            atom = _true_atom(term, model, rng, width)
        except EvaluationError:  # pragma: no cover - defensive
            continue
        asserts.extend(_structured_assert(atom, variables, model, rng, bool_pool))
    if not asserts:
        asserts = [b.bvule(variables[0], bv_const((1 << width) - 1, width))]
    complete = model.complete(variables)
    for term in asserts:
        if not evaluate(term, complete):  # pragma: no cover - generator invariant
            raise AssertionError("generated sat seed is not satisfied by its model")
    script = _finish(spec, variables + bool_pool, asserts)
    return LabeledSeed(script, "sat", spec.name, complete, origin="bv-gen")


def _generate_unsat(spec, variables, width, rng):
    asserts = list(_contradiction(variables, rng, width))
    for _ in range(rng.randint(0, 3)):
        asserts.append(_noise_atom(variables, rng, width))
    rng.shuffle(asserts)
    extra_vars = sorted(
        {v for t in asserts for v in free_vars(t)} - set(variables),
        key=lambda v: v.name,
    )
    script = _finish(spec, variables + extra_vars, asserts)
    return LabeledSeed(script, "unsat", spec.name, None, origin="bv-gen")


def _finish(spec, variables, asserts):
    commands = [SetLogic(spec.name)]
    for var in variables:
        commands.append(DeclareFun(var.name, (), var.sort))
    for term in asserts:
        commands.append(Assert(term))
    commands.append(CheckSat())
    return Script(commands)
