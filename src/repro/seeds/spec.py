"""Logic descriptors and the paper's seed-corpus shape (Figure 7)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.smtlib.sorts import INT, REAL, STRING, bitvec_sort


@dataclass(frozen=True)
class LogicSpec:
    """An SMT-LIB logic as used in the paper's evaluation."""

    name: str
    sort: object  # dominant variable sort
    quantified: bool
    nonlinear: bool
    strings: bool = False
    bitvec: bool = False

    @property
    def family(self):
        if self.bitvec:
            return "bitvector"
        if self.strings:
            return "string"
        return "arithmetic"


LOGICS = {
    "LIA": LogicSpec("LIA", INT, quantified=True, nonlinear=False),
    "LRA": LogicSpec("LRA", REAL, quantified=True, nonlinear=False),
    "NRA": LogicSpec("NRA", REAL, quantified=True, nonlinear=True),
    "NIA": LogicSpec("NIA", INT, quantified=True, nonlinear=True),
    "QF_LIA": LogicSpec("QF_LIA", INT, quantified=False, nonlinear=False),
    "QF_LRA": LogicSpec("QF_LRA", REAL, quantified=False, nonlinear=False),
    "QF_NRA": LogicSpec("QF_NRA", REAL, quantified=False, nonlinear=True),
    "QF_NIA": LogicSpec("QF_NIA", INT, quantified=False, nonlinear=True),
    "QF_S": LogicSpec("QF_S", STRING, quantified=False, nonlinear=False, strings=True),
    "QF_SLIA": LogicSpec(
        "QF_SLIA", STRING, quantified=False, nonlinear=False, strings=True
    ),
    "QF_BV": LogicSpec(
        "QF_BV", bitvec_sort(8), quantified=False, nonlinear=False, bitvec=True
    ),
}

# Figure 7 of the paper: formula counts per benchmark (#UNSAT, #SAT).
# NRA has no satisfiable seeds in the SMT-LIB suite the paper used.
PAPER_SEED_COUNTS = {
    "LIA": (203, 139),
    "LRA": (1316, 714),
    "NRA": (3798, 0),
    "QF_LIA": (1191, 1318),
    "QF_LRA": (384, 522),
    "QF_NRA": (4660, 4751),
    "QF_SLIA": (5492, 22657),
    "QF_S": (6390, 12561),
    "StringFuzz": (4903, 4098),
}

PAPER_TOTAL_SEEDS = 75097
PAPER_TOTAL_SAT = 46760
PAPER_TOTAL_UNSAT = 28337

# Benchmark families beyond the paper's Figure 7 (#UNSAT, #SAT).
# Kept in a separate table: ``PAPER_SEED_COUNTS`` drives
# ``build_all_corpora`` and the golden-journal regression oracle, so its
# keys and counts are frozen.  ``QF_BV`` campaigns opt in explicitly
# (``build_corpus("QF_BV")`` / ``yinyang campaign --logic QF_BV``).
EXTRA_SEED_COUNTS = {
    "QF_BV": (160, 240),
}
