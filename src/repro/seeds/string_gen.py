"""String seed generation (QF_S, QF_SLIA).

Same construction discipline as the arithmetic generator: sat seeds are
built from an explicit assignment of short strings and assert only
facts that hold under it (equalities over concatenations, lengths,
prefix/suffix/contains, regex membership, ``str.to.int`` facts, and —
for QF_SLIA — integer bridges); unsat seeds embed a contradiction
template from the shapes the paper's bug hunt revolved around.
"""

from __future__ import annotations

import random

from repro.core.oracle import LabeledSeed
from repro.seeds.spec import LOGICS
from repro.semantics.evaluator import evaluate
from repro.semantics.model import Model
from repro.smtlib import builder as b
from repro.smtlib.ast import Assert, CheckSat, DeclareFun, Script, SetLogic, mk_var
from repro.smtlib.sorts import INT, STRING

_ALPHABET = "ab01"


def _random_string(rng, max_len=3):
    return "".join(rng.choice(_ALPHABET) for _ in range(rng.randint(0, max_len)))


def _random_digits(rng, max_len=2):
    return "".join(rng.choice("0123456789") for _ in range(rng.randint(1, max_len)))


def _true_string_facts(variables, model, rng, with_ints, bound_ints):
    """Assertions that hold under ``model``."""
    facts = []
    svars = [v for v in variables if v.sort == STRING]
    x = rng.choice(svars)
    y = rng.choice(svars)
    vx, vy = model[x.name], model[y.name]
    kind = rng.random()
    if kind < 0.2:
        # Concatenation equality: fresh variable names the concat.
        facts.append(b.eq(b.concat(x, y), b.lift(vx + vy)))
    elif kind < 0.35:
        facts.append(b.eq(b.length(x), len(vx)))
    elif kind < 0.45:
        prefix = vx[: rng.randint(0, len(vx))]
        facts.append(b.prefixof(b.lift(prefix), x))
    elif kind < 0.55:
        suffix = vx[len(vx) - rng.randint(0, len(vx)) :]
        facts.append(b.suffixof(b.lift(suffix), x))
    elif kind < 0.65:
        if vx:
            start = rng.randrange(len(vx))
            end = rng.randint(start + 1, len(vx))
            facts.append(b.contains(x, b.lift(vx[start:end])))
        else:
            facts.append(b.eq(x, b.lift("")))
    elif kind < 0.75:
        # Regex membership true under the model: (value)* accepts value.
        if vx:
            facts.append(b.in_re(x, b.re_star(b.to_re(b.lift(vx)))))
        else:
            facts.append(b.in_re(x, b.re_star(b.re_allchar())))
    elif kind < 0.85:
        # Replace with a *constant* pattern (variable patterns are a
        # structure only fusion introduces, per the fault triggers).
        pattern = vx[:1] if vx else "z"
        replaced = vx.replace(pattern, "", 1)
        facts.append(b.eq(b.replace(x, b.lift(pattern), b.lift("")), b.lift(replaced)))
    elif with_ints and kind < 0.95:
        # Integer bridge: assert i = len(x) for an integer variable
        # whose model value agrees (bind it on first use).
        ivars = [v for v in variables if v.sort == INT]
        free = [v for v in ivars if v.name not in bound_ints]
        if free:
            i = free[0]
            model[i.name] = len(vx)
            bound_ints.add(i.name)
            facts.append(b.eq(i, b.length(x)))
        else:
            facts.append(b.eq(b.length(x), len(vx)))
    else:
        digits = _random_digits(rng)
        facts.append(b.eq(b.str_to_int(b.lift(digits)), int(digits)))
    return facts


def _string_contradiction(variables, rng):
    svars = [v for v in variables if v.sort == STRING]
    x = rng.choice(svars)
    y = rng.choice(svars)
    kind = rng.choice(
        [
            "negative-length",
            "concat-length",
            "regex-length",
            "to-int-empty",
            "contains-conflict",
            "prefix-length",
            "distinct-self",
        ]
    )
    if kind == "negative-length":
        return [b.lt(b.length(x), 0)]
    if kind == "concat-length":
        # x = y ++ "a" forces len(x) = len(y) + 1.
        return [b.eq(x, b.concat(y, b.lift("a"))), b.eq(b.length(x), b.length(y))]
    if kind == "regex-length":
        stride = rng.choice(["aa", "aaa", "ab"])
        return [
            b.in_re(x, b.re_star(b.to_re(b.lift(stride)))),
            b.eq(b.length(x), len(stride) + 1),
        ]
    if kind == "to-int-empty":
        # str.to.int of the empty string is -1 (the Figure 13b corner).
        return [b.eq(x, b.lift("")), b.ge(b.str_to_int(x), 0)]
    if kind == "contains-conflict":
        return [b.contains(x, b.lift("a")), b.eq(x, b.lift("b"))]
    if kind == "prefix-length":
        return [b.prefixof(b.lift("ab"), x), b.eq(b.length(x), 1)]
    return [b.distinct(x, x)]


def _string_noise(variables, rng):
    svars = [v for v in variables if v.sort == STRING]
    x = rng.choice(svars)
    kind = rng.random()
    if kind < 0.3:
        return b.le(b.length(x), rng.randint(0, 4))
    if kind < 0.6:
        return b.contains(x, b.lift(rng.choice(_ALPHABET)))
    return b.in_re(x, b.re_star(b.re_allchar()))


def generate_string_seed(logic_name, oracle, rng=None, num_vars=None):
    """Generate one labeled string seed for QF_S or QF_SLIA."""
    spec = LOGICS[logic_name]
    rng = rng or random.Random()
    n = num_vars or rng.randint(2, 3)
    variables = [mk_var(f"s{i}", STRING) for i in range(n)]
    with_ints = logic_name == "QF_SLIA"
    if with_ints:
        variables.append(mk_var("i0", INT))

    if oracle == "sat":
        model = Model(
            {
                v.name: (_random_string(rng) if v.sort == STRING else 0)
                for v in variables
            }
        )
        asserts = []
        bound_ints = set()
        for _ in range(rng.randint(2, 4)):
            asserts.extend(
                _true_string_facts(variables, model, rng, with_ints, bound_ints)
            )
        if with_ints and not bound_ints:
            # QF_SLIA seeds always exercise the string-integer bridge.
            i = next(v for v in variables if v.sort == INT)
            x = next(v for v in variables if v.sort == STRING)
            model[i.name] = len(model[x.name])
            bound_ints.add(i.name)
            asserts.append(b.eq(i, b.length(x)))
        from repro.smtlib.ast import free_vars as _free_vars

        if not any(_free_vars(t) for t in asserts):
            # Every fact landed on constants: anchor at least one
            # variable so the seed is fusible.
            x = variables[0]
            asserts.append(b.le(b.length(x), len(model[x.name])))
        complete = model.complete(variables)
        for term in asserts:  # pragma: no branch - generator invariant
            if not evaluate(term, complete):
                raise AssertionError("generated string seed violates its model")
        script = _finish(spec, variables, asserts)
        return LabeledSeed(script, "sat", spec.name, complete, origin="string-gen")

    asserts = list(_string_contradiction(variables, rng))
    for _ in range(rng.randint(0, 2)):
        asserts.append(_string_noise(variables, rng))
    if with_ints:
        # Keep the integer bridge present in QF_SLIA seeds (harmless
        # noise: conjunction with the contradiction stays unsat).
        i = next(v for v in variables if v.sort == INT)
        x = next(v for v in variables if v.sort == STRING)
        asserts.append(b.le(b.length(x), i))
    rng.shuffle(asserts)
    script = _finish(spec, variables, asserts)
    return LabeledSeed(script, "unsat", spec.name, None, origin="string-gen")


def _finish(spec, variables, asserts):
    commands = [SetLogic(spec.name)]
    for var in variables:
        commands.append(DeclareFun(var.name, (), var.sort))
    for term in asserts:
        commands.append(Assert(term))
    commands.append(CheckSat())
    return Script(commands)
