"""Arithmetic seed generation (LIA/LRA/NRA/NIA and QF variants).

Satisfiable seeds are generated *from a model*: random terms are built
over the variables, evaluated exactly under the model, and a relation
that holds is asserted — so the ``sat`` label is certain and the model
ships with the seed. Unsatisfiable seeds embed one of a library of
contradiction templates (several lifted straight from the paper's
examples) under satisfiable-looking noise.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.core.oracle import LabeledSeed
from repro.errors import EvaluationError
from repro.seeds.spec import LOGICS
from repro.semantics.evaluator import evaluate
from repro.semantics.model import Model
from repro.smtlib import builder as b
from repro.smtlib.ast import Assert, CheckSat, DeclareFun, Script, SetLogic, mk_const, mk_var
from repro.smtlib.sorts import BOOL, INT, REAL


def _random_value(sort, rng):
    # Values stay inside the evaluator's quantifier-enumeration domain
    # so quantified seeds remain checkable.
    if sort == INT:
        return rng.randint(-4, 4)
    return Fraction(rng.randint(-5, 5), rng.choice([1, 1, 2]))


def _const(value, sort):
    if sort == REAL:
        return mk_const(Fraction(value), REAL)
    return mk_const(int(value), INT)


def _random_term(variables, rng, sort, nonlinear, depth=2):
    """A random arithmetic term over ``variables`` (all of ``sort``)."""
    roll = rng.random()
    if depth <= 0 or roll < 0.35:
        if rng.random() < 0.7 and variables:
            return rng.choice(variables)
        return _const(_random_value(sort, rng), sort)
    left = _random_term(variables, rng, sort, nonlinear, depth - 1)
    right = _random_term(variables, rng, sort, nonlinear, depth - 1)
    ops = ["+", "+", "-"]
    if nonlinear:
        ops.append("*")
    op = rng.choice(ops)
    if op == "+":
        return b.add(left, right)
    if op == "-":
        return b.sub(left, right)
    return b.mul(left, right)


def _true_atom(term, model, rng, sort):
    """An atom over ``term`` that holds under ``model``."""
    value = evaluate(term, model)
    roll = rng.random()
    if roll < 0.25:
        return b.eq(term, _const(value, sort))
    if roll < 0.45:
        gap = _random_value(sort, rng)
        bound = value + abs(gap) + 1
        return b.lt(term, _const(bound, sort))
    if roll < 0.65:
        gap = _random_value(sort, rng)
        bound = value - abs(gap) - 1
        return b.gt(term, _const(bound, sort))
    if roll < 0.85:
        return b.le(term, _const(value, sort))
    return b.ge(term, _const(value, sort))


def _structured_assert(atom, variables, model, rng, bool_pool):
    """Wrap a true atom in boolean structure that stays true."""
    roll = rng.random()
    if roll < 0.5:
        return [atom]
    if roll < 0.65:
        # Paper phi1 style: (= w atom) and assert w.
        w = mk_var(f"w{len(bool_pool)}", BOOL)
        bool_pool.append(w)
        model[w.name] = True
        return [b.eq(w, atom), w]
    if roll < 0.8:
        # Disjunction with an arbitrary second branch.
        sort = variables[0].sort
        other = _random_term(variables, rng, sort, nonlinear=False)
        noise = b.lt(other, _const(_random_value(sort, rng), sort))
        branches = [atom, noise]
        rng.shuffle(branches)
        return [b.or_(*branches)]
    if roll < 0.9:
        return [b.not_(b.not_(atom))]
    # ite with the condition known under the model.
    sort = variables[0].sort
    cond_term = rng.choice(variables)
    cond_value = model[cond_term.name]
    cond = b.ge(cond_term, _const(cond_value, sort))
    return [b.ite(cond, atom, b.eq(cond_term, cond_term))]


def _quantified_extras(variables, rng, sort):
    """Benign quantified assertions (true in every model)."""
    extras = []
    x = rng.choice(variables)
    kind = rng.random()
    h = mk_var("h", sort)
    if kind < 0.5:
        # exists h. h > x  (true over Int and Real)
        extras.append(b.exists([h], b.gt(h, x)))
    else:
        # bounded forall over Int, or a trivially-true real forall guard.
        if sort == INT:
            lo, hi = sorted((rng.randint(-3, 0), rng.randint(1, 3)))
            guard = b.and_(b.ge(h, lo), b.le(h, hi))
            body = b.ge(b.add(x, h), b.add(x, lo))
            extras.append(b.forall([h], b.implies(guard, body)))
        else:
            extras.append(b.exists([h], b.eq(h, x)))
    return extras


# ---------------------------------------------------------------------------
# Contradiction templates (the UNSAT library)
# ---------------------------------------------------------------------------


def _contradiction(variables, rng, spec):
    """A list of assertions that cannot all hold."""
    sort = spec.sort
    x = rng.choice(variables)
    y = rng.choice(variables)
    c = _random_value(sort, rng)
    picks = ["window", "two-values", "shift", "sum-window", "diseq"]
    if sort == INT:
        picks.append("parity")
    if spec.nonlinear:
        picks.extend(["square-negative", "square-equation"])
    if sort == REAL and spec.nonlinear:
        picks.append("sign-division")
    kind = rng.choice(picks)
    if kind == "window":
        return [b.gt(x, _const(c, sort)), b.lt(x, _const(c, sort))]
    if kind == "two-values":
        return [b.eq(x, _const(c, sort)), b.eq(x, _const(c + 1, sort))]
    if kind == "shift":
        # The paper's phi3: ((c1 + x) + c2) != ((c1 + c2) + x).
        c1 = _random_value(sort, rng)
        c2 = _random_value(sort, rng)
        lhs = b.add(b.add(_const(c1, sort), x), _const(c2, sort))
        rhs = b.add(_const(c1 + c2, sort), x)
        return [b.not_(b.eq(lhs, rhs))]
    if kind == "sum-window":
        total = b.add(x, y)
        return [b.gt(total, _const(c, sort)), b.lt(total, _const(c, sort))]
    if kind == "diseq":
        return [b.distinct(x, x)]
    if kind == "parity":
        return [b.eq(b.mul(2, x), _const(2 * int(c) + 1, INT))]
    if kind == "square-negative":
        return [b.lt(b.mul(x, x), _const(0, sort))]
    if kind == "square-equation":
        return [b.eq(b.mul(x, x), _const(-1 - abs(c), sort))]
    # sign-division: the paper's phi4 (0 < y < v <= w and w/v < 0).
    v = mk_var("v.t", REAL)
    w = mk_var("w.t", REAL)
    yy = rng.choice(variables)
    return [
        b.and_(
            b.lt(yy, v),
            b.ge(w, v),
            b.lt(b.div(w, v), 0),
            b.gt(yy, 0),
        )
    ]


def _noise_atom(variables, rng, spec):
    term = _random_term(variables, rng, spec.sort, spec.nonlinear)
    bound = _const(_random_value(spec.sort, rng), spec.sort)
    op = rng.choice([b.lt, b.le, b.gt, b.ge, b.eq])
    return op(term, bound)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def generate_arith_seed(logic_name, oracle, rng=None, num_vars=None):
    """Generate one labeled arithmetic seed for ``logic_name``.

    Returns a :class:`~repro.core.oracle.LabeledSeed`; sat seeds carry
    their witnessing model.
    """
    spec = LOGICS[logic_name]
    rng = rng or random.Random()
    n = num_vars or rng.randint(2, 4)
    variables = [mk_var(f"{'x' if spec.sort == INT else 'r'}{i}", spec.sort) for i in range(n)]

    if oracle == "sat":
        return _generate_sat(spec, variables, rng)
    return _generate_unsat(spec, variables, rng)


def _generate_sat(spec, variables, rng):
    model = Model({v.name: _random_value(spec.sort, rng) for v in variables})
    bool_pool = []
    asserts = []
    for _ in range(rng.randint(2, 5)):
        term = _random_term(variables, rng, spec.sort, spec.nonlinear)
        try:
            atom = _true_atom(term, model, rng, spec.sort)
        except EvaluationError:  # pragma: no cover - defensive
            continue
        asserts.extend(_structured_assert(atom, variables, model, rng, bool_pool))
    if not asserts:
        asserts = [b.ge(variables[0], _const(model[variables[0].name], spec.sort))]
    # Verify the quantifier-free core against the model (the quantified
    # extras below are true in every model by construction, but cannot
    # be certified by bounded enumeration).
    complete = model.complete(variables)
    for term in asserts:
        if not evaluate(term, complete):  # pragma: no cover - generator invariant
            raise AssertionError("generated sat seed is not satisfied by its model")
    if spec.quantified:
        asserts.extend(_quantified_extras(variables, rng, spec.sort))
    script = _finish(spec, variables + bool_pool, asserts)
    return LabeledSeed(script, "sat", spec.name, complete, origin="arith-gen")


def _generate_unsat(spec, variables, rng):
    asserts = list(_contradiction(variables, rng, spec))
    for _ in range(rng.randint(0, 3)):
        asserts.append(_noise_atom(variables, rng, spec))
    if spec.quantified and rng.random() < 0.5:
        h = mk_var("h", spec.sort)
        asserts.append(b.exists([h], b.gt(h, rng.choice(variables))))
    rng.shuffle(asserts)
    extra_vars = sorted(
        {v for t in asserts for v in _free_typed(t)} - set(variables),
        key=lambda v: v.name,
    )
    script = _finish(spec, variables + extra_vars, asserts)
    return LabeledSeed(script, "unsat", spec.name, None, origin="arith-gen")


def _free_typed(term):
    from repro.smtlib.ast import free_vars

    return free_vars(term)


def _finish(spec, variables, asserts):
    commands = [SetLogic(spec.name)]
    for var in variables:
        commands.append(DeclareFun(var.name, (), var.sort))
    for term in asserts:
        commands.append(Assert(term))
    commands.append(CheckSat())
    return Script(commands)
