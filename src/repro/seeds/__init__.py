"""Labeled seed-formula generators: the offline stand-in for the
SMT-LIB and StringFuzz benchmark suites (paper Figure 7).

Satisfiable seeds are built around an explicit model (so the label is
certain and the witnessing model travels with the seed); unsatisfiable
seeds embed a known contradiction under satisfiable-looking noise.
"""

from repro.seeds.spec import LOGICS, LogicSpec, PAPER_SEED_COUNTS
from repro.seeds.arith_gen import generate_arith_seed
from repro.seeds.string_gen import generate_string_seed
from repro.seeds.stringfuzz_gen import generate_stringfuzz_seed
from repro.seeds.corpus import build_corpus, build_all_corpora

__all__ = [
    "LOGICS",
    "LogicSpec",
    "PAPER_SEED_COUNTS",
    "generate_arith_seed",
    "generate_string_seed",
    "generate_stringfuzz_seed",
    "build_corpus",
    "build_all_corpora",
]
