"""StringFuzz-style seed generation.

The paper also seeds YinYang with the StringFuzz benchmark suite
(QF_S). StringFuzz generates structurally extreme string formulas —
long concatenation chains, deeply nested regexes, big character
classes. This generator reproduces that *flavor* while keeping labels
certain: sat instances assert facts of an explicit assignment over
deep structures; unsat instances plant a contradiction deep inside
the chain.
"""

from __future__ import annotations

import random

from repro.core.oracle import LabeledSeed
from repro.semantics.evaluator import evaluate
from repro.semantics.model import Model
from repro.smtlib import builder as b
from repro.smtlib.ast import Assert, CheckSat, DeclareFun, Script, SetLogic, mk_var
from repro.smtlib.sorts import STRING

_ALPHABET = "abc"


def _chain(parts):
    if len(parts) == 1:
        return parts[0]
    return b.concat(*parts)


def _deep_regex(rng, depth, values):
    """A nested regex guaranteed to accept every string in ``values``."""
    if depth <= 0 or rng.random() < 0.3:
        return b.re_star(b.re_allchar())
    kind = rng.random()
    inner = _deep_regex(rng, depth - 1, values)
    if kind < 0.4:
        return b.re_union(inner, b.to_re(b.lift(rng.choice(_ALPHABET))))
    if kind < 0.7:
        return b.re_star(inner)
    # Intersection with the universal language keeps acceptance.
    return b.re_inter(inner, b.re_star(b.re_allchar()))


def generate_stringfuzz_seed(oracle, rng=None, chain_length=None):
    """Generate one StringFuzz-style labeled QF_S seed."""
    rng = rng or random.Random()
    n = chain_length or rng.randint(3, 5)
    variables = [mk_var(f"t{i}", STRING) for i in range(n)]
    values = {
        v.name: "".join(rng.choice(_ALPHABET) for _ in range(rng.randint(0, 2)))
        for v in variables
    }
    whole = "".join(values[v.name] for v in variables)

    asserts = []
    if oracle == "sat":
        model = Model(dict(values))
        # Chain equation pinning the concatenation of everything.
        asserts.append(b.eq(_chain(list(variables)), b.lift(whole)))
        # A deep regex that accepts the first variable's value.
        regex = _deep_regex(rng, rng.randint(2, 4), values)
        asserts.append(b.in_re(variables[0], regex))
        # Length ladder.
        for var in variables[: rng.randint(1, n)]:
            asserts.append(b.le(b.length(var), len(values[var.name])))
        for term in asserts:  # pragma: no branch - generator invariant
            if not evaluate(term, model):
                raise AssertionError("stringfuzz seed violates its model")
        script = _finish(variables, asserts)
        return LabeledSeed(script, "sat", "QF_S", model, origin="stringfuzz-gen")

    # Unsat: the chain equals a constant shorter than a forced part.
    forced = rng.choice(variables)
    asserts.append(b.eq(_chain(list(variables)), b.lift(whole)))
    asserts.append(b.ge(b.length(forced), len(whole) + rng.randint(1, 3)))
    if rng.random() < 0.5:
        asserts.append(b.in_re(forced, b.re_star(b.re_allchar())))
    rng.shuffle(asserts)
    script = _finish(variables, asserts)
    return LabeledSeed(script, "unsat", "QF_S", None, origin="stringfuzz-gen")


def _finish(variables, asserts):
    commands = [SetLogic("QF_S")]
    for var in variables:
        commands.append(DeclareFun(var.name, (), var.sort))
    for term in asserts:
        commands.append(Assert(term))
    commands.append(CheckSat())
    return Script(commands)
