"""Seed corpora in the shape of the paper's Figure 7.

The paper uses 75,097 seeds across nine benchmark families. Offline we
generate scaled-down corpora with the same per-family SAT/UNSAT
proportions; ``scale`` controls the size (``scale=1.0`` reproduces the
full counts, the default ``0.01`` keeps test runs fast).
"""

from __future__ import annotations

import math
import random

from repro.core.oracle import SeedCorpus
from repro.seeds.arith_gen import generate_arith_seed
from repro.seeds.bv_gen import generate_bv_seed
from repro.seeds.spec import EXTRA_SEED_COUNTS, PAPER_SEED_COUNTS
from repro.seeds.string_gen import generate_string_seed
from repro.seeds.stringfuzz_gen import generate_stringfuzz_seed


def _scaled(count, scale, keep_zero):
    if count == 0 and keep_zero:
        return 0
    return max(1, math.ceil(count * scale)) if count else 0


def build_corpus(family, scale=0.01, seed=0):
    """Build one family's corpus (a Figure 7 row), labels included."""
    if family in PAPER_SEED_COUNTS:
        unsat_count, sat_count = PAPER_SEED_COUNTS[family]
    elif family in EXTRA_SEED_COUNTS:
        unsat_count, sat_count = EXTRA_SEED_COUNTS[family]
    else:
        raise KeyError(f"unknown benchmark family {family!r}")
    # Seeding with a string hashes it with SHA-512 (stable), unlike
    # hash(family) which is randomized per process: the same (family,
    # seed) must yield the same corpus in every process, or journal
    # resume and process-mode workers would disagree with the parent.
    rng = random.Random(f"corpus:{family}:{seed}")
    corpus = SeedCorpus(family)
    for oracle, count in (("unsat", unsat_count), ("sat", sat_count)):
        for _ in range(_scaled(count, scale, keep_zero=True)):
            corpus.add(_generate(family, oracle, rng))
    return corpus


def _generate(family, oracle, rng):
    if family == "StringFuzz":
        return generate_stringfuzz_seed(oracle, rng)
    if family in ("QF_S", "QF_SLIA"):
        return generate_string_seed(family, oracle, rng)
    if family == "QF_BV":
        return generate_bv_seed(family, oracle, rng)
    return generate_arith_seed(family, oracle, rng)


def build_all_corpora(scale=0.01, seed=0):
    """All nine Figure 7 corpora, keyed by family name."""
    return {family: build_corpus(family, scale, seed) for family in PAPER_SEED_COUNTS}


def figure7_rows(corpora):
    """Render corpora counts as (family, #unsat, #sat, total) rows."""
    rows = []
    for family in PAPER_SEED_COUNTS:
        corpus = corpora[family]
        unsat, sat, total = corpus.counts()
        rows.append((family, unsat, sat, total))
    return rows
