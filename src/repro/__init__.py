"""Reproduction of "Validating SMT Solvers via Semantic Fusion" (PLDI 2020).

The package implements the Semantic Fusion methodology and the YinYang
testing tool, together with every substrate the paper depends on: an
SMT-LIB v2 frontend, a reference SMT solver, fault-injected solver
variants standing in for buggy Z3/CVC4 builds, labeled seed-formula
generators, a formula reducer, probe-based coverage, and a campaign
harness that regenerates the paper's tables and figures.

Quickstart::

    from repro import parse_script, fuse_scripts, ReferenceSolver

    phi1 = parse_script("(declare-fun x () Int) (assert (> x 0)) (check-sat)")
    phi2 = parse_script("(declare-fun y () Int) (assert (< y 0)) (check-sat)")
    fused = fuse_scripts("sat", phi1, phi2, seed=42)
    print(ReferenceSolver().check_script(fused))   # -> sat
"""

__all__ = [
    "parse_script",
    "parse_term",
    "print_script",
    "print_term",
    "SolverResult",
    "ReferenceSolver",
    "fuse_scripts",
    "YinYang",
    "YinYangReport",
]

__version__ = "1.0.0"

# Exports are resolved lazily so that importing one layer (e.g. the
# SMT-LIB frontend) does not pull in every other layer.
_EXPORTS = {
    "parse_script": ("repro.smtlib.parser", "parse_script"),
    "parse_term": ("repro.smtlib.parser", "parse_term"),
    "print_script": ("repro.smtlib.printer", "print_script"),
    "print_term": ("repro.smtlib.printer", "print_term"),
    "SolverResult": ("repro.solver.result", "SolverResult"),
    "ReferenceSolver": ("repro.solver.solver", "ReferenceSolver"),
    "fuse_scripts": ("repro.core.fusion", "fuse_scripts"),
    "YinYang": ("repro.core.yinyang", "YinYang"),
    "YinYangReport": ("repro.core.yinyang", "YinYangReport"),
}


def __getattr__(name):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
