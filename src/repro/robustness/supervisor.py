"""The self-healing campaign coordinator: shard leases under supervision.

PR 2's :class:`~repro.core.parallel.ShardedPool` gathers bare futures;
one dead worker raises ``BrokenProcessPool`` and the whole campaign
dies with it. This module turns each shard into a **lease** — a unit
of work the supervisor hands to the pool, watches, and takes back when
the worker holding it dies, hangs, or is resource-killed:

- **worker supervision** — a broken pool is respawned (capped by
  ``max_worker_restarts``) and every in-flight lease is recovered;
- **attribution** — a heartbeat side-channel (one tiny file per lease,
  rewritten atomically at each iteration) records which pid ran which
  lease attempt, so the lease whose worker died *abnormally* is
  charged with a retry while innocent bystanders (siblings the
  executor tore down with SIGTERM) are requeued for free;
- **shard-lease recovery** — a re-executed lease resumes from its
  :class:`~repro.robustness.journal.ShardProgress` log, replaying
  completed iterations and re-running only the missing ones, so the
  merged journal stays byte-identical to a failure-free run;
- **hang recovery** — a lease whose heartbeat goes stale past
  ``heartbeat_timeout`` has its worker SIGKILLed; the death is
  classified ``hang-kill`` and the normal requeue machinery takes over;
- **poison quarantine** — a lease that dies past ``max_shard_retries``
  is *bisected*: its iteration range splits in half and the halves are
  re-leased, recursively, until the killer iteration stands alone;
  that iteration is recorded as a quarantined reproduction artifact
  (formula text, strategy, seed, rlimits, death classification)
  instead of failing the campaign.

The supervisor is backend-agnostic: anything with ``submit`` /
``respawn`` / ``kill_worker`` / ``heartbeat_dir`` /
``broken_exceptions`` drives it, which is what makes the retry and
bisection logic unit-testable without spawning a single process (see
``tests/test_supervisor.py``). The real process backend is
:class:`~repro.core.parallel.SupervisedPoolBackend`.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field, replace

from repro.errors import ReproError
from repro.robustness.containment import (
    HANG_KILL,
    classify_exception,
    classify_exit,
    is_teardown_exit,
)


class SupervisionExhausted(ReproError):
    """The worker fleet kept dying past ``max_worker_restarts``.

    This is the supervisor giving up on the *environment*, not on a
    shard: when respawned pools die faster than leases complete, the
    host itself is hosed and retrying forever would only hide it.
    """


@dataclass(frozen=True)
class SupervisorPolicy:
    """How the coordinator treats dying workers and their leases.

    - ``max_worker_restarts`` — pool respawns allowed per campaign
      before :class:`SupervisionExhausted`;
    - ``max_shard_retries`` — re-executions of one lease before its
      range is bisected (0 = bisect on first death: fastest isolation
      when deaths are expected to be deterministic);
    - ``backoff_base`` / ``backoff_cap`` — capped exponential backoff
      before a retried lease is resubmitted;
    - ``heartbeat_timeout`` — seconds without a heartbeat before a
      worker is presumed hung and SIGKILLed (``None`` disables hang
      detection; must comfortably exceed the slowest legitimate
      iteration);
    - ``poll_interval`` — how often the supervisor wakes to sweep
      heartbeats while futures are pending;
    - ``sleep`` — injection point for the backoff sleeper (tests pass
      a no-op; parent-side only, never pickled to workers).
    """

    max_worker_restarts: int = 8
    max_shard_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    heartbeat_timeout: float | None = None
    poll_interval: float = 0.25
    sleep: object = field(default=time.sleep, repr=False)

    def __post_init__(self):
        if self.max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")
        if self.max_shard_retries < 0:
            raise ValueError("max_shard_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive (or None)")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")

    def backoff(self, attempt):
        """Backoff delay before re-leasing attempt ``attempt`` (0-based)."""
        return min(self.backoff_cap, self.backoff_base * (2**attempt))


@dataclass
class ShardLease:
    """One leased unit of shard work: a task plus its retry state.

    ``key`` groups the lease's payload with its siblings for result
    assembly (bisection splits one shard into several leases that all
    share the parent's key). ``indices`` is the concrete tuple of
    global iteration ids the lease covers — the thing bisection halves.
    """

    lease_id: int
    key: object
    task: object  # a ShardTask template (re-stamped per attempt)
    indices: tuple
    attempt: int = 0
    last_classification: str | None = None


@dataclass
class PoisonedIteration:
    """A quarantined reproduction artifact for one killer iteration."""

    cell: tuple | None
    iteration: int
    classification: str
    attempts: int
    strategy: str
    seed: int
    oracle: str
    script: str | None = None
    rlimits: dict = field(default_factory=dict)

    def as_dict(self):
        return {
            "iteration": self.iteration,
            "classification": self.classification,
            "attempts": self.attempts,
            "strategy": self.strategy,
            "seed": self.seed,
            "script": self.script,
            "rlimits": dict(self.rlimits),
        }


# ---------------------------------------------------------------------------
# The heartbeat side-channel
# ---------------------------------------------------------------------------


def heartbeat_path(directory, lease_id):
    return os.path.join(os.fspath(directory), f"lease-{lease_id}.hb")


def write_heartbeat(directory, lease_id, pid, attempt, index):
    """Record 'pid is executing iteration index of lease attempt' (worker).

    Written via tmp + atomic rename so the parent never reads a torn
    record; wall-clock ``ts`` is comparable across processes (both
    sides use ``time.time()`` on the same host).
    """
    path = heartbeat_path(directory, lease_id)
    tmp = f"{path}.{pid}.tmp"
    record = {"pid": pid, "attempt": attempt, "i": index, "ts": time.time()}
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        os.replace(tmp, path)
    except OSError:
        pass  # heartbeats are best-effort; a miss only delays detection


def read_heartbeat(directory, lease_id):
    """The latest heartbeat of a lease, or None (parent side)."""
    try:
        with open(heartbeat_path(directory, lease_id), encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------


class Supervisor:
    """Runs shard leases to completion over a respawnable pool backend.

    ``backend`` must provide:

    - ``submit(task) -> Future`` — hand a stamped task to the pool;
    - ``respawn() -> {pid: exitcode}`` — tear down the broken pool,
      start a fresh one, and report how the old workers exited;
    - ``kill_worker(pid)`` — SIGKILL one worker (hang recovery);
    - ``heartbeat_dir`` — where workers write heartbeat files
      (``None`` disables the side-channel);
    - ``broken_exceptions`` — exception types meaning "the pool died"
      (``BrokenProcessPool`` for the real backend).

    ``containment`` (a :class:`~repro.robustness.containment.ContainmentPolicy`)
    is only consulted for death classification; applying the rlimits is
    the worker's job. ``poison_artifact(task, index)`` optionally
    reconstructs the killer iteration's formula text for the quarantine
    record; ``on_poison(record)`` lets the campaign journal it durably
    the moment it is isolated. One supervisor instance spans a whole
    campaign, so the restart budget and counters are campaign-global.
    """

    def __init__(
        self,
        backend,
        policy=None,
        containment=None,
        telemetry=None,
        poison_artifact=None,
        on_poison=None,
    ):
        self.backend = backend
        self.policy = policy or SupervisorPolicy()
        self.containment = containment
        self.telemetry = telemetry
        self.poison_artifact = poison_artifact
        self.on_poison = on_poison
        self.poisoned = []
        self.counters = {
            "restarts": 0,
            "retries": 0,
            "requeues": 0,
            "heartbeat_kills": 0,
            "bisections": 0,
            "poisoned": 0,
        }
        self._next_lease_id = 0
        self._killed_pids = set()

    # -- bookkeeping -----------------------------------------------------

    def _count(self, key, n=1):
        self.counters[key] += n
        if self.telemetry is not None:
            self.telemetry.count("supervisor." + key, n)

    def new_lease_id(self):
        self._next_lease_id += 1
        return self._next_lease_id

    def lease(self, key, task, indices):
        """Build a root lease for one full shard."""
        return ShardLease(
            lease_id=self.new_lease_id(), key=key, task=task, indices=tuple(indices)
        )

    # -- the supervision loop --------------------------------------------

    def run(self, leases):
        """Run ``leases`` to completion; return {key: [(lease, payload)]}.

        Poisoned iterations produce no payload — they are recorded on
        ``self.poisoned`` (and via ``on_poison``) instead.
        """
        pending = deque(leases)
        inflight = {}
        results = {}
        while pending or inflight:
            self._fill(pending, inflight)
            if not inflight:
                continue
            timeout = (
                self.policy.poll_interval
                if self.policy.heartbeat_timeout is not None
                else None
            )
            done, _ = wait(set(inflight), timeout=timeout, return_when=FIRST_COMPLETED)
            if not done:
                self._sweep_heartbeats(inflight)
                continue
            broken = []
            for future in done:
                lease = inflight.pop(future)
                try:
                    payload = future.result()
                except self.backend.broken_exceptions:
                    broken.append(lease)
                except Exception as exc:
                    # The worker survived but the lease failed in-process:
                    # resource containment (MemoryError under RLIMIT_AS)
                    # or an unexpected worker-side error. Same retry path.
                    # Exceptions that already know their classification
                    # (remote lease failures, worker disconnects — the
                    # distributed backend attaches one) keep it; the
                    # local classifier is the fallback.
                    classification = getattr(exc, "classification", None)
                    if not isinstance(classification, str):
                        classification = classify_exception(exc, self.containment)
                    self._failure(lease, classification, pending)
                else:
                    results.setdefault(lease.key, []).append((lease, payload))
            if broken:
                self._recover(broken, inflight, pending)
        return results

    def _fill(self, pending, inflight):
        while pending:
            lease = pending.popleft()
            task = replace(
                lease.task,
                lease_id=lease.lease_id,
                attempt=lease.attempt,
                heartbeat_dir=self.backend.heartbeat_dir,
            )
            try:
                future = self.backend.submit(task)
            except self.backend.broken_exceptions:
                # The pool broke between our last wait and this submit:
                # recover everything, then keep filling the fresh pool.
                pending.appendleft(lease)
                self._recover([], inflight, pending)
                continue
            inflight[future] = lease

    def _recover(self, broken, inflight, pending):
        """The pool died: respawn it and recover every in-flight lease."""
        broken = list(broken) + list(inflight.values())
        inflight.clear()
        dead = self.backend.respawn()
        self._count("restarts")
        if self.counters["restarts"] > self.policy.max_worker_restarts:
            raise SupervisionExhausted(
                f"worker pool died {self.counters['restarts']} times "
                f"(max_worker_restarts={self.policy.max_worker_restarts}); "
                "the environment looks unrecoverable"
            )
        abnormal = {
            pid: code for pid, code in dead.items() if not is_teardown_exit(code)
        }
        for lease in broken:
            pid = self._holder(lease)
            if pid is not None and pid in abnormal:
                if pid in self._killed_pids:
                    classification = HANG_KILL
                else:
                    classification = classify_exit(abnormal[pid], self.containment)
                self._failure(lease, classification, pending)
            else:
                # Teardown collateral or never started: requeue for free.
                self._count("requeues")
                pending.append(lease)

    def _holder(self, lease):
        """The pid that ran this lease attempt, per the heartbeat channel."""
        directory = self.backend.heartbeat_dir
        if directory is None:
            return None
        record = read_heartbeat(directory, lease.lease_id)
        if record is None or record.get("attempt") != lease.attempt:
            return None
        return record.get("pid")

    def _sweep_heartbeats(self, inflight):
        timeout = self.policy.heartbeat_timeout
        directory = self.backend.heartbeat_dir
        if timeout is None or directory is None:
            return
        now = time.time()
        for lease in inflight.values():
            record = read_heartbeat(directory, lease.lease_id)
            if record is None or record.get("attempt") != lease.attempt:
                continue
            if now - record.get("ts", now) <= timeout:
                continue
            pid = record.get("pid")
            if pid is None or pid in self._killed_pids:
                continue
            self._killed_pids.add(pid)
            self._count("heartbeat_kills")
            self.backend.kill_worker(pid)

    # -- retries, bisection, poison --------------------------------------

    def _failure(self, lease, classification, pending):
        lease.attempt += 1
        lease.last_classification = classification
        self._count("retries")
        if lease.attempt <= self.policy.max_shard_retries:
            self.policy.sleep(self.policy.backoff(lease.attempt - 1))
            pending.append(lease)
            return
        if len(lease.indices) > 1:
            self._count("bisections")
            mid = len(lease.indices) // 2
            for half in (lease.indices[:mid], lease.indices[mid:]):
                pending.append(
                    ShardLease(
                        lease_id=self.new_lease_id(),
                        key=lease.key,
                        task=replace(lease.task, indices=tuple(half)),
                        indices=tuple(half),
                    )
                )
            return
        self._poison(lease)

    def _poison(self, lease):
        """A single iteration that dies past the retry cap: quarantine it."""
        self._count("poisoned")
        task = lease.task
        index = lease.indices[0]
        script = None
        if self.poison_artifact is not None:
            try:
                script = self.poison_artifact(task, index)
            except Exception:
                script = None  # the artifact is best-effort, never fatal
        record = PoisonedIteration(
            cell=getattr(task, "cell", None),
            iteration=index,
            classification=lease.last_classification or "unknown",
            attempts=lease.attempt,
            strategy=getattr(task, "strategy", ""),
            seed=getattr(task, "seed", 0),
            oracle=getattr(task, "oracle", ""),
            script=script,
            rlimits=(
                self.containment.describe() if self.containment is not None else {}
            ),
        )
        self.poisoned.append(record)
        if self.on_poison is not None:
            self.on_poison(record)
