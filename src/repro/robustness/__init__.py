"""The hardened campaign harness: guarded execution, chaos, journaling.

Long blackbox fuzzing campaigns only work if the harness outlives the
solvers it torments. This package contains the three pieces that make
our campaign loop production-hard:

- :class:`GuardedSolver` (:mod:`~repro.robustness.guard`) — watchdog
  deadlines, transient-failure retries with capped backoff, containment
  of unexpected exceptions, and a quarantine circuit breaker;
- :class:`ChaosSolver` (:mod:`~repro.robustness.chaos`) — deterministic
  fault injection (hangs, crashes, garbage, wrong answers, exceptions)
  to test the harness against itself;
- :class:`CampaignJournal` (:mod:`~repro.robustness.journal`) —
  crash-safe JSONL journaling of per-cell campaign progress, enabling
  ``run_campaign(..., resume=True)``;
- :class:`ResiliencePolicy` (:mod:`~repro.robustness.policy`) — the
  dataclass plumbed from CLI flags down to the guard;
- :class:`Supervisor` (:mod:`~repro.robustness.supervisor`) — the
  self-healing coordinator for process-sharded campaigns: worker
  respawn, shard-lease recovery from :class:`ShardProgress`
  checkpoints, heartbeat hang detection, and poison-iteration
  bisection/quarantine;
- :class:`ContainmentPolicy` (:mod:`~repro.robustness.containment`) —
  per-worker rlimits plus parent-side death classification;
- :class:`ProcessChaos` (:mod:`~repro.robustness.chaos`) — seeded
  process-level fault injection (kill/hang/spin/OOM a worker at chosen
  iterations) so crash recovery is provable deterministically.
"""

from repro.robustness.chaos import ChaosError, ChaosSolver, ProcessChaos
from repro.robustness.containment import (
    ContainmentPolicy,
    classify_exception,
    classify_exit,
    is_teardown_exit,
)
from repro.robustness.guard import (
    GuardedSolver,
    HarnessError,
    SolverQuarantined,
)
from repro.robustness.journal import (
    CampaignJournal,
    JournalError,
    ShardProgress,
    deserialize_bug_record,
    lease_progress_path,
    serialize_bug_record,
)
from repro.robustness.policy import ResiliencePolicy
from repro.robustness.supervisor import (
    PoisonedIteration,
    ShardLease,
    SupervisionExhausted,
    Supervisor,
    SupervisorPolicy,
)

__all__ = [
    "ChaosError",
    "ChaosSolver",
    "ProcessChaos",
    "ContainmentPolicy",
    "classify_exit",
    "classify_exception",
    "is_teardown_exit",
    "GuardedSolver",
    "HarnessError",
    "SolverQuarantined",
    "CampaignJournal",
    "JournalError",
    "ShardProgress",
    "lease_progress_path",
    "serialize_bug_record",
    "deserialize_bug_record",
    "ResiliencePolicy",
    "PoisonedIteration",
    "ShardLease",
    "SupervisionExhausted",
    "Supervisor",
    "SupervisorPolicy",
]
