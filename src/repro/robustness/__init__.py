"""The hardened campaign harness: guarded execution, chaos, journaling.

Long blackbox fuzzing campaigns only work if the harness outlives the
solvers it torments. This package contains the three pieces that make
our campaign loop production-hard:

- :class:`GuardedSolver` (:mod:`~repro.robustness.guard`) — watchdog
  deadlines, transient-failure retries with capped backoff, containment
  of unexpected exceptions, and a quarantine circuit breaker;
- :class:`ChaosSolver` (:mod:`~repro.robustness.chaos`) — deterministic
  fault injection (hangs, crashes, garbage, wrong answers, exceptions)
  to test the harness against itself;
- :class:`CampaignJournal` (:mod:`~repro.robustness.journal`) —
  crash-safe JSONL journaling of per-cell campaign progress, enabling
  ``run_campaign(..., resume=True)``;
- :class:`ResiliencePolicy` (:mod:`~repro.robustness.policy`) — the
  dataclass plumbed from CLI flags down to the guard.
"""

from repro.robustness.chaos import ChaosError, ChaosSolver
from repro.robustness.guard import (
    GuardedSolver,
    HarnessError,
    SolverQuarantined,
)
from repro.robustness.journal import (
    CampaignJournal,
    JournalError,
    deserialize_bug_record,
    serialize_bug_record,
)
from repro.robustness.policy import ResiliencePolicy

__all__ = [
    "ChaosError",
    "ChaosSolver",
    "GuardedSolver",
    "HarnessError",
    "SolverQuarantined",
    "CampaignJournal",
    "JournalError",
    "serialize_bug_record",
    "deserialize_bug_record",
    "ResiliencePolicy",
]
