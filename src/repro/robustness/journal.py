"""Crash-safe campaign journaling: survive interrupts, resume cheaply.

The paper's campaign ran for four months; ours must survive a ^C or an
OOM-kill without losing completed work. :class:`CampaignJournal` is an
append-only JSONL log of per-``(solver, corpus, oracle)`` cell results:
each committed batch rewrites the journal to a temporary file, fsyncs
it, and atomically renames it over the old one, so the on-disk file is
*always* a complete, parseable JSONL snapshot — a torn write can only
lose the cell in flight, never corrupt history. ``run_campaign(...,
journal=..., resume=True)`` skips cells the journal already holds.

Bug records are serialized with their scripts printed back to SMT-LIB
text, so a resumed campaign's merged result is byte-for-byte identical
(on serialized records) to an uninterrupted run. Wall-clock ``elapsed``
is deliberately excluded from serialization — of records *and* of cell
reports: it is measurement noise, not bug identity, and keeping it
would break both replay equality and the stronger process-mode
guarantee that journals written at different worker counts are
byte-identical.

Process-sharded campaigns add a second journal layer: each worker
process appends the shards it completes to a private *sidecar* journal
(``<path>.shard-<pid>.jsonl``, same atomic-commit discipline), and the
parent merges finished cells into the main journal with stable global
iteration ids. A parent crash therefore loses no completed shard —
resume reloads matching sidecars and re-runs only the missing shards.
Sidecars are keyed by ``(shard, of)``: a resume with a *different*
worker count simply finds no matching partials and re-runs whole
cells, never duplicating or skipping one.

Supervised campaigns add a third, finer layer: :class:`ShardProgress`,
an *append-only* per-lease log of completed iterations
(``<path>.lease-*.jsonl``). Unlike the journals above it is not
atomically rewritten — each iteration appends one line — so a worker
killed mid-write can leave a torn final line; the loader discards it
and the iteration is simply re-executed. Because every iteration is a
pure function of ``(strategy, seed, index)``, replaying recorded
iterations and re-running the missing ones merges to the exact bytes
of a failure-free run (see ``tests/test_supervised_campaign.py``).
"""

from __future__ import annotations

import glob as _glob
import json
import os

from repro.core.yinyang import BugRecord, YinYangReport
from repro.errors import ReproError

JOURNAL_VERSION = 2

_REPORT_COUNTERS = (
    "iterations",
    "fused",
    "fusion_failures",
    "unknowns",
    "retries",
    "timeouts",
    "contained_errors",
    "quarantine_skips",
)

# The unknown-kind split is serialized only on request (triage
# campaigns and worker-sidecar wire formats): legacy journals stay
# byte-identical, and the golden-diff tests keep pinning them.
_SPLIT_COUNTERS = ("unknowns_budget", "unknowns_genuine")


class JournalError(ReproError):
    """The journal is unusable (bad version, mismatched campaign params)."""


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def serialize_script(script):
    """A script as SMT-LIB text (identity on already-serialized text)."""
    if script is None or isinstance(script, str):
        return script
    from repro.smtlib.printer import print_script

    return print_script(script)


def serialize_bug_record(record):
    """A JSON-ready dict for one :class:`BugRecord` (``elapsed`` excluded)."""
    data = {
        "kind": record.kind,
        "solver": record.solver,
        "oracle": record.oracle,
        "reported": record.reported,
        "script": serialize_script(record.script),
        "seed_indices": list(record.seed_indices),
        "schemes": list(record.schemes),
        "logic": record.logic,
        "note": record.note,
        "iteration": record.iteration,
    }
    # Journal-format compatibility: fusion records predate the strategy
    # pipeline and must keep their exact bytes (the golden-diff tests
    # pin this), so the strategy key appears only for other workloads.
    if record.strategy != "fusion":
        data["strategy"] = record.strategy
    return data


def deserialize_bug_record(data):
    """Rebuild a :class:`BugRecord`; the script stays as SMT-LIB text."""
    return BugRecord(
        kind=data["kind"],
        solver=data["solver"],
        oracle=data["oracle"],
        reported=data["reported"],
        script=data["script"],
        seed_indices=tuple(data["seed_indices"]),
        schemes=tuple(data["schemes"]),
        logic=data["logic"],
        note=data["note"],
        iteration=data.get("iteration", -1),
        strategy=data.get("strategy", "fusion"),
    )


def serialize_report(report, unknown_split=False):
    data = {key: getattr(report, key) for key in _REPORT_COUNTERS}
    if unknown_split:
        for key in _SPLIT_COUNTERS:
            data[key] = getattr(report, key, 0)
    data["quarantined"] = sorted(report.quarantined)
    data["bugs"] = [serialize_bug_record(b) for b in report.bugs]
    return data


def deserialize_report(data):
    report = YinYangReport(
        **{key: data.get(key, 0) for key in _REPORT_COUNTERS}
    )
    for key in _SPLIT_COUNTERS:
        setattr(report, key, data.get(key, 0))
    report.quarantined = set(data.get("quarantined", ()))
    report.bugs = [deserialize_bug_record(b) for b in data.get("bugs", ())]
    return report


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------


class CampaignJournal:
    """An atomic, append-only JSONL journal of campaign progress.

    Entry types:

    - ``meta`` — campaign parameters, written once at the start; on
      resume a mismatch raises :class:`JournalError` (a journal from a
      different campaign must not silently poison a run);
    - ``cell`` — one completed ``(solver, family, oracle)`` cell with
      its serialized report and bug records;
    - ``shard`` — one completed shard of a cell (only in worker
      sidecar journals): a cell report restricted to the iteration ids
      ``range(shard, iterations, of)``.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self.entries = []
        # Campaigns that track the unknown-kind split (triage) flip
        # this on so cell/shard reports carry the split counters;
        # default off keeps legacy journals byte-identical.
        self.unknown_split = False
        if os.path.exists(self.path):
            self.entries = self._load(self.path)

    @staticmethod
    def _load(path):
        entries = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # A torn trailing line from a crash mid-write (only
                    # possible for journals not written by us); older
                    # complete entries are still good.
                    break
                entries.append(entry)
        for entry in entries:
            if entry.get("type") == "meta" and entry.get("version") != JOURNAL_VERSION:
                raise JournalError(
                    f"journal version {entry.get('version')!r} != {JOURNAL_VERSION}"
                )
        return entries

    # -- writing ---------------------------------------------------------

    def _commit(self):
        """Atomically persist all entries: tmp write + fsync + rename."""
        directory = os.path.dirname(os.path.abspath(self.path))
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for entry in self.entries:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    def ensure_meta(self, **params):
        """Write the meta entry, or verify it matches on resume."""
        existing = self.meta()
        if existing is None:
            self.entries.insert(
                0, {"type": "meta", "version": JOURNAL_VERSION, **params}
            )
            self._commit()
            return
        for key, value in params.items():
            if key in existing and existing[key] != value:
                raise JournalError(
                    f"journal {self.path} was written by a campaign with "
                    f"{key}={existing[key]!r}, not {value!r}; refusing to mix"
                )

    def ensure_strategy(self, name):
        """Verify the journal's strategy matches ``name``.

        Journals written before the strategy pipeline (and all fusion
        journals since — the key is omitted to keep fusion bytes
        stable) carry no ``strategy`` meta key; absence means
        ``"fusion"``. :meth:`ensure_meta` alone cannot catch the
        absent-vs-other cases, since it only compares keys present on
        both sides.
        """
        existing = self.meta()
        if existing is None:
            return
        recorded = existing.get("strategy", "fusion")
        if recorded != name:
            raise JournalError(
                f"journal {self.path} was written by a {recorded!r} "
                f"campaign, not {name!r}; refusing to mix strategies"
            )

    def record_cell(self, key, report):
        """Append one completed cell and commit it durably."""
        solver, family, oracle = key
        self.entries.append(
            {
                "type": "cell",
                "solver": solver,
                "family": family,
                "oracle": oracle,
                "report": serialize_report(report, unknown_split=self.unknown_split),
            }
        )
        self._commit()

    def record_shard(self, key, shard, of, report):
        """Append one completed (cell, shard) and commit it durably.

        Only worker sidecar journals hold shard entries; the parent
        merges them into plain ``cell`` entries of the main journal.
        """
        solver, family, oracle = key
        self.entries.append(
            {
                "type": "shard",
                "solver": solver,
                "family": family,
                "oracle": oracle,
                "shard": shard,
                "of": of,
                "report": serialize_report(report, unknown_split=self.unknown_split),
            }
        )
        self._commit()

    def record_poison(self, cell, data):
        """Append one quarantined poison-iteration artifact.

        ``data`` is the JSON-ready artifact dict (iteration id,
        classification, attempts, strategy, seed, rlimits, formula
        text) produced by the supervisor when a shard kept dying past
        the retry cap and bisection isolated the killer iteration.
        Poison entries only ever appear in campaigns that met such an
        iteration — failure-free journals keep their exact bytes.
        """
        solver, family, oracle = cell
        self.entries.append(
            {
                "type": "poison",
                "solver": solver,
                "family": family,
                "oracle": oracle,
                **data,
            }
        )
        self._commit()

    # -- reading ---------------------------------------------------------

    def meta(self):
        for entry in self.entries:
            if entry.get("type") == "meta":
                return entry
        return None

    def completed_cells(self):
        """{(solver, family, oracle): deserialized YinYangReport}."""
        cells = {}
        for entry in self.entries:
            if entry.get("type") != "cell":
                continue
            key = (entry["solver"], entry["family"], entry["oracle"])
            cells[key] = deserialize_report(entry["report"])
        return cells

    def completed_shards(self):
        """{(solver, family, oracle): {(shard, of): YinYangReport}}."""
        shards = {}
        for entry in self.entries:
            if entry.get("type") != "shard":
                continue
            key = (entry["solver"], entry["family"], entry["oracle"])
            shards.setdefault(key, {})[(entry["shard"], entry["of"])] = (
                deserialize_report(entry["report"])
            )
        return shards

    def poison_entries(self):
        """All quarantined poison-iteration artifacts, in journal order."""
        return [e for e in self.entries if e.get("type") == "poison"]


# ---------------------------------------------------------------------------
# Worker sidecar journals (process-sharded campaigns)
# ---------------------------------------------------------------------------


def sidecar_path(journal_path, worker_id):
    """The sidecar journal path of one worker process."""
    return f"{os.fspath(journal_path)}.shard-{worker_id}.jsonl"


def sidecar_paths(journal_path):
    """All sidecar journals next to ``journal_path`` (any run's workers)."""
    return sorted(_glob.glob(f"{os.fspath(journal_path)}.shard-*.jsonl"))


def load_sidecar_shards(journal_path, expect_meta):
    """Collect completed shards from all sidecars whose meta matches.

    ``expect_meta`` holds the current campaign parameters (seed,
    iterations per cell, worker count). Sidecars written by a campaign
    with different parameters — notably a different ``workers`` count,
    whose shard partition would not line up — are ignored wholesale:
    their cells are simply re-run. Unreadable sidecars are skipped too;
    they can only cost re-work, never correctness.

    Returns ``{cell_key: {(shard, of): YinYangReport}}``.
    """
    collected = {}
    for path in sidecar_paths(journal_path):
        try:
            sidecar = CampaignJournal(path)
        except (JournalError, OSError):
            continue
        meta = sidecar.meta() or {}
        if any(meta.get(key) != value for key, value in expect_meta.items()):
            continue
        for cell, shards in sidecar.completed_shards().items():
            collected.setdefault(cell, {}).update(shards)
    return collected


def remove_sidecars(journal_path):
    """Delete all sidecar journals and lease progress logs (the
    campaign completed; every cell is durably in the main journal)."""
    for path in sidecar_paths(journal_path) + lease_progress_paths(journal_path):
        try:
            os.remove(path)
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Per-lease iteration progress (supervised campaigns)
# ---------------------------------------------------------------------------


def _cell_slug(cell):
    import re

    return re.sub(r"[^A-Za-z0-9_.-]", "_", "-".join(str(part) for part in cell))


def lease_progress_path(journal_path, cell, shard, of):
    """The progress log of one shard lease (shared by its bisected
    descendants — records are keyed by iteration id, so disjoint child
    leases never collide)."""
    return (
        f"{os.fspath(journal_path)}.lease-{_cell_slug(cell)}-{shard}of{of}.jsonl"
    )


def lease_progress_paths(journal_path):
    """All lease progress logs next to ``journal_path``."""
    return sorted(_glob.glob(f"{os.fspath(journal_path)}.lease-*.jsonl"))


class ShardProgress:
    """Append-only per-lease log of completed iterations.

    Deliberately *not* the atomic-rewrite discipline of
    :class:`CampaignJournal`: a shard lease records one line per
    finished iteration (``{"type": "iter", "i": id, "report": ...}``),
    flushed but never rewritten, so the cost per iteration is one
    small append instead of a full-file fsync+rename. The price is a
    possible torn final line when a worker dies mid-write; the loader
    discards it and the supervisor simply re-executes that iteration —
    correctness never depends on the tail surviving.

    A meta line (first line) stamps the campaign parameters; a log
    whose meta does not match the current campaign is discarded
    wholesale (a stale file from a differently-parameterized run on
    the same journal path cannot poison a resume).

    Appends take an advisory ``fcntl`` lock so bisected sibling leases
    running in different workers can safely share one log.
    """

    def __init__(self, path, meta=None):
        self.path = os.fspath(path)
        self.meta = dict(meta or {})
        self.completed = {}
        self._load()

    def _load(self):
        if not os.path.exists(self.path):
            self._write_meta()
            return
        entries = []
        with open(self.path, "rb+") as handle:
            data = handle.read()
            good = 0
            for raw in data.splitlines(keepends=True):
                if not raw.strip():
                    good += len(raw)
                    continue
                if not raw.endswith(b"\n"):
                    break  # torn tail: the worker died mid-append
                try:
                    entries.append(json.loads(raw.decode("utf-8")))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break
                good += len(raw)
            if good < len(data):
                # Truncate the torn tail durably: a later append must
                # start on a fresh line, not glue onto half a record
                # (which would silently lose every record after it on
                # the next load).
                try:
                    import fcntl

                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                except (ImportError, OSError):
                    pass
                handle.truncate(good)
        if not entries or entries[0].get("type") != "meta":
            self._reset()
            return
        recorded = entries[0]
        if any(recorded.get(k) != v for k, v in self.meta.items()):
            self._reset()
            return
        for entry in entries[1:]:
            if entry.get("type") == "iter":
                self.completed[entry["i"]] = entry["report"]

    def _reset(self):
        try:
            os.remove(self.path)
        except OSError:
            pass
        self._write_meta()

    def _write_meta(self):
        self._append({"type": "meta", "version": JOURNAL_VERSION, **self.meta})

    def _append(self, entry):
        line = json.dumps(entry, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            try:
                import fcntl

                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            except (ImportError, OSError):
                pass
            handle.write(line)
            handle.flush()

    def record(self, index, report_data):
        """Durably append one completed iteration's serialized report."""
        self.completed[index] = report_data
        self._append({"type": "iter", "i": index, "report": report_data})
