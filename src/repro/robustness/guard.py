"""Guarded solver execution: the crash containment layer of the harness.

:class:`GuardedSolver` wraps any solver under test and enforces a
:class:`~repro.robustness.policy.ResiliencePolicy`:

- a **watchdog** deadline on each ``check_script`` call (an in-process
  check that hangs is abandoned and reported as a timeout, exactly like
  :class:`~repro.solver.process.ProcessSolver` treats a hung binary);
- **retries with capped exponential backoff** for transient failures
  (spawn ``OSError``, flaky process starts);
- **containment** of any unexpected non-``SolverCrash`` exception as a
  structured :class:`HarnessError` (a bug record, not a dead campaign);
- a **circuit breaker** that quarantines the solver after N consecutive
  crashes/timeouts so a long campaign degrades gracefully to the
  remaining solvers.

The watchdog runs checks on a helper thread and waits with a deadline.
Python cannot kill a running thread, so a genuinely hung check leaks
one abandoned daemon thread; the guard then starts a fresh helper. This
mirrors how the paper's harness abandons hung solver processes — the
leak is bounded by the number of hangs, not the number of checks.
"""

from __future__ import annotations

import queue
import threading

from repro.robustness.policy import ResiliencePolicy
from repro.solver.result import CheckOutcome, SolverCrash, SolverResult

HARNESS_ERROR_KIND = "harness-error"
QUARANTINED_KIND = "quarantined"
TIMEOUT_KIND = "timeout"


class HarnessError(SolverCrash):
    """An unexpected exception from a solver, contained by the guard.

    Not a solver verdict and not a plain crash: the solver (or the glue
    around it) raised something Algorithm 1 does not know about. The
    guard turns it into this structured error so the campaign records a
    bug and moves on instead of dying.
    """

    def __init__(self, message, original=None):
        super().__init__(message, kind=HARNESS_ERROR_KIND)
        self.original = original


class _WatchdogTimeout(Exception):
    """Internal: the watchdog deadline elapsed (never escapes the guard)."""


class _Watchdog:
    """One helper thread executing checks with a wall-clock deadline.

    A fresh (queue, thread) pair is created lazily; when a check times
    out, the pair is abandoned (the stuck thread parks forever on an
    orphaned queue and dies with the process) and the next check gets a
    new pair.
    """

    def __init__(self):
        self._queue = None
        self._thread = None

    def run(self, fn, timeout):
        if self._thread is None or not self._thread.is_alive():
            self._queue = queue.Queue()
            self._thread = threading.Thread(
                target=self._serve, args=(self._queue,), daemon=True
            )
            self._thread.start()
        q = self._queue
        job = {"fn": fn, "done": threading.Event(), "result": None, "error": None}
        q.put(job)
        if not job["done"].wait(timeout):
            # Abandon the stuck helper; the next run() starts a new one.
            if self._queue is q:
                self._queue = None
                self._thread = None
            raise _WatchdogTimeout
        if job["error"] is not None:
            raise job["error"]
        return job["result"]

    def _serve(self, q):
        while True:
            job = q.get()
            try:
                job["result"] = job["fn"]()
            except BaseException as exc:  # delivered to the waiter
                job["error"] = exc
            job["done"].set()
            if self._queue is not q:
                return  # we were abandoned mid-job; don't linger


class GuardedSolver:
    """A solver under test wrapped in the harness's containment layer.

    Exposes the same ``name`` / ``check_script`` surface as any solver;
    unknown attributes (``active_faults``, ``triggered_faults``, ...)
    are delegated to the wrapped solver so the guard is transparent to
    the campaign and triage layers.

    Counters (cumulative, thread-safe):

    - ``stats["retries"]`` — transient failures retried,
    - ``stats["timeouts"]`` — checks abandoned by the watchdog,
    - ``stats["contained"]`` — non-``SolverCrash`` exceptions contained,
    - ``stats["crashes"]`` — ``SolverCrash`` outcomes observed.

    Per-check deltas also ride on the returned outcome
    (``outcome.stats["guard_retries"]``, ``["guard_timeout"]``) or on the
    raised crash (``crash.retries``) so the YinYang loop can surface
    them per report even when one guard spans many reports.
    """

    def __init__(self, solver, policy=None, telemetry=None):
        self.base = solver
        self.policy = policy or ResiliencePolicy()
        self.name = solver.name
        self.quarantined = False
        self.consecutive_failures = 0
        self.stats = {"retries": 0, "timeouts": 0, "contained": 0, "crashes": 0}
        # Observability hook (see repro.observability): when attached,
        # guard events also bump campaign-wide "guard.*" counters.
        # Declared explicitly so an unattached guard never falls
        # through __getattr__ to the wrapped solver's handle.
        self.telemetry = telemetry
        self._lock = threading.Lock()
        # One watchdog per calling thread: concurrent checks (YinYang's
        # thread mode) must not serialize behind a single helper.
        self._local = threading.local()

    def __getattr__(self, attr):
        return getattr(self.base, attr)

    # -- bookkeeping -----------------------------------------------------

    def _count(self, key, n=1):
        with self._lock:
            self.stats[key] += n
        tel = self.telemetry
        if tel is not None:
            tel.count("guard." + key, n)

    def _failure(self):
        """One crash/timeout/contained error; may trip the breaker."""
        tripped = False
        with self._lock:
            self.consecutive_failures += 1
            threshold = self.policy.quarantine_after
            if threshold is not None and self.consecutive_failures >= threshold:
                tripped = not self.quarantined
                self.quarantined = True
        if tripped:
            tel = self.telemetry
            if tel is not None:
                tel.count("guard.quarantine_trips")

    def _success(self):
        with self._lock:
            self.consecutive_failures = 0

    def force_quarantine(self):
        """Trip the breaker from outside the failure path.

        Process-sharded campaigns use this to aggregate quarantine
        state across workers: each worker owns its solver instances, so
        a breaker tripped in one worker is invisible to the others
        until the parent collects the merged shard reports and
        re-broadcasts the quarantined names into subsequent tasks —
        matching serial mode, where one guard spans the whole campaign.
        """
        with self._lock:
            self.quarantined = True

    def guard_state(self):
        """A picklable snapshot of the breaker and counters.

        Workers ship this back with their shard results so the parent
        can aggregate per-worker guard activity without sharing any
        live (lock-bearing, unpicklable) guard objects across the
        spawn boundary.
        """
        with self._lock:
            return {
                "name": self.name,
                "quarantined": self.quarantined,
                "consecutive_failures": self.consecutive_failures,
                "stats": dict(self.stats),
            }

    # -- the guarded check ----------------------------------------------

    def _call_base(self, script, directive=None, session=None):
        # The directive and session travel as explicit arguments (never
        # a thread-local): the watchdog runs the check on a helper
        # thread, where ambient state would silently not propagate.
        if session is not None:
            call = lambda: self.base.check_script(
                script, directive=directive, session=session
            )
        elif directive is None:
            call = lambda: self.base.check_script(script)
        else:
            call = lambda: self.base.check_script(script, directive=directive)
        timeout = self.policy.check_timeout
        if timeout is None:
            return call()
        watchdog = getattr(self._local, "watchdog", None)
        if watchdog is None:
            watchdog = self._local.watchdog = _Watchdog()
        return watchdog.run(call, timeout)

    def _is_transient(self, exc):
        if isinstance(exc, SolverCrash):
            return exc.kind in self.policy.retryable_kinds
        return isinstance(exc, OSError)

    def check_script(self, script, directive=None, session=None):
        if self.quarantined:
            raise SolverQuarantined(self.name)
        policy = self.policy
        retries_used = 0
        while True:
            try:
                outcome = self._call_base(script, directive=directive, session=session)
            except _WatchdogTimeout:
                self._count("timeouts")
                self._failure()
                outcome = CheckOutcome(
                    SolverResult.UNKNOWN,
                    reason=f"guard: check exceeded {policy.check_timeout}s deadline",
                )
                outcome.stats["guard_timeout"] = True
                if retries_used:
                    outcome.stats["guard_retries"] = retries_used
                return outcome
            except (KeyboardInterrupt, SolverQuarantined):
                raise
            except BaseException as exc:
                if self._is_transient(exc) and retries_used < policy.retries:
                    policy.sleep(policy.backoff(retries_used))
                    retries_used += 1
                    self._count("retries")
                    continue
                if isinstance(exc, SolverCrash):
                    self._count("crashes")
                    self._failure()
                    exc.retries = retries_used
                    raise
                if not policy.contain_errors or not isinstance(exc, Exception):
                    raise
                self._count("contained")
                self._failure()
                contained = HarnessError(
                    f"{self.name}: contained {type(exc).__name__}: {exc}",
                    original=exc,
                )
                contained.retries = retries_used
                raise contained from exc
            self._success()
            if retries_used:
                outcome.stats["guard_retries"] = retries_used
            return outcome

    def check(self, source):
        from repro.smtlib.parser import parse_script

        script = parse_script(source) if isinstance(source, str) else source
        return self.check_script(script)


class SolverQuarantined(SolverCrash):
    """Raised when a check is attempted on a quarantined solver.

    Control flow, not a bug record: the YinYang loop consults
    ``solver.quarantined`` before checking and counts this as a
    quarantine skip (not a crash) when a race trips the breaker between
    that check and the call.
    """

    def __init__(self, name):
        super().__init__(f"solver {name} is quarantined", kind=QUARANTINED_KIND)
        self.solver_name = name
