"""Fault injection for the harness itself: the ChaosSolver.

Real campaigns meet solvers that hang, segfault, print garbage, answer
wrongly, or blow up the glue code with unexpected exceptions.
:class:`ChaosSolver` reproduces all five misbehaviors with *seeded*
probabilities, so the hardened harness
(:class:`~repro.robustness.guard.GuardedSolver`, the campaign journal)
can be tested against a deterministic storm of failures — chaos
engineering turned on our own tooling.

Determinism: the fault sequence is a pure function of ``seed`` and the
order of ``check_script`` calls. Single-threaded campaigns therefore
replay exactly; that is what the tier-1 chaos soak test relies on.
"""

from __future__ import annotations

import random
import time

from repro.solver.result import CheckOutcome, SolverCrash, SolverResult

#: Injection kinds, in the order probabilities are drawn.
HANG, CRASH, GARBAGE, WRONG, EXCEPTION = (
    "hang",
    "crash",
    "garbage",
    "wrong-answer",
    "exception",
)


class ChaosError(RuntimeError):
    """The injected non-``SolverCrash`` exception (glue-code failure)."""


class ChaosSolver:
    """A solver wrapper that misbehaves on purpose.

    Each probability is checked independently in a fixed order (hang,
    crash, garbage, wrong answer, exception); the first one that fires
    wins. A hang sleeps ``hang_seconds`` and then *continues normally* —
    exactly what a slow-but-alive solver does — so only a watchdog
    deadline turns it into a timeout.

    ``injected`` counts fired faults per kind for assertions.
    """

    def __init__(
        self,
        solver,
        seed=0,
        p_hang=0.0,
        p_crash=0.0,
        p_garbage=0.0,
        p_wrong=0.0,
        p_exception=0.0,
        hang_seconds=10.0,
    ):
        for label, p in (
            (HANG, p_hang),
            (CRASH, p_crash),
            (GARBAGE, p_garbage),
            (WRONG, p_wrong),
            (EXCEPTION, p_exception),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"p_{label} must be in [0, 1]")
        self.base = solver
        self.name = f"chaos({solver.name})"
        self.probabilities = {
            HANG: p_hang,
            CRASH: p_crash,
            GARBAGE: p_garbage,
            WRONG: p_wrong,
            EXCEPTION: p_exception,
        }
        self.hang_seconds = hang_seconds
        self.rng = random.Random(seed)
        self.injected = {kind: 0 for kind in self.probabilities}
        self.checks = 0

    def __getattr__(self, attr):
        return getattr(self.base, attr)

    def _draw(self):
        """The fault to inject for this check, or None."""
        for kind, p in self.probabilities.items():
            if p > 0.0 and self.rng.random() < p:
                return kind
        return None

    def check_script(self, script):
        self.checks += 1
        fault = self._draw()
        if fault is not None:
            self.injected[fault] += 1
        if fault == HANG:
            time.sleep(self.hang_seconds)
        elif fault == CRASH:
            raise SolverCrash(
                f"{self.name}: injected segmentation fault (core dumped)",
                kind="segfault",
            )
        elif fault == GARBAGE:
            noise = "".join(self.rng.choices("#$%&*@!~", k=8))
            return CheckOutcome(
                SolverResult.UNKNOWN, reason=f"garbage output: {noise}"
            )
        elif fault == EXCEPTION:
            raise ChaosError(f"{self.name}: injected harness exception")
        outcome = self.base.check_script(script)
        if fault == WRONG and outcome.result.is_definite:
            return CheckOutcome(
                outcome.result.flipped(),
                reason=f"{self.name}: flipped verdict",
            )
        return outcome

    def check(self, source):
        from repro.smtlib.parser import parse_script

        script = parse_script(source) if isinstance(source, str) else source
        return self.check_script(script)
