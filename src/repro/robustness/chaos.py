"""Fault injection for the harness itself: the ChaosSolver.

Real campaigns meet solvers that hang, segfault, print garbage, answer
wrongly, or blow up the glue code with unexpected exceptions.
:class:`ChaosSolver` reproduces all five misbehaviors with *seeded*
probabilities, so the hardened harness
(:class:`~repro.robustness.guard.GuardedSolver`, the campaign journal)
can be tested against a deterministic storm of failures — chaos
engineering turned on our own tooling.

Determinism: the fault sequence is a pure function of ``seed`` and the
order of ``check_script`` calls. Single-threaded campaigns therefore
replay exactly; that is what the tier-1 chaos soak test relies on.

:class:`ProcessChaos` extends the same discipline across the process
boundary: a picklable plan that makes a *worker process* die (SIGKILL,
like the kernel OOM killer), hang (so only the supervisor's heartbeat
watchdog can recover it), burn CPU (to trip RLIMIT_CPU), or exhaust
memory (to trip RLIMIT_AS) at chosen global iteration ids. Faults are
gated on the shard lease's attempt number, so recovery is provable
deterministically: ``attempts=1`` kills exactly the first execution of
an iteration (the respawned retry sails through), while a large
``attempts`` makes an iteration a permanent killer — the poison case
the supervisor must isolate by bisection instead of dying on.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass

from repro.solver.result import CheckOutcome, SolverCrash, SolverResult

#: Injection kinds, in the order probabilities are drawn.
HANG, CRASH, GARBAGE, WRONG, EXCEPTION = (
    "hang",
    "crash",
    "garbage",
    "wrong-answer",
    "exception",
)


class ChaosError(RuntimeError):
    """The injected non-``SolverCrash`` exception (glue-code failure)."""


class ChaosSolver:
    """A solver wrapper that misbehaves on purpose.

    Each probability is checked independently in a fixed order (hang,
    crash, garbage, wrong answer, exception); the first one that fires
    wins. A hang sleeps ``hang_seconds`` and then *continues normally* —
    exactly what a slow-but-alive solver does — so only a watchdog
    deadline turns it into a timeout.

    ``injected`` counts fired faults per kind for assertions.
    """

    def __init__(
        self,
        solver,
        seed=0,
        p_hang=0.0,
        p_crash=0.0,
        p_garbage=0.0,
        p_wrong=0.0,
        p_exception=0.0,
        hang_seconds=10.0,
    ):
        for label, p in (
            (HANG, p_hang),
            (CRASH, p_crash),
            (GARBAGE, p_garbage),
            (WRONG, p_wrong),
            (EXCEPTION, p_exception),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"p_{label} must be in [0, 1]")
        self.base = solver
        self.name = f"chaos({solver.name})"
        self.probabilities = {
            HANG: p_hang,
            CRASH: p_crash,
            GARBAGE: p_garbage,
            WRONG: p_wrong,
            EXCEPTION: p_exception,
        }
        self.hang_seconds = hang_seconds
        self.rng = random.Random(seed)
        self.injected = {kind: 0 for kind in self.probabilities}
        self.checks = 0

    def __getattr__(self, attr):
        return getattr(self.base, attr)

    def _draw(self):
        """The fault to inject for this check, or None."""
        for kind, p in self.probabilities.items():
            if p > 0.0 and self.rng.random() < p:
                return kind
        return None

    def check_script(self, script, directive=None, session=None):
        self.checks += 1
        fault = self._draw()
        if fault is not None:
            self.injected[fault] += 1
        if fault == HANG:
            time.sleep(self.hang_seconds)
        elif fault == CRASH:
            raise SolverCrash(
                f"{self.name}: injected segmentation fault (core dumped)",
                kind="segfault",
            )
        elif fault == GARBAGE:
            noise = "".join(self.rng.choices("#$%&*@!~", k=8))
            return CheckOutcome(
                SolverResult.UNKNOWN, reason=f"garbage output: {noise}"
            )
        elif fault == EXCEPTION:
            raise ChaosError(f"{self.name}: injected harness exception")
        if session is not None:
            outcome = self.base.check_script(
                script, directive=directive, session=session
            )
        elif directive is None:
            outcome = self.base.check_script(script)
        else:
            outcome = self.base.check_script(script, directive=directive)
        if fault == WRONG and outcome.result.is_definite:
            return CheckOutcome(
                outcome.result.flipped(),
                reason=f"{self.name}: flipped verdict",
            )
        return outcome

    def check(self, source):
        from repro.smtlib.parser import parse_script

        script = parse_script(source) if isinstance(source, str) else source
        return self.check_script(script)


# ---------------------------------------------------------------------------
# Process-level fault injection (supervised campaigns)
# ---------------------------------------------------------------------------

#: ProcessChaos fault kinds, in the order they are checked.
KILL, PROC_HANG, SPIN, OOM_ALLOC = "kill", "proc-hang", "spin", "oom-alloc"


@dataclass(frozen=True)
class ProcessChaos:
    """A picklable plan of process-level faults for campaign workers.

    Each ``*_at`` tuple names *global iteration ids*; the fault fires
    when a worker is about to execute that iteration and the shard
    lease's ``attempt`` is still below ``attempts`` (default 1: the
    fault fires once and the supervised retry succeeds — set a large
    ``attempts`` to model a poison iteration that kills every retry).

    - ``kill_at`` — die by ``kill_signal`` (default SIGKILL, the
      OOM-killer's calling card) before running the iteration;
    - ``hang_at`` — sleep ``hang_seconds`` (recoverable only by the
      supervisor's stale-heartbeat kill);
    - ``spin_at`` — burn ``spin_seconds`` of CPU time (trips
      RLIMIT_CPU under a :class:`~repro.robustness.containment.ContainmentPolicy`);
    - ``oom_at`` — allocate ``oom_bytes`` at once (raises
      :class:`MemoryError` under RLIMIT_AS; without a limit it may
      succeed or draw the kernel's OOM killer — both paths are ones a
      self-healing campaign must survive).
    """

    kill_at: tuple = ()
    hang_at: tuple = ()
    spin_at: tuple = ()
    oom_at: tuple = ()
    attempts: int = 1
    kill_signal: int = signal.SIGKILL
    hang_seconds: float = 3600.0
    spin_seconds: float = 30.0
    oom_bytes: int = 1 << 31

    def __post_init__(self):
        if self.attempts < 0:
            raise ValueError("attempts must be >= 0")

    def fault_for(self, index, attempt):
        """The fault this iteration/attempt draws, or None (pure)."""
        if attempt >= self.attempts:
            return None
        if index in self.kill_at:
            return KILL
        if index in self.hang_at:
            return PROC_HANG
        if index in self.spin_at:
            return SPIN
        if index in self.oom_at:
            return OOM_ALLOC
        return None

    def fire(self, index, attempt):
        """Inject the planned fault for this iteration (worker side)."""
        fault = self.fault_for(index, attempt)
        if fault is None:
            return
        if fault == KILL:
            os.kill(os.getpid(), self.kill_signal)
        elif fault == PROC_HANG:
            time.sleep(self.hang_seconds)
        elif fault == SPIN:
            deadline = time.process_time() + self.spin_seconds
            while time.process_time() < deadline:
                pass
        elif fault == OOM_ALLOC:
            _hoard = bytearray(self.oom_bytes)  # noqa: F841
