"""Resource containment for campaign workers: rlimits + death triage.

The paper's campaigns ran for months; at that scale a worker process
that leaks memory or spins forever is not an anomaly, it is Tuesday.
:class:`ContainmentPolicy` is the picklable recipe a worker applies to
itself at startup (``resource.setrlimit`` on RLIMIT_AS / RLIMIT_CPU),
turning runaway resource use into one of two *classifiable* deaths:

- an address-space overrun makes allocations fail, so the worker raises
  :class:`MemoryError` — which travels back to the parent as an
  ordinary future exception (the worker survives);
- a CPU overrun gets SIGXCPU from the kernel at the soft limit (the
  default action kills the process; the hard limit adds a SIGKILL
  backstop a few seconds later), so the pool breaks and the parent sees
  the worker's negative exit code.

The parent-side half of the story lives in :func:`classify_exit` /
:func:`classify_exception`: given how a worker died (exit code or
surfaced exception) and the policy that was in force, name the death —
``oom`` / ``oom-kill`` / ``cpu-kill`` / ``hang-kill`` / plain crash —
so the supervisor's retry, telemetry, and poison-artifact records say
*why* a shard keeps dying, not just that it does.

``resource`` is POSIX-only; on platforms without it :meth:`apply` is a
no-op that reports itself as such, and classification degrades to the
signal-number spellings.
"""

from __future__ import annotations

import signal
from dataclasses import dataclass

#: Parent-side death classifications (stable strings: they appear in
#: poison artifacts, telemetry counter names, and the stats dashboard).
OOM = "oom"  # in-worker MemoryError under RLIMIT_AS
OOM_KILL = "oom-kill"  # SIGKILL with a memory limit in force
CPU_KILL = "cpu-kill"  # SIGXCPU from RLIMIT_CPU
HANG_KILL = "hang-kill"  # SIGKILL sent by the supervisor (stale heartbeat)
WORKER_DEATH = "worker-death"  # died without a usable exit code


@dataclass(frozen=True)
class ContainmentPolicy:
    """Per-worker resource limits (picklable; applied worker-side).

    - ``mem_limit_mb`` — RLIMIT_AS ceiling in megabytes. Exceeding it
      makes allocations raise :class:`MemoryError` inside the worker;
      a C-level overrun that the allocator cannot survive ends in the
      kernel's SIGKILL, which the parent classifies as ``oom-kill``.
    - ``cpu_limit_seconds`` — RLIMIT_CPU soft limit in CPU-seconds
      *per worker process lifetime* (not per shard). The kernel sends
      SIGXCPU at the soft limit; ``cpu_grace_seconds`` later the hard
      limit delivers an unignorable SIGKILL.
    """

    mem_limit_mb: float | None = None
    cpu_limit_seconds: float | None = None
    cpu_grace_seconds: int = 5

    def __post_init__(self):
        if self.mem_limit_mb is not None and self.mem_limit_mb <= 0:
            raise ValueError("mem_limit_mb must be positive (or None)")
        if self.cpu_limit_seconds is not None and self.cpu_limit_seconds <= 0:
            raise ValueError("cpu_limit_seconds must be positive (or None)")
        if self.cpu_grace_seconds < 0:
            raise ValueError("cpu_grace_seconds must be >= 0")

    @property
    def mem_limit_bytes(self):
        if self.mem_limit_mb is None:
            return None
        return int(self.mem_limit_mb * 1024 * 1024)

    def describe(self):
        """The rlimits as a JSON-ready dict (for poison artifacts)."""
        return {
            "mem_limit_mb": self.mem_limit_mb,
            "cpu_limit_seconds": self.cpu_limit_seconds,
        }

    def apply(self):
        """Install the rlimits on the calling process.

        Returns ``True`` when limits were installed, ``False`` on
        platforms without the ``resource`` module. Soft limits are
        clipped to the inherited hard limits — an unprivileged worker
        can lower its ceilings but never raise them.
        """
        try:
            import resource
        except ImportError:  # pragma: no cover - non-POSIX platforms
            return False
        if self.mem_limit_bytes is not None:
            _, hard = resource.getrlimit(resource.RLIMIT_AS)
            soft = self.mem_limit_bytes
            if hard != resource.RLIM_INFINITY:
                soft = min(soft, hard)
            resource.setrlimit(resource.RLIMIT_AS, (soft, hard))
        if self.cpu_limit_seconds is not None:
            _, hard = resource.getrlimit(resource.RLIMIT_CPU)
            soft = max(1, int(self.cpu_limit_seconds))
            kill_at = soft + self.cpu_grace_seconds
            if hard != resource.RLIM_INFINITY:
                soft = min(soft, hard)
                kill_at = min(kill_at, hard)
            resource.setrlimit(resource.RLIMIT_CPU, (soft, kill_at))
        return True


def _signal_name(signum):
    try:
        return signal.Signals(signum).name
    except ValueError:
        return str(signum)


def is_teardown_exit(exitcode):
    """Whether an exit code is normal pool-teardown collateral.

    When one worker dies abnormally, the executor terminates its
    siblings (SIGTERM) or lets them exit cleanly — those deaths must
    not be charged to the leases the siblings happened to be running.
    """
    return exitcode is None or exitcode == 0 or exitcode == -signal.SIGTERM


def classify_exit(exitcode, policy=None):
    """Name a worker's death from its exit code (parent side).

    ``policy`` is the :class:`ContainmentPolicy` in force (if any):
    a SIGKILL under a memory limit is almost always the allocator or
    the kernel OOM killer enforcing that limit, so it reads as
    ``oom-kill`` rather than an anonymous signal.
    """
    if exitcode is None:
        return WORKER_DEATH
    if exitcode >= 0:
        return f"exit:{exitcode}"
    signum = -exitcode
    if signum == signal.SIGXCPU:
        return CPU_KILL
    if signum == signal.SIGKILL:
        if policy is not None and policy.mem_limit_mb is not None:
            return OOM_KILL
        return "killed"
    return f"signal:{_signal_name(signum)}"


def classify_exception(exc, policy=None):
    """Name an in-worker containment failure surfaced as an exception."""
    if isinstance(exc, MemoryError):
        return OOM
    return f"worker-error:{type(exc).__name__}"
