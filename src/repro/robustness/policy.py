"""The knobs of the hardened campaign harness.

The paper's four-month campaign survived thousands of solver crashes,
hangs, and garbage outputs; :class:`ResiliencePolicy` collects the
containment parameters that make our campaign loop equally hard to
kill. One policy object is plumbed from the CLI through
:class:`~repro.core.yinyang.YinYang` down to
:class:`~repro.robustness.guard.GuardedSolver`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class ResiliencePolicy:
    """How a campaign treats a misbehaving solver under test.

    - ``check_timeout`` — per-check wall-clock deadline in seconds.
      ``None`` disables the watchdog (and its thread-handoff overhead);
      a timed-out check yields ``unknown`` like
      :class:`~repro.solver.process.ProcessSolver` does.
    - ``retries`` — how many times a *transient* failure (spawn
      ``OSError``, a flaky process start) is retried before it counts.
    - ``backoff_base`` / ``backoff_cap`` — capped exponential backoff
      between retries: attempt ``k`` sleeps
      ``min(cap, base * 2**k)`` seconds.
    - ``retryable_kinds`` — the :class:`SolverCrash.kind` values
      considered transient.
    - ``quarantine_after`` — circuit breaker: after this many
      *consecutive* crashes / timeouts / contained harness errors the
      solver is quarantined and the campaign degrades gracefully to the
      remaining solvers. ``None`` never quarantines.
    - ``contain_errors`` — whether an unexpected non-``SolverCrash``
      exception from a solver is contained as a structured harness
      error instead of killing the run.
    - ``sleep`` — injection point for the backoff sleeper (tests pass a
      no-op to keep retry tests instant).
    """

    check_timeout: float | None = None
    retries: int = 0
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    retryable_kinds: tuple = ("spawn",)
    quarantine_after: int | None = None
    contain_errors: bool = True
    sleep: object = field(default=time.sleep, repr=False)

    def __post_init__(self):
        if self.check_timeout is not None and self.check_timeout <= 0:
            raise ValueError("check_timeout must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")
        if self.quarantine_after is not None and self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1 (or None)")

    def backoff(self, attempt):
        """Backoff delay in seconds before retry number ``attempt`` (0-based)."""
        return min(self.backoff_cap, self.backoff_base * (2**attempt))
