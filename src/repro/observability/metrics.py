"""The metrics registry: counters, gauges, fixed-bucket histograms.

Pure-Python and allocation-light: the hot path of every instrument is a
plain attribute increment or a short bucket scan — no locks, no string
formatting, no timestamps, and (in steady state) no allocations beyond
the boxed numbers Python itself creates. Campaign code holds metric
handles (``registry.counter("fused")``) and bumps them; everything else
— serialization, merging, rendering — happens off the hot path.

Merge semantics are the load-bearing design point: process-sharded
campaigns collect one snapshot per shard and the parent folds them
together, exactly like sidecar journals. Merging must therefore be
**associative and commutative with an identity** (the empty registry),
so that any shard partition and any merge order produce the totals a
serial run would have accumulated:

- **counters** add;
- **gauges** take the maximum (a high-water mark — the only fold that
  is commutative, associative, and idempotent for point-in-time
  values);
- **histograms** add per-bucket counts, sums, and counts (they must
  share the same bucket bounds — all our histograms of one name do, by
  construction);
- **sets** (e.g. cumulative coverage probe ids) take the union.

``tests/test_observability.py`` proves these laws by property testing.

Nothing in this module reads the clock or draws randomness: telemetry
must never perturb the campaign's RNG stream (see DESIGN.md §10).
"""

from __future__ import annotations

from bisect import bisect_left

# Default histogram buckets for wall-time observations, in seconds.
# Log-spaced from 10µs to 10s; observations above the last bound land
# in the overflow bucket.
TIME_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n


class Gauge:
    """A point-in-time value; merges as a high-water mark."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def track_max(self, value):
        if value > self.value:
            self.value = value


class Histogram:
    """A fixed-bucket histogram of numeric observations.

    ``bounds`` are the inclusive upper bounds of each bucket; one
    overflow bucket is appended implicitly. ``observe`` is a bisect
    over a short tuple plus two increments — cheap enough for
    per-phase wall times on the campaign hot path.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count")

    def __init__(self, name, bounds=TIME_BUCKETS):
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q):
        """Bucket-resolution quantile: the upper bound of the bucket
        holding the ``q``-th observation (the last bound for overflow)."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target and n:
                return self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
        return self.bounds[-1]


class MetricsRegistry:
    """A named collection of metrics with snapshot/merge support."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._sets = {}

    # -- handles ---------------------------------------------------------

    def counter(self, name):
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name):
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name, bounds=TIME_BUCKETS):
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    def value_set(self, name):
        """A named set of hashable values (merged by union)."""
        values = self._sets.get(name)
        if values is None:
            values = self._sets[name] = set()
        return values

    def inc(self, name, n=1):
        """Convenience: bump a counter by name."""
        self.counter(name).inc(n)

    # -- snapshots -------------------------------------------------------

    def snapshot(self):
        """A picklable/JSON-ready dict of everything recorded.

        Sets are serialized as sorted lists so the snapshot is
        deterministic for deterministic inputs (and diffable on disk).
        """
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for n, h in sorted(self._histograms.items())
            },
            "sets": {n: sorted(map(str, s)) for n, s in sorted(self._sets.items())},
        }

    def merge_snapshot(self, snap):
        """Fold a snapshot into this registry (associative, commutative)."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).track_max(value)
        for name, data in snap.get("histograms", {}).items():
            hist = self.histogram(name, data["bounds"])
            if tuple(data["bounds"]) != hist.bounds:
                raise ValueError(
                    f"histogram {name!r}: cannot merge bounds "
                    f"{tuple(data['bounds'])} into {hist.bounds}"
                )
            for i, n in enumerate(data["counts"]):
                hist.counts[i] += n
            hist.sum += data["sum"]
            hist.count += data["count"]
        for name, values in snap.get("sets", {}).items():
            self.value_set(name).update(values)
        return self

    @classmethod
    def from_snapshot(cls, snap):
        return cls().merge_snapshot(snap)

    def merge(self, other):
        """Fold another registry into this one."""
        return self.merge_snapshot(other.snapshot())


def merge_snapshots(snapshots):
    """Merge shard snapshots into one (the parent-side fold)."""
    registry = MetricsRegistry()
    for snap in snapshots:
        registry.merge_snapshot(snap)
    return registry.snapshot()
