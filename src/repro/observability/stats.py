"""The ``yinyang stats`` dashboard: render a campaign from its journal
and (optionally) its metrics sidecar.

Everything here is read-only and pure: given the same journal bytes and
the same snapshot dict, the rendered text is byte-identical — which is
what makes the golden-file tests in ``tests/test_observability.py``
possible. Wall-clock noise never reaches this module because the
journal excludes ``elapsed`` by design and the snapshot's histograms
are only summarized, never re-measured.
"""

from __future__ import annotations

from repro.campaign.report import render_bars, render_table
from repro.coverage.report import coverage_counts
from repro.observability.trace import phase_rows
from repro.robustness.journal import CampaignJournal, deserialize_report

_CELL_HEADERS = [
    "cell",
    "iter",
    "fused",
    "fuse-fail",
    "sound",
    "crash",
    "perf",
    "unknown",
]

_RESILIENCE_KEYS = ("retries", "timeouts", "contained_errors", "quarantine_skips")


def journal_cell_rows(journal):
    """(rows, totals) for the per-cell table of a journal."""
    rows = []
    totals = {}
    for entry in journal.entries:
        if entry.get("type") != "cell":
            continue
        report = deserialize_report(entry["report"])
        counters = report.counters()
        for key, value in counters.items():
            totals[key] = totals.get(key, 0) + value
        rows.append(
            (
                f"{entry['solver']}/{entry['family']}/{entry['oracle']}",
                counters["iterations"],
                counters["fused"],
                counters["fusion_failures"],
                counters["soundness"],
                counters["crash"],
                counters["performance"],
                counters["unknowns"],
            )
        )
    return rows, totals


def _header_lines(journal):
    meta = journal.meta() or {}
    parts = [f"seed {meta.get('seed', '?')}"]
    if "strategy" in meta:
        # Fusion journals omit the key (byte-stability); only other
        # strategies surface here.
        parts.append(f"strategy {meta['strategy']}")
    if "logic" in meta:
        # Logic-restricted campaigns (e.g. --logic QF_BV) stamp the
        # logic; all-families campaigns omit it, like strategy above.
        parts.append(f"logic {meta['logic']}")
    if "iterations_per_cell" in meta:
        parts.append(f"{meta['iterations_per_cell']} iterations/cell")
    if "workers" in meta:
        parts.append(f"{meta['workers']} workers")
    if "triage" in meta:
        # Triage campaigns record the canonical policy spec so a stats
        # reader can tell which budget tiers produced the numbers.
        parts.append(f"triage {meta['triage']}")
    if "incremental" in meta:
        # Incremental campaigns journal the session cap spec; cold
        # campaigns omit the key entirely (byte-stability, like
        # strategy/triage above).
        parts.append(f"incremental {meta['incremental']}")
    return [f"Campaign journal: {journal.path}", "  " + ", ".join(parts)]


def _bug_bars(totals):
    pairs = [
        ("soundness", totals.get("soundness", 0)),
        ("crash", totals.get("crash", 0)),
        ("performance", totals.get("performance", 0)),
        ("unknown-bug", totals.get("bugs", 0)
         - totals.get("soundness", 0)
         - totals.get("crash", 0)
         - totals.get("performance", 0)),
    ]
    return render_bars(pairs, title="Bugs by kind", width=30)


def _metrics_sections(snapshot):
    lines = []
    counters = snapshot.get("counters", {})
    if counters:
        rows = [(name, value) for name, value in sorted(counters.items())]
        lines += ["", render_table(["counter", "value"], rows, "Metrics")]
    session = session_rows(counters)
    if session:
        lines += [
            "",
            render_table(["session", "value"], session, "Incremental sessions"),
        ]
    fleet = [
        (name.split(".", 1)[1], value)
        for name, value in sorted(counters.items())
        if name.startswith("fleet.")
    ]
    if fleet:
        # Only tcp campaigns emit fleet.* counters, so dashboards of
        # in-process runs render unchanged.
        lines += [
            "",
            render_table(["fleet", "value"], fleet, "Distributed fleet"),
        ]
    gauges = {
        n: v for n, v in snapshot.get("gauges", {}).items()
        if not n.startswith("coverage.")
    }
    if gauges:
        rows = [(name, value) for name, value in sorted(gauges.items())]
        lines += ["", render_table(["gauge", "value"], rows, "Profile gauges")]
    phases = phase_rows(snapshot)
    if phases:
        rows = [
            (name, calls, f"{total:.3f}s", f"{mean * 1e3:.2f}ms", f"{p90 * 1e3:.1f}ms")
            for name, calls, total, mean, p90 in phases
        ]
        lines += [
            "",
            render_table(
                ["phase", "calls", "total", "mean", "~p90"],
                rows,
                "Phase profile (wall time)",
            ),
        ]
    coverage = coverage_rows(snapshot)
    if coverage:
        lines += [
            "",
            render_table(
                ["kind", "fired", "registered", "%"],
                coverage,
                "Cumulative probe coverage",
            ),
        ]
    return lines


def session_rows(counters):
    """(label, value) rows summarizing incremental-session reuse.

    Empty unless the snapshot carries ``session.*`` counters, so cold
    campaigns (and every pre-existing golden file) render unchanged.
    Rates are derived here rather than journalled: the counters are the
    single source of truth and merge additively across shards.
    """
    if not any(name.startswith("session.") for name in counters):
        return []

    def rate(hits, misses):
        total = hits + misses
        if not total:
            return "-"
        return f"{100.0 * hits / total:.1f}% ({hits}/{total})"

    rows = [
        (
            "outcome-cache hit rate",
            rate(
                counters.get("session.outcome.hit", 0),
                counters.get("session.outcome.miss", 0),
            ),
        ),
        (
            "theory-cache hit rate",
            rate(
                counters.get("session.theory.hit", 0),
                counters.get("session.theory.miss", 0),
            ),
        ),
        (
            "warm solves decided",
            rate(
                counters.get("session.warm.decided", 0),
                counters.get("session.warm.fallback", 0),
            ),
        ),
        ("warm solves skipped", counters.get("session.warm.skipped", 0)),
        ("clauses replayed", counters.get("session.clauses.replayed", 0)),
        ("clauses exported", counters.get("session.clauses.exported", 0)),
        ("evictions", counters.get("session.evictions", 0)),
    ]
    return rows


def coverage_rows(snapshot):
    """(kind, fired, registered, pct) rows from cumulative coverage sets.

    Decodes via :func:`repro.coverage.report.coverage_counts` — the same
    function Figure 11 uses — so the dashboard and the coverage study
    can never disagree about the same snapshot.
    """
    rows = []
    for kind, (fired, registered) in coverage_counts(snapshot).items():
        if not fired and not registered:
            continue
        pct = 100.0 * fired / registered if registered else 0.0
        rows.append((kind, fired, registered, f"{pct:.1f}"))
    return rows


def poison_rows(journal):
    """(cell, iteration, classification, attempts, strategy/seed) rows
    for the quarantined poison-iteration artifacts of a journal."""
    rows = []
    for entry in journal.poison_entries():
        rows.append(
            (
                f"{entry['solver']}/{entry['family']}/{entry['oracle']}",
                entry.get("iteration", "?"),
                entry.get("classification", "?"),
                entry.get("attempts", "?"),
                f"{entry.get('strategy', '?')}@{entry.get('seed', '?')}",
            )
        )
    return rows


def render_stats(journal, snapshot=None):
    """The full dashboard text.

    ``journal`` is a path or a
    :class:`~repro.robustness.journal.CampaignJournal`; ``snapshot`` an
    optional metrics dict (from
    :func:`~repro.observability.telemetry.load_snapshot`).
    """
    if not isinstance(journal, CampaignJournal):
        journal = CampaignJournal(journal)
    lines = _header_lines(journal)
    rows, totals = journal_cell_rows(journal)
    lines += ["", render_table(_CELL_HEADERS, rows, "Per-cell results")]
    if rows:
        totals_line = (
            f"totals: {totals.get('iterations', 0)} iterations, "
            f"{totals.get('fused', 0)} fused, {totals.get('bugs', 0)} bug records"
        )
        resilience = [
            f"{totals[key]} {key.replace('_', ' ')}"
            for key in _RESILIENCE_KEYS
            if totals.get(key)
        ]
        if resilience:
            totals_line += " (" + ", ".join(resilience) + ")"
        lines += ["", totals_line]
        budget = totals.get("unknowns_budget", 0)
        genuine = totals.get("unknowns_genuine", 0)
        if budget or genuine:
            # The unknown-kind split (journalled only by campaigns that
            # enable it, so legacy dashboards render unchanged): budget
            # unknowns are the tunable kind — more solve budget would
            # decide them — genuine ones are solver limitations.
            lines += [
                f"unknowns: {budget} budget-exhausted, {genuine} genuine "
                f"(of {totals.get('unknowns', 0)})"
            ]
        lines += ["", _bug_bars(totals)]
    else:
        lines += ["", "no completed cells in the journal"]
    poisons = poison_rows(journal)
    if poisons:
        lines += [
            "",
            render_table(
                ["cell", "iter", "death", "attempts", "repro"],
                poisons,
                "Quarantined poison iterations",
            ),
        ]
    if snapshot is not None:
        lines += _metrics_sections(snapshot)
    return "\n".join(lines) + "\n"
