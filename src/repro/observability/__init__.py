"""Campaign observability: metrics, phase tracing, profiling hooks.

See DESIGN.md §10. The package deliberately has no dependency on the
campaign layers (``stats`` — the dashboard renderer — is imported
lazily by the CLI) so that ``core``/``robustness``/``solver`` can
import it without cycles.
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.observability.telemetry import (
    Telemetry,
    TelemetryConfig,
    attach_telemetry,
    load_snapshot,
)
from repro.observability.trace import NULL_SPAN, PhaseTracer, Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "PhaseTracer",
    "Span",
    "Telemetry",
    "TelemetryConfig",
    "attach_telemetry",
    "load_snapshot",
    "merge_snapshots",
]
