"""Campaign telemetry: one object tying metrics, tracing and profiling.

A :class:`Telemetry` instance is threaded through the campaign stack —
``YinYang`` → ``GuardedSolver`` → ``ReferenceSolver`` — and collects:

- **metrics** (always on when telemetry is present): iteration/fusion/
  bug/check counters in a :class:`~repro.observability.metrics.MetricsRegistry`;
- **phase traces** (opt-in, ``trace=True``): per-phase wall-time
  histograms via :class:`~repro.observability.trace.PhaseTracer`;
- **profiling hooks** (opt-in, ``profile=True``): term-table sizes from
  the interning layer and guard retry/timeout/quarantine counters,
  sampled at shard/cell boundaries (never per iteration);
- **cumulative coverage** (opt-in, ``coverage=True``): a long-lived
  :class:`~repro.coverage.probes.CoverageSession` spanning the whole
  campaign, so probe hits accumulate across cells instead of being
  recomputed from scratch per cell — the one source of truth shared by
  ``bench_fig11_coverage.py`` and ``yinyang stats``.

Two invariants keep telemetry invisible to the oracle (enforced by
``tests/test_parallel_determinism.py``):

1. telemetry **never draws randomness** — no module here imports
   ``random`` — so the campaign's per-iteration RNG streams are
   untouched;
2. telemetry **writes out-of-band** — snapshots go to their own sidecar
   file (:meth:`Telemetry.write`), never into the campaign journal — so
   journal bytes are identical with telemetry off, on, or traced.

Worker processes build their own instance from the picklable
:class:`TelemetryConfig` (live registries must not cross the spawn
boundary) and ship per-shard snapshots back with their results; the
parent merges them exactly like sidecar journals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.observability.metrics import MetricsRegistry, merge_snapshots
from repro.observability.trace import NULL_SPAN, PhaseTracer

SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class TelemetryConfig:
    """The picklable recipe for a worker-side :class:`Telemetry`."""

    trace: bool = False
    profile: bool = False
    coverage: bool = False


class Telemetry:
    """Metrics + optional tracing/profiling/coverage for one campaign."""

    def __init__(self, trace=False, profile=False, coverage=False):
        self.registry = MetricsRegistry()
        self.tracer = PhaseTracer(self.registry) if trace else None
        self.profile = profile
        self._coverage_session = None
        if coverage:
            from repro.coverage.probes import CoverageSession, activate_session

            self._coverage_session = CoverageSession("telemetry")
            activate_session(self._coverage_session)

    # -- config / lifecycle ----------------------------------------------

    def config(self):
        return TelemetryConfig(
            trace=self.tracer is not None,
            profile=self.profile,
            coverage=self._coverage_session is not None,
        )

    @classmethod
    def from_config(cls, config):
        if config is None:
            return None
        return cls(
            trace=config.trace, profile=config.profile, coverage=config.coverage
        )

    def close(self):
        """Deactivate the cumulative coverage session (idempotent)."""
        if self._coverage_session is not None:
            from repro.coverage.probes import deactivate_session

            deactivate_session(self._coverage_session)
            self._coverage_session = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- the hot-path surface ---------------------------------------------

    def count(self, name, n=1):
        self.registry.inc(name, n)

    def phase(self, name):
        """A span timing one pipeline phase (no-op unless tracing)."""
        tracer = self.tracer
        if tracer is None:
            return NULL_SPAN
        return tracer.span(name)

    # -- profiling hooks (shard/cell boundaries, never per iteration) -----

    def sample_term_tables(self):
        """Record the interning layer's table size and hit rate.

        Gauges (high-water marks), not counters: the interning counters
        are cumulative per worker thread, so summing samples taken at
        shard boundaries would double-count — the max is the honest
        merge for a point-in-time profile.
        """
        if not self.profile:
            return
        from repro.smtlib.ast import intern_stats

        stats = intern_stats()
        self.registry.gauge("terms.table_size").track_max(stats["size"])
        self.registry.gauge("terms.intern_hits").track_max(stats["hits"])
        self.registry.gauge("terms.intern_misses").track_max(stats["misses"])

    def sample_session(self, session):
        """Record an incremental session's cache sizes as gauges.

        Like the other profiling hooks, sampled at shard boundaries and
        merged by max: the sizes are point-in-time high-water marks,
        not summable counters (the session's hit/miss/eviction
        *counters* flow through :meth:`count` as ``session.*``
        unconditionally).
        """
        if not self.profile or session is None:
            return
        for name, size in session.cache_sizes().items():
            self.registry.gauge("session." + name).track_max(size)

    def sample_guards(self, solvers):
        """Record guard breaker state for every guarded solver."""
        if not self.profile:
            return
        for solver in solvers:
            state_fn = getattr(solver, "guard_state", None)
            if state_fn is None:
                continue
            state = state_fn()
            prefix = f"guard.{state['name']}."
            for key, value in state["stats"].items():
                self.registry.gauge(prefix + key).track_max(value)
            if state["quarantined"]:
                self.registry.value_set("guard.quarantined").add(state["name"])

    # -- snapshots ---------------------------------------------------------

    def _publish_coverage(self):
        session = self._coverage_session
        if session is None:
            return
        publish_coverage_session(self.registry, session)

    def snapshot(self):
        """A picklable/JSON-ready snapshot of everything collected."""
        self._publish_coverage()
        snap = self.registry.snapshot()
        snap["version"] = SNAPSHOT_VERSION
        return snap

    def merge_snapshot(self, snap):
        """Fold a shard snapshot into this (parent) telemetry."""
        self.registry.merge_snapshot(
            {k: v for k, v in snap.items() if k != "version"}
        )

    def write(self, path):
        """Persist the snapshot as JSON — out-of-band, never the journal."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class _NullTelemetry:
    """The do-nothing telemetry: what instrumented code holds when no
    telemetry was requested.

    A shared singleton with ``__slots__ = ()``: every method is a bare
    ``pass``/``return`` and :meth:`phase` hands back the shared
    :data:`~repro.observability.trace.NULL_SPAN`, so the instrumented
    hot path pays a few no-op method calls per iteration and allocates
    nothing (see ``benchmarks/bench_telemetry_overhead.py``).
    """

    __slots__ = ()
    registry = None
    tracer = None
    profile = False

    def count(self, name, n=1):
        pass

    def phase(self, name):
        return NULL_SPAN

    def sample_term_tables(self):
        pass

    def sample_session(self, session):
        pass

    def sample_guards(self, solvers):
        pass


NULL_TELEMETRY = _NullTelemetry()


def attach_telemetry(solvers, telemetry):
    """Point every solver in each wrapper chain at ``telemetry``.

    Walks ``solver.base`` chains (GuardedSolver → FaultySolver →
    ReferenceSolver, chaos wrappers, ...) and sets the instance
    attribute directly, so delegation via ``__getattr__`` can never
    alias two layers to one handle. Re-attaching (e.g. per shard in a
    long-lived worker) simply overwrites.
    """
    for solver in solvers:
        obj, seen = solver, set()
        while obj is not None and id(obj) not in seen:
            seen.add(id(obj))
            try:
                obj.__dict__["telemetry"] = telemetry
            except (AttributeError, TypeError):
                pass  # __slots__ or frozen object: nothing to instrument
            obj = getattr(obj, "base", None)


def publish_coverage_session(registry, session, registered=None):
    """Publish a :class:`~repro.coverage.probes.CoverageSession` into a
    :class:`~repro.observability.metrics.MetricsRegistry`.

    Fired probe ids become ``coverage.<kind>.fired`` value-sets (so
    shard merges union exactly) and the registered-probe totals become
    ``coverage.<kind>.registered`` gauges. This is the single encoding
    of coverage into metrics: the campaign's cumulative session, the
    Figure 11 study and the ``yinyang stats`` view all go through it,
    paired with :func:`repro.coverage.report.coverage_counts` on the
    decoding side.
    """
    if registered is None:
        from repro.coverage.probes import registry_snapshot

        registered = registry_snapshot()
    for kind, fired in session.fired.items():
        registry.value_set(f"coverage.{kind}.fired").update(fired)
        registry.gauge(f"coverage.{kind}.registered").track_max(registered[kind])


def load_snapshot(path):
    """Read a snapshot written by :meth:`Telemetry.write`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


__all__ = [
    "NULL_TELEMETRY",
    "Telemetry",
    "TelemetryConfig",
    "attach_telemetry",
    "load_snapshot",
    "merge_snapshots",
    "publish_coverage_session",
]
