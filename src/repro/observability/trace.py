"""Span-based phase tracing of the YinYang iteration.

A *span* times one phase of the fuzzing pipeline — the paper's
iteration decomposes as seed-pick → fuse → print → solve →
oracle-check → classify — and records the wall time into a fixed-bucket
histogram ``phase.<name>`` in the metrics registry. Spans nest freely
(``solve`` runs inside the iteration) but carry no parent pointers or
ids: the campaign needs aggregate phase profiles, not per-iteration
flame graphs, and aggregation is what keeps tracing cheap and its
output deterministic to merge.

When tracing is disabled the instrumentation points receive
:data:`NULL_SPAN`, a shared no-op context manager: entering it does no
clock read and no allocation, so an untraced run pays only a truthiness
check per phase.
"""

from __future__ import annotations

import time


class _NullSpan:
    """Shared no-op span: zero clock reads, zero allocations."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


NULL_SPAN = _NullSpan()


class Span:
    """One timed phase; records its duration on exit."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        self._histogram.observe(time.perf_counter() - self._start)
        return False


class PhaseTracer:
    """Hands out spans bound to per-phase histograms.

    Histogram handles are cached so a steady-state span costs one dict
    lookup, one small object, and two clock reads.
    """

    PREFIX = "phase."

    def __init__(self, registry):
        self.registry = registry
        self._histograms = {}

    def span(self, name):
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = self.registry.histogram(
                self.PREFIX + name
            )
        return Span(histogram)


def phase_rows(snapshot):
    """(phase, calls, total_s, mean_s, ~p90_s) rows from a snapshot.

    The p90 is bucket-resolution: the upper bound of the bucket holding
    the 90th-percentile observation.
    """
    from repro.observability.metrics import Histogram

    rows = []
    for name, data in snapshot.get("histograms", {}).items():
        if not name.startswith(PhaseTracer.PREFIX):
            continue
        hist = Histogram(name, data["bounds"])
        hist.counts = list(data["counts"])
        hist.sum = data["sum"]
        hist.count = data["count"]
        rows.append(
            (
                name[len(PhaseTracer.PREFIX):],
                hist.count,
                hist.sum,
                hist.mean,
                hist.quantile(0.9),
            )
        )
    rows.sort(key=lambda r: -r[2])
    return rows
