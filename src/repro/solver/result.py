"""Solver result types shared by the reference solver and fault layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ReproError


class SolverResult(enum.Enum):
    """The verdict of a ``check-sat`` query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __str__(self):
        return self.value

    @classmethod
    def from_string(cls, text):
        text = text.strip().lower()
        for member in cls:
            if member.value == text:
                return member
        raise ValueError(f"not a solver result: {text!r}")

    @property
    def is_definite(self):
        return self in (SolverResult.SAT, SolverResult.UNSAT)

    def flipped(self):
        """sat <-> unsat; unknown stays unknown."""
        if self is SolverResult.SAT:
            return SolverResult.UNSAT
        if self is SolverResult.UNSAT:
            return SolverResult.SAT
        return self


class SolverCrash(ReproError):
    """The solver terminated abnormally (segfault / assertion violation).

    Mirrors the paper's crash-bug category: "the solver terminates
    abnormally or throws internal errors while processing the formula".
    """

    def __init__(self, message, kind="internal-error"):
        super().__init__(message)
        self.kind = kind


@dataclass
class CheckOutcome:
    """Full outcome of a check: verdict, optional model, statistics."""

    result: SolverResult
    model: object = None  # repro.semantics.model.Model when SAT
    stats: dict = None
    reason: str = ""

    def __post_init__(self):
        if self.stats is None:
            self.stats = {}

    def __str__(self):
        return str(self.result)
