"""Eager bit-blasting of QF_BV theory literals onto the SAT core.

The DPLL(T) loop hands this backend a conjunction of bitvector theory
literals (equalities, ``bvult``/``bvule`` atoms and their negations).
Each bitvector term is compiled to a vector of SAT literals (LSB
first) over a fresh :class:`~repro.solver.sat.SatSolver` — ripple-carry
adders, shift-and-add multipliers, barrel shifters, comparators — and
each theory literal to a single literal asserted as a unit clause.
The same CDCL core that decides the boolean abstraction then decides
the blasted formula, so the incremental-session machinery (warm
prototypes, assumption replay) works for QF_BV unchanged.

Everything here is deterministic: variable numbering follows the
deterministic traversal order of the atoms, and the conflict budget is
a pure function of the caller's ``nonlinear_budget``, so campaign
journals stay byte-identical across fleet shapes.
"""

from __future__ import annotations

from repro.coverage.probes import declare_module_probes, function_probe, line_probe
from repro.semantics.model import Model
from repro.smtlib.ast import App, Const, Var
from repro.smtlib.bitvec import BV_OPS, parse_extract_indices
from repro.smtlib.sorts import BOOL, bitvec_width, is_bitvec
from repro.solver.sat import SatSolver

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

# Mirrors solver.dpllt's unknown-kind tags (imported there; duplicated
# here to avoid a circular import).
BUDGET_UNKNOWN = "budget"
GENUINE_UNKNOWN = "genuine"

# Conflicts granted per point of the caller's nonlinear budget. At the
# deterministic campaign budget (120) this yields 6000 conflicts —
# far beyond what 8-bit seed formulas need, while still bounding
# adversarial mutants deterministically.
_CONFLICTS_PER_BUDGET = 50


class OutOfFragment(Exception):
    """A term outside the pure-QF_BV fragment reached the blaster."""


def involves_bv(atoms):
    """True if any atom mentions a bitvector subterm or operator."""
    for atom in atoms:
        for node in atom.walk():
            if is_bitvec(node.sort):
                return True
            if isinstance(node, App) and node.op in BV_OPS:
                return True
    return False


class BitBlaster:
    """Compiles bitvector terms and predicates to SAT literals."""

    def __init__(self, sat):
        self.sat = sat
        self.var_bits = {}  # var name -> bit literal vector (LSB first)
        self.bool_vars = {}  # Bool var name -> literal
        self._term_bits = {}  # id(term) -> bit vector
        self._pred_lits = {}  # id(term) -> literal
        self._const_lit = None

    # -- gate primitives -------------------------------------------------

    def true_lit(self):
        if self._const_lit is None:
            lit = self.sat.new_var()
            self.sat.add_clause([lit])
            self._const_lit = lit
        return self._const_lit

    def false_lit(self):
        return -self.true_lit()

    def _and(self, a, b):
        out = self.sat.new_var()
        self.sat.add_clause([-a, -b, out])
        self.sat.add_clause([a, -out])
        self.sat.add_clause([b, -out])
        return out

    def _or(self, a, b):
        out = self.sat.new_var()
        self.sat.add_clause([a, b, -out])
        self.sat.add_clause([-a, out])
        self.sat.add_clause([-b, out])
        return out

    def _xor(self, a, b):
        out = self.sat.new_var()
        self.sat.add_clause([-a, -b, -out])
        self.sat.add_clause([a, b, -out])
        self.sat.add_clause([a, -b, out])
        self.sat.add_clause([-a, b, out])
        return out

    def _mux(self, sel, then_lit, else_lit):
        """A literal equal to ``then_lit`` when ``sel`` else ``else_lit``."""
        out = self.sat.new_var()
        self.sat.add_clause([-sel, -then_lit, out])
        self.sat.add_clause([-sel, then_lit, -out])
        self.sat.add_clause([sel, -else_lit, out])
        self.sat.add_clause([sel, else_lit, -out])
        return out

    def _full_adder(self, a, b, cin):
        s = self._xor(self._xor(a, b), cin)
        carry = self._or(self._and(a, b), self._and(cin, self._xor(a, b)))
        return s, carry

    # -- word-level circuits ---------------------------------------------

    def _add(self, xs, ys, carry_in=None):
        carry = self.false_lit() if carry_in is None else carry_in
        out = []
        for a, b in zip(xs, ys):
            s, carry = self._full_adder(a, b, carry)
            out.append(s)
        return out

    def _negate(self, xs):
        return self._add([-x for x in xs], self._const_bits(1, len(xs)),)

    def _const_bits(self, value, width):
        true = self.true_lit()
        return [true if (value >> i) & 1 else -true for i in range(width)]

    def _mul(self, xs, ys):
        width = len(xs)
        acc = self._const_bits(0, width)
        for i, yi in enumerate(ys):
            # Shift-and-add: partial product (x << i) masked by y's bit i.
            addend = [self.false_lit()] * i + [
                self._and(x, yi) for x in xs[: width - i]
            ]
            acc = self._add(acc, addend)
        return acc

    def _shift(self, xs, ys, left):
        """Barrel shifter; amounts at or beyond the width yield zero."""
        width = len(xs)
        out = list(xs)
        for k, yk in enumerate(ys):
            amount = 1 << k
            if amount >= width:
                # Any set high bit of the amount zeroes the result.
                out = [self._mux(yk, self.false_lit(), bit) for bit in out]
                continue
            if left:
                shifted = [self.false_lit()] * amount + out[: width - amount]
            else:
                shifted = out[amount:] + [self.false_lit()] * amount
            out = [
                self._mux(yk, s_bit, o_bit)
                for s_bit, o_bit in zip(shifted, out)
            ]
        return out

    def _ult(self, xs, ys):
        """Unsigned less-than over equal-width bit vectors."""
        lt = self.false_lit()
        for a, b in zip(xs, ys):  # LSB to MSB; the MSB comparison wins
            eq = -self._xor(a, b)
            lt = self._or(self._and(-a, b), self._and(eq, lt))
        return lt

    def _equal(self, xs, ys):
        out = self.true_lit()
        for a, b in zip(xs, ys):
            out = self._and(out, -self._xor(a, b))
        return out

    # -- term compilation ------------------------------------------------

    def blast_term(self, term):
        """The bit vector (LSB first) of a bitvector-sorted term."""
        nid = id(term)
        cached = self._term_bits.get(nid)
        if cached is not None:
            return cached
        bits = self._blast_term_uncached(term)
        self._term_bits[nid] = bits
        return bits

    def _blast_term_uncached(self, term):
        if isinstance(term, Const):
            return self._const_bits(term.value, bitvec_width(term.sort))
        if isinstance(term, Var):
            bits = self.var_bits.get(term.name)
            if bits is None:
                width = bitvec_width(term.sort)
                bits = [self.sat.new_var() for _ in range(width)]
                self.var_bits[term.name] = bits
            return bits
        if not isinstance(term, App):
            raise OutOfFragment(f"cannot bit-blast term {term!r}")
        op = term.op
        if op == "ite":
            sel = self.blast_pred(term.args[0])
            then_bits = self.blast_term(term.args[1])
            else_bits = self.blast_term(term.args[2])
            return [
                self._mux(sel, t, e) for t, e in zip(then_bits, else_bits)
            ]
        if op == "concat":
            high = self.blast_term(term.args[0])
            low = self.blast_term(term.args[1])
            return low + high
        indices = parse_extract_indices(op)
        if indices is not None:
            high, low = indices
            return self.blast_term(term.args[0])[low : high + 1]
        if op == "bvnot":
            return [-b for b in self.blast_term(term.args[0])]
        if op == "bvneg":
            return self._negate(self.blast_term(term.args[0]))
        if op in ("bvand", "bvor", "bvxor"):
            xs = self.blast_term(term.args[0])
            ys = self.blast_term(term.args[1])
            if op == "bvand":
                gate = self._and
            elif op == "bvor":
                gate = self._or
            else:
                gate = self._xor
            return [gate(a, b) for a, b in zip(xs, ys)]
        if op == "bvadd":
            return self._add(
                self.blast_term(term.args[0]), self.blast_term(term.args[1])
            )
        if op == "bvsub":
            xs = self.blast_term(term.args[0])
            ys = self.blast_term(term.args[1])
            return self._add(xs, [-y for y in ys], carry_in=self.true_lit())
        if op == "bvmul":
            return self._mul(
                self.blast_term(term.args[0]), self.blast_term(term.args[1])
            )
        if op in ("bvshl", "bvlshr"):
            return self._shift(
                self.blast_term(term.args[0]),
                self.blast_term(term.args[1]),
                left=(op == "bvshl"),
            )
        raise OutOfFragment(f"cannot bit-blast operator {op!r}")

    # -- predicate compilation -------------------------------------------

    def blast_pred(self, term):
        """The SAT literal of a Bool-sorted term over bitvectors."""
        nid = id(term)
        cached = self._pred_lits.get(nid)
        if cached is not None:
            return cached
        lit = self._blast_pred_uncached(term)
        self._pred_lits[nid] = lit
        return lit

    def _blast_pred_uncached(self, term):
        if isinstance(term, Const):
            return self.true_lit() if term.value else self.false_lit()
        if isinstance(term, Var):
            lit = self.bool_vars.get(term.name)
            if lit is None:
                lit = self.bool_vars[term.name] = self.sat.new_var()
            return lit
        if not isinstance(term, App):
            raise OutOfFragment(f"cannot bit-blast predicate {term!r}")
        op = term.op
        if op == "not":
            return -self.blast_pred(term.args[0])
        if op in ("=", "distinct"):
            if not is_bitvec(term.args[0].sort):
                if term.args[0].sort == BOOL and len(term.args) == 2:
                    eq = -self._xor(
                        self.blast_pred(term.args[0]),
                        self.blast_pred(term.args[1]),
                    )
                    return eq if op == "=" else -eq
                raise OutOfFragment(f"cannot bit-blast {op} over {term.args[0].sort}")
            lit = self.true_lit()
            bit_vectors = [self.blast_term(a) for a in term.args]
            if op == "=":
                for other in bit_vectors[1:]:
                    lit = self._and(lit, self._equal(bit_vectors[0], other))
                return lit
            for i in range(len(bit_vectors)):
                for j in range(i + 1, len(bit_vectors)):
                    lit = self._and(
                        lit, -self._equal(bit_vectors[i], bit_vectors[j])
                    )
            return lit
        if op == "bvult":
            return self._ult(
                self.blast_term(term.args[0]), self.blast_term(term.args[1])
            )
        if op == "bvule":
            return -self._ult(
                self.blast_term(term.args[1]), self.blast_term(term.args[0])
            )
        raise OutOfFragment(f"cannot bit-blast predicate operator {op!r}")

    # -- model extraction ------------------------------------------------

    def extract_model(self):
        """A Model assigning every blasted variable from the SAT model."""
        assignment = self.sat.model()
        model = Model()
        for name, bits in self.var_bits.items():
            value = 0
            for i, lit in enumerate(bits):
                if assignment.get(abs(lit), False) == (lit > 0):
                    value |= 1 << i
            model[name] = value
        for name, lit in self.bool_vars.items():
            model[name] = assignment.get(abs(lit), False) == (lit > 0)
        return model


def check_bv(theory_literals, nonlinear_budget=120, deadline=None):
    """Decide a conjunction of QF_BV theory literals by bit-blasting.

    Returns ``(status, model, unknown_kind)`` with the same contract as
    the other theory backends: a verified-extractable model on ``sat``,
    ``None`` otherwise; ``unknown_kind`` is :data:`BUDGET_UNKNOWN` when
    the conflict budget ran out and :data:`GENUINE_UNKNOWN` when a
    literal falls outside the blastable fragment.
    """
    function_probe("bitblast.check_bv")
    sat = SatSolver()
    blaster = BitBlaster(sat)
    try:
        for atom, polarity in theory_literals:
            lit = blaster.blast_pred(atom)
            sat.add_clause([lit if polarity else -lit])
    except OutOfFragment:
        line_probe("bitblast.out_of_fragment")
        return UNKNOWN, None, GENUINE_UNKNOWN
    max_conflicts = max(1000, _CONFLICTS_PER_BUDGET * int(nonlinear_budget))
    result = sat.solve(max_conflicts=max_conflicts)
    if result is True:
        line_probe("bitblast.sat")
        return SAT, blaster.extract_model(), ""
    if result is False:
        line_probe("bitblast.unsat")
        return UNSAT, None, ""
    line_probe("bitblast.budget_exhausted")
    return UNKNOWN, None, BUDGET_UNKNOWN


declare_module_probes(__file__)
