"""The lazy DPLL(T) loop: CDCL over the boolean abstraction, with
conjunctions of theory literals checked by the arithmetic and string
cores, and blocking clauses ruling out refuted abstractions.

Soundness policy:

- ``sat`` is only reported after the candidate model has been verified
  by exact evaluation of the *original* assertions.
- ``unsat`` is only reported when the abstraction became propositionally
  unsatisfiable and no theory check ended in ``unknown`` (each theory
  check is itself sound for the verdict it returns, modulo the string
  solver's documented small-model assumption).
"""

from __future__ import annotations

import time
from fractions import Fraction

from repro.coverage.probes import (
    branch_probe,
    declare_module_probes,
    function_probe,
    line_probe,
)
from repro.errors import EvaluationError
from repro.semantics.evaluator import evaluate
from repro.semantics.model import Model
from repro.semantics.values import default_value
from repro.smtlib.ast import Const, Var, free_vars, mk_const
from repro.smtlib.sorts import BOOL, INT, REAL, STRING, is_bitvec
from repro.solver import bitblast, nonlinear, strings, tseitin
from repro.solver.preprocess import instantiate_for_refutation, preprocess
from repro.solver.result import CheckOutcome, SolverResult
from repro.solver.sat import SatSolver
from repro.solver.strings import StringConfig

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

# ``unknown`` comes in two kinds, stamped on ``outcome.stats`` so the
# campaign checker can journal them distinctly (never serialized into
# the outcome's reason, which is part of the journal byte format):
# a *budget* unknown would have been decided with more steps/time; a
# *genuine* unknown hit a solver limitation (out-of-fragment atom,
# failed model verification, unrefutable quantifier residue).
BUDGET_UNKNOWN = "budget"
GENUINE_UNKNOWN = "genuine"


def _unknown(reason, kind):
    outcome = CheckOutcome(SolverResult.UNKNOWN, reason=reason)
    outcome.stats["unknown_kind"] = kind
    return outcome


def _strings_key(string_config):
    """The hashable identity of a :class:`StringConfig` for cache keys."""
    return (
        string_config.max_len_per_var,
        string_config.max_total_len,
        string_config.max_assignments,
        string_config.alphabet_size,
        string_config.numeric_probe_range,
        string_config.small_model_assumption,
    )


def check_assertions(
    assertions,
    string_config=None,
    seed=0,
    max_rounds=600,
    nonlinear_budget=900,
    deadline=None,
    eliminate_definitions=False,
    model_guess=False,
    shrink_cores=True,
    session=None,
):
    """Decide the conjunction of ``assertions``; returns a CheckOutcome.

    ``deadline`` is an absolute ``time.monotonic()`` timestamp; it is
    checked cooperatively at round boundaries, so the wall-clock limit
    holds on any thread (unlike a signal-based alarm).

    ``eliminate_definitions`` and ``model_guess`` switch on the triage
    layer's fused-structure fast paths (see
    :mod:`repro.solver.preprocess` and :func:`_guess_model`); both are
    sound, both default off, and the default path is byte-identical in
    behaviour to the pre-triage solver.

    ``shrink_cores=False`` skips deletion-based conflict minimization
    and blocks the whole theory assignment instead — weaker lemmas, but
    no extra theory checks per conflict. Sound either way (shrinking is
    a search heuristic, not a correctness step); reduced-budget tiers
    turn it off because on budget-burning mutants most solve time goes
    into the minimization probes.

    ``session`` is an optional
    :class:`~repro.solver.session.SolverSession`: the per-campaign-cell
    incremental layer (outcome/theory caches, warm SAT starts under
    assumption literals). With ``session=None`` the code path is the
    plain cold solve, unchanged.
    """
    function_probe("dpllt.check")
    original = list(assertions)
    string_config = string_config or StringConfig()

    outcome_key = None
    if session is not None and deadline is None:
        # Outcome caching is restricted to deterministic (deadline-free)
        # checks: a wall-clock outcome is not a function of the
        # arguments, so replaying one would not be answer-invariant.
        outcome_key = (
            tuple(original),
            max_rounds,
            nonlinear_budget,
            _strings_key(string_config),
            seed,
            eliminate_definitions,
            model_guess,
            shrink_cores,
        )
        cached = session.lookup_outcome(outcome_key)
        if cached is not None:
            line_probe("dpllt.session_outcome_hit")
            return cached
    outcome = _check_uncached(
        original,
        string_config,
        seed,
        max_rounds,
        nonlinear_budget,
        deadline,
        eliminate_definitions,
        model_guess,
        shrink_cores,
        session,
    )
    if outcome_key is not None:
        session.store_outcome(outcome_key, outcome)
    return outcome


def _check_uncached(
    original,
    string_config,
    seed,
    max_rounds,
    nonlinear_budget,
    deadline,
    eliminate_definitions,
    model_guess,
    shrink_cores,
    session,
):
    pre = preprocess(original, eliminate_definitions=eliminate_definitions)
    if branch_probe("dpllt.quantified_residue", pre.quantified):
        return _refutation_path(original, pre, string_config, seed, deadline)

    if model_guess:
        guessed = _guess_model(original)
        if guessed is not None:
            line_probe("dpllt.model_guess")
            return guessed

    if session is not None and session.should_warm(max_rounds):
        warm = session.warm_start(pre.assertions)
        if warm is not None:
            line_probe("dpllt.warm_attempt")
            outcome = _search(
                original,
                pre,
                warm.abstraction,
                warm.sat,
                string_config,
                seed,
                session.warm_rounds(max_rounds),
                nonlinear_budget,
                deadline,
                shrink_cores,
                session,
                assumptions=warm.assumptions,
                relevant=warm.relevant,
            )
            session.export_learned(warm, wall_clock=deadline is not None)
            if outcome.result in (SolverResult.SAT, SolverResult.UNSAT):
                # A warm ``sat`` was model-verified against the original
                # assertions; a warm ``unsat`` holds because assumptions
                # enforce exactly this mutant's assertions and replayed
                # clauses are cell-valid (see session.py). Definite warm
                # verdicts are therefore final.
                line_probe("dpllt.warm_decided")
                session.note_warm_decided()
                return outcome
            # Undecided within the warm budget: fall back to the exact
            # cold path below, so versus incremental-off a warm attempt
            # can only ever *add* definite verdicts, never lose one.
            line_probe("dpllt.warm_fallback")
            session.note_warm_fallback()

    sat_core = SatSolver()
    abstraction = tseitin.encode(pre.assertions, sat_core)
    return _search(
        original,
        pre,
        abstraction,
        sat_core,
        string_config,
        seed,
        max_rounds,
        nonlinear_budget,
        deadline,
        shrink_cores,
        session,
    )


def _search(
    original,
    pre,
    abstraction,
    sat_core,
    string_config,
    seed,
    max_rounds,
    nonlinear_budget,
    deadline,
    shrink_cores,
    session,
    assumptions=(),
    relevant=None,
):
    """The DPLL(T) loop over an already-encoded abstraction.

    The cold path runs it on a fresh encoding with no assumptions; a
    warm (session) attempt runs it on a prototype clone under selector
    assumptions, with the SAT model filtered to the atoms of the
    asserted formulas (``relevant``) so theory checks range over the
    same conjunctions a cold encoding would produce.
    """
    saw_unknown = False
    saw_genuine = False
    rounds = 0
    theory_cache = {}
    strings_key = _strings_key(string_config) if session is not None else None

    def make_check(budget, local_cache):
        def check(literal_list):
            key = frozenset(literal_list)
            if key in local_cache:
                return local_cache[key]
            result = None
            if session is not None:
                # The session memo is keyed on the *ordered* literal
                # tuple (theory search is order-sensitive), making a hit
                # an exact replay of the miss — result-identical, hence
                # invisible to determinism and verdict equivalence.
                result = session.theory_lookup(literal_list, budget, seed, strings_key)
            if result is None:
                result = _check_theory(
                    literal_list, string_config, seed, budget, deadline
                )
                if session is not None:
                    session.theory_store(
                        literal_list,
                        budget,
                        seed,
                        strings_key,
                        result,
                        cacheable=deadline is None or result[0] != UNKNOWN,
                    )
            local_cache[key] = result
            return result

        return check

    cached_check = make_check(nonlinear_budget, theory_cache)

    # Conflict-minimization probes only need to *refute* subsets of an
    # already-refuted assignment, and a reduced-budget UNSAT is as much
    # a proof as a full-budget one — an undecided probe just keeps its
    # literal in the core. A quarter of the enumeration budget decides
    # almost all probes at a fraction of the cost. Kept in a separate
    # cache so probe answers never masquerade as full-budget answers.
    probe_budget = max(1, nonlinear_budget // 4)
    probe_check = make_check(probe_budget, {})

    while True:
        rounds += 1
        if rounds > max_rounds:
            line_probe("dpllt.round_budget")
            return _unknown("round budget exhausted", BUDGET_UNKNOWN)
        if deadline is not None and time.monotonic() > deadline:
            line_probe("dpllt.deadline")
            return _unknown("timeout", BUDGET_UNKNOWN)
        verdict = sat_core.solve(assumptions=assumptions)
        if verdict is None:
            line_probe("dpllt.sat_budget")
            return _unknown("sat budget exhausted", BUDGET_UNKNOWN)
        if verdict is False:
            if saw_unknown:
                line_probe("dpllt.unsat_but_unknown")
                return _unknown(
                    "abstraction closed with unknowns",
                    GENUINE_UNKNOWN if saw_genuine else BUDGET_UNKNOWN,
                )
            line_probe("dpllt.unsat")
            return CheckOutcome(SolverResult.UNSAT)

        sat_model = sat_core.model()
        literals = abstraction.theory_assignment(sat_model)
        if relevant is not None:
            literals = [pair for pair in literals if pair[0] in relevant]
        bool_literals = [
            (atom, value) for atom, value in literals if isinstance(atom, Var)
        ]
        theory_literals = [
            (atom, value) for atom, value in literals if not isinstance(atom, Var)
        ]

        status, theory_model, kind = cached_check(theory_literals)
        if status == SAT:
            model = _assemble_model(
                original, pre, bool_literals, theory_model or Model()
            )
            if model is not None:
                line_probe("dpllt.sat_verified")
                return CheckOutcome(SolverResult.SAT, model=model)
            line_probe("dpllt.verification_failed")
            saw_unknown = True
            saw_genuine = True
        elif status == UNKNOWN:
            line_probe("dpllt.theory_unknown")
            saw_unknown = True
            if kind == GENUINE_UNKNOWN:
                saw_genuine = True

        # Refuted (or unverifiable) abstraction: block it and continue.
        # A theory refutation depends only on the theory literals, so
        # blocking just those — shrunk to a small core — prunes the
        # search far more aggressively than blocking the assignment.
        if status == UNSAT and theory_literals:
            if shrink_cores:
                to_block = _shrink_core(theory_literals, probe_check)
            else:
                to_block = theory_literals
        else:
            to_block = literals
        block = [
            abstraction.atom_to_var[atom] if value else -abstraction.atom_to_var[atom]
            for atom, value in to_block
        ]
        if not block:
            # No theory atoms at all; propositional verdict is final.
            if status == SAT:
                line_probe("dpllt.pure_bool_sat")
                model = _assemble_model(original, pre, bool_literals, Model())
                if model is not None:
                    return CheckOutcome(SolverResult.SAT, model=model)
                return _unknown("verification failed", GENUINE_UNKNOWN)
            return _unknown("empty abstraction", GENUINE_UNKNOWN)
        abstraction.block(block)


def _shrink_core(theory_literals, cached_check, max_literals=32):
    """QuickXplain-style divide-and-conquer conflict minimization.

    Conflict cores here are tiny (often 1-3 literals out of ~30), so
    the divide-and-conquer recursion reaches them in ``O(k log n)``
    refutation probes where greedy per-literal deletion needs ``O(n)``
    — and those probes are full theory checks, which is where
    budget-burning mutants spend most of their solve time.

    Soundness needs only the *top-level* refutation (established by the
    caller before shrinking): every subset the recursion returns is
    itself probed ``UNSAT``, or kept conservatively when a probe cannot
    decide. A probe that answers ``unknown`` merely keeps extra
    literals — the result is always a refuted (not necessarily
    minimum) core whose negation makes a valid lemma.
    """
    function_probe("dpllt.shrink_core")
    if len(theory_literals) > max_literals:
        line_probe("dpllt.shrink_skipped")
        return theory_literals

    def minimize(background, candidates, background_changed):
        if background_changed and cached_check(background)[0] == UNSAT:
            return []
        if len(candidates) == 1:
            return list(candidates)
        half = len(candidates) // 2
        first, second = candidates[:half], candidates[half:]
        core_second = minimize(background + first, second, True)
        core_first = minimize(
            background + core_second, first, bool(core_second)
        )
        return core_first + core_second

    return minimize([], list(theory_literals), False)


def _check_theory(theory_literals, string_config, seed, nonlinear_budget=900, deadline=None):
    """Dispatch a conjunction of theory literals to the right core.

    Returns ``(status, model, unknown_kind)``: the kind distinguishes a
    budget-bounded ``unknown`` (string/nonlinear enumeration ran out of
    steps — more budget could decide it) from a genuine one (an atom
    outside every core's fragment).
    """
    function_probe("dpllt.check_theory")
    if not theory_literals:
        return SAT, Model(), ""
    atoms = [term for term, _ in theory_literals]
    if branch_probe("dpllt.uses_strings", strings.involves_strings(atoms)):
        status, model = strings.check_strings(
            theory_literals, string_config, seed, deadline
        )
        return status, model, BUDGET_UNKNOWN if status == UNKNOWN else ""
    if branch_probe("dpllt.uses_bv", bitblast.involves_bv(atoms)):
        return bitblast.check_bv(
            theory_literals, nonlinear_budget=nonlinear_budget, deadline=deadline
        )

    poly_atoms = []
    int_vars = set()
    for term, polarity in theory_literals:
        for var in free_vars(term):
            if var.sort == INT:
                int_vars.add(var.name)
        kind, payload = nonlinear.atom_to_poly(term, polarity)
        if kind == "decided":
            if not payload:
                return UNSAT, None, ""
        elif kind == "poly":
            poly_atoms.append(payload)
        else:
            line_probe("dpllt.stuck_atom")
            return UNKNOWN, None, GENUINE_UNKNOWN
    status, values = nonlinear.check_nonlinear(
        poly_atoms, int_vars, seed=seed, enum_budget=nonlinear_budget, deadline=deadline
    )
    if status != SAT:
        return status, None, BUDGET_UNKNOWN if status == UNKNOWN else ""
    model = Model()
    for name, value in (values or {}).items():
        model[name] = int(value) if name in int_vars else Fraction(value)
    return SAT, model, ""


def _guess_model(original, max_variables=128):
    """The model-guess fast path: cheap candidate assignments, verified.

    Before DPLL(T) builds any abstraction, evaluate the original
    assertions under a couple of deterministic candidate models (all
    defaults, all ones). A candidate that makes every assertion true
    *is* a verified model — the exact check ``sat`` verdicts already
    rest on — so the fast path can only ever add sat answers the full
    search would also have found, never flip one. Fused sat mutants (a
    disjunction of substituted seeds with ``z`` free) are frequently
    satisfied by such trivial assignments.
    """
    function_probe("dpllt.guess_model")
    every_var = {}
    for term in original:
        for var in free_vars(term):
            every_var[var.name] = var
    if len(every_var) > max_variables:
        return None
    for make in (default_value, _one_value):
        model = Model()
        for name, var in every_var.items():
            model[name] = make(var.sort)
        try:
            if all(evaluate(term, model) for term in original):
                line_probe("dpllt.model_guess_hit")
                return CheckOutcome(SolverResult.SAT, model=model)
        except EvaluationError:
            continue
    return None


def _one_value(sort):
    """The all-ones candidate: nonzero, nonempty, true."""
    if sort == INT:
        return 1
    if sort == REAL:
        return Fraction(1)
    if sort == BOOL:
        return True
    if is_bitvec(sort):
        return 1
    return "a"


def _assemble_model(original, pre, bool_literals, theory_model):
    """Build and *verify* a full model for the original assertions.

    Returns the model, or ``None`` if verification fails (in which case
    the caller treats the candidate as refuted).
    """
    function_probe("dpllt.assemble_model")
    model = theory_model.copy()
    for atom, value in bool_literals:
        model[atom.name] = bool(value)

    # Default any variable the theories left unconstrained.
    every_var = {}
    for term in original:
        for var in free_vars(term):
            every_var[var.name] = var
    for term in pre.assertions:
        for var in free_vars(term):
            every_var.setdefault(var.name, var)
    eliminated_names = {name for name, _sort, _term in pre.eliminated}
    for name, var in every_var.items():
        if name in eliminated_names:
            continue
        if name not in model:
            model[name] = default_value(var.sort)
        elif var.sort == REAL and isinstance(model[name], int):
            model[name] = Fraction(model[name])

    # Reconstruct eliminated definition variables (``(= z (f x y))``
    # substituted away before the search) by evaluating their recorded
    # defining terms — closed over surviving variables thanks to the
    # back-substitution in the elimination pass.
    for name, sort, definition in pre.eliminated:
        try:
            value = evaluate(definition, model)
        except EvaluationError:
            line_probe("dpllt.eliminated_eval_error")
            return None
        if sort == REAL and isinstance(value, int):
            value = Fraction(value)
        model[name] = value

    # Translate purified division variables into division-at-zero
    # choices so the original formula evaluates consistently.
    for op, numer, denom, fresh in pre.divisions:
        if op not in ("/", "div", "mod"):
            continue
        try:
            denominator = evaluate(denom, model)
        except EvaluationError:
            return None
        if denominator == 0:
            try:
                numerator = evaluate(numer, model)
            except EvaluationError:
                return None
            model.set_div_at_zero(op, numerator, model[fresh])

    try:
        ok = all(evaluate(term, model) for term in original)
    except EvaluationError:
        # Quantifiers the bounded evaluator cannot decide: fall back to
        # verifying the preprocessed (skolemized / expanded) assertions,
        # whose truth under the model implies the original's.
        line_probe("dpllt.verify_fallback")
        try:
            ok = all(evaluate(term, model) for term in pre.assertions)
        except EvaluationError:
            line_probe("dpllt.verify_error")
            return None
    if branch_probe("dpllt.model_ok", ok):
        return model
    return None


def _refutation_path(original, pre, string_config, seed, deadline=None):
    """Quantified residue: attempt refutation by finite instantiation."""
    function_probe("dpllt.refutation_path")
    candidates = _instantiation_candidates(pre.assertions)
    weakened = [
        instantiate_for_refutation(term, candidates) for term in pre.assertions
    ]
    if any(_still_quantified(t) for t in weakened):
        line_probe("dpllt.refutation_stuck")
        return _unknown("quantifier out of fragment", GENUINE_UNKNOWN)
    outcome = check_assertions(weakened, string_config, seed, deadline=deadline)
    if outcome.result is SolverResult.UNSAT:
        line_probe("dpllt.refutation_success")
        return CheckOutcome(SolverResult.UNSAT)
    kind = GENUINE_UNKNOWN
    if outcome.result is SolverResult.UNKNOWN:
        kind = outcome.stats.get("unknown_kind", GENUINE_UNKNOWN)
    return _unknown("quantified: refutation failed", kind)


def _instantiation_candidates(assertions):
    """Ground instantiation terms per sort name, harvested from the input."""
    ints = {0, 1, -1}
    reals = {Fraction(0), Fraction(1), Fraction(-1), Fraction(1, 2)}
    strings_ = {"", "a"}
    variables = {}
    for term in assertions:
        for node in term.walk():
            if isinstance(node, Const):
                if node.sort == INT:
                    ints.add(int(node.value))
                elif node.sort == REAL:
                    reals.add(Fraction(node.value))
                elif node.sort == STRING:
                    strings_.add(node.value)
            elif isinstance(node, Var) and node.name not in variables:
                variables[node.name] = node
    candidates = {
        "Int": [mk_const(v, INT) for v in sorted(ints)][:8],
        "Real": [mk_const(v, REAL) for v in sorted(reals)][:8],
        "String": [mk_const(v, STRING) for v in sorted(strings_)][:6],
        "Bool": [mk_const(False, BOOL), mk_const(True, BOOL)],
    }
    for var in variables.values():
        bucket = candidates.get(var.sort.name)
        if bucket is not None and len(bucket) < 10:
            bucket.append(var)
    return candidates


def _still_quantified(term):
    from repro.smtlib.ast import Quantifier

    return any(isinstance(node, Quantifier) for node in term.walk())


declare_module_probes(__file__)
