"""The reference SMT solver: the reproduction's stand-in for Z3/CVC4.

Architecture (lazy DPLL(T)):

- :mod:`repro.solver.preprocess` — quantifier handling, ``ite`` lifting,
  division purification, rewrites.
- :mod:`repro.solver.tseitin` — boolean abstraction to CNF.
- :mod:`repro.solver.sat` — CDCL SAT solver.
- :mod:`repro.solver.linarith` — simplex (with delta-rationals) for
  linear real arithmetic; branch & bound for integers.
- :mod:`repro.solver.nonlinear` — interval constraint propagation and
  model sampling for nonlinear arithmetic.
- :mod:`repro.solver.strings` — bounded string solver.
- :mod:`repro.solver.dpllt` — the lazy loop tying it all together.
- :mod:`repro.solver.solver` — :class:`ReferenceSolver`, the public API.
"""

__all__ = [
    "SolverResult",
    "SolverCrash",
    "CheckOutcome",
    "ReferenceSolver",
    "SolverConfig",
    "ProcessSolver",
]

_EXPORTS = {
    "SolverResult": ("repro.solver.result", "SolverResult"),
    "SolverCrash": ("repro.solver.result", "SolverCrash"),
    "CheckOutcome": ("repro.solver.result", "CheckOutcome"),
    "ReferenceSolver": ("repro.solver.solver", "ReferenceSolver"),
    "SolverConfig": ("repro.solver.solver", "SolverConfig"),
    "ProcessSolver": ("repro.solver.process", "ProcessSolver"),
}


def __getattr__(name):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.solver' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
