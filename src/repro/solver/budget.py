"""Tiered solve budgets: the directive a triage layer hands a solver.

A :class:`SolveDirective` scales the reference solver's step-counted
budgets (DPLL rounds, nonlinear enumeration, string assignments) and
its optional wall-clock deadline, and switches on the fused-structure
fast paths (definition elimination, model guessing). It is frozen and
picklable, so a directive can ride a
:class:`~repro.core.config.YinYangConfig` across the process-pool
spawn boundary unchanged.

Budget scales are exact rationals ``(numerator, denominator)`` applied
with :func:`scale_int` — deterministic integer arithmetic, never
floats, so the scaled budget of a tier is identical on every machine
and the triage layer's determinism guarantee survives the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The identity scale: leave the configured budget untouched.
FULL = (1, 1)


def scale_int(value, ratio):
    """``value`` scaled by the rational ``ratio``, floored, at least 1.

    Pure integer arithmetic — no float rounding — so every host
    computes the same scaled budget. The floor of 1 keeps a directive
    from zeroing a budget entirely: even the fail-fast tier must make
    one attempt so a trivially easy formula can still answer.
    """
    numerator, denominator = ratio
    return max(1, (value * numerator) // denominator)


@dataclass(frozen=True)
class SolveDirective:
    """How hard one solver check should try.

    - ``tier`` — the triage tier name this directive implements
      (``"easy"`` / ``"hard"`` / ``"hopeless"``), surfaced in
      telemetry as ``triage.tier.<tier>``;
    - ``rounds`` / ``nonlinear`` / ``strings`` — rational scales
      applied to ``max_rounds``, ``nonlinear_budget`` and the string
      solver's ``max_assignments``;
    - ``timeout`` — multiplier on the wall-clock deadline (only
      meaningful for non-deterministic configs; deterministic solvers
      run with ``timeout_seconds=0`` and stay wall-clock free);
    - ``eliminate_definitions`` — substitute away pinned definition
      variables (the unsat-fusion constraint ``(= z (f x y))``) before
      DPLL(T);
    - ``model_guess`` — try cheap candidate assignments through the
      evaluator before building the abstraction (verified-sat only, so
      it can never flip a definite verdict);
    - ``shrink_cores`` — keep the DPLL(T) loop's deletion-based
      conflict minimization (``False`` skips it; sound either way, but
      on budget-burning mutants the minimization probes dominate the
      solve, so reduced tiers turn it off);
    - ``session`` — allow this tier to use the campaign cell's
      incremental :class:`~repro.solver.session.SolverSession` when one
      is active (``False`` forces the cold path for checks under this
      directive; the default keeps sessions on for every tier, since
      the session layer is answer-invariant by construction).
    """

    tier: str = "full"
    rounds: tuple = FULL
    nonlinear: tuple = FULL
    strings: tuple = FULL
    timeout: float = 1.0
    eliminate_definitions: bool = False
    model_guess: bool = False
    shrink_cores: bool = True
    session: bool = True

    def scaled_rounds(self, max_rounds):
        return scale_int(max_rounds, self.rounds)

    def scaled_nonlinear(self, nonlinear_budget):
        return scale_int(nonlinear_budget, self.nonlinear)

    def scaled_strings(self, string_config):
        """A copy of ``string_config`` with ``max_assignments`` scaled."""
        if self.strings == FULL:
            return string_config
        from dataclasses import replace

        return replace(
            string_config,
            max_assignments=scale_int(string_config.max_assignments, self.strings),
        )

    def scaled_timeout(self, seconds):
        return seconds * self.timeout if seconds > 0 else seconds
