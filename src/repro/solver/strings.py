"""Bounded string solver for the QF_S / QF_SLIA fragments.

The decision strategy mirrors what the paper's string logics need:

1. **Propagation** — string variables pinned by equalities to constants
   are substituted away.
2. **Length abstraction** — every string variable gets an integer
   length variable; equalities between concatenations, exact-length
   constraints and constant regex memberships contribute linear length
   constraints. If the abstraction is unsatisfiable, so is the formula
   (sound ``unsat``).
3. **Bounded search** — length vectors are enumerated within a budget;
   candidate strings come from regex-membership constraints when
   available, otherwise from a small alphabet (the constants' characters
   plus fresh letters — the standard small-alphabet closure for word
   equations). Each candidate assignment folds the string structure to
   constants; any residual arithmetic over remaining numeric variables
   goes to the arithmetic core. Models are verified exactly, so ``sat``
   answers are sound.
4. If the bounded search is exhausted, the solver reports ``unsat``
   only when a *completeness certificate* holds: the length abstraction
   must prove that no solution exists outside the explored length
   bounds (so the only remaining assumption is the finite alphabet —
   the standard closure argument for word equations, switchable via
   ``small_model_assumption``). Truncated or uncertified searches
   answer ``unknown``.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from fractions import Fraction

from repro.coverage.probes import (
    branch_probe,
    declare_module_probes,
    function_probe,
    line_probe,
)
from repro.errors import EvaluationError, ReproError
from repro.semantics import regex as rx
from repro.semantics.evaluator import evaluate
from repro.semantics.model import Model
from repro.smtlib import theory as _theory
from repro.smtlib.ast import App, Const, Var, free_vars, mk_app, mk_const, mk_var
from repro.smtlib.sorts import INT, REAL, STRING
from repro.solver import nonlinear
from repro.solver.linarith import LinearAtom, check_linear

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

# The string theory's operator set, from the registry (str.* only:
# regex combinators are REGLAN-sorted, so the sort check below already
# routes any atom containing them here).
_STRING_OPS = frozenset(
    op for op in _theory.theory_ops("strings") if op.startswith("str.")
)


@dataclass
class StringConfig:
    """Budgets and soundness switches for the bounded search."""

    max_len_per_var: int = 3
    max_total_len: int = 8
    max_assignments: int = 30000
    alphabet_size: int = 4
    numeric_probe_range: int = 3
    small_model_assumption: bool = True


def involves_strings(atoms):
    """True if any atom mentions a String-sorted subterm."""
    for atom in atoms:
        for node in atom.walk():
            if node.sort == STRING or (isinstance(node, App) and node.op in _STRING_OPS):
                return True
    return False


# ---------------------------------------------------------------------------
# Folding / partial evaluation
# ---------------------------------------------------------------------------


def _fold(term, model):
    """Fold subterms that are closed under ``model`` to constants."""
    if isinstance(term, Var):
        if term.name in model:
            return mk_const(model[term.name], term.sort)
        return term
    if not isinstance(term, App):
        return term
    args = tuple(_fold(a, model) for a in term.args)
    folded = mk_app(term.op, args, term.sort)
    if all(isinstance(a, Const) for a in args) or term.op == "str.in.re":
        try:
            value = evaluate(folded, model)
        except EvaluationError:
            return folded
        if folded.sort == REAL:
            value = Fraction(value)
        return mk_const(value, folded.sort)
    return folded


_residual_atom = nonlinear.atom_to_poly


# ---------------------------------------------------------------------------
# Constraint harvesting
# ---------------------------------------------------------------------------


def _concat_parts(term):
    """Flatten a String term into concat parts, or None if not flat."""
    if isinstance(term, (Var, Const)):
        return [term]
    if isinstance(term, App) and term.op == "str.++":
        parts = []
        for arg in term.args:
            sub = _concat_parts(arg)
            if sub is None:
                return None
            parts.extend(sub)
        return parts
    return None


def _length_coeffs(parts):
    """Linear length expression of a concat-parts list."""
    coeffs = {}
    constant = 0
    for part in parts:
        if isinstance(part, Const):
            constant += len(part.value)
        else:
            name = f".len.{part.name}"
            coeffs[name] = coeffs.get(name, 0) + 1
    return coeffs, constant


@dataclass
class _Analysis:
    string_vars: dict = field(default_factory=dict)  # name -> Var
    numeric_vars: dict = field(default_factory=dict)  # name -> Var
    alphabet: str = ""
    pinned: dict = field(default_factory=dict)  # name -> str value
    exact_lengths: dict = field(default_factory=dict)  # name -> int
    int_images: dict = field(default_factory=dict)  # name -> int (str.to.int value)
    regexes: dict = field(default_factory=dict)  # name -> Regex (intersection)
    length_atoms: list = field(default_factory=list)  # LinearAtom over .len.*
    numeric_in_string: set = field(default_factory=set)  # numeric var names


def _analyze(literals, config):
    analysis = _Analysis()
    chars = set()
    for term, _ in literals:
        for node in term.walk():
            if isinstance(node, Var):
                if node.sort == STRING:
                    analysis.string_vars[node.name] = node
                elif node.sort in (INT, REAL):
                    analysis.numeric_vars[node.name] = node
            elif isinstance(node, Const) and node.sort == STRING:
                chars.update(node.value)
            elif isinstance(node, App) and node.op in _STRING_OPS:
                # Numeric variables inside string operations must be
                # enumerated alongside the strings.
                if node.op in ("str.at", "str.substr", "str.indexof", "str.from.int"):
                    for arg in node.args:
                        if arg.sort == INT:
                            for v in free_vars(arg):
                                if v.sort == INT:
                                    analysis.numeric_in_string.add(v.name)

    for filler in "ab01AC=":
        if len(chars) >= config.alphabet_size:
            break
        chars.add(filler)
    analysis.alphabet = "".join(sorted(chars))[: max(config.alphabet_size, len(chars))]

    for term, polarity in literals:
        # Arithmetic atoms whose only string content is ``str.len`` of a
        # variable join the length abstraction directly (e.g.
        # ``(= (str.len s) (str.len t))`` or ``(< (str.len s) 0)``).
        length_atom = _as_length_atom(term, polarity)
        if length_atom is not None:
            analysis.length_atoms.append(length_atom)
        if not polarity:
            continue
        if isinstance(term, App) and term.op == "=" and term.args[0].sort == STRING:
            left = _concat_parts(term.args[0])
            right = _concat_parts(term.args[1])
            if left is not None and right is not None:
                lc, lk = _length_coeffs(left)
                rc, rk = _length_coeffs(right)
                diff = dict(lc)
                for name, coeff in rc.items():
                    diff[name] = diff.get(name, 0) - coeff
                analysis.length_atoms.append(
                    LinearAtom.make(diff, "=", Fraction(rk - lk))
                )
            # Pinning: var = constant.
            for a, b in ((term.args[0], term.args[1]), (term.args[1], term.args[0])):
                if isinstance(a, Var) and isinstance(b, Const):
                    if a.name in analysis.pinned and analysis.pinned[a.name] != b.value:
                        analysis.length_atoms.append(
                            LinearAtom.make({}, "<", Fraction(0))  # contradiction
                        )
                    analysis.pinned[a.name] = b.value
        elif isinstance(term, App) and term.op == "=":
            # Exact length: (= (str.len v) k), and str.to.int images:
            # (= (str.to.int v) k), in either order.
            for a, b in ((term.args[0], term.args[1]), (term.args[1], term.args[0])):
                if (
                    isinstance(a, App)
                    and a.op == "str.len"
                    and isinstance(a.args[0], Var)
                    and isinstance(b, Const)
                    and b.sort == INT
                ):
                    analysis.exact_lengths[a.args[0].name] = int(b.value)
                if (
                    isinstance(a, App)
                    and a.op == "str.to.int"
                    and isinstance(a.args[0], Var)
                    and isinstance(b, Const)
                    and b.sort == INT
                    and int(b.value) >= 0
                ):
                    # The only strings with str.to.int = k >= 0 are the
                    # zero-padded decimal representations of k.
                    name = a.args[0].name
                    existing = analysis.int_images.get(name)
                    if existing is not None and existing != int(b.value):
                        analysis.length_atoms.append(
                            LinearAtom.make({}, "<", Fraction(0))  # contradiction
                        )
                    analysis.int_images[name] = int(b.value)
        elif isinstance(term, App) and term.op == "str.in.re":
            target, regex_term = term.args
            if isinstance(target, Var) and not free_vars(regex_term):
                try:
                    regex = rx.regex_from_term(
                        regex_term, lambda t: evaluate(t, Model())
                    )
                except (EvaluationError, RuntimeError):
                    continue
                name = target.name
                if name in analysis.regexes:
                    analysis.regexes[name] = rx.inter(analysis.regexes[name], regex)
                else:
                    analysis.regexes[name] = regex

    # Length abstraction extras: lengths are nonnegative; regex languages
    # bound lengths from below (and above when finite).
    for name in analysis.string_vars:
        lvar = f".len.{name}"
        analysis.length_atoms.append(LinearAtom.make({lvar: -1}, "<=", Fraction(0)))
        if name in analysis.exact_lengths:
            analysis.length_atoms.append(
                LinearAtom.make({lvar: 1}, "=", Fraction(analysis.exact_lengths[name]))
            )
        if name in analysis.pinned:
            analysis.length_atoms.append(
                LinearAtom.make({lvar: 1}, "=", Fraction(len(analysis.pinned[name])))
            )
        if name in analysis.int_images:
            digits = len(str(analysis.int_images[name]))
            analysis.length_atoms.append(
                LinearAtom.make({lvar: -1}, "<=", Fraction(-digits))
            )
        regex = analysis.regexes.get(name)
        if regex is not None:
            shortest = rx.shortest_member(regex, max_length=config.max_total_len + 4)
            if shortest is None:
                line_probe("strings.regex_empty")
                analysis.length_atoms.append(LinearAtom.make({}, "<", Fraction(0)))
            else:
                analysis.length_atoms.append(
                    LinearAtom.make({lvar: -1}, "<=", Fraction(-len(shortest)))
                )
    return analysis


# ---------------------------------------------------------------------------
# Candidate enumeration
# ---------------------------------------------------------------------------


def _strings_of_length(alphabet, length):
    if length == 0:
        yield ""
        return
    for combo in itertools.product(alphabet, repeat=length):
        yield "".join(combo)


def _regex_members_of_length(regex, length, alphabet):
    """All members of the regex language with exactly ``length`` chars."""
    extra = "".join(rx._relevant_chars(regex))
    chars = sorted(set(alphabet) | set(extra))

    def walk(node, remaining):
        if remaining == 0:
            if rx.nullable(node):
                yield ""
            return
        for ch in chars:
            nxt = rx.derivative(node, ch)
            if isinstance(nxt, rx.RNone):
                continue
            for tail in walk(nxt, remaining - 1):
                yield ch + tail

    yield from walk(regex, length)


def _length_vectors(names, analysis, config):
    """Candidate length vectors consistent with the cheap length facts."""
    ranges = []
    for name in names:
        if name in analysis.pinned:
            ranges.append([len(analysis.pinned[name])])
        elif name in analysis.exact_lengths:
            value = analysis.exact_lengths[name]
            ranges.append([value] if 0 <= value <= config.max_total_len else [])
        else:
            ranges.append(list(range(config.max_len_per_var + 1)))
    for combo in itertools.product(*ranges):
        if sum(combo) <= config.max_total_len:
            yield dict(zip(names, combo))


# ---------------------------------------------------------------------------
# Main check
# ---------------------------------------------------------------------------


def check_strings(literals, config=None, seed=0, deadline=None):
    """Decide a conjunction of literals involving string terms.

    ``literals`` is a list of ``(atom_term, polarity)`` pairs. Returns
    ``(status, Model or None)``. ``deadline`` (an absolute
    ``time.monotonic()`` timestamp) truncates the bounded search the
    same way the assignment budget does, so overruns answer ``unknown``.
    """
    function_probe("strings.check")
    config = config or StringConfig()
    analysis = _analyze(literals, config)

    # Sound unsat via the length abstraction.
    status, _ = check_linear(
        analysis.length_atoms, int_vars={f".len.{n}" for n in analysis.string_vars}
    )
    if branch_probe("strings.length_abstraction_unsat", status == UNSAT):
        return UNSAT, None

    derived = _find_derived(literals, analysis)
    free_names = [n for n in sorted(analysis.string_vars) if n not in derived]
    # Enumerate the most-constrained variables first (smallest branching
    # factor), so empty candidate sets and literal pruning kick in before
    # the free-alphabet enumeration multiplies the search space.
    frequency = {}
    for term, _ in literals:
        for node in term.walk():
            if isinstance(node, Var) and node.sort == STRING:
                frequency[node.name] = frequency.get(node.name, 0) + 1

    def branching_class(name):
        if name in analysis.pinned or name in analysis.int_images:
            return 0
        if name in analysis.regexes:
            return 1
        return 2

    free_names.sort(key=lambda n: (branching_class(n), -frequency.get(n, 0)))

    numeric_probe_names = sorted(analysis.numeric_in_string)
    probe_values = list(
        range(-config.numeric_probe_range, config.max_total_len + 2)
    )

    state = {"tried": 0, "truncated": False, "stuck": False}
    int_names = {n for n, v in analysis.numeric_vars.items() if v.sort == INT}

    def compute_derived(assigned):
        """Extend ``assigned`` with every derived variable now computable."""
        progress = True
        while progress:
            progress = False
            for name, parts in derived.items():
                if name in assigned:
                    continue
                pieces = []
                ready = True
                for part in parts:
                    if isinstance(part, Const):
                        pieces.append(part.value)
                    elif part.name in assigned:
                        pieces.append(assigned[part.name])
                    else:
                        ready = False
                        break
                if ready:
                    assigned[name] = "".join(pieces)
                    progress = True

    # A literal can only fold to a constant once every variable in it is
    # assigned (_fold evaluates bottom-up, no short-circuiting), so the
    # conflict pruner need not re-fold the still-open ones.
    literal_vars = [
        {node.name for node in term.walk() if isinstance(node, Var)}
        for term, _ in literals
    ]

    def prune_conflict(assigned):
        """True if some literal is already decided false under ``assigned``."""
        model = Model(assigned)
        for (term, polarity), names in zip(literals, literal_vars):
            if not names <= assigned.keys():
                continue
            folded = _fold(term, model)
            kind, payload = _residual_atom(folded, polarity)
            if kind == "decided" and not payload:
                return True
        return False

    def try_assignment(string_model):
        residuals = []
        for term, polarity in literals:
            folded = _fold(term, string_model)
            kind, payload = _residual_atom(folded, polarity)
            if kind == "decided":
                if not payload:
                    return None
            elif kind == "poly":
                residuals.append(payload)
            else:
                state["stuck"] = True
                return None
        status, numeric = nonlinear.check_nonlinear(
            residuals, int_vars=int_names, seed=seed
        )
        if status == SAT:
            model = string_model.copy()
            for name, value in (numeric or {}).items():
                var = analysis.numeric_vars.get(name)
                if var is not None and var.sort == INT:
                    model[name] = int(value)
                else:
                    model[name] = value
            return model
        if status == UNKNOWN:
            state["stuck"] = True
        return None

    def leaf(assigned):
        """Full free assignment: probe numerics, solve residual arithmetic.

        Each numeric probe solves a residual arithmetic problem, so the
        probe product is real work and must count against the
        assignment budget — otherwise a handful of numeric variables
        turns one leaf into ``len(probe_values) ** k`` uncounted solver
        calls and the budget no longer bounds anything.
        """
        if numeric_probe_names:
            for probe in itertools.product(
                probe_values, repeat=len(numeric_probe_names)
            ):
                state["tried"] += 1
                if state["tried"] > config.max_assignments:
                    line_probe("strings.budget_exhausted")
                    state["truncated"] = True
                    return None
                if deadline is not None and time.monotonic() > deadline:
                    state["truncated"] = True
                    return None
                model = Model(assigned)
                for pname, pval in zip(numeric_probe_names, probe):
                    model[pname] = pval
                found = try_assignment(model)
                if found is not None:
                    return found
            return None
        return try_assignment(Model(assigned))

    def candidates_for(name, length):
        if name in analysis.pinned:
            base = [analysis.pinned[name]]
        elif name in analysis.int_images:
            digits = str(analysis.int_images[name])
            base = [digits.zfill(length)] if len(digits) <= length else []
        elif name in analysis.regexes:
            base = _regex_members_of_length(
                analysis.regexes[name], length, analysis.alphabet
            )
        else:
            base = _strings_of_length(analysis.alphabet, length)
        regex = analysis.regexes.get(name)
        if regex is not None and (
            name in analysis.pinned or name in analysis.int_images
        ):
            return (s for s in base if rx.matches(regex, s))
        return base

    def dfs(index, assigned, lengths):
        if state["tried"] > config.max_assignments:
            state["truncated"] = True
            return None
        if deadline is not None and time.monotonic() > deadline:
            state["truncated"] = True
            return None
        if index == len(free_names):
            return leaf(assigned)
        name = free_names[index]
        for value in candidates_for(name, lengths[name]):
            state["tried"] += 1
            if state["tried"] > config.max_assignments:
                line_probe("strings.budget_exhausted")
                state["truncated"] = True
                return None
            extended = dict(assigned)
            extended[name] = value
            compute_derived(extended)
            if prune_conflict(extended):
                continue
            found = dfs(index + 1, extended, lengths)
            if found is not None:
                return found
            if state["truncated"]:
                return None
        return None

    for lengths in _length_vectors(free_names, analysis, config):
        # A length vector costs a full fold of every literal even when
        # its DFS dies immediately, and there are exponentially many of
        # them in the number of free variables — count each one so the
        # budget bounds total work, not just leaf assignments.
        state["tried"] += 1
        if state["tried"] > config.max_assignments:
            line_probe("strings.budget_exhausted")
            state["truncated"] = True
            break
        seedling = {}
        compute_derived(seedling)
        if prune_conflict(seedling):
            continue
        found = dfs(0, seedling, lengths)
        if found is not None:
            line_probe("strings.sat_found")
            return SAT, found
        if state["truncated"]:
            break

    if state["truncated"] or state["stuck"] or not config.small_model_assumption:
        line_probe("strings.unknown")
        return UNKNOWN, None
    if not _exploration_complete(analysis, free_names, config):
        # The length abstraction admits solutions outside the explored
        # bounds, so exhaustion proves nothing: stay honest.
        line_probe("strings.incomplete_exploration")
        return UNKNOWN, None
    line_probe("strings.assumed_unsat")
    return UNSAT, None


def _as_length_atom(term, polarity):
    """Convert an atom to a :class:`LinearAtom` over ``.len.*`` variables.

    Succeeds when every string-related subterm is ``str.len`` of a
    variable and the rest is linear integer arithmetic; returns ``None``
    otherwise (including negated equalities, which the conjunction-only
    abstraction cannot express).
    """

    def lengthify(node):
        if isinstance(node, App) and node.op == "str.len" and isinstance(
            node.args[0], Var
        ):
            return mk_var(f".len.{node.args[0].name}", INT)
        if isinstance(node, Var):
            return None if node.sort == STRING else node
        if isinstance(node, App):
            if node.op.startswith(("str.", "re.")):
                return None
            new_args = []
            for arg in node.args:
                new_arg = lengthify(arg)
                if new_arg is None:
                    return None
                new_args.append(new_arg)
            return mk_app(node.op, tuple(new_args), node.sort)
        return node

    rewritten = lengthify(term)
    if rewritten is None:
        return None
    kind, payload = nonlinear.atom_to_poly(rewritten, polarity)
    if kind != "poly" or payload.op == "!=":
        return None
    if not nonlinear.poly_is_linear(payload.poly_dict):
        return None
    try:
        return payload.to_linear_atom()
    except ReproError:
        return None


def _exploration_complete(analysis, free_names, config):
    """True if the length abstraction confines every free variable to
    the explored length bounds (making exhaustive search a genuine
    refutation, modulo the finite-alphabet assumption)."""
    length_ints = {f".len.{n}" for n in analysis.string_vars}
    for name in free_names:
        lvar = f".len.{name}"
        beyond = analysis.length_atoms + [
            LinearAtom.make({lvar: -1}, "<=", Fraction(-(config.max_len_per_var + 1)))
        ]
        status, _ = check_linear(beyond, int_vars=length_ints)
        if status != UNSAT:
            return False
    if free_names:
        total = {f".len.{n}": -1 for n in free_names}
        beyond = analysis.length_atoms + [
            LinearAtom.make(total, "<=", Fraction(-(config.max_total_len + 1)))
        ]
        status, _ = check_linear(beyond, int_vars=length_ints)
        if status != UNSAT:
            return False
    return True


def _find_derived(literals, analysis):
    """Variables defined by a word equation ``v = concat(parts)``.

    Such variables need not be enumerated: their value follows from the
    others. Cycles are avoided by only accepting a definition whose
    parts do not (transitively) depend on the defined variable.
    """
    derived = {}

    def depends_on(parts, target, seen):
        for part in parts:
            if isinstance(part, Const):
                continue
            if part.name == target:
                return True
            if part.name in seen:
                continue
            seen.add(part.name)
            if part.name in derived and depends_on(derived[part.name], target, seen):
                return True
        return False

    for term, polarity in literals:
        if not polarity:
            continue
        if not (isinstance(term, App) and term.op == "=" and term.args[0].sort == STRING):
            continue
        for lhs, rhs in ((term.args[0], term.args[1]), (term.args[1], term.args[0])):
            if not isinstance(lhs, Var):
                continue
            name = lhs.name
            if name in derived or name in analysis.pinned or name in analysis.int_images:
                continue
            parts = _concat_parts(rhs)
            if parts is None:
                continue
            if depends_on(parts, name, set()):
                continue
            derived[name] = parts
            break
    return derived


declare_module_probes(__file__)
