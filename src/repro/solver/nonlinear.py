"""Nonlinear arithmetic: polynomial atoms, ICP, and model sampling.

The reference solver handles nonlinear real/integer arithmetic (the
paper's NRA/NIA/QF_NRA/QF_NIA logics) with a sound, incomplete
procedure:

- **SAT side** — candidate models are found by (a) enumerating small
  values for the variables that occur nonlinearly, which linearizes the
  remaining system for the simplex core, and (b) direct sampling; every
  candidate is verified by exact rational evaluation, so ``sat`` answers
  are always sound.
- **UNSAT side** — interval constraint propagation (ICP) over a closed
  interval relaxation, with branching on bounded boxes; ``unsat`` is
  reported only when the whole space is pruned, so ``unsat`` answers are
  sound too.
- Anything else is ``unknown``.

This mirrors how real solvers behave on hard NRA inputs, including the
paper's observation that solvers may answer ``unknown``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from fractions import Fraction

from repro.coverage.probes import (
    branch_probe,
    declare_module_probes,
    function_probe,
    line_probe,
)
from repro.errors import ReproError
from repro.smtlib.ast import App, Const, Var
from repro.solver import linarith
from repro.solver.linarith import LinearAtom

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

# A monomial is a tuple of (var_name, exponent) pairs, sorted by name;
# the empty tuple is the constant monomial. A polynomial maps monomials
# to Fraction coefficients.

CONST_MONO = ()


def poly_from_term(term):
    """Convert an arithmetic term to a polynomial (monomial -> coeff).

    Raises :class:`ReproError` on non-polynomial operators (divisions
    must have been purified away by preprocessing).
    """
    if isinstance(term, Const):
        return {CONST_MONO: Fraction(term.value)}
    if isinstance(term, Var):
        return {((term.name, 1),): Fraction(1)}
    if isinstance(term, App):
        op = term.op
        if op == "+":
            out = {}
            for arg in term.args:
                _poly_add(out, poly_from_term(arg), Fraction(1))
            return out
        if op == "-":
            if len(term.args) == 1:
                out = {}
                _poly_add(out, poly_from_term(term.args[0]), Fraction(-1))
                return out
            out = dict(poly_from_term(term.args[0]))
            for arg in term.args[1:]:
                _poly_add(out, poly_from_term(arg), Fraction(-1))
            return out
        if op == "*":
            out = {CONST_MONO: Fraction(1)}
            for arg in term.args:
                out = _poly_mul(out, poly_from_term(arg))
            return out
        if op == "to_real":
            return poly_from_term(term.args[0])
    raise ReproError(f"not a polynomial term: {term}")


def _poly_add(target, other, factor):
    for mono, coeff in other.items():
        new = target.get(mono, Fraction(0)) + coeff * factor
        if new == 0:
            target.pop(mono, None)
        else:
            target[mono] = new


def _poly_mul(a, b):
    out = {}
    for m1, c1 in a.items():
        for m2, c2 in b.items():
            mono = _mono_mul(m1, m2)
            new = out.get(mono, Fraction(0)) + c1 * c2
            if new == 0:
                out.pop(mono, None)
            else:
                out[mono] = new
    return out


def _mono_mul(m1, m2):
    powers = dict(m1)
    for var, exp in m2:
        powers[var] = powers.get(var, 0) + exp
    return tuple(sorted(powers.items()))


def poly_degree(poly, var=None):
    """Total degree, or the degree in one variable if ``var`` is given."""
    best = 0
    for mono in poly:
        if var is None:
            best = max(best, sum(exp for _, exp in mono))
        else:
            best = max(best, sum(exp for v, exp in mono if v == var))
    return best


def poly_vars(poly):
    return {v for mono in poly for v, _ in mono}


def poly_is_linear(poly):
    return poly_degree(poly) <= 1


def eval_poly(poly, model):
    total = Fraction(0)
    for mono, coeff in poly.items():
        term = coeff
        for var, exp in mono:
            term *= model[var] ** exp
        total += term
    return total


@dataclass(frozen=True)
class PolyAtom:
    """A normalized polynomial constraint ``poly op 0``.

    ``op`` is one of ``"<="``, ``"<"``, ``"="``, ``"!="``.
    """

    poly: tuple  # tuple[(monomial, Fraction)] sorted for hashability
    op: str

    @classmethod
    def make(cls, poly, op):
        items = tuple(sorted(poly.items()))
        return cls(items, op)

    @property
    def poly_dict(self):
        return dict(self.poly)

    def evaluate(self, model):
        value = eval_poly(self.poly_dict, model)
        if self.op == "<=":
            return value <= 0
        if self.op == "<":
            return value < 0
        if self.op == "=":
            return value == 0
        return value != 0

    def negated(self):
        if self.op == "<=":
            negated = {m: -c for m, c in self.poly}
            return PolyAtom.make(negated, "<")
        if self.op == "<":
            negated = {m: -c for m, c in self.poly}
            return PolyAtom.make(negated, "<=")
        if self.op == "=":
            return PolyAtom(self.poly, "!=")
        return PolyAtom(self.poly, "=")

    def to_linear_atom(self):
        """Convert a linear PolyAtom to a :class:`LinearAtom` (op != "!=")."""
        coeffs = {}
        constant = Fraction(0)
        for mono, coeff in self.poly:
            if mono == CONST_MONO:
                constant -= coeff
            else:
                if len(mono) != 1 or mono[0][1] != 1:
                    raise ReproError("not linear")
                ((var, _),) = mono
                coeffs[var] = coeffs.get(var, Fraction(0)) + coeff
        return LinearAtom.make(coeffs, self.op, constant)


_COMPARISONS = {"<", "<=", ">", ">="}


def atom_to_poly(term, polarity):
    """Convert a comparison/equality atom to a :class:`PolyAtom`.

    Returns ``(kind, payload)`` where kind is ``"decided"`` (payload is
    a bool: the literal already holds / fails), ``"poly"`` (payload is
    a PolyAtom expressing ``literal holds``) or ``"stuck"`` (the atom is
    not polynomial — e.g. it still contains string structure).
    """
    from repro.smtlib.sorts import INT, REAL

    if isinstance(term, Const):
        return "decided", bool(term.value) == polarity
    if not isinstance(term, App):
        return "stuck", None
    op = term.op
    if op in _COMPARISONS or (op == "=" and term.args[0].sort in (INT, REAL)):
        try:
            left = poly_from_term(term.args[0])
            right = poly_from_term(term.args[1])
        except ReproError:
            return "stuck", None
        diff = dict(left)
        _poly_add(diff, right, Fraction(-1))
        if op == "<":
            atom = PolyAtom.make(diff, "<")
        elif op == "<=":
            atom = PolyAtom.make(diff, "<=")
        elif op == ">":
            atom = PolyAtom.make({m: -c for m, c in diff.items()}, "<")
        elif op == ">=":
            atom = PolyAtom.make({m: -c for m, c in diff.items()}, "<=")
        else:
            atom = PolyAtom.make(diff, "=")
        if not polarity:
            atom = atom.negated()
        return "poly", atom
    return "stuck", None


# ---------------------------------------------------------------------------
# Interval arithmetic with open/closed endpoints (None = unbounded)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """An interval over the rationals with optional open endpoints.

    Tracking endpoint openness lets ICP refute strict-inequality
    conflicts (e.g. ``v > 0 and w >= v and w = q*v and q < 0``), which
    show up constantly in fused arithmetic formulas.
    """

    lo: object = None  # Fraction or None (-inf)
    hi: object = None  # Fraction or None (+inf)
    lo_open: bool = False
    hi_open: bool = False

    def is_empty(self):
        if self.lo is None or self.hi is None:
            return False
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (self.lo_open or self.hi_open)

    def attains_zero(self):
        """True if 0 is actually a member of the interval."""
        if self.lo is not None:
            if self.lo > 0 or (self.lo == 0 and self.lo_open):
                return False
        if self.hi is not None:
            if self.hi < 0 or (self.hi == 0 and self.hi_open):
                return False
        return True

    def contains_zero(self):
        return self.attains_zero()

    def width(self):
        if self.lo is None or self.hi is None:
            return None
        return self.hi - self.lo

    def intersect(self, other):
        if self.lo is None:
            lo, lo_open = other.lo, other.lo_open
        elif other.lo is None or self.lo > other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo > self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open or other.lo_open
        if self.hi is None:
            hi, hi_open = other.hi, other.hi_open
        elif other.hi is None or self.hi < other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi < self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open or other.hi_open
        return Interval(lo, hi, lo_open, hi_open)


FULL = Interval(None, None)


def _point(value):
    if type(value) is int or type(value) is Fraction:
        return Interval(value, value)
    return Interval(Fraction(value), Fraction(value))


def _iv_add(a, b):
    if a.lo is None or b.lo is None:
        lo, lo_open = None, False
    else:
        lo, lo_open = a.lo + b.lo, a.lo_open or b.lo_open
    if a.hi is None or b.hi is None:
        hi, hi_open = None, False
    else:
        hi, hi_open = a.hi + b.hi, a.hi_open or b.hi_open
    return Interval(lo, hi, lo_open, hi_open)


def _iv_neg(a):
    return Interval(
        None if a.hi is None else -a.hi,
        None if a.lo is None else -a.lo,
        a.hi_open,
        a.lo_open,
    )


def _iv_scale(a, c):
    if c == 0:
        return _point(0)
    if c > 0:
        return Interval(
            None if a.lo is None else a.lo * c,
            None if a.hi is None else a.hi * c,
            a.lo_open,
            a.hi_open,
        )
    return _iv_scale(_iv_neg(a), -c)


_NEG_INF = float("-inf")
_POS_INF = float("inf")


def _endpoint_mul(a, a_open, b, b_open):
    """Endpoint product: ``(value, open)``, convention ``0 * inf = 0``."""
    if a == 0 or b == 0:
        # Zero endpoints: the product value 0; openness handled by the
        # caller via attains-zero reasoning.
        return 0, a_open or b_open
    if isinstance(a, float) or isinstance(b, float):
        positive = (a > 0) == (b > 0)
        return (_POS_INF if positive else _NEG_INF), True
    return a * b, a_open or b_open


def _iv_mul(a, b):
    ends_a = [
        (_NEG_INF if a.lo is None else a.lo, a.lo_open or a.lo is None),
        (_POS_INF if a.hi is None else a.hi, a.hi_open or a.hi is None),
    ]
    ends_b = [
        (_NEG_INF if b.lo is None else b.lo, b.lo_open or b.lo is None),
        (_POS_INF if b.hi is None else b.hi, b.hi_open or b.hi is None),
    ]
    products = [
        _endpoint_mul(va, oa, vb, ob) for va, oa in ends_a for vb, ob in ends_b
    ]
    lo = min(v for v, _ in products)
    hi = max(v for v, _ in products)
    # An extremum is open only if *every* endpoint pair achieving it is
    # open; zero is additionally attained whenever either factor
    # interval attains zero.
    lo_open = all(o for v, o in products if v == lo)
    hi_open = all(o for v, o in products if v == hi)
    if lo == 0 and (a.attains_zero() or b.attains_zero()):
        lo_open = False
    if hi == 0 and (a.attains_zero() or b.attains_zero()):
        hi_open = False
    return Interval(
        None if lo == _NEG_INF else lo,
        None if hi == _POS_INF else hi,
        False if lo == _NEG_INF else lo_open,
        False if hi == _POS_INF else hi_open,
    )


def _iv_pow(a, exp):
    if exp == 1:
        return a
    result = _point(1)
    for _ in range(exp):
        result = _iv_mul(result, a)
    # Even powers are nonnegative; tighten the lower bound.
    if exp % 2 == 0:
        lo = result.lo
        if lo is None or lo < 0:
            result = Interval(0, result.hi, not a.attains_zero(), result.hi_open)
    return result


_POINT_ONE = Interval(1, 1)


def eval_poly_interval(poly, box):
    total = Interval(0, 0)
    for mono, coeff in poly.items():
        term = _POINT_ONE
        for var, exp in mono:
            term = _iv_mul(term, _iv_pow(box.get(var, FULL), exp))
        # Integral coefficients scale with native int arithmetic.
        if coeff.denominator == 1:
            coeff = coeff.numerator
        total = _iv_add(total, _iv_scale(term, coeff))
    return total


def _iv_div(a, b):
    """Conservative interval division ``a / b``.

    Exact when ``b`` is bounded away from zero; FULL otherwise.
    """
    if b.contains_zero():
        return FULL
    if b.lo is not None and (b.lo > 0 or (b.lo == 0 and b.lo_open)):
        # Entirely positive.
        if b.lo == 0:
            upper = (None, False)
        else:
            upper = (Fraction(1) / b.lo, b.lo_open)
        if b.hi is None:
            lower = (Fraction(0), True)
        else:
            lower = (Fraction(1) / b.hi, b.hi_open)
        inv = Interval(lower[0], upper[0], lower[1], upper[1])
    else:
        # Entirely negative.
        if b.hi == 0:
            lower = (None, False)
        else:
            lower = (Fraction(1) / b.hi, b.hi_open)
        if b.lo is None:
            upper = (Fraction(0), True)
        else:
            upper = (Fraction(1) / b.lo, b.lo_open)
        inv = Interval(lower[0], upper[0], lower[1], upper[1])
    return _iv_mul(a, inv)


# ---------------------------------------------------------------------------
# ICP
# ---------------------------------------------------------------------------


def _contract(atoms, box, int_vars):
    """One round of interval contraction; returns (changed, feasible)."""
    changed = False
    for atom in atoms:
        if atom.op == "!=":
            continue
        poly = atom.poly_dict
        value = eval_poly_interval(poly, box)
        if atom.op == "<=":
            infeasible = value.lo is not None and (
                value.lo > 0 or (value.lo == 0 and value.lo_open)
            )
            if infeasible:
                line_probe("icp.prune.le")
                return changed, False
        elif atom.op == "<":
            if value.lo is not None and value.lo >= 0:
                line_probe("icp.prune.lt")
                return changed, False
        else:  # "="
            lo_positive = value.lo is not None and (
                value.lo > 0 or (value.lo == 0 and value.lo_open)
            )
            hi_negative = value.hi is not None and (
                value.hi < 0 or (value.hi == 0 and value.hi_open)
            )
            if lo_positive or hi_negative:
                line_probe("icp.prune.eq")
                return changed, False
        # Try to tighten each variable that is linear in this atom.
        for var in poly_vars(poly):
            if poly_degree(poly, var) != 1:
                continue
            # poly = A*var + B with A, B free of var.
            a_poly = {}
            b_poly = {}
            for mono, coeff in poly.items():
                powers = dict(mono)
                if var in powers:
                    rest = tuple(sorted((v, e) for v, e in powers.items() if v != var))
                    a_poly[rest] = a_poly.get(rest, Fraction(0)) + coeff
                else:
                    b_poly[mono] = coeff
            a_iv = eval_poly_interval(a_poly, box)
            if a_iv.contains_zero():
                continue
            a_positive = a_iv.lo is not None and (
                a_iv.lo > 0 or (a_iv.lo == 0 and a_iv.lo_open)
            )
            b_iv = eval_poly_interval(b_poly, box)
            # A*var + B op 0  ->  var op' -B/A  (direction by sign of A).
            bound_iv = _iv_div(_iv_neg(b_iv), a_iv)
            current = box.get(var, FULL)
            strict = atom.op == "<"
            if atom.op == "=":
                new = current.intersect(bound_iv)
            elif a_positive:
                new = current.intersect(
                    Interval(None, bound_iv.hi, False, bound_iv.hi_open or strict)
                )
            else:
                new = current.intersect(
                    Interval(bound_iv.lo, None, bound_iv.lo_open or strict, False)
                )
            if var in int_vars:
                new = _round_int(new)
            if new != current:
                changed = True
                box[var] = new
                if new.is_empty():
                    line_probe("icp.prune.empty_var")
                    return changed, False
    return changed, True


def _round_int(iv):
    # Integer bounds are returned as plain ints (exact, and far cheaper
    # than Fraction in the interval arithmetic this feeds — the ICP
    # loop over integer boxes then runs on native int ops).
    lo = iv.lo
    hi = iv.hi
    if lo is not None:
        ceil = -((-lo.numerator) // lo.denominator)
        if iv.lo_open and ceil == lo:
            ceil += 1
        lo = ceil
    if hi is not None:
        floor = hi.numerator // hi.denominator
        if iv.hi_open and floor == hi:
            floor -= 1
        hi = floor
    return Interval(lo, hi)


def icp_unsat(atoms, variables, int_vars, max_depth=10, max_nodes=300):
    """True if ICP proves the conjunction unsatisfiable over the reals."""
    function_probe("nonlinear.icp_unsat")
    nodes = [0]

    def explore(box, depth):
        if nodes[0] >= max_nodes:
            return False
        nodes[0] += 1
        box = dict(box)
        for _ in range(12):
            changed, feasible = _contract(atoms, box, int_vars)
            if not feasible:
                return True
            if not changed:
                break
        if depth >= max_depth:
            return False
        # Pick a bounded variable with the widest interval to split on.
        best = None
        best_width = None
        for var in variables:
            iv = box.get(var, FULL)
            width = iv.width()
            if width is None:
                return False  # unbounded region: cannot cover the space
            if width == 0:
                continue
            if best_width is None or width > best_width:
                best, best_width = var, width
        if best is None:
            # Point box that survived contraction: cannot refute.
            return False
        iv = box[best]
        # Exact halving: endpoints may be plain ints, and int/int true
        # division would produce a float.
        span = iv.lo + iv.hi
        mid = Fraction(span, 2) if type(span) is int else span / 2
        left = dict(box)
        left[best] = Interval(iv.lo, mid, iv.lo_open, False)
        right = dict(box)
        right[best] = Interval(mid, iv.hi, False, iv.hi_open)
        return explore(left, depth + 1) and explore(right, depth + 1)

    return explore({v: FULL for v in variables}, 0)


# ---------------------------------------------------------------------------
# SAT search
# ---------------------------------------------------------------------------

_SMALL_VALUES = [Fraction(v) for v in (0, 1, -1, 2, -2, 3, -3)] + [
    Fraction(1, 2),
    Fraction(-1, 2),
]


def _nonlinear_vars(atoms):
    """Variables occurring in a monomial of degree >= 2."""
    out = set()
    for atom in atoms:
        for mono, _ in atom.poly:
            if sum(e for _, e in mono) >= 2:
                out |= {v for v, _ in mono}
    return out


def _substitute_values(atom, values):
    """Partially evaluate a PolyAtom under a partial assignment."""
    poly = {}
    for mono, coeff in atom.poly:
        new_coeff = coeff
        remaining = []
        for var, exp in mono:
            if var in values:
                new_coeff *= values[var] ** exp
            else:
                remaining.append((var, exp))
        mono2 = tuple(remaining)
        new = poly.get(mono2, Fraction(0)) + new_coeff
        if new == 0:
            poly.pop(mono2, None)
        else:
            poly[mono2] = new
    return PolyAtom.make(poly, atom.op)


def _poly_pow(poly, exp):
    out = {CONST_MONO: Fraction(1)}
    for _ in range(exp):
        out = _poly_mul(out, poly)
    return out


def _poly_substitute(poly, var, replacement):
    """Substitute ``var := replacement`` (a polynomial) into ``poly``."""
    out = {}
    for mono, coeff in poly.items():
        exponent = 0
        rest = []
        for v, e in mono:
            if v == var:
                exponent = e
            else:
                rest.append((v, e))
        term = {tuple(rest): coeff}
        if exponent:
            term = _poly_mul(term, _poly_pow(replacement, exponent))
        _poly_add(out, term, Fraction(1))
    return out


def _propagate_equalities(atoms, int_vars):
    """Eliminate variables using linear equalities (Gaussian style).

    Univariate equalities pin a variable to a constant; multivariate
    linear equalities eliminate one variable by substitution. Returns
    ``(status, fixed_values, eliminations, reduced_atoms)`` — status is
    UNSAT when the propagation derives a contradiction, else SAT
    (meaning "no contradiction found", not satisfiability).
    ``eliminations`` is an ordered list of ``(var, expression_poly)``
    used to reconstruct eliminated variables from a model of the
    reduced system (apply in reverse).
    """
    fixed = {}
    eliminations = []
    work = list(atoms)
    progress = True
    while progress:
        progress = False
        # Drop decided atoms; detect contradictions.
        remaining = []
        for atom in work:
            poly = atom.poly_dict
            if not poly_vars(poly):
                if not atom.evaluate({}):
                    line_probe("nonlinear.propagate_conflict")
                    return UNSAT, fixed, eliminations, []
                continue
            remaining.append(atom)
        work = remaining

        # Univariate pins first (exact, and respects integrality).
        for atom in work:
            poly = atom.poly_dict
            variables = poly_vars(poly)
            if atom.op == "=" and len(variables) == 1 and poly_is_linear(poly):
                (var,) = variables
                slope = poly.get(((var, 1),), Fraction(0))
                offset = poly.get(CONST_MONO, Fraction(0))
                value = -offset / slope
                if var in int_vars and value.denominator != 1:
                    return UNSAT, fixed, eliminations, []
                fixed[var] = value
                work = [
                    _substitute_values(a, {var: value}) for a in work if a is not atom
                ]
                progress = True
                break
        if progress:
            continue

        # Multivariate linear equality: eliminate one variable. Prefer
        # eliminating rational variables (no integrality side effects).
        for atom in work:
            poly = atom.poly_dict
            if atom.op != "=" or not poly_is_linear(poly):
                continue
            candidates = sorted(poly_vars(poly), key=lambda v: (v in int_vars, v))
            var = None
            for candidate in candidates:
                if candidate not in int_vars:
                    var = candidate
                    break
            if var is None:
                # All integer: only eliminate with a unit coefficient so
                # integrality is preserved by the substitution.
                for candidate in candidates:
                    if abs(poly.get(((candidate, 1),), Fraction(0))) == 1:
                        var = candidate
                        break
            if var is None:
                continue
            slope = poly[((var, 1),)]
            expression = {}
            for mono, coeff in poly.items():
                if mono == ((var, 1),):
                    continue
                expression[mono] = -coeff / slope
            eliminations.append((var, expression))
            work = [
                PolyAtom.make(_poly_substitute(a.poly_dict, var, expression), a.op)
                for a in work
                if a is not atom
            ]
            progress = True
            break
    return SAT, fixed, eliminations, work


def check_nonlinear(atoms, int_vars=(), seed=0, enum_budget=900, deadline=None):
    """Decide a conjunction of :class:`PolyAtom` constraints (best effort).

    Returns ``(status, model_dict)``; models map names to Fractions
    (integral for ``int_vars``). ``deadline`` (absolute
    ``time.monotonic()``) truncates the search like an exhausted budget.
    """
    function_probe("nonlinear.check")

    def timed_out():
        return deadline is not None and time.monotonic() > deadline

    int_vars = frozenset(int_vars)
    variables = sorted({v for atom in atoms for v in poly_vars(atom.poly_dict)})

    # Cheap propagation of pinned variables first; fused formulas are
    # full of fusion-constraint equalities this resolves immediately.
    status, fixed, eliminations, reduced = _propagate_equalities(atoms, int_vars)
    if status == UNSAT:
        return UNSAT, None

    def finish(partial):
        model = dict(partial or {})
        model.update(fixed)
        for var in variables:
            model.setdefault(var, Fraction(0))
        # Reconstruct eliminated variables, innermost last.
        for var, expression in reversed(eliminations):
            model[var] = eval_poly(expression, model)
        for var in variables:
            if var in int_vars and Fraction(model[var]).denominator != 1:
                return None
        if all(a.evaluate(model) for a in atoms):
            return model
        return None

    if branch_probe(
        "nonlinear.all_linear", all(poly_is_linear(a.poly_dict) for a in reduced)
    ):
        status, partial = _check_linear_with_diseq(reduced, int_vars, deadline=deadline)
        if status == SAT:
            model = finish(partial)
            if model is not None:
                return SAT, model
            return UNKNOWN, None
        return status, None

    nl_vars = sorted(_nonlinear_vars(reduced))
    nl_vars.sort(
        key=lambda v: -sum(1 for a in reduced for m, _ in a.poly for x, _ in m if x == v)
    )

    # Strategy 1: ICP refutation (cheap and sound).
    hard = [a for a in reduced if a.op != "!="]
    reduced_vars = sorted({v for atom in reduced for v in poly_vars(atom.poly_dict)})
    if icp_unsat(hard, reduced_vars, int_vars, max_depth=8, max_nodes=120):
        line_probe("nonlinear.icp_unsat_hit")
        return UNSAT, None

    # Strategy 2: DFS over small values for nonlinearly-occurring
    # variables, pruning on decided atoms; residual systems are linear.
    budget = [enum_budget]

    def dfs(index, values):
        if budget[0] <= 0 or timed_out():
            return None
        budget[0] -= 1
        if index == len(nl_vars):
            residual = [_substitute_values(a, values) for a in reduced]
            if not all(poly_is_linear(a.poly_dict) for a in residual):
                return None
            status, partial = _check_linear_with_diseq(
                residual, int_vars, deadline=deadline
            )
            if status == SAT:
                combined = dict(partial or {})
                combined.update(values)
                model = finish(combined)
                if model is not None:
                    line_probe("nonlinear.enum_sat")
                    return model
            return None
        var = nl_vars[index]
        candidates = _SMALL_VALUES
        if var in int_vars:
            candidates = [v for v in candidates if v.denominator == 1]
        for value in candidates:
            values[var] = value
            feasible = True
            for atom in reduced:
                partial = _substitute_values(atom, values)
                if not poly_vars(partial.poly_dict) and not partial.evaluate({}):
                    feasible = False
                    break
            if feasible:
                found = dfs(index + 1, values)
                if found is not None:
                    return found
            del values[var]
        return None

    found = dfs(0, {})
    if found is not None:
        return SAT, found

    # Strategy 3: random sampling over small rationals.
    rng = random.Random(seed)
    for _ in range(150):
        if timed_out():
            break
        model = dict(fixed)
        for var in reduced_vars:
            if var in int_vars:
                model[var] = Fraction(rng.randint(-6, 6))
            else:
                model[var] = Fraction(rng.randint(-12, 12), rng.choice([1, 1, 2, 3, 4]))
        for var in variables:
            model.setdefault(var, Fraction(0))
        if all(a.evaluate(model) for a in atoms):
            line_probe("nonlinear.sample_sat")
            return SAT, model

    return UNKNOWN, None


def _check_linear_with_diseq(atoms, int_vars, split_budget=64, deadline=None):
    """Linear conjunction including ``!=`` atoms, by case splitting."""
    function_probe("nonlinear.linear_with_diseq")
    plain = [a for a in atoms if a.op != "!="]
    diseqs = [a for a in atoms if a.op == "!="]
    for atom in plain:
        if not atom.poly_dict and atom.op in ("<=", "<", "="):
            # Constant atom: decide directly (e.g. 0 <= 0).
            if not atom.evaluate({}):
                return UNSAT, None
    base = [a.to_linear_atom() for a in plain if a.poly_dict]
    state = {"budget": split_budget, "unknown": False}

    def solve(extra, remaining_diseqs):
        if state["budget"] <= 0 or (
            deadline is not None and time.monotonic() > deadline
        ):
            state["unknown"] = True
            return UNKNOWN, None
        state["budget"] -= 1
        status, model = linarith.check_linear(base + extra, int_vars)
        if status != SAT:
            if status == UNKNOWN:
                state["unknown"] = True
            return status, None
        full = dict(model)
        for atom in remaining_diseqs:
            for var in poly_vars(atom.poly_dict):
                full.setdefault(var, Fraction(0))
        violated = None
        for i, atom in enumerate(remaining_diseqs):
            for var in poly_vars(atom.poly_dict):
                if var not in full:
                    full[var] = Fraction(0)
            if not atom.evaluate(full):
                violated = i
                break
        if violated is None:
            return SAT, full
        atom = remaining_diseqs[violated]
        rest = remaining_diseqs[:violated] + remaining_diseqs[violated + 1 :]
        lt = PolyAtom(atom.poly, "<").to_linear_atom()
        gt_poly = {m: -c for m, c in atom.poly}
        gt = PolyAtom.make(gt_poly, "<").to_linear_atom()
        for branch in (lt, gt):
            status, model = solve(extra + [branch], rest)
            if status == SAT:
                return SAT, model
        return (UNKNOWN, None) if state["unknown"] else (UNSAT, None)

    constant_diseq_conflict = any(
        not d.poly_dict for d in diseqs
    )  # 0 != 0 is false
    if constant_diseq_conflict:
        return UNSAT, None
    return solve([], diseqs)


declare_module_probes(__file__)
