"""Preprocessing: quantifiers, normalization, ite lifting, purification.

The pipeline turns an arbitrary supported script into the
quantifier-free, division-free form the lazy DPLL(T) loop consumes:

1. **Quantifier handling** — top-level and polarity-pure existentials
   are skolemized; universals over explicitly bounded integer ranges are
   expanded. Anything else is left in place and flagged, sending the
   solver down a refutation-only path.
2. **Normalization** — ``abs`` and ``is_int`` are rewritten, n-ary
   comparisons and ``distinct`` are binarized.
3. **ite lifting** — non-boolean ``ite`` terms become fresh variables
   with guarded definitions.
4. **Purification** — ``/``, ``div``, ``mod`` and ``to_int`` become
   fresh variables with guarded defining constraints; division keeps
   SMT-LIB's *uninterpreted at zero* semantics (no constraint fires for
   a zero divisor), with Ackermann constraints enforcing functional
   consistency. The purification table is returned so models can be
   translated back (populating the division-at-zero choices).

An optional pass between 2 and 3 (``eliminate_definitions=True``, used
by the triage layer's budget directives) recognizes top-level
definition assertions ``(assert (= v t))`` with ``v`` not free in
``t`` — exactly the shape of the fusion constraints that pin ``z`` in
unsat fusion — and substitutes them away before DPLL(T) ever builds an
abstraction over them. ``A ∧ (v = t)`` and ``A[v := t]`` are
equisatisfiable in both directions, so every definite verdict is
preserved; eliminated definitions are recorded so a model of the
reduced formula extends back to the original variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.coverage.probes import declare_module_probes, function_probe, line_probe
from repro.smtlib.ast import (
    App,
    Const,
    Quantifier,
    Var,
    free_names,
    fresh_name,
    has_quantifier,
    map_terms,
    mk_const,
    mk_var,
    substitute,
)
from repro.smtlib.quantbounds import guarded_integer_bounds
from repro.smtlib.sorts import BOOL, INT, REAL
from repro.smtlib.typecheck import app

_BOUNDED_EXPANSION_LIMIT = 64


@dataclass
class PreprocessResult:
    assertions: list
    quantified: bool = False
    # (op, numerator_term, denominator_term, fresh_var_name) for each
    # purified division-like application, in purification order.
    divisions: list = field(default_factory=list)
    # (name, sort, defining_term) for each definition assertion
    # substituted away, in elimination order; each recorded term refers
    # only to surviving variables, so a model of the reduced formula
    # extends to the eliminated names by evaluating the terms in order.
    eliminated: list = field(default_factory=list)


def preprocess(assertions, eliminate_definitions=False):
    """Run the full pipeline; returns a :class:`PreprocessResult`."""
    function_probe("preprocess.run")
    result = PreprocessResult(assertions=list(assertions))

    if any(_has_quantifier(t) for t in result.assertions):
        line_probe("preprocess.quantifiers_present")
        transformed = []
        residue = False
        for term in result.assertions:
            new_term, left_over = _transform_quantifiers(term, True, False)
            transformed.append(new_term)
            residue = residue or left_over
        result.assertions = transformed
        result.quantified = residue
        if residue:
            # The refutation path instantiates later; stop preprocessing
            # here because purification is unsound under binders.
            return result

    result.assertions = [_normalize(t) for t in result.assertions]

    if eliminate_definitions:
        _eliminate_definitions(result)

    lifted = []
    extra = []
    for term in result.assertions:
        lifted.append(_lift_ites(term, extra))
    result.assertions = lifted + extra

    purified = []
    extra = []
    table = {}
    for term in result.assertions:
        purified.append(_purify(term, extra, table))
    result.assertions = purified + extra
    result.divisions = [
        (op, numer, denom, name) for (op, numer, denom), name in table.items()
    ]
    _add_ackermann(result)
    return result


# ---------------------------------------------------------------------------
# Quantifiers
# ---------------------------------------------------------------------------


def _has_quantifier(term):
    return has_quantifier(term)


def _transform_quantifiers(term, positive, under_forall):
    """Skolemize pure existentials, expand bounded universals.

    Returns ``(new_term, residue)`` where residue is True if a
    quantifier remains somewhere below.
    """
    if isinstance(term, (Var, Const)):
        return term, False
    if isinstance(term, Quantifier):
        is_existential = (term.kind == "exists") == positive
        if is_existential and not under_forall:
            line_probe("preprocess.skolemize")
            mapping = {
                mk_var(name, sort): mk_var(fresh_name(f".sk.{name}"), sort)
                for name, sort in term.bindings
            }
            body = substitute(term.body, mapping)
            return _transform_quantifiers(body, positive, under_forall)
        if not is_existential:
            expansion = _try_bounded_expansion(term)
            if expansion is not None:
                line_probe("preprocess.bounded_forall")
                parts = []
                residue = False
                for instance in expansion:
                    new, r = _transform_quantifiers(instance, positive, under_forall)
                    parts.append(new)
                    residue = residue or r
                if len(parts) == 1:
                    return parts[0], residue
                return app("and", *parts), residue
        # Leave the binder; anything below it stays untouched.
        return term, True
    if isinstance(term, App):
        op = term.op
        if op == "not":
            inner, residue = _transform_quantifiers(term.args[0], not positive, under_forall)
            return app("not", inner), residue
        if op in ("and", "or"):
            parts = []
            residue = False
            for arg in term.args:
                new, r = _transform_quantifiers(arg, positive, under_forall)
                parts.append(new)
                residue = residue or r
            return app(op, *parts), residue
        if op == "=>":
            parts = []
            residue = False
            *hyps, conclusion = term.args
            for hyp in hyps:
                new, r = _transform_quantifiers(hyp, not positive, under_forall)
                parts.append(new)
                residue = residue or r
            new, r = _transform_quantifiers(conclusion, positive, under_forall)
            parts.append(new)
            residue = residue or r
            return app("=>", *parts), residue
        # Mixed-polarity context (xor, =, ite, theory atom): quantifiers
        # below stay as residue.
        residue = _has_quantifier(term)
        return term, residue
    return term, _has_quantifier(term)


def _try_bounded_expansion(term):
    """Expand ``forall (x Int...) (=> guard body)`` over explicit bounds.

    Returns a list of instances or ``None``.
    """
    body = term.body
    bounds = guarded_integer_bounds(term)
    if bounds is None:
        return None
    total = 1
    for lo, hi in bounds.values():
        if hi < lo:
            return [mk_const(True, BOOL)]
        total *= hi - lo + 1
        if total > _BOUNDED_EXPANSION_LIMIT:
            return None
    instances = [{}]
    for name, (lo, hi) in bounds.items():
        instances = [
            {**inst, name: value} for inst in instances for value in range(lo, hi + 1)
        ]
    out = []
    for inst in instances:
        mapping = {mk_var(name, INT): mk_const(value, INT) for name, value in inst.items()}
        out.append(substitute(body, mapping))
    return out


def instantiate_for_refutation(term, candidate_terms):
    """Weaken remaining universals by finite instantiation.

    Replaces polarity-positive ``forall`` binders with the conjunction
    of instances over ``candidate_terms`` (per sort). The result is
    implied by the original, so its unsatisfiability proves the
    original unsatisfiable. Binders in mixed positions are replaced by
    ``true``/``false`` conservatively.
    """

    def go(node, positive):
        if isinstance(node, Quantifier):
            is_universal = (node.kind == "forall") == positive
            if is_universal:
                instances = [{}]
                for name, sort in node.bindings:
                    values = candidate_terms.get(sort.name, [])
                    if not values:
                        return mk_const(positive, BOOL)
                    instances = [
                        {**inst, name: value} for inst in instances for value in values
                    ]
                parts = []
                for inst in instances:
                    mapping = {
                        mk_var(name, sort): value
                        for (name, sort), value in (
                            ((n, s), inst[n]) for n, s in node.bindings
                        )
                    }
                    parts.append(go(substitute(node.body, mapping), positive))
                combiner = "and" if positive else "or"
                return parts[0] if len(parts) == 1 else app(combiner, *parts)
            # Weakened existential: conservatively satisfied.
            return mk_const(positive, BOOL)
        if isinstance(node, App):
            if node.op == "not":
                return app("not", go(node.args[0], not positive))
            if node.op in ("and", "or"):
                return app(node.op, *(go(a, positive) for a in node.args))
            if node.op == "=>":
                *hyps, conclusion = node.args
                parts = [go(h, not positive) for h in hyps]
                parts.append(go(conclusion, positive))
                return app("=>", *parts)
            if _has_quantifier(node):
                # Mixed polarity below: conservative replacement.
                return mk_const(positive, BOOL)
            return node
        return node

    return go(term, True)


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------


def _normalize(term):
    """Rewrite abs/is_int, binarize comparisons and distinct.

    A bottom-up :func:`map_terms` pass: each shared subterm is rewritten
    once (nodes arrive with already-normalized arguments).
    """
    return map_terms(term, _normalize_node)


def _normalize_node(term):
    if not isinstance(term, App):
        return term
    args = term.args
    op = term.op
    if op == "abs":
        line_probe("preprocess.abs")
        (a,) = args
        zero = mk_const(0, INT) if a.sort == INT else mk_const(Fraction(0), REAL)
        return app("ite", app(">=", a, zero), a, app("-", a))
    if op == "is_int":
        line_probe("preprocess.is_int")
        (a,) = args
        return app("=", a, app("to_real", app("to_int", a)))
    if op in ("<", "<=", ">", ">=") and len(args) > 2:
        line_probe("preprocess.chain_comparison")
        parts = [app(op, args[i], args[i + 1]) for i in range(len(args) - 1)]
        return app("and", *parts)
    if op == "=" and len(args) > 2 and args[0].sort != BOOL:
        parts = [app("=", args[0], args[i]) for i in range(1, len(args))]
        return app("and", *parts)
    if op == "distinct" and args[0].sort != BOOL:
        line_probe("preprocess.distinct")
        parts = []
        for i in range(len(args)):
            for j in range(i + 1, len(args)):
                parts.append(app("not", app("=", args[i], args[j])))
        return parts[0] if len(parts) == 1 else app("and", *parts)
    return term


# ---------------------------------------------------------------------------
# Definition elimination (the fusion-constraint fast path)
# ---------------------------------------------------------------------------

_ELIMINATION_MAX_DEFS = 16
_ELIMINATION_MAX_TERM_NODES = 96


def _definition_binding(term):
    """``(var, defining_term)`` if ``term`` is ``(= v t)`` with ``v``
    not free in ``t`` (either orientation), else ``None``."""
    if not (isinstance(term, App) and term.op == "=" and len(term.args) == 2):
        return None
    left, right = term.args
    if isinstance(left, Var) and left.name not in free_names(right):
        return left, right
    if isinstance(right, Var) and right.name not in free_names(left):
        return right, left
    return None


def _eliminate_definitions(result):
    """Substitute top-level definition assertions away, repeatedly.

    Soundness: for quantifier-free ``A`` (this pass runs only after the
    quantified early-return), ``A ∧ (v = t)`` with ``v ∉ free(t)`` is
    equisatisfiable with ``A[v := t]`` — a model of the former
    satisfies the latter directly, and a model of the latter extends by
    ``v := eval(t)``. Each elimination is also back-substituted into
    previously recorded defining terms, so every recorded term refers
    only to surviving variables and the model reconstruction in
    ``dpllt._assemble_model`` can evaluate them in any order.

    Bounded on both axes (definition count, defining-term size): the
    pass is a fast win on fused structure, never a blowup.
    """
    assertions = result.assertions
    while len(result.eliminated) < _ELIMINATION_MAX_DEFS:
        binding = None
        position = -1
        for i, term in enumerate(assertions):
            candidate = _definition_binding(term)
            if candidate is not None and (
                candidate[1].node_count <= _ELIMINATION_MAX_TERM_NODES
            ):
                binding, position = candidate, i
                break
        if binding is None:
            break
        line_probe("preprocess.eliminate_definition")
        var, definition = binding
        mapping = {var: definition}
        assertions = [
            substitute(term, mapping) if var.name in free_names(term) else term
            for i, term in enumerate(assertions)
            if i != position
        ]
        result.eliminated = [
            (
                name,
                sort,
                substitute(term, mapping)
                if var.name in free_names(term)
                else term,
            )
            for name, sort, term in result.eliminated
        ]
        result.eliminated.append((var.name, var.sort, definition))
    result.assertions = assertions


# ---------------------------------------------------------------------------
# ite lifting
# ---------------------------------------------------------------------------


def _lift_ites(term, extra):
    # A shared non-boolean ite (the same interned node reachable through
    # several parents) is lifted once: one fresh variable, one guarded
    # definition pair — map_terms memoizes the rewrite by node identity.
    def lift(node):
        if isinstance(node, App) and node.op == "ite" and node.sort != BOOL:
            line_probe("preprocess.lift_ite")
            condition, then_branch, else_branch = node.args
            fresh = mk_var(fresh_name(".ite"), node.sort)
            extra.append(app("=>", condition, app("=", fresh, then_branch)))
            extra.append(
                app("=>", app("not", condition), app("=", fresh, else_branch))
            )
            return fresh
        return node

    # Quantifiers are unreachable here (quantified scripts stop earlier).
    return map_terms(term, lift, descend_quantifiers=False)


# ---------------------------------------------------------------------------
# Division purification
# ---------------------------------------------------------------------------


def _purify(term, extra, table):
    def purify(node):
        if not isinstance(node, App):
            return node
        args = node.args
        op = node.op
        if op == "/":
            line_probe("preprocess.purify_real_div")
            result = args[0]
            for denominator in args[1:]:
                result = _purified_division("/", result, denominator, extra, table)
            return result
        if op == "div":
            line_probe("preprocess.purify_int_div")
            quotient, _ = _purified_euclid(args[0], args[1], extra, table)
            return quotient
        if op == "mod":
            line_probe("preprocess.purify_mod")
            _, remainder = _purified_euclid(args[0], args[1], extra, table)
            return remainder
        if op == "to_int":
            line_probe("preprocess.purify_to_int")
            key = ("to_int", args[0], None)
            if key not in table:
                fresh = fresh_name(".toint")
                table[key] = fresh
                v = mk_var(fresh, INT)
                real_v = app("to_real", v)
                one = mk_const(Fraction(1), REAL)
                extra.append(app("<=", real_v, args[0]))
                extra.append(app("<", args[0], app("+", real_v, one)))
            return mk_var(table[key], INT)
        return node

    return map_terms(term, purify, descend_quantifiers=False)


def _purified_division(op, numerator, denominator, extra, table):
    key = (op, numerator, denominator)
    if key not in table:
        fresh = fresh_name(".rdiv")
        table[key] = fresh
        v = mk_var(fresh, REAL)
        zero = mk_const(Fraction(0), REAL)
        nonzero = app("not", app("=", denominator, zero))
        extra.append(app("=>", nonzero, app("=", app("*", v, denominator), numerator)))
    return mk_var(table[key], REAL)


def _purified_euclid(numerator, denominator, extra, table):
    key_div = ("div", numerator, denominator)
    key_mod = ("mod", numerator, denominator)
    if key_div not in table:
        q_name = fresh_name(".idiv")
        r_name = fresh_name(".imod")
        table[key_div] = q_name
        table[key_mod] = r_name
        q = mk_var(q_name, INT)
        r = mk_var(r_name, INT)
        zero = mk_const(0, INT)
        relation = app("=", numerator, app("+", app("*", denominator, q), r))
        positive = app(
            "=>",
            app(">", denominator, zero),
            app("and", relation, app(">=", r, zero), app("<", r, denominator)),
        )
        negative = app(
            "=>",
            app("<", denominator, zero),
            app("and", relation, app(">=", r, zero), app("<", r, app("-", denominator))),
        )
        extra.append(positive)
        extra.append(negative)
    return mk_var(table[key_div], INT), mk_var(table[key_mod], INT)


def _add_ackermann(result):
    """Functional consistency between purified division applications."""
    by_op = {}
    for op, numer, denom, name in result.divisions:
        if op in ("/", "div", "mod"):
            by_op.setdefault(op, []).append((numer, denom, name))
    for op, entries in by_op.items():
        sort = REAL if op == "/" else INT
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                n1, d1, v1 = entries[i]
                n2, d2, v2 = entries[j]
                line_probe("preprocess.ackermann")
                result.assertions.append(
                    app(
                        "=>",
                        app("and", app("=", n1, n2), app("=", d1, d2)),
                        app("=", mk_var(v1, sort), mk_var(v2, sort)),
                    )
                )


declare_module_probes(__file__)
