"""External solver binaries as test targets.

The paper: "YinYang accepts SMT solver binaries as test targets and
obtains the solving results from the stdout stream, which makes YinYang
compatible with most SMT solvers."

:class:`ProcessSolver` adapts any command line that reads an SMT-LIB
file and prints ``sat`` / ``unsat`` / ``unknown``: the fused script is
written to a temporary ``.smt2`` file, the command runs with a timeout,
the first recognizable verdict on stdout is the answer, and abnormal
termination (signals, nonzero exits without a verdict, stderr error
signatures) is surfaced as :class:`~repro.solver.result.SolverCrash` —
exactly the observation model of Algorithm 1.

With real Z3/CVC4 binaries on PATH this class makes the whole campaign
run against them unchanged:

    z3 = ProcessSolver("z3", ["z3", "-smt2"], name="z3")
    cvc4 = ProcessSolver("cvc4", ["cvc4", "--strings-exp", "--lang", "smt2"])
"""

from __future__ import annotations

import os
import subprocess
import tempfile

from repro.smtlib.printer import print_script
from repro.solver.result import CheckOutcome, SolverCrash, SolverResult

_ERROR_MARKERS = (
    "segmentation fault",
    "assertion violation",
    "assertion failed",
    "fatal failure",
    "internal error",
    "unreachable",
)


class ProcessSolver:
    """Run an external solver command on each script."""

    def __init__(self, name, command, timeout=30.0, unknown_on_timeout=True):
        """``command`` is the argv prefix; the .smt2 path is appended."""
        self.name = name
        self.command = list(command)
        self.timeout = timeout
        self.unknown_on_timeout = unknown_on_timeout

    def check_script(self, script, directive=None, session=None):
        # External binaries get no budget knobs; a triage directive and
        # an incremental session are accepted for interface parity and
        # ignored (sessions never cross the boundary to an external
        # solver process — skipping an optimization is always sound).
        text = print_script(script)
        handle = tempfile.NamedTemporaryFile(
            "w", suffix=".smt2", delete=False, encoding="utf-8"
        )
        try:
            handle.write(text)
            handle.close()
            return self._run(handle.name)
        finally:
            os.unlink(handle.name)

    def check(self, source):
        from repro.smtlib.parser import parse_script

        script = parse_script(source) if isinstance(source, str) else source
        return self.check_script(script)

    def _run(self, path):
        try:
            completed = subprocess.run(
                self.command + [path],
                capture_output=True,
                text=True,
                timeout=self.timeout,
            )
        except subprocess.TimeoutExpired:
            if self.unknown_on_timeout:
                return CheckOutcome(SolverResult.UNKNOWN, reason="timeout")
            raise SolverCrash(f"{self.name}: timeout", kind="timeout")
        except OSError as exc:
            raise SolverCrash(f"{self.name}: failed to start: {exc}", kind="spawn")

        verdict = self._parse_verdict(completed.stdout)
        stderr_lower = (completed.stderr or "").lower()

        if completed.returncode < 0:
            # Killed by a signal: the classic segfault observation.
            raise SolverCrash(
                f"{self.name}: terminated by signal {-completed.returncode}\n"
                f"{completed.stderr.strip()}",
                kind="signal",
            )
        # Error markers on stderr only signal a crash when the run was
        # otherwise abnormal (no verdict, or a nonzero exit): a solver
        # that answers and exits cleanly may still echo benign chatter
        # like `(assert ...)` diagnostics that a bare substring match
        # would misread as an assertion failure.
        abnormal = verdict is None or completed.returncode != 0
        if abnormal and any(marker in stderr_lower for marker in _ERROR_MARKERS):
            raise SolverCrash(
                f"{self.name}: internal error\n{completed.stderr.strip()}",
                kind="internal-error",
            )
        if verdict is None:
            if completed.returncode != 0:
                raise SolverCrash(
                    f"{self.name}: exit code {completed.returncode} with no verdict\n"
                    f"{completed.stderr.strip()}",
                    kind="abnormal-exit",
                )
            return CheckOutcome(SolverResult.UNKNOWN, reason="no verdict on stdout")
        return CheckOutcome(verdict, reason=f"stdout of {self.name}")

    @staticmethod
    def _parse_verdict(stdout):
        for line in (stdout or "").splitlines():
            token = line.strip().lower()
            if token == "sat":
                return SolverResult.SAT
            if token == "unsat":
                return SolverResult.UNSAT
            if token == "unknown":
                return SolverResult.UNKNOWN
        return None
