"""A CDCL SAT solver (conflict-driven clause learning).

Standard architecture: two-watched-literal propagation, first-UIP
conflict analysis with clause learning, VSIDS-style activity decay,
geometric restarts, and phase saving. Variables are positive integers;
literals are signed integers (``-v`` is the negation of ``v``).

The solver is incremental in the simple sense the lazy DPLL(T) loop
needs: clauses may be added between ``solve()`` calls, each of which
restarts the search.
"""

from __future__ import annotations

from repro.coverage.probes import (
    branch_probe,
    declare_module_probes,
    function_probe,
    line_probe,
)


class SatSolver:
    """CDCL solver over integer literals."""

    def __init__(self):
        self.num_vars = 0
        self.clauses = []  # list[list[int]] original + learned
        self.watches = {}  # literal -> list of clause indices watching it
        self.assignment = {}  # var -> bool
        self.level = {}  # var -> decision level
        self.reason = {}  # var -> clause index (None for decisions)
        self.trail = []  # assigned literals, in order
        self.trail_lim = []  # trail indices at each decision level
        self.activity = {}  # var -> float
        self.phase = {}  # var -> last assigned polarity
        self.var_inc = 1.0
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0

    # -- construction ------------------------------------------------------

    def new_var(self):
        self.num_vars += 1
        var = self.num_vars
        self.activity[var] = 0.0
        self.phase[var] = False
        return var

    def ensure_vars(self, n):
        while self.num_vars < n:
            self.new_var()

    def add_clause(self, literals):
        """Add a clause; returns False if it is trivially unsatisfiable."""
        function_probe("sat.add_clause")
        seen = set()
        clause = []
        for lit in literals:
            if -lit in seen:
                return True  # tautology, drop silently
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
                self.ensure_vars(abs(lit))
        if not clause:
            line_probe("sat.add_clause.empty")
            self.clauses.append([])
            return False
        index = len(self.clauses)
        self.clauses.append(clause)
        self._watch(clause, index)
        return True

    def _watch(self, clause, index):
        self.watches.setdefault(clause[0], []).append(index)
        if len(clause) > 1:
            self.watches.setdefault(clause[1], []).append(index)

    # -- assignment helpers ----------------------------------------------

    def value(self, lit):
        """True/False if assigned, None otherwise."""
        var = abs(lit)
        if var not in self.assignment:
            return None
        val = self.assignment[var]
        return val if lit > 0 else not val

    def _assign(self, lit, reason_index):
        var = abs(lit)
        self.assignment[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason_index
        self.phase[var] = lit > 0
        self.trail.append(lit)

    def _unassign_to(self, target_level):
        cut = self.trail_lim[target_level]
        for lit in self.trail[cut:]:
            var = abs(lit)
            del self.assignment[var]
            del self.level[var]
            del self.reason[var]
        del self.trail[cut:]
        del self.trail_lim[target_level:]

    # -- propagation -------------------------------------------------------

    def _propagate(self):
        """Unit propagation. Returns a conflicting clause index or None."""
        function_probe("sat.propagate")
        head = len(self.trail) - 1 if self.trail else 0
        queue_start = getattr(self, "_qhead", 0)
        i = queue_start
        while i < len(self.trail):
            lit = self.trail[i]
            i += 1
            self.propagations += 1
            false_lit = -lit
            watchers = self.watches.get(false_lit, [])
            new_watchers = []
            conflict = None
            for index in watchers:
                clause = self.clauses[index]
                # Ensure false_lit is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                if self.value(clause[0]) is True:
                    new_watchers.append(index)
                    continue
                # Look for a replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    if self.value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(clause[1], []).append(index)
                        moved = True
                        break
                if moved:
                    line_probe("sat.propagate.moved_watch")
                    continue
                new_watchers.append(index)
                first = self.value(clause[0])
                if first is False:
                    line_probe("sat.propagate.conflict")
                    conflict = index
                    new_watchers.extend(watchers[watchers.index(index) + 1 :])
                    break
                # Unit clause: propagate.
                self._assign(clause[0], index)
            self.watches[false_lit] = new_watchers
            if conflict is not None:
                self._qhead = len(self.trail)
                return conflict
        self._qhead = len(self.trail)
        del head, queue_start
        return None

    # -- conflict analysis -------------------------------------------------

    def _analyze(self, conflict_index):
        """First-UIP analysis; returns (learned_clause, backjump_level)."""
        function_probe("sat.analyze")
        learned = []
        seen = set()
        counter = 0
        lit = None
        clause = list(self.clauses[conflict_index])
        current_level = len(self.trail_lim)
        trail_index = len(self.trail) - 1
        while True:
            for q in clause:
                var = abs(q)
                if var in seen:
                    continue
                if var not in self.level:
                    continue
                seen.add(var)
                self._bump(var)
                if self.level[var] == current_level:
                    counter += 1
                elif self.level[var] > 0:
                    learned.append(q)
            # Find the next literal to resolve on, scanning the trail.
            while trail_index >= 0 and abs(self.trail[trail_index]) not in seen:
                trail_index -= 1
            if trail_index < 0:
                break
            lit = self.trail[trail_index]
            var = abs(lit)
            trail_index -= 1
            counter -= 1
            if counter == 0:
                break
            reason_index = self.reason[var]
            if reason_index is None:
                break
            clause = [q for q in self.clauses[reason_index] if q != lit]
        learned = [-lit] + learned if lit is not None else learned
        if len(learned) <= 1:
            backjump = 0
        else:
            levels = sorted(
                (self.level[abs(q)] for q in learned[1:]), reverse=True
            )
            backjump = levels[0]
        return learned, backjump

    def _bump(self, var):
        self.activity[var] = self.activity.get(var, 0.0) + self.var_inc

    def _decay(self):
        self.var_inc /= 0.95
        if self.var_inc > 1e100:
            for var in self.activity:
                self.activity[var] *= 1e-100
            self.var_inc = 1.0

    # -- search ------------------------------------------------------------

    def _pick_branch_var(self):
        best = None
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if var not in self.assignment:
                act = self.activity.get(var, 0.0)
                if act > best_activity:
                    best = var
                    best_activity = act
        return best

    def solve(self, max_conflicts=200000, assumptions=()):
        """Search for a satisfying assignment.

        Returns ``True`` (model in :attr:`assignment`), ``False``
        (unsatisfiable), or ``None`` if the conflict budget is exhausted.

        ``assumptions`` are literals decided (in order) before any free
        decision, MiniSat-style: they live on the trail as decisions,
        never as clauses, so conflict analysis cannot resolve them away
        into learned clauses — which is what makes clauses learned under
        assumptions valid without them. An assumption found False under
        propagation makes the call return False (unsatisfiable *under
        the assumptions*; the clause database itself may stay
        satisfiable).
        """
        function_probe("sat.solve")
        # Restart search state but keep learned clauses.
        self.assignment.clear()
        self.level.clear()
        self.reason.clear()
        self.trail.clear()
        self.trail_lim.clear()
        self._qhead = 0
        for lit in assumptions:
            self.ensure_vars(abs(lit))
        if any(not clause for clause in self.clauses):
            line_probe("sat.solve.empty_clause")
            return False
        # Assert unit clauses at level 0.
        for index, clause in enumerate(self.clauses):
            if len(clause) == 1:
                lit = clause[0]
                if self.value(lit) is False:
                    return False
                if self.value(lit) is None:
                    self._assign(lit, index)
        restart_limit = 100
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if branch_probe("sat.solve.toplevel_conflict", not self.trail_lim):
                    return False
                if self.conflicts % 1000 == 0:
                    self._decay()
                if conflicts_here > max_conflicts:
                    line_probe("sat.solve.budget_exhausted")
                    return None
                learned, backjump = self._analyze(conflict)
                self._unassign_to(backjump)
                self._qhead = len(self.trail)
                if not learned:
                    return False
                index = len(self.clauses)
                self.clauses.append(learned)
                if len(learned) > 1:
                    self._watch(learned, index)
                if self.value(learned[0]) is None:
                    self._assign(learned[0], index if len(learned) > 1 else index)
                elif self.value(learned[0]) is False:
                    line_probe("sat.solve.learned_false")
                    return False
                if conflicts_here >= restart_limit:
                    line_probe("sat.solve.restart")
                    restart_limit = int(restart_limit * 1.5)
                    if self.trail_lim:
                        self._unassign_to(0)
                    self._qhead = 0
                continue
            if len(self.trail_lim) < len(assumptions):
                line_probe("sat.solve.assume")
                lit = assumptions[len(self.trail_lim)]
                current = self.value(lit)
                if current is False:
                    line_probe("sat.solve.assumption_conflict")
                    return False
                self.trail_lim.append(len(self.trail))
                if current is None:
                    self.decisions += 1
                    self._assign(lit, None)
                continue
            var = self._pick_branch_var()
            if var is None:
                line_probe("sat.solve.sat")
                return True
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            polarity = self.phase.get(var, False)
            self._assign(var if polarity else -var, None)

    def model(self):
        """The satisfying assignment as var -> bool (after a True solve)."""
        return dict(self.assignment)

    def clone(self):
        """An independent copy with the same clauses and heuristic state.

        The clone carries the clause database (original + learned), the
        watch lists, VSIDS activities and saved phases — the warm-start
        ordering — but no search state: assignments, trail and
        statistics start fresh. Mutating either solver never affects
        the other.
        """
        other = SatSolver.__new__(SatSolver)
        other.num_vars = self.num_vars
        other.clauses = [list(clause) for clause in self.clauses]
        other.watches = {lit: list(indices) for lit, indices in self.watches.items()}
        other.assignment = {}
        other.level = {}
        other.reason = {}
        other.trail = []
        other.trail_lim = []
        other.activity = dict(self.activity)
        other.phase = dict(self.phase)
        other.var_inc = self.var_inc
        other.conflicts = 0
        other.decisions = 0
        other.propagations = 0
        return other


declare_module_probes(__file__)
