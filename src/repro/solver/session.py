"""Per-cell solver sessions: cross-iteration incremental solving.

Semantic fusion generates thousands of mutants from the *same* seed
pool, yet every check used to rebuild Tseitin encodings, preprocessing
and DPLL(T) search from scratch. A :class:`SolverSession` is scoped to
one campaign cell (seed pool × strategy) and carries the state that is
sound to reuse across that cell's mutant stream:

- an **outcome cache** keyed on the full argument tuple of a check
  (assertion terms, scaled budgets, flags). Unchanged-from-seed
  assertion terms are the *same interned objects* across iterations
  (PR 3), so keys are cheap; entries are snapshots, handed back as
  fresh :class:`~repro.solver.result.CheckOutcome` copies because
  wrappers (the fault layer) mutate ``outcome.stats``. The cache is
  cleared at every iteration boundary (:meth:`begin_iteration`): its
  job is deduplicating the N-solvers-per-mutant fan-out — a hit means
  "this exact check already ran *this iteration*" — and the
  iteration scoping is what makes hits provably independent of how a
  campaign is sharded (no shard can see another iteration's entries).
- a **theory-lemma cache**: ``_check_theory`` is a pure function of
  its ordered literal list, budgets and seed (it draws no gensyms and
  no ambient randomness), so memoizing it on the *ordered* tuple is
  result-identical — a hit returns exactly what the miss would have
  computed. This cache is the one that legitimately spans iterations:
  mutants of the same seeds keep re-asserting the same theory atoms.
- a **warm SAT prototype**: the cell's seed assertions, Tseitin-encoded
  once with a *selector* (assumption) variable guarding each
  assertion's root literal, then presolved under all selectors for a
  bounded number of conflicts. Each mutant solve clones the prototype
  (CNF, variable maps, VSIDS activity and saved phases — the
  warm-start ordering), assumes the selectors of the seed assertions
  the mutant actually retained, guards mutant-specific assertions
  behind one fresh per-solve selector, and searches under assumptions.
- a **learned-clause store**: clauses learned during a mutant solve
  whose variables lie entirely in the prototype's shared vocabulary
  are valid for every mutant of the cell (see the soundness argument
  below) and are replayed into the next solve. Mutant-specific clauses
  are discarded with the clone on reset.

Soundness of clause reuse: every mutant-specific root assertion is
guarded by the per-solve selector, which appears only negatively in
clauses (positively only as an assumption *decision*), so any resolvent
derived from a mutant root keeps the selector literal and is excluded
by the shared-vocabulary variable filter. What survives the filter is a
consequence of the prototype clauses (seed assertions, themselves
selector-guarded), globally valid theory lemmas (blocking clauses), and
Tseitin definitions — and any clause over base variables implied by
definitional clauses alone is a tautology, since definitions extend
every base assignment. Hence every retained clause holds for every
mutant of the cell.

Determinism: the prototype is built eagerly at session construction,
inside its own fresh-name scope, from the seed scripts alone — a pure
function of the cell. In deterministic runs (no wall-clock deadline)
the clause store stays presolve-only, so a warm solve is a pure
function of ``(cell, mutant, directive)`` and shard partitioning cannot
observe cache state; cross-mutant clause accumulation is enabled only
for wall-clock runs, which make no byte-identity promise. The theory
cache is a pure-function memo either way, and the outcome cache is
iteration-scoped — all three are invisible to any partition of the
iteration space.

Verdict safety: a warm solve may only *add* definite verdicts. A warm
``sat`` is model-verified, a warm ``unsat`` is derived from the
mutant's own assertions plus valid lemmas; a warm ``unknown`` falls
back to the exact cold path (whose session theory-cache hits are
result-identical), so versus incremental-off no definite verdict can be
lost or flipped — only ``unknown`` → definite improvements remain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observability.telemetry import NULL_TELEMETRY
from repro.smtlib.ast import fresh_scope
from repro.smtlib.sorts import BOOL
from repro.solver.preprocess import preprocess
from repro.solver.result import CheckOutcome
from repro.solver.sat import SatSolver
from repro.solver.tseitin import Abstraction, is_theory_atom


@dataclass(frozen=True)
class SessionConfig:
    """Caps and budgets of a :class:`SolverSession`.

    Frozen and picklable so it can ride a
    :class:`~repro.core.config.YinYangConfig` across the process-pool
    spawn boundary (the live session never travels — each worker builds
    its own from the seed scripts it already holds).

    All caches evict in *insertion order* (the oldest entry goes
    first), never by clock: eviction order is then a pure function of
    the insertion sequence, which keeps memory bounds from introducing
    wall-clock dependence into an otherwise deterministic run.
    """

    outcome_cache: int = 256
    theory_cache: int = 4096
    clause_store: int = 256
    atom_memo: int = 2048
    #: Conflict budget of the one-off prototype presolve under all
    #: selectors (0 disables the presolve).
    presolve_conflicts: int = 64
    #: DPLL(T) round cap of a warm attempt. Kept small: a warm attempt
    #: that cannot decide quickly falls back to the cold path, and the
    #: fallback re-pays theory checks only where the session cache
    #: misses.
    warm_rounds: int = 8

    def describe(self):
        """The canonical spec string journalled in campaign meta."""
        return (
            f"outcome={self.outcome_cache},theory={self.theory_cache},"
            f"clauses={self.clause_store},presolve={self.presolve_conflicts},"
            f"warm={self.warm_rounds}"
        )


class _Prototype:
    """The cell's selector-guarded seed encoding (built once)."""

    __slots__ = ("sat", "abstraction", "selectors", "by_id", "base_vars")

    def __init__(self, sat, abstraction, selectors, by_id):
        self.sat = sat
        self.abstraction = abstraction
        # [(assertion term, selector var, frozenset of its theory atoms)]
        self.selectors = selectors
        self.by_id = by_id  # id(assertion term) -> index into selectors
        self.base_vars = sat.num_vars


class WarmCore:
    """One mutant's clone of the prototype, ready to solve."""

    __slots__ = ("sat", "abstraction", "assumptions", "relevant", "export_base", "shared_vars")

    def __init__(self, sat, abstraction, assumptions, relevant, export_base, shared_vars):
        self.sat = sat
        self.abstraction = abstraction
        self.assumptions = assumptions
        # The theory atoms of the *asserted* formulas: exactly the atom
        # universe a cold encode of the same assertions would have, so
        # filtering the SAT model to it makes warm theory queries range
        # over the same conjunctions the cold path would check.
        self.relevant = relevant
        self.export_base = export_base
        self.shared_vars = shared_vars


class SolverSession:
    """Answer-invariant caches plus the warm-solve machinery of one cell.

    ``seed_scripts`` is the cell's seed pool (Script objects); the
    prototype is built from their assertions immediately, inside a
    private fresh-name scope, so its content is a pure function of the
    cell regardless of when or on which shard the session is created.
    """

    def __init__(self, seed_scripts, config=None, telemetry=None):
        self.config = config or SessionConfig()
        self.tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._outcome_cache = {}
        self._theory_cache = {}
        self._clause_store = {}  # frozenset(lits) -> tuple(lits)
        self._atom_memo = {}  # term -> frozenset of theory atoms
        self._proto = self._build_prototype(seed_scripts or [])

    # -- construction ------------------------------------------------------

    def _build_prototype(self, seed_scripts):
        seen = set()
        seed_assertions = []
        for script in seed_scripts:
            for term in getattr(script, "asserts", ()):
                if id(term) not in seen:
                    seen.add(id(term))
                    seed_assertions.append(term)
        if not seed_assertions:
            return None
        # A private scope: preprocessing probes below may intern rewritten
        # nodes and draw gensyms; neither may leak into (or depend on) the
        # caller's scope, or the prototype would stop being a pure
        # function of the seed pool.
        with fresh_scope():
            sat = SatSolver()
            abstraction = Abstraction(sat)
            selectors = []
            by_id = {}
            for term in seed_assertions:
                # Register only assertions that preprocessing provably
                # leaves untouched (same interned object in, same object
                # out, no divisions/eliminations/extras): those are the
                # ones a mutant's own preprocessed assertion list can
                # contain *by identity*, which is what selector matching
                # keys on. Anything else simply never matches and is
                # encoded fresh per mutant — a missed optimization, never
                # a wrong answer.
                pre = preprocess([term])
                if pre.quantified or pre.divisions or pre.eliminated:
                    continue
                if len(pre.assertions) != 1 or pre.assertions[0] is not term:
                    continue
                selector = sat.new_var()
                abstraction.assert_term_under(term, selector)
                by_id[id(term)] = len(selectors)
                selectors.append((term, selector, self._atoms_of(term)))
            if not selectors:
                return None
            if self.config.presolve_conflicts > 0:
                # Presolve under the full seed conjunction: whatever the
                # bounded search learns is a consequence of the guarded
                # seed clauses alone, valid for every mutant, and rides
                # every clone (assumptions are decisions, never clauses,
                # so they cannot contaminate learned resolvents).
                sat.solve(
                    max_conflicts=self.config.presolve_conflicts,
                    assumptions=tuple(sel for _, sel, _ in selectors),
                )
        return _Prototype(sat, abstraction, selectors, by_id)

    def _atoms_of(self, term):
        cached = self._atom_memo.get(term)
        if cached is None:
            cached = frozenset(
                node
                for node in term.walk()
                if node.sort == BOOL and is_theory_atom(node)
            )
            self._bounded_put(self._atom_memo, term, cached, self.config.atom_memo)
        return cached

    # -- bounded caches ----------------------------------------------------

    def _bounded_put(self, cache, key, value, cap):
        if key not in cache:
            while len(cache) >= cap > 0:
                cache.pop(next(iter(cache)))
                self.tel.count("session.evictions")
        cache[key] = value

    def cache_sizes(self):
        """Current entry counts, for the telemetry gauges."""
        return {
            "outcome_cache": len(self._outcome_cache),
            "theory_cache": len(self._theory_cache),
            "clause_store": len(self._clause_store),
            "atom_memo": len(self._atom_memo),
        }

    # -- iteration lifecycle -----------------------------------------------

    def begin_iteration(self):
        """Reset the iteration-scoped state (called by the checker).

        Outcome entries deduplicate the several solver checks of *one*
        mutant; letting them survive into later iterations would make a
        hit depend on which iterations share a shard.
        """
        self._outcome_cache.clear()

    def close(self):
        """Drop every cache (a lease ends, the session dies with it)."""
        self._outcome_cache.clear()
        self._theory_cache.clear()
        self._clause_store.clear()
        self._atom_memo.clear()

    # -- outcome cache -----------------------------------------------------

    def lookup_outcome(self, key):
        entry = self._outcome_cache.get(key)
        if entry is None:
            self.tel.count("session.outcome.miss")
            return None
        self.tel.count("session.outcome.hit")
        result, model, reason, stats = entry
        outcome = CheckOutcome(result, model=model, reason=reason)
        outcome.stats.update(stats)
        return outcome

    def store_outcome(self, key, outcome):
        # Snapshot the stats dict: callers (the fault layer) stamp their
        # own keys onto the outcome they received, and those must never
        # bleed into a later hit's copy.
        self._bounded_put(
            self._outcome_cache,
            key,
            (outcome.result, outcome.model, outcome.reason, dict(outcome.stats)),
            self.config.outcome_cache,
        )

    # -- theory-lemma cache ------------------------------------------------

    def theory_lookup(self, literal_list, budget, seed, strings_key):
        key = (tuple(literal_list), budget, seed, strings_key)
        hit = self._theory_cache.get(key)
        if hit is None:
            self.tel.count("session.theory.miss")
            return None
        self.tel.count("session.theory.hit")
        return hit

    def theory_store(self, literal_list, budget, seed, strings_key, result, cacheable):
        """Memoize one ``_check_theory`` answer.

        Keyed on the *ordered* literal tuple: the theory cores are
        order-sensitive searches, so only the exact call is a pure
        replay. ``cacheable`` is False for wall-clock-bounded unknowns
        (a timeout is not a function of the arguments).
        """
        if not cacheable:
            return
        key = (tuple(literal_list), budget, seed, strings_key)
        self._bounded_put(self._theory_cache, key, result, self.config.theory_cache)

    # -- warm solves -------------------------------------------------------

    def warm_rounds(self, max_rounds):
        """The DPLL(T) round cap of a warm attempt under ``max_rounds``."""
        return max(1, min(self.config.warm_rounds, max_rounds))

    def should_warm(self, max_rounds):
        """Whether a warm attempt can pay for itself under ``max_rounds``.

        A warm attempt is a *cheaper prefilter* in front of the exact
        cold search; when the caller's round budget is already at or
        below the warm cap (the fail-fast triage tiers), the attempt
        would cost as much as the search it tries to skip and every
        fallback would pay double. A pure function of the directive's
        budget, so the gate is shard-invisible.
        """
        return max_rounds > self.config.warm_rounds

    def warm_start(self, pre_assertions):
        """Clone the prototype for one mutant; ``None`` if nothing is shared."""
        proto = self._proto
        if proto is None:
            self.tel.count("session.warm.skipped")
            return None
        shared = []
        rest = []
        for term in pre_assertions:
            index = proto.by_id.get(id(term))
            if index is not None:
                shared.append(index)
            else:
                rest.append(term)
        if not shared:
            # No seed assertion survived into this mutant's preprocessed
            # form: a clone would reuse nothing, the cold path is strictly
            # cheaper.
            self.tel.count("session.warm.skipped")
            return None
        sat = proto.sat.clone()
        abstraction = proto.abstraction.clone_onto(sat)
        replay = list(self._clause_store.values())
        for clause in replay:
            sat.add_clause(list(clause))
        if replay:
            self.tel.count("session.clauses.replayed", len(replay))
        export_base = len(sat.clauses)
        relevant = set()
        assumptions = []
        for index in shared:
            _, selector, atoms = proto.selectors[index]
            assumptions.append(selector)
            relevant.update(atoms)
        mutant_selector = sat.new_var()
        for term in rest:
            abstraction.assert_term_under(term, mutant_selector)
            relevant.update(self._atoms_of(term))
        assumptions.append(mutant_selector)
        self.tel.count("session.warm.attempt")
        return WarmCore(
            sat=sat,
            abstraction=abstraction,
            assumptions=tuple(assumptions),
            relevant=relevant,
            export_base=export_base,
            shared_vars=proto.base_vars,
        )

    def note_warm_decided(self):
        self.tel.count("session.warm.decided")

    def note_warm_fallback(self):
        self.tel.count("session.warm.fallback")

    def export_learned(self, warm, wall_clock):
        """Harvest shared-vocabulary clauses from a finished warm solve.

        Only in wall-clock runs: deterministic campaigns promise
        byte-identical journals for any shard partition, and a clause
        store fed by *previous mutants of this shard* is exactly the
        history a partition could observe. The presolve already gives
        deterministic runs their (partition-independent) replayed
        clauses via the prototype.
        """
        if not wall_clock:
            return
        limit = warm.shared_vars
        exported = 0
        for clause in warm.sat.clauses[warm.export_base:]:
            if not clause:
                continue
            if any(abs(lit) > limit for lit in clause):
                continue  # mentions a mutant-local variable: discarded
            key = frozenset(clause)
            if key in self._clause_store:
                continue
            self._bounded_put(
                self._clause_store, key, tuple(clause), self.config.clause_store
            )
            exported += 1
        if exported:
            self.tel.count("session.clauses.exported", exported)
