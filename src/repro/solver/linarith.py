"""Linear arithmetic: general simplex with delta-rationals.

Decides conjunctions of linear constraints over the rationals
(Dutertre & de Moura's simplex for DPLL(T)), with strict inequalities
represented by delta-rationals ``c + k*delta``. Integer variables are
handled by branch & bound on top of the rational relaxation.

Entry point: :func:`check_linear`.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from fractions import Fraction


def remove_sorted(items, value):
    """Remove ``value`` from a sorted list in O(log n + shift)."""
    index = bisect_left(items, value)
    if index < len(items) and items[index] == value:
        del items[index]

from repro.coverage.probes import (
    branch_probe,
    declare_module_probes,
    function_probe,
    line_probe,
)


_ZERO = Fraction(0)


class DeltaRational:
    """A rational plus an infinitesimal: ``c + k * delta`` with delta > 0."""

    __slots__ = ("c", "k")

    def __init__(self, c, k=0):
        # Fraction(Fraction) allocates a copy; the simplex inner loop
        # creates millions of these, so skip the rewrap when possible.
        self.c = c if type(c) is Fraction else Fraction(c)
        self.k = k if type(k) is Fraction else Fraction(k)

    def __add__(self, other):
        return DeltaRational(self.c + other.c, self.k + other.k)

    def __sub__(self, other):
        return DeltaRational(self.c - other.c, self.k - other.k)

    def scale(self, factor):
        return DeltaRational(self.c * factor, self.k * factor)

    def __lt__(self, other):
        return (self.c, self.k) < (other.c, other.k)

    def __le__(self, other):
        return (self.c, self.k) <= (other.c, other.k)

    def __eq__(self, other):
        if not isinstance(other, DeltaRational):
            return NotImplemented
        return (self.c, self.k) == (other.c, other.k)

    def __hash__(self):
        return hash((self.c, self.k))

    def concretize(self, delta):
        """The exact rational value once ``delta`` is fixed."""
        return self.c + self.k * delta

    def __repr__(self):
        if self.k == 0:
            return f"{self.c}"
        return f"{self.c}{'+' if self.k > 0 else ''}{self.k}d"


@dataclass(frozen=True)
class LinearAtom:
    """A normalized linear constraint ``sum(coeffs[v] * v) op constant``.

    ``op`` is one of ``"<="``, ``"<"``, ``"="``.
    """

    coeffs: tuple  # tuple[(var_name, Fraction), ...] sorted by name
    op: str
    constant: Fraction

    @classmethod
    def make(cls, coeffs, op, constant):
        items = tuple(sorted((v, Fraction(c)) for v, c in coeffs.items() if c != 0))
        return cls(items, op, Fraction(constant))

    @property
    def coeff_dict(self):
        return dict(self.coeffs)

    def evaluate(self, model):
        """Check the constraint under exact rational values."""
        total = sum(c * model[v] for v, c in self.coeffs)
        if self.op == "<=":
            return total <= self.constant
        if self.op == "<":
            return total < self.constant
        return total == self.constant


SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


class Simplex:
    """General simplex over delta-rationals with incremental bounds."""

    def __init__(self):
        self.rows = {}  # basic var -> {nonbasic var: coeff}
        self.is_basic = set()
        self.lower = {}  # var -> DeltaRational
        self.upper = {}
        self.assign = {}  # var -> DeltaRational
        self.all_vars = []
        self._slack_index = {}  # normalized form -> slack name
        self._slack_count = 0
        # Column index: nonbasic var -> set of basic vars whose row
        # mentions it. Lets updates and pivots touch only the rows that
        # actually contain the changed variable instead of all of them.
        self._cols = {}
        # Basic vars kept sorted so Bland's rule needn't re-sort per pivot.
        self._basic_sorted = []

    # -- setup ------------------------------------------------------------

    def _ensure_var(self, name):
        if name not in self.assign:
            self.assign[name] = DeltaRational(0)
            self.all_vars.append(name)

    def _slack_for(self, form):
        """The slack variable equal to the linear form (a coeff tuple)."""
        if form in self._slack_index:
            return self._slack_index[form]
        self._slack_count += 1
        name = f".s{self._slack_count}"
        self._slack_index[form] = name
        for var, _ in form:
            self._ensure_var(var)
        self._ensure_var(name)
        # Define: name = sum(coeff * var). Express over current nonbasics.
        row = {}
        for var, coeff in form:
            if var in self.is_basic:
                for v2, c2 in self.rows[var].items():
                    row[v2] = row.get(v2, Fraction(0)) + coeff * c2
            else:
                row[var] = row.get(var, Fraction(0)) + coeff
        row = {v: c for v, c in row.items() if c != 0}
        self.rows[name] = row
        self.is_basic.add(name)
        insort(self._basic_sorted, name)
        for var in row:
            self._cols.setdefault(var, set()).add(name)
        self.assign[name] = self._row_value(row)
        return name

    def _row_value(self, row):
        total = DeltaRational(0)
        for var, coeff in row.items():
            total = total + self.assign[var].scale(coeff)
        return total

    def assert_atom(self, atom):
        """Assert a :class:`LinearAtom`; returns False on immediate conflict."""
        function_probe("simplex.assert_atom")
        if not atom.coeffs:
            constant = Fraction(0)
            bound = DeltaRational(atom.constant)
            value = DeltaRational(constant)
            if atom.op == "<=":
                return value <= bound
            if atom.op == "<":
                return value < bound
            return value == bound
        slack = self._slack_for(atom.coeffs)
        if atom.op == "<=":
            return self._assert_upper(slack, DeltaRational(atom.constant, 0))
        if atom.op == "<":
            return self._assert_upper(slack, DeltaRational(atom.constant, -1))
        ok = self._assert_upper(slack, DeltaRational(atom.constant, 0))
        if not ok:
            return False
        return self._assert_lower(slack, DeltaRational(atom.constant, 0))

    def _assert_upper(self, var, bound):
        current = self.upper.get(var)
        if current is not None and current <= bound:
            return True
        lower = self.lower.get(var)
        if lower is not None and bound < lower:
            line_probe("simplex.bound_conflict")
            return False
        self.upper[var] = bound
        if var not in self.is_basic and bound < self.assign[var]:
            self._update(var, bound)
        return True

    def _assert_lower(self, var, bound):
        current = self.lower.get(var)
        if current is not None and bound <= current:
            return True
        upper = self.upper.get(var)
        if upper is not None and upper < bound:
            line_probe("simplex.bound_conflict")
            return False
        self.lower[var] = bound
        if var not in self.is_basic and self.assign[var] < bound:
            self._update(var, bound)
        return True

    # -- backtracking -----------------------------------------------------

    def push(self):
        """Snapshot the bound state (for branch & bound backtracking).

        Only bounds need saving: the tableau stays a valid basis under
        any bounds, and the assignment always satisfies the row
        equations. Restoring *weaker* bounds can never put a nonbasic
        variable out of range, so :meth:`pop` is just a dict restore.
        """
        return (dict(self.lower), dict(self.upper))

    def pop(self, saved):
        """Restore bounds saved by :meth:`push`."""
        self.lower = dict(saved[0])
        self.upper = dict(saved[1])

    # -- pivoting ---------------------------------------------------------

    def _update(self, nonbasic, value):
        delta = value - self.assign[nonbasic]
        self.assign[nonbasic] = value
        assign = self.assign
        rows = self.rows
        for basic in self._cols.get(nonbasic, ()):
            coeff = rows[basic][nonbasic]
            assign[basic] = assign[basic] + delta.scale(coeff)

    def _pivot(self, basic, nonbasic):
        """Swap roles of ``basic`` and ``nonbasic``."""
        cols = self._cols
        row = self.rows.pop(basic)
        self.is_basic.discard(basic)
        remove_sorted(self._basic_sorted, basic)
        for var in row:
            cols[var].discard(basic)
        coeff = row.pop(nonbasic)
        # nonbasic = (basic - sum(other)) / coeff
        new_row = {basic: Fraction(1) / coeff}
        for var, c in row.items():
            new_row[var] = -c / coeff
        self.rows[nonbasic] = new_row
        self.is_basic.add(nonbasic)
        insort(self._basic_sorted, nonbasic)
        for var in new_row:
            cols.setdefault(var, set()).add(nonbasic)
        # Substitute into the rows that mention the entering variable.
        holders = cols.get(nonbasic)
        if holders:
            for other in sorted(holders - {nonbasic}):
                other_row = self.rows[other]
                c = other_row.pop(nonbasic)
                holders.discard(other)
                for var, c2 in new_row.items():
                    total = other_row.get(var, _ZERO) + c * c2
                    if total == 0:
                        if var in other_row:
                            del other_row[var]
                            cols[var].discard(other)
                    else:
                        if var not in other_row:
                            cols.setdefault(var, set()).add(other)
                        other_row[var] = total

    def _pivot_and_update(self, basic, nonbasic, new_value):
        coeff = self.rows[basic][nonbasic]
        delta = (new_value - self.assign[basic]).scale(Fraction(1) / coeff)
        assign = self.assign
        assign[basic] = new_value
        assign[nonbasic] = assign[nonbasic] + delta
        # Incrementally adjust the other rows that mention ``nonbasic``:
        # their value shifts by (row coeff) * delta, exactly what a full
        # re-evaluation would compute.
        rows = self.rows
        for other in self._cols.get(nonbasic, ()):
            if other != basic:
                assign[other] = assign[other] + delta.scale(rows[other][nonbasic])
        self._pivot(basic, nonbasic)

    def check(self, max_pivots=20000):
        """Run simplex; SAT/UNSAT/UNKNOWN (pivot budget exhausted)."""
        function_probe("simplex.check")
        pivots = 0
        while True:
            violated = None
            # Bland's rule: smallest variable name first, for termination.
            for var in self._basic_sorted:
                value = self.assign[var]
                lower, upper = self.lower.get(var), self.upper.get(var)
                if lower is not None and value < lower:
                    violated = (var, lower, True)
                    break
                if upper is not None and upper < value:
                    violated = (var, upper, False)
                    break
            if violated is None:
                line_probe("simplex.check.sat")
                return SAT
            pivots += 1
            if pivots > max_pivots:
                line_probe("simplex.check.budget")
                return UNKNOWN
            basic, bound, need_increase = violated
            row = self.rows[basic]
            candidate = None
            for nonbasic in sorted(row):
                coeff = row[nonbasic]
                value = self.assign[nonbasic]
                if need_increase:
                    can = (coeff > 0 and (self.upper.get(nonbasic) is None or value < self.upper[nonbasic])) or (
                        coeff < 0 and (self.lower.get(nonbasic) is None or self.lower[nonbasic] < value)
                    )
                else:
                    can = (coeff > 0 and (self.lower.get(nonbasic) is None or self.lower[nonbasic] < value)) or (
                        coeff < 0 and (self.upper.get(nonbasic) is None or value < self.upper[nonbasic])
                    )
                if can:
                    candidate = nonbasic
                    break
            if branch_probe("simplex.check.no_pivot", candidate is None):
                return UNSAT
            self._pivot_and_update(basic, candidate, bound)

    # -- model extraction ---------------------------------------------------

    def model(self, problem_vars):
        """Exact rational values for ``problem_vars`` after a SAT check."""
        delta = self._choose_delta()
        return {v: self.assign[v].concretize(delta) for v in problem_vars if v in self.assign}

    def _choose_delta(self):
        """A concrete positive delta small enough to respect all bounds."""
        limit = Fraction(1)
        for var, value in self.assign.items():
            for bound, is_lower in (
                (self.lower.get(var), True),
                (self.upper.get(var), False),
            ):
                if bound is None:
                    continue
                diff = (value - bound) if is_lower else (bound - value)
                # Need diff.c + diff.k * delta >= 0.
                if diff.k < 0 and diff.c > 0:
                    limit = min(limit, -diff.c / diff.k)
        return limit / 2


def _tighten_for_ints(atom, int_vars):
    """Integer bound tightening of a single atom.

    For an all-integer left-hand side, ``lhs < c`` becomes
    ``lhs <= ceil(c) - 1`` and ``lhs <= c`` becomes ``lhs <= floor(c)``,
    which removes the fractional vertices that branch & bound would
    otherwise chase one unit at a time.
    """
    if atom.op not in ("<", "<=") or not atom.coeffs:
        return atom
    if any(v not in int_vars or c.denominator != 1 for v, c in atom.coeffs):
        return atom
    c = atom.constant
    if atom.op == "<":
        ceil = -((-c.numerator) // c.denominator)
        return LinearAtom(atom.coeffs, "<=", Fraction(ceil - 1))
    floor = c.numerator // c.denominator
    return LinearAtom(atom.coeffs, "<=", Fraction(floor))


def check_linear(atoms, int_vars=(), max_branch_nodes=400):
    """Decide a conjunction of :class:`LinearAtom` constraints.

    ``int_vars`` names variables that must take integer values (branch &
    bound over the rational relaxation).

    Returns ``(status, model_dict)`` where status is ``"sat"``,
    ``"unsat"`` or ``"unknown"`` and the model maps variable names to
    :class:`~fractions.Fraction` values (integral for ``int_vars``).
    """
    function_probe("linarith.check_linear")
    problem_vars = sorted({v for atom in atoms for v, _ in atom.coeffs})
    int_vars = frozenset(int_vars)
    if int_vars:
        atoms = [_tighten_for_ints(a, int_vars) for a in atoms]
    budget = [max_branch_nodes]

    # One tableau for the whole search: the initial constraints are
    # asserted once, and branch & bound explores integer splits by
    # pushing/popping *bounds* on the branch variable — a branch
    # constraint is always a single-variable bound, so no new slack or
    # re-assertion work is ever needed, and each node's simplex call is
    # an incremental repair of the previous solution rather than a
    # solve from scratch.
    simplex = Simplex()
    for var in problem_vars:
        simplex._ensure_var(var)
    for atom in atoms:
        if not simplex.assert_atom(atom):
            return UNSAT, None

    def solve():
        if budget[0] <= 0:
            return UNKNOWN, None
        budget[0] -= 1
        status = simplex.check()
        if status != SAT:
            return status, None
        model = simplex.model(problem_vars)
        fractional = None
        for var in problem_vars:
            if var in int_vars and model[var].denominator != 1:
                fractional = var
                break
        if branch_probe("linarith.integral", fractional is None):
            return SAT, model
        value = model[fractional]
        floor = value.numerator // value.denominator
        line_probe("linarith.branch")
        saw_unknown = False
        for is_low in (True, False):
            saved = simplex.push()
            if is_low:
                feasible = simplex._assert_upper(fractional, DeltaRational(floor))
            else:
                feasible = simplex._assert_lower(fractional, DeltaRational(floor + 1))
            if feasible:
                status, model = solve()
                if status == SAT:
                    return SAT, model
                if status == UNKNOWN:
                    saw_unknown = True
            simplex.pop(saved)
        return (UNKNOWN, None) if saw_unknown else (UNSAT, None)

    return solve()


declare_module_probes(__file__)
