"""Public solver API: :class:`ReferenceSolver`.

The reference solver plays the role Z3 and CVC4 play in the paper: a
black box that takes an SMT-LIB script and answers ``sat`` / ``unsat``
/ ``unknown`` (or crashes — which the reference solver itself never
does; the fault-injected variants in :mod:`repro.faults` do).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.coverage.probes import declare_module_probes, function_probe
from repro.smtlib.ast import Script
from repro.smtlib.parser import parse_script
from repro.solver.dpllt import check_assertions
from repro.solver.result import SolverResult
from repro.solver.strings import StringConfig


@dataclass
class SolverConfig:
    """Tunable budgets for the reference solver."""

    seed: int = 0
    max_rounds: int = 600
    nonlinear_budget: int = 900
    # Wall-clock limit per check (0 = unlimited). Enforced as a
    # cooperative deadline checked at DPLL(T) round boundaries, so it
    # holds on any thread (the harness watchdog and YinYang's thread
    # mode run checks off the main thread, where a SIGALRM-based limit
    # would silently not engage). Timeouts answer ``unknown``, like a
    # real solver driven with a fuzzing time limit.
    timeout_seconds: float = 0.0
    strings: StringConfig = field(default_factory=StringConfig)

    @classmethod
    def fast(cls):
        """Reduced budgets for high-throughput campaigns: hard inputs
        answer ``unknown`` sooner (exactly how one configures a real
        solver with a short timeout for fuzzing)."""
        return cls(
            max_rounds=60,
            nonlinear_budget=250,
            timeout_seconds=1.5,
            strings=StringConfig(max_assignments=6000, max_len_per_var=3, max_total_len=6),
        )

    @classmethod
    def thorough(cls):
        """A higher-budget configuration for offline validation."""
        return cls(
            max_rounds=2000,
            strings=StringConfig(
                max_len_per_var=4, max_total_len=10, max_assignments=200000
            ),
        )


class ReferenceSolver:
    """The reproduction's from-scratch SMT solver.

    Supports the paper's logics: quantifier-free linear and nonlinear
    integer/real arithmetic, strings with regular expressions, and the
    quantified fragments our seed generators emit (skolemizable
    existentials, bounded integer universals).
    """

    name = "reference"
    version = "1.0.0"

    def __init__(self, config=None):
        self.config = config or SolverConfig()
        # Observability hook: attach_telemetry() points this at a
        # Telemetry so every check is counted (and, under --trace,
        # timed). None costs a single truthiness test per check.
        self.telemetry = None

    def check(self, source, directive=None):
        """Check an SMT-LIB script (text or :class:`Script`).

        Returns a :class:`CheckOutcome`; never raises on well-formed
        input.
        """
        function_probe("solver.check")
        script = parse_script(source) if isinstance(source, str) else source
        return self.check_script(script, directive=directive)

    def check_script(self, script, directive=None, session=None):
        """Check a parsed :class:`Script`; returns a :class:`CheckOutcome`.

        ``directive`` (a :class:`~repro.solver.budget.SolveDirective`)
        scales the configured budgets for this one check and switches
        on the fused-structure fast paths; ``None`` is exactly the
        pre-triage behaviour.

        ``session`` (a :class:`~repro.solver.session.SolverSession`)
        enables the incremental layer for this check; a directive with
        ``session=False`` vetoes it for this tier.
        """
        if not isinstance(script, Script):
            raise TypeError(f"expected a Script, got {type(script).__name__}")
        seconds = self.config.timeout_seconds
        max_rounds = self.config.max_rounds
        nonlinear_budget = self.config.nonlinear_budget
        strings = self.config.strings
        eliminate_definitions = False
        model_guess = False
        shrink_cores = True
        if directive is not None:
            seconds = directive.scaled_timeout(seconds)
            max_rounds = directive.scaled_rounds(max_rounds)
            nonlinear_budget = directive.scaled_nonlinear(nonlinear_budget)
            strings = directive.scaled_strings(strings)
            eliminate_definitions = directive.eliminate_definitions
            model_guess = directive.model_guess
            shrink_cores = directive.shrink_cores
            if not directive.session:
                session = None
        deadline = time.monotonic() + seconds if seconds > 0 else None
        tel = self.telemetry
        if tel is None:
            return check_assertions(
                script.asserts,
                string_config=strings,
                seed=self.config.seed,
                max_rounds=max_rounds,
                nonlinear_budget=nonlinear_budget,
                deadline=deadline,
                eliminate_definitions=eliminate_definitions,
                model_guess=model_guess,
                shrink_cores=shrink_cores,
                session=session,
            )
        with tel.phase("solver.check"):
            outcome = check_assertions(
                script.asserts,
                string_config=strings,
                seed=self.config.seed,
                max_rounds=max_rounds,
                nonlinear_budget=nonlinear_budget,
                deadline=deadline,
                eliminate_definitions=eliminate_definitions,
                model_guess=model_guess,
                shrink_cores=shrink_cores,
                session=session,
            )
        tel.count("solver.checks")
        tel.count("solver.result." + outcome.result.value)
        return outcome

    def check_result(self, source):
        """Convenience: just the :class:`SolverResult` verdict."""
        return self.check(source).result

    def model(self, source):
        """A verified model if the script is satisfiable, else ``None``."""
        outcome = self.check(source)
        if outcome.result is SolverResult.SAT:
            return outcome.model
        return None


declare_module_probes(__file__)
