"""Boolean abstraction: Tseitin encoding of formulas to CNF.

The encoder maps each *theory atom* (arithmetic comparison, string
predicate, equality over non-boolean terms, boolean variable) to a SAT
variable and encodes the boolean skeleton with fresh definition
variables, producing an equisatisfiable CNF for the CDCL core.

Preprocessing guarantees the input is quantifier-free with binarized
theory predicates, so atoms here are opaque leaves.
"""

from __future__ import annotations

from repro.coverage.probes import declare_module_probes, function_probe, line_probe
from repro.errors import ReproError
from repro.smtlib import theory as _theory
from repro.smtlib.ast import App, Const, Quantifier, Var
from repro.smtlib.sorts import BOOL

# Boolean connectives handled structurally (as declared by the core
# theory in the registry); everything else Bool-sorted is a theory atom.
_CONNECTIVES = _theory.connectives()


def is_theory_atom(term):
    """True if a Bool-sorted term is a leaf for the boolean abstraction."""
    if isinstance(term, Var):
        return True
    if isinstance(term, Const):
        return False
    if isinstance(term, Quantifier):
        raise ReproError("quantifier reached the boolean abstraction")
    if isinstance(term, App):
        if term.op not in _CONNECTIVES:
            return True
        if term.op in ("=", "distinct") and term.args[0].sort != BOOL:
            return True
        if term.op == "ite":
            # Bool-sorted ite over Bool branches is structural.
            return False
        return False
    raise TypeError(f"not a term: {term!r}")


class Abstraction:
    """The result of encoding: a SAT solver plus the atom correspondence."""

    def __init__(self, sat_solver):
        self.sat = sat_solver
        self.atom_to_var = {}
        self.var_to_atom = {}
        self._cache = {}
        self._true_lit = None

    # -- literal construction ------------------------------------------------

    def _fresh(self):
        return self.sat.new_var()

    def true_literal(self):
        if self._true_lit is None:
            var = self._fresh()
            self.sat.add_clause([var])
            self._true_lit = var
        return self._true_lit

    def atom_literal(self, term):
        """The SAT variable standing for a theory atom."""
        if term not in self.atom_to_var:
            var = self._fresh()
            self.atom_to_var[term] = var
            self.var_to_atom[var] = term
        return self.atom_to_var[term]

    def literal(self, term):
        """Tseitin literal for an arbitrary Bool-sorted term."""
        if term in self._cache:
            return self._cache[term]
        lit = self._build(term)
        self._cache[term] = lit
        return lit

    def _build(self, term):
        function_probe("tseitin.build")
        if isinstance(term, Const):
            lit = self.true_literal()
            return lit if term.value else -lit
        if is_theory_atom(term):
            return self.atom_literal(term)
        op = term.op
        if op == "not":
            return -self.literal(term.args[0])
        if op == "and":
            line_probe("tseitin.and")
            lits = [self.literal(a) for a in term.args]
            v = self._fresh()
            for lit in lits:
                self.sat.add_clause([-v, lit])
            self.sat.add_clause([v] + [-lit for lit in lits])
            return v
        if op == "or":
            line_probe("tseitin.or")
            lits = [self.literal(a) for a in term.args]
            v = self._fresh()
            for lit in lits:
                self.sat.add_clause([v, -lit])
            self.sat.add_clause([-v] + lits)
            return v
        if op == "=>":
            line_probe("tseitin.implies")
            *hyps, conclusion = term.args
            lits = [-self.literal(h) for h in hyps] + [self.literal(conclusion)]
            v = self._fresh()
            for lit in lits:
                self.sat.add_clause([v, -lit])
            self.sat.add_clause([-v] + lits)
            return v
        if op == "xor":
            line_probe("tseitin.xor")
            result = self.literal(term.args[0])
            for arg in term.args[1:]:
                result = self._encode_xor(result, self.literal(arg))
            return result
        if op == "=":
            # Boolean iff chain: all arguments equivalent.
            line_probe("tseitin.iff")
            lits = [self.literal(a) for a in term.args]
            parts = [-self._encode_xor(lits[0], lit) for lit in lits[1:]]
            if len(parts) == 1:
                return parts[0]
            v = self._fresh()
            for lit in parts:
                self.sat.add_clause([-v, lit])
            self.sat.add_clause([v] + [-lit for lit in parts])
            return v
        if op == "distinct":
            # Boolean distinct: at most two arguments can be distinct.
            line_probe("tseitin.distinct")
            if len(term.args) > 2:
                lit = self.true_literal()
                return -lit
            a, b = (self.literal(x) for x in term.args)
            return self._encode_xor(a, b)
        if op == "ite":
            line_probe("tseitin.ite")
            c = self.literal(term.args[0])
            t = self.literal(term.args[1])
            e = self.literal(term.args[2])
            v = self._fresh()
            self.sat.add_clause([-v, -c, t])
            self.sat.add_clause([-v, c, e])
            self.sat.add_clause([v, -c, -t])
            self.sat.add_clause([v, c, -e])
            return v
        raise ReproError(f"unexpected connective {op!r}")

    def _encode_xor(self, a, b):
        v = self._fresh()
        self.sat.add_clause([-v, a, b])
        self.sat.add_clause([-v, -a, -b])
        self.sat.add_clause([v, a, -b])
        self.sat.add_clause([v, -a, b])
        return v

    # -- top level ----------------------------------------------------------

    def assert_term(self, term):
        """Constrain the formula to hold."""
        self.sat.add_clause([self.literal(term)])

    def assert_term_under(self, term, selector):
        """Constrain the formula to hold whenever ``selector`` is true.

        The guarded form ``(-selector OR root)`` is the incremental
        session's assumption mechanism: solving with ``selector`` as an
        assumption enforces the assertion; leaving it free retires the
        assertion without removing clauses. The selector appears only
        negatively in clauses, so resolvents derived from the guarded
        root always carry it — mutant-specific consequences can never
        masquerade as shared-vocabulary lemmas.
        """
        self.sat.add_clause([-selector, self.literal(term)])

    def clone_onto(self, sat_solver):
        """A copy of this abstraction bound to ``sat_solver``.

        Used by the incremental session: the prototype's SAT core is
        cloned per mutant, and this rebinds the atom/term maps (copied,
        so further encoding in either abstraction stays independent)
        onto the clone.
        """
        other = Abstraction(sat_solver)
        other.atom_to_var = dict(self.atom_to_var)
        other.var_to_atom = dict(self.var_to_atom)
        other._cache = dict(self._cache)
        other._true_lit = self._true_lit
        return other

    def block(self, literals):
        """Add a blocking clause: not all of ``literals`` again."""
        self.sat.add_clause([-lit for lit in literals])

    def theory_assignment(self, sat_model):
        """Extract (atom term, polarity) pairs from a SAT model."""
        out = []
        for var, value in sat_model.items():
            atom = self.var_to_atom.get(var)
            if atom is not None:
                out.append((atom, value))
        return out


def encode(assertions, sat_solver):
    """Encode assertions into ``sat_solver``; returns the :class:`Abstraction`."""
    abstraction = Abstraction(sat_solver)
    for term in assertions:
        abstraction.assert_term(term)
    return abstraction


declare_module_probes(__file__)
