"""Reduction passes: candidate shrinking rewrites for a script.

Each pass yields candidate scripts strictly smaller than the input; the
reducer keeps any candidate on which the bug predicate still holds.
Includes the paper's pretty-printer transformations (flattening,
neutral-element removal) as a final cleanup.
"""

from __future__ import annotations

from fractions import Fraction

from repro.smtlib.ast import (
    App,
    Const,
    Quantifier,
    Script,
    mk_app,
    mk_const,
    mk_quantifier,
    term_size,
)
from repro.smtlib.pretty import prettify_script
from repro.smtlib.sorts import BOOL, INT, REAL, STRING

_NEUTRAL_BY_SORT = {
    BOOL: mk_const(True, BOOL),
    INT: mk_const(0, INT),
    REAL: mk_const(Fraction(0), REAL),
    STRING: mk_const("", STRING),
}


def drop_assert_candidates(script):
    """Scripts with one assert removed."""
    asserts = script.asserts
    for i in range(len(asserts)):
        yield script.with_asserts(asserts[:i] + asserts[i + 1 :])


def hoist_candidates(script):
    """Replace an assert by one of its Bool-sorted proper subterms."""
    asserts = script.asserts
    for i, term in enumerate(asserts):
        for sub in term.walk():
            if sub is term or sub.sort != BOOL:
                continue
            if isinstance(sub, (Const,)):
                continue
            new = asserts[:i] + [sub] + asserts[i + 1 :]
            yield script.with_asserts(new)


def _replace_at(term, target_id, replacement):
    if id(term) == target_id:
        return replacement
    if isinstance(term, App):
        new_args = tuple(_replace_at(a, target_id, replacement) for a in term.args)
        if new_args == term.args:
            return term
        return mk_app(term.op, new_args, term.sort)
    if isinstance(term, Quantifier):
        new_body = _replace_at(term.body, target_id, replacement)
        if new_body is term.body:
            return term
        return mk_quantifier(term.kind, term.bindings, new_body)
    return term


def subterm_to_neutral_candidates(script, per_assert_limit=40):
    """Replace subterms by a neutral constant of their sort."""
    asserts = script.asserts
    for i, term in enumerate(asserts):
        tried = 0
        for sub in term.walk():
            if sub is term or isinstance(sub, Const):
                continue
            neutral = _NEUTRAL_BY_SORT.get(sub.sort)
            if neutral is None or sub == neutral:
                continue
            tried += 1
            if tried > per_assert_limit:
                break
            new_term = _replace_at(term, id(sub), neutral)
            if term_size(new_term) < term_size(term):
                yield script.with_asserts(asserts[:i] + [new_term] + asserts[i + 1 :])


def shrink_nary_candidates(script, per_assert_limit=40):
    """Drop one argument of an n-ary and/or/+/* application."""
    asserts = script.asserts
    for i, term in enumerate(asserts):
        tried = 0
        for sub in term.walk():
            if not isinstance(sub, App) or len(sub.args) <= 2:
                continue
            if sub.op not in ("and", "or", "+", "*", "str.++"):
                continue
            for k in range(len(sub.args)):
                tried += 1
                if tried > per_assert_limit:
                    break
                smaller = mk_app(sub.op, sub.args[:k] + sub.args[k + 1 :], sub.sort)
                new_term = _replace_at(term, id(sub), smaller)
                yield script.with_asserts(
                    asserts[:i] + [new_term] + asserts[i + 1 :]
                )
            if tried > per_assert_limit:
                break


def drop_unused_declarations(script):
    """Remove declarations of variables no assert mentions."""
    used = {v.name for v in script.free_variables()}
    from repro.smtlib.ast import DeclareFun

    commands = []
    changed = False
    for cmd in script.commands:
        if isinstance(cmd, DeclareFun) and cmd.name not in used:
            changed = True
            continue
        commands.append(cmd)
    if changed:
        return Script(commands)
    return None


def cleanup(script):
    """The paper's pretty-printer pass (semantics preserving)."""
    return prettify_script(script)


ALL_PASSES = (
    drop_assert_candidates,
    hoist_candidates,
    shrink_nary_candidates,
    subterm_to_neutral_candidates,
)
