"""Delta debugging (ddmin) over sequences.

Zeller & Hildebrandt's ddmin algorithm: find a 1-minimal subsequence of
``items`` that still makes ``still_fails`` true.
"""

from __future__ import annotations


def ddmin(items, still_fails, max_tests=2000):
    """Minimize ``items`` while preserving ``still_fails(subset) == True``.

    ``still_fails`` receives a list. The input must itself fail.
    Returns the minimized list.
    """
    items = list(items)
    if not still_fails(items):
        raise ValueError("ddmin requires a failing input")
    tests = 0
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        subsets = [items[i : i + chunk] for i in range(0, len(items), chunk)]
        reduced = False
        # Try each subset alone.
        for subset in subsets:
            tests += 1
            if tests > max_tests:
                return items
            if len(subset) < len(items) and still_fails(subset):
                items = subset
                granularity = 2
                reduced = True
                break
        if reduced:
            continue
        # Try each complement.
        if granularity > 2:
            for i in range(len(subsets)):
                complement = [x for j, s in enumerate(subsets) if j != i for x in s]
                tests += 1
                if tests > max_tests:
                    return items
                if complement and len(complement) < len(items) and still_fails(complement):
                    items = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if reduced:
            continue
        if granularity >= len(items):
            break
        granularity = min(len(items), granularity * 2)
    return items
