"""The reduction driver: shrink a bug-triggering script.

Greedy fixpoint over the candidate passes: any candidate on which the
bug predicate still holds replaces the current script. The assert list
is first minimized with ddmin, then structural passes shrink the
surviving terms, and the pretty-printer cleans up — mirroring the
paper's C-Reduce-plus-pretty-printer pipeline.
"""

from __future__ import annotations

from repro.errors import ReductionError
from repro.reduce.ddmin import ddmin
from repro.reduce.passes import ALL_PASSES, cleanup, drop_unused_declarations
from repro.smtlib.ast import term_size


def _script_size(script):
    return sum(term_size(t) for t in script.asserts)


class Reducer:
    """Reduce scripts while preserving a bug predicate."""

    def __init__(self, still_fails, max_checks=4000):
        """``still_fails(script) -> bool`` must hold on the input."""
        self.still_fails = still_fails
        self.max_checks = max_checks
        self.checks = 0

    def _check(self, script):
        self.checks += 1
        if self.checks > self.max_checks:
            return False
        try:
            return bool(self.still_fails(script))
        except Exception:
            return False

    def reduce(self, script):
        """Return a 1-minimal-ish script still triggering the bug."""
        if not self._check(script):
            raise ReductionError("input script does not trigger the bug")

        # Phase 1: ddmin over the assert list.
        asserts = script.asserts
        if len(asserts) > 1:
            minimal = ddmin(
                asserts,
                lambda subset: self._check(script.with_asserts(list(subset))),
                max_tests=self.max_checks // 2,
            )
            script = script.with_asserts(minimal)

        # Phase 2: structural passes to fixpoint.
        improved = True
        while improved and self.checks < self.max_checks:
            improved = False
            current_size = _script_size(script)
            for candidate_pass in ALL_PASSES:
                for candidate in candidate_pass(script):
                    if _script_size(candidate) >= current_size:
                        continue
                    if self._check(candidate):
                        script = candidate
                        improved = True
                        break
                if improved:
                    break

        # Phase 3: cleanup.
        smaller = drop_unused_declarations(script)
        if smaller is not None and self._check(smaller):
            script = smaller
        pretty = cleanup(script)
        if self._check(pretty):
            script = pretty
        return script


def reduce_script(script, still_fails, max_checks=4000):
    """One-shot convenience wrapper around :class:`Reducer`."""
    return Reducer(still_fails, max_checks).reduce(script)
