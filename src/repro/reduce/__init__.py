"""Bug reduction: the offline stand-in for C-Reduce plus the paper's
pretty-printer passes (Section 4.1)."""

from repro.reduce.ddmin import ddmin
from repro.reduce.reducer import Reducer, reduce_script

__all__ = ["ddmin", "Reducer", "reduce_script"]
