"""SMT-LIB sorts supported by the reproduction.

The paper's evaluation covers the arithmetic logics (LIA, LRA, NRA and
their quantifier-free variants) and the string logics (QF_S, QF_SLIA),
so the sort universe is Bool, Int, Real, String and RegLan (the sort of
regular-language terms used by ``str.in.re``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Sort:
    """An SMT-LIB sort, identified by its name.

    Sorts are interned: use the module-level constants ``BOOL``, ``INT``,
    ``REAL``, ``STRING`` and ``REGLAN`` rather than constructing new ones.
    """

    name: str

    def __post_init__(self):
        # Sorts appear in every term's intern key and structural hash;
        # precomputing the hash keeps those probes O(1) instead of
        # re-hashing the field tuple on every lookup.
        object.__setattr__(self, "_hash", hash((Sort, self.name)))

    def __hash__(self):
        return self._hash

    def __str__(self):
        return self.name

    @property
    def is_numeric(self):
        """True for the arithmetic sorts Int and Real."""
        return self.name in ("Int", "Real")


BOOL = Sort("Bool")
INT = Sort("Int")
REAL = Sort("Real")
STRING = Sort("String")
REGLAN = Sort("RegLan")

_BY_NAME = {s.name: s for s in (BOOL, INT, REAL, STRING, REGLAN)}

# Historical spellings accepted by solvers for compatibility.
_ALIASES = {
    "RegEx": REGLAN,  # SMT-LIB 2.5 / z3str3 spelling
}

# -- indexed sort families (e.g. ``(_ BitVec 8)``) -------------------------
#
# Indexed sorts are interned per index vector so every width shares one
# Sort object, exactly like the fixed singletons above. The name carries
# the indices (``(_ BitVec 8)``), which keeps the term-intern keys —
# they hash ``sort.name`` — and ``str(sort)`` printing correct for free.

_BITVEC_PREFIX = "(_ BitVec "
_BV_SORTS = {}


def bitvec_sort(width):
    """The interned bitvector sort of ``width`` bits (``(_ BitVec w)``)."""
    try:
        return _BV_SORTS[width]
    except KeyError:
        pass
    if not isinstance(width, int) or isinstance(width, bool) or width <= 0:
        raise ValueError(f"bitvector width must be a positive int, got {width!r}")
    sort = _BV_SORTS[width] = Sort(f"(_ BitVec {width})")
    return sort


def is_bitvec(sort):
    """True if ``sort`` is a bitvector sort of any width."""
    return isinstance(sort, Sort) and sort.name.startswith(_BITVEC_PREFIX)


def bitvec_width(sort):
    """The width of a bitvector sort. Raises ``ValueError`` otherwise."""
    if not is_bitvec(sort):
        raise ValueError(f"not a bitvector sort: {sort}")
    return int(sort.name[len(_BITVEC_PREFIX):-1])


def _parse_bitvec_name(name):
    """``bitvec_sort(w)`` for a ``(_ BitVec w)`` spelling, else ``None``."""
    if not (name.startswith(_BITVEC_PREFIX) and name.endswith(")")):
        return None
    digits = name[len(_BITVEC_PREFIX):-1]
    if not digits.isdigit() or int(digits) <= 0:
        return None
    return bitvec_sort(int(digits))


def sort_by_name(name):
    """Look up a sort by its SMT-LIB name. Raises ``KeyError`` if unknown."""
    if name in _BY_NAME:
        return _BY_NAME[name]
    if name in _ALIASES:
        return _ALIASES[name]
    bv = _parse_bitvec_name(name)
    if bv is not None:
        return bv
    raise KeyError(f"unknown sort: {name!r}")


def is_known_sort(name):
    """True if ``name`` (or an accepted alias) denotes a supported sort."""
    return (
        name in _BY_NAME
        or name in _ALIASES
        or _parse_bitvec_name(name) is not None
    )
