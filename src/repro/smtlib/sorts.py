"""SMT-LIB sorts supported by the reproduction.

The paper's evaluation covers the arithmetic logics (LIA, LRA, NRA and
their quantifier-free variants) and the string logics (QF_S, QF_SLIA),
so the sort universe is Bool, Int, Real, String and RegLan (the sort of
regular-language terms used by ``str.in.re``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Sort:
    """An SMT-LIB sort, identified by its name.

    Sorts are interned: use the module-level constants ``BOOL``, ``INT``,
    ``REAL``, ``STRING`` and ``REGLAN`` rather than constructing new ones.
    """

    name: str

    def __post_init__(self):
        # Sorts appear in every term's intern key and structural hash;
        # precomputing the hash keeps those probes O(1) instead of
        # re-hashing the field tuple on every lookup.
        object.__setattr__(self, "_hash", hash((Sort, self.name)))

    def __hash__(self):
        return self._hash

    def __str__(self):
        return self.name

    @property
    def is_numeric(self):
        """True for the arithmetic sorts Int and Real."""
        return self.name in ("Int", "Real")


BOOL = Sort("Bool")
INT = Sort("Int")
REAL = Sort("Real")
STRING = Sort("String")
REGLAN = Sort("RegLan")

_BY_NAME = {s.name: s for s in (BOOL, INT, REAL, STRING, REGLAN)}

# Historical spellings accepted by solvers for compatibility.
_ALIASES = {
    "RegEx": REGLAN,  # SMT-LIB 2.5 / z3str3 spelling
}


def sort_by_name(name):
    """Look up a sort by its SMT-LIB name. Raises ``KeyError`` if unknown."""
    if name in _BY_NAME:
        return _BY_NAME[name]
    if name in _ALIASES:
        return _ALIASES[name]
    raise KeyError(f"unknown sort: {name!r}")


def is_known_sort(name):
    """True if ``name`` (or an accepted alias) denotes a supported sort."""
    return name in _BY_NAME or name in _ALIASES
