"""The fixed-width bitvector theory (QF_BV), registered as a plug-in.

This module is the reference client of the theory registry: everything
QF_BV contributes to the stack — sorts, operator signatures and
mutation classes, ``#b``/``#x`` literal syntax, constant printing,
evaluation semantics, fusion metadata, triage difficulty features, and
the bit-blasting solver backend name — is declared here and flows to
the rest of the system through :mod:`repro.smtlib.theory`. No other
module mentions a bitvector operator by name.

Values are plain non-negative ints in ``[0, 2**width)``; the width
lives in the sort (``(_ BitVec 8)``), which term interning and printing
already key on. Semantics follow SMT-LIB: modular arithmetic, unsigned
comparisons, shifts that saturate to zero at or beyond the width.

The binary operators are registered with *shared handlers*, which is
how the registry declares OpFuzz type-equivalence classes:
``{bvadd, bvsub, bvmul}``, ``{bvand, bvor, bvxor}``, ``{bvnot, bvneg}``,
``{bvshl, bvlshr}`` and ``{bvult, bvule}`` are mutation partners.

``extract`` is an *indexed* operator: the application carries the full
SMT-LIB spelling ``(_ extract i j)`` as its op string, so the default
application printer emits ``((_ extract i j) x)`` verbatim and the
parser rebuilds the identical interned node.
"""

from __future__ import annotations

import re

from repro.errors import SortError
from repro.smtlib import theory as _theory
from repro.smtlib.ast import mk_app, mk_const
from repro.smtlib.sorts import BOOL, bitvec_sort, bitvec_width, is_bitvec

# The widths the seed generator and fusion schemes work over. Kept
# deliberately small: 8-bit terms exercise every carry chain while
# staying cheap to bit-blast; the 4-bit sort exists so concat/extract
# seeds can cross widths.
GENERATOR_WIDTHS = (8, 4)

_EXTRACT_RE = re.compile(r"^\(_ extract (\d+) (\d+)\)$")
EXTRACT_PREFIX = "(_ extract "


def bv_const(value, width):
    """The interned constant ``value mod 2**width`` of ``(_ BitVec width)``."""
    return mk_const(value & ((1 << width) - 1), bitvec_sort(width))


def extract_op(high, low):
    """The indexed-operator spelling ``(_ extract high low)``."""
    return f"(_ extract {high} {low})"


def parse_extract_indices(op):
    """``(high, low)`` of an extract spelling, or ``None``."""
    match = _EXTRACT_RE.match(op)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2))


# -- typecheck handlers ----------------------------------------------------
#
# These mirror the style of the handlers in ``typecheck`` (arity check,
# sort check, ``mk_app``); the helpers are imported lazily to avoid a
# circular import at package-init time (typecheck registers the base
# theories before this module loads).


def _fail(op, args, why):
    rendered = ", ".join(str(a.sort) for a in args)
    raise SortError(f"ill-sorted ({op} ...): argument sorts [{rendered}]: {why}")


def _bv_sort(op, args):
    sort = args[0].sort
    if not is_bitvec(sort):
        _fail(op, args, "expected bitvector arguments")
    for a in args:
        if a.sort is not sort and a.sort != sort:
            _fail(op, args, "expected bitvector arguments of equal width")
    return sort


def _expect_arity(op, args, n):
    if len(args) != n:
        _fail(op, args, f"expected {n} argument(s), got {len(args)}")


def _h_bv_arith(op, args):
    _expect_arity(op, args, 2)
    return mk_app(op, args, _bv_sort(op, args))


def _h_bv_bitwise(op, args):
    _expect_arity(op, args, 2)
    return mk_app(op, args, _bv_sort(op, args))


def _h_bv_unary(op, args):
    _expect_arity(op, args, 1)
    return mk_app(op, args, _bv_sort(op, args))


def _h_bv_shift(op, args):
    _expect_arity(op, args, 2)
    return mk_app(op, args, _bv_sort(op, args))


def _h_bv_compare(op, args):
    _expect_arity(op, args, 2)
    _bv_sort(op, args)
    return mk_app(op, args, BOOL)


def _h_bv_concat(op, args):
    _expect_arity(op, args, 2)
    for a in args:
        if not is_bitvec(a.sort):
            _fail(op, args, "expected bitvector arguments")
    width = bitvec_width(args[0].sort) + bitvec_width(args[1].sort)
    return mk_app(op, args, bitvec_sort(width))


def _h_bv_extract(op, args):
    indices = parse_extract_indices(op)
    if indices is None:
        raise SortError(f"malformed extract operator: {op!r}")
    high, low = indices
    _expect_arity(op, args, 1)
    if not is_bitvec(args[0].sort):
        _fail(op, args, "expected a bitvector argument")
    width = bitvec_width(args[0].sort)
    if not 0 <= low <= high < width:
        _fail(op, args, f"extract [{high}:{low}] out of range for width {width}")
    return mk_app(op, args, bitvec_sort(high - low + 1))


# -- literal syntax --------------------------------------------------------


def parse_bv_literal(text):
    """Decode a ``#b``/``#x`` literal token to a Const, or ``None``."""
    if text.startswith("#b"):
        bits = text[2:]
        if bits and all(c in "01" for c in bits):
            return mk_const(int(bits, 2), bitvec_sort(len(bits)))
        return None
    if text.startswith("#x"):
        digits = text[2:]
        if digits and all(c in "0123456789abcdefABCDEF" for c in digits):
            return mk_const(int(digits, 16), bitvec_sort(4 * len(digits)))
    return None


def print_bv_const(value, sort):
    """The canonical ``#b`` spelling, zero-padded to the sort's width.

    Printing always chooses binary (even for ``#x`` inputs) so that
    print -> parse -> print is a fixed point on the first print.
    """
    return f"#b{value:0{bitvec_width(sort)}b}"


# -- evaluation semantics --------------------------------------------------


def _mask(width):
    return (1 << width) - 1


def _eval_bv(op, args, term, model):
    if op == "bvadd":
        return (args[0] + args[1]) & _mask(bitvec_width(term.sort))
    if op == "bvsub":
        return (args[0] - args[1]) & _mask(bitvec_width(term.sort))
    if op == "bvmul":
        return (args[0] * args[1]) & _mask(bitvec_width(term.sort))
    if op == "bvand":
        return args[0] & args[1]
    if op == "bvor":
        return args[0] | args[1]
    if op == "bvxor":
        return args[0] ^ args[1]
    if op == "bvnot":
        return args[0] ^ _mask(bitvec_width(term.sort))
    if op == "bvneg":
        return (-args[0]) & _mask(bitvec_width(term.sort))
    if op == "bvshl":
        width = bitvec_width(term.sort)
        return (args[0] << args[1]) & _mask(width) if args[1] < width else 0
    if op == "bvlshr":
        width = bitvec_width(term.sort)
        return args[0] >> args[1] if args[1] < width else 0
    if op == "bvult":
        return args[0] < args[1]
    if op == "bvule":
        return args[0] <= args[1]
    if op == "concat":
        low_width = bitvec_width(term.args[1].sort)
        return (args[0] << low_width) | args[1]
    indices = parse_extract_indices(op)
    if indices is not None:
        high, low = indices
        return (args[0] >> low) & _mask(high - low + 1)
    raise AssertionError(f"bitvector evaluator missed operator {op!r}")


BV_OPS = frozenset((
    "bvadd", "bvsub", "bvmul",
    "bvand", "bvor", "bvxor",
    "bvnot", "bvneg",
    "bvshl", "bvlshr",
    "bvult", "bvule",
    "concat",
))


def is_bv_op(op):
    """True for a bitvector operator, including extract spellings."""
    return op in BV_OPS or op.startswith(EXTRACT_PREFIX)


# -- registration ----------------------------------------------------------

THEORY = _theory.register_theory(_theory.Theory(
    name="bitvectors",
    sorts=tuple(bitvec_sort(w) for w in GENERATOR_WIDTHS),
    handlers={
        "bvadd": _h_bv_arith,
        "bvsub": _h_bv_arith,
        "bvmul": _h_bv_arith,
        "bvand": _h_bv_bitwise,
        "bvor": _h_bv_bitwise,
        "bvxor": _h_bv_bitwise,
        "bvnot": _h_bv_unary,
        "bvneg": _h_bv_unary,
        "bvshl": _h_bv_shift,
        "bvlshr": _h_bv_shift,
        "bvult": _h_bv_compare,
        "bvule": _h_bv_compare,
        "concat": _h_bv_concat,
    },
    hard_mul_ops=("bvmul",),
    hard_div_ops=("bvshl", "bvlshr"),
    fusible_sorts=tuple(bitvec_sort(w) for w in GENERATOR_WIDTHS),
    fusion_schemes=tuple(
        f"bv{w}-{kind}"
        for w in GENERATOR_WIDTHS
        for kind in ("addition", "addition-constant", "xor")
    ),
    logics=("QF_BV",),
    seed_families=("QF_BV",),
    solver_backend="bitblast",
))

_theory.register_indexed_sort("BitVec", bitvec_sort)
_theory.register_indexed_op(EXTRACT_PREFIX, _h_bv_extract)
_theory.register_literal_hook(parse_bv_literal)
_theory.register_const_printer(is_bitvec, print_bv_const)
_theory.register_eval_hook(is_bv_op, _eval_bv)
