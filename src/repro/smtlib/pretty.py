"""Pretty-printer simplifications from the paper (Section 4.1).

"The pretty-printer makes simple modifications to the AST of a formula,
i.e., flattens nestings of the same operator, removes additions and
multiplications with neutral elements and returns the modified formula
in a human-readable format."

These passes are *semantics-preserving* rewrites used during bug
reduction; they are deliberately simple and syntax-directed. Each pass
is a bottom-up :func:`~repro.smtlib.ast.map_terms` rewrite, so shared
subterms are simplified once and deep formulas do not recurse.
"""

from __future__ import annotations

from fractions import Fraction

from repro.smtlib.ast import App, Const, map_terms, mk_app, mk_const
from repro.smtlib.sorts import INT, REAL

# Operators that are associative and may be flattened.
_FLATTENABLE = {"and", "or", "+", "*", "str.++", "re.union", "re.inter", "re.++"}

# Neutral elements: op -> (value predicate on Const).
_NEUTRAL = {
    "+": lambda c: c.value == 0,
    "*": lambda c: c.value == 1,
    "and": lambda c: c.value is True,
    "or": lambda c: c.value is False,
    "str.++": lambda c: c.value == "",
}


def _flatten_node(term):
    if isinstance(term, App) and term.op in _FLATTENABLE:
        if any(isinstance(a, App) and a.op == term.op for a in term.args):
            flat = []
            for arg in term.args:
                if isinstance(arg, App) and arg.op == term.op:
                    flat.extend(arg.args)
                else:
                    flat.append(arg)
            return mk_app(term.op, tuple(flat), term.sort)
    return term


def flatten(term):
    """Flatten nestings of the same associative operator.

    ``(and a (and b c))`` becomes ``(and a b c)``.
    """
    return map_terms(term, _flatten_node)


def _drop_neutral_node(term):
    if not isinstance(term, App):
        return term
    is_neutral = _NEUTRAL.get(term.op)
    if is_neutral is not None and len(term.args) > 1:
        args = list(term.args)
        kept = [a for a in args if not (isinstance(a, Const) and is_neutral(a))]
        if not kept:
            kept = [args[0]]
        if len(kept) == 1 and term.op in ("and", "or", "+", "*", "str.++"):
            only = kept[0]
            if only.sort == term.sort:
                return only
        if len(kept) != len(args):
            return mk_app(term.op, tuple(kept), term.sort)
    return term


def drop_neutral(term):
    """Remove neutral elements of ``+``, ``*``, ``and``, ``or``, ``str.++``."""
    return map_terms(term, _drop_neutral_node)


def _fold_constants_node(term):
    if not isinstance(term, App):
        return term
    args = term.args
    if term.op in ("+", "*", "-") and args and all(isinstance(a, Const) for a in args):
        values = [a.value for a in args]
        if term.op == "+":
            result = sum(values)
        elif term.op == "*":
            result = 1
            for v in values:
                result *= v
        else:
            result = -values[0] if len(values) == 1 else values[0] - sum(values[1:])
        if term.sort == REAL:
            return mk_const(Fraction(result), REAL)
        if term.sort == INT:
            return mk_const(int(result), INT)
    if term.op == "not" and isinstance(args[0], Const):
        return mk_const(not args[0].value, term.sort)
    return term


def fold_constants(term):
    """Fold constant arithmetic subterms (a small, safe subset).

    Only total operations over literals are folded; division and string
    functions are left alone so reduction cannot change which solver
    code paths a formula reaches in surprising ways.
    """
    return map_terms(term, _fold_constants_node)


def prettify(term):
    """Apply all pretty-printer passes to a fixpoint (bounded).

    With interned terms the fixpoint check is an identity check: a pass
    that changes nothing returns the very same object.
    """
    for _ in range(8):
        new = drop_neutral(flatten(fold_constants(term)))
        if new is term:
            return new
        term = new
    return term


def prettify_script(script):
    """Apply :func:`prettify` to every assertion of a script."""
    return script.with_asserts([prettify(t) for t in script.asserts])
