"""Pretty-printer simplifications from the paper (Section 4.1).

"The pretty-printer makes simple modifications to the AST of a formula,
i.e., flattens nestings of the same operator, removes additions and
multiplications with neutral elements and returns the modified formula
in a human-readable format."

These passes are *semantics-preserving* rewrites used during bug
reduction; they are deliberately simple and syntax-directed.
"""

from __future__ import annotations

from fractions import Fraction

from repro.smtlib.ast import App, Const, Quantifier
from repro.smtlib.sorts import INT, REAL

# Operators that are associative and may be flattened.
_FLATTENABLE = {"and", "or", "+", "*", "str.++", "re.union", "re.inter", "re.++"}

# Neutral elements: op -> (value predicate on Const).
_NEUTRAL = {
    "+": lambda c: c.value == 0,
    "*": lambda c: c.value == 1,
    "and": lambda c: c.value is True,
    "or": lambda c: c.value is False,
    "str.++": lambda c: c.value == "",
}


def flatten(term):
    """Flatten nestings of the same associative operator.

    ``(and a (and b c))`` becomes ``(and a b c)``.
    """
    if isinstance(term, App):
        args = tuple(flatten(a) for a in term.args)
        if term.op in _FLATTENABLE:
            flat = []
            for arg in args:
                if isinstance(arg, App) and arg.op == term.op:
                    flat.extend(arg.args)
                else:
                    flat.append(arg)
            args = tuple(flat)
        return App(term.op, args, term.sort)
    if isinstance(term, Quantifier):
        return Quantifier(term.kind, term.bindings, flatten(term.body))
    return term


def drop_neutral(term):
    """Remove neutral elements of ``+``, ``*``, ``and``, ``or``, ``str.++``."""
    if isinstance(term, Quantifier):
        return Quantifier(term.kind, term.bindings, drop_neutral(term.body))
    if not isinstance(term, App):
        return term
    args = [drop_neutral(a) for a in term.args]
    is_neutral = _NEUTRAL.get(term.op)
    if is_neutral is not None and len(args) > 1:
        kept = [a for a in args if not (isinstance(a, Const) and is_neutral(a))]
        if not kept:
            kept = [args[0]]
        if len(kept) == 1 and term.op in ("and", "or", "+", "*", "str.++"):
            only = kept[0]
            if only.sort == term.sort:
                return only
        args = kept
    return App(term.op, tuple(args), term.sort)


def fold_constants(term):
    """Fold constant arithmetic subterms (a small, safe subset).

    Only total operations over literals are folded; division and string
    functions are left alone so reduction cannot change which solver
    code paths a formula reaches in surprising ways.
    """
    if isinstance(term, Quantifier):
        return Quantifier(term.kind, term.bindings, fold_constants(term.body))
    if not isinstance(term, App):
        return term
    args = tuple(fold_constants(a) for a in term.args)
    term = App(term.op, args, term.sort)
    if term.op in ("+", "*", "-") and all(isinstance(a, Const) for a in args) and args:
        values = [a.value for a in args]
        if term.op == "+":
            result = sum(values)
        elif term.op == "*":
            result = 1
            for v in values:
                result *= v
        else:
            result = -values[0] if len(values) == 1 else values[0] - sum(values[1:])
        if term.sort == REAL:
            return Const(Fraction(result), REAL)
        if term.sort == INT:
            return Const(int(result), INT)
    if term.op == "not" and isinstance(args[0], Const):
        return Const(not args[0].value, term.sort)
    return term


def prettify(term):
    """Apply all pretty-printer passes to a fixpoint (bounded)."""
    for _ in range(8):
        new = drop_neutral(flatten(fold_constants(term)))
        if new == term:
            return new
        term = new
    return term


def prettify_script(script):
    """Apply :func:`prettify` to every assertion of a script."""
    return script.with_asserts([prettify(t) for t in script.asserts])
